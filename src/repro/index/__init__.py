"""Spatial indexing substrate: page-based R*-tree, bulk loading, tree join."""

from .gridfile import BUCKET_CAPACITY, GridFile, build_grid_file
from .bulkload import (
    DEFAULT_FILL,
    build_from_sorted,
    bulk_load_rstar,
    extract_keypointers,
    spatial_sort,
    spatial_sort_external,
)
from .node import ENTRY_BYTES, NODE_CAPACITY, Node
from .rstar import MIN_FILL, REINSERT_COUNT, RStarTree, rstar_split
from .treejoin import rtree_join, rtree_join_pairs

__all__ = [
    "BUCKET_CAPACITY",
    "DEFAULT_FILL",
    "ENTRY_BYTES",
    "GridFile",
    "MIN_FILL",
    "NODE_CAPACITY",
    "Node",
    "REINSERT_COUNT",
    "RStarTree",
    "build_from_sorted",
    "build_grid_file",
    "bulk_load_rstar",
    "extract_keypointers",
    "rstar_split",
    "rtree_join",
    "rtree_join_pairs",
    "spatial_sort",
    "spatial_sort_external",
]
