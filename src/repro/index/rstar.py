"""A page-based R*-tree [BKSS90].

Supports tuple-at-a-time insertion with the full R* heuristics (ChooseSubtree
with overlap minimisation at the leaf level, forced reinsert, and the
margin-driven topological split) plus window search.  Bulk loading lives in
:mod:`repro.index.bulkload`.

All node reads and writes go through the buffer pool, so probing and
building the index incur exactly the page I/O a disk-based tree would — the
property the paper's buffer-pool-size sweeps depend on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..geometry import Rect
from ..storage.buffer import BufferPool
from ..storage.relation import OID
from .node import (
    NODE_CAPACITY,
    Node,
    Payload,
    pack_meta,
    pack_node,
    unpack_meta,
    unpack_node,
)

MIN_FILL = max(2, int(NODE_CAPACITY * 0.40))
"""Minimum entries per non-root node (R* recommends m = 40% of M)."""

REINSERT_COUNT = max(1, int(NODE_CAPACITY * 0.30))
"""Entries removed on forced reinsert (p = 30% of M)."""

META_PAGE = 0


class RStarTree:
    """Disk-resident R*-tree over ``(Rect, OID)`` entries."""

    def __init__(self, pool: BufferPool, file_id: Optional[int] = None):
        self.pool = pool
        self._node_cache: Dict[int, Node] = {}
        self._reinserted_levels: set[int] = set()
        if file_id is None:
            self.file_id = pool.disk.create_file()
            meta_no = pool.new_page(self.file_id)
            assert meta_no == META_PAGE
            root = Node(self._allocate_node_page(), is_leaf=True)
            self._write_node(root)
            self.root_page = root.page_no
            self.height = 1
            self.count = 0
            self._write_meta()
        else:
            self.file_id = file_id
            page = pool.get_page(file_id, META_PAGE)
            self.root_page, self.height, self.count = unpack_meta(page)

    # ------------------------------------------------------------------ #
    # page plumbing
    # ------------------------------------------------------------------ #

    def _allocate_node_page(self) -> int:
        return self.pool.new_page(self.file_id)

    def _read_node(self, page_no: int) -> Node:
        # The page access is charged to the buffer pool whether or not the
        # parsed form is cached; the cache only skips re-parsing CPU work.
        page = self.pool.get_page(self.file_id, page_no)
        node = self._node_cache.get(page_no)
        if node is None:
            node = unpack_node(page_no, page)
            self._node_cache[page_no] = node
        return node

    def _write_node(self, node: Node) -> None:
        page = self.pool.get_page(self.file_id, node.page_no)
        pack_node(node, page)
        self.pool.mark_dirty(self.file_id, node.page_no)
        self._node_cache[node.page_no] = node

    def _write_meta(self) -> None:
        page = self.pool.get_page(self.file_id, META_PAGE)
        pack_meta(page, self.root_page, self.height, self.count)
        self.pool.mark_dirty(self.file_id, META_PAGE)

    # ------------------------------------------------------------------ #
    # public interface
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self.count

    @property
    def num_pages(self) -> int:
        return self.pool.disk.file_length(self.file_id)

    def size_bytes(self) -> int:
        from ..storage.disk import PAGE_SIZE

        return self.num_pages * PAGE_SIZE

    def insert(self, rect: Rect, oid: OID) -> None:
        """Insert one entry (R* semantics, with forced reinsert)."""
        self._reinserted_levels = set()
        self._insert_entry(rect, tuple(oid), level=0)
        self.count += 1
        self._write_meta()

    def search(self, window: Rect) -> List[OID]:
        """All OIDs whose rectangles intersect the window."""
        out: List[OID] = []
        stack = [self.root_page]
        while stack:
            node = self._read_node(stack.pop())
            if node.is_leaf:
                for rect, payload in zip(node.rects, node.payloads):
                    if rect.intersects(window):
                        out.append(OID(*payload))
            else:
                for rect, payload in zip(node.rects, node.payloads):
                    if rect.intersects(window):
                        stack.append(payload[0])
        return out

    def all_entries(self) -> List[Tuple[Rect, OID]]:
        """Every leaf entry (diagnostics and invariant checks)."""
        out: List[Tuple[Rect, OID]] = []
        stack = [self.root_page]
        while stack:
            node = self._read_node(stack.pop())
            if node.is_leaf:
                out.extend(
                    (rect, OID(*payload))
                    for rect, payload in zip(node.rects, node.payloads)
                )
            else:
                stack.extend(payload[0] for payload in node.payloads)
        return out

    def root_node(self) -> Node:
        return self._read_node(self.root_page)

    # ------------------------------------------------------------------ #
    # insertion machinery
    # ------------------------------------------------------------------ #

    def _insert_entry(self, rect: Rect, payload: Payload, level: int) -> None:
        """Insert an entry at ``level`` (0 = leaf level of this tree)."""
        path = self._choose_path(rect, level)
        node = path[-1]
        node.add(rect, payload)
        if len(node) <= NODE_CAPACITY:
            self._write_node(node)
            self._adjust_upward(path)
            return
        # Node is overfull (capacity + 1) in memory only; resolve before
        # any attempt to serialise it.
        self._overflow(path, len(path) - 1, level)

    def _choose_path(self, rect: Rect, target_level: int) -> List[Node]:
        """Descend from the root to a node at ``target_level``, stretching
        the chosen entry rectangles on the way down."""
        path: List[Node] = []
        node = self._read_node(self.root_page)
        level = self.height - 1
        path.append(node)
        while level > target_level:
            idx = self._choose_subtree(
                node, rect, children_are_leaves=(level == 1)
            )
            grown = node.rects[idx].union(rect)
            if grown != node.rects[idx]:
                node.rects[idx] = grown
                self._write_node(node)
            node = self._read_node(node.payloads[idx][0])
            path.append(node)
            level -= 1
        return path

    @staticmethod
    def _choose_subtree(node: Node, rect: Rect, children_are_leaves: bool) -> int:
        """R* ChooseSubtree: minimal overlap enlargement above leaves,
        minimal area enlargement elsewhere; ties broken by area."""
        if children_are_leaves:
            best_idx = 0
            best_key: Optional[Tuple[float, float, float]] = None
            for i, candidate in enumerate(node.rects):
                enlarged = candidate.union(rect)
                overlap_delta = 0.0
                for j, other in enumerate(node.rects):
                    if j == i:
                        continue
                    overlap_delta += (
                        enlarged.overlap_area(other) - candidate.overlap_area(other)
                    )
                key = (overlap_delta, candidate.enlargement(rect), candidate.area)
                if best_key is None or key < best_key:
                    best_key = key
                    best_idx = i
            return best_idx
        best_idx = 0
        best_key2: Optional[Tuple[float, float]] = None
        for i, candidate in enumerate(node.rects):
            key2 = (candidate.enlargement(rect), candidate.area)
            if best_key2 is None or key2 < best_key2:
                best_key2 = key2
                best_idx = i
        return best_idx

    def _adjust_upward(self, path: List[Node]) -> None:
        """Make every parent entry rectangle equal its child's MBR.

        Handles both growth (after inserts) and shrinkage (after forced
        reinsert removed entries).
        """
        for i in range(len(path) - 1, 0, -1):
            child = path[i]
            parent = path[i - 1]
            idx = self._child_index(parent, child.page_no)
            tightened = child.mbr()
            if parent.rects[idx] == tightened:
                break
            parent.rects[idx] = tightened
            self._write_node(parent)

    @staticmethod
    def _child_index(parent: Node, child_page: int) -> int:
        for i, payload in enumerate(parent.payloads):
            if payload[0] == child_page:
                return i
        raise AssertionError(
            f"child {child_page} not under parent {parent.page_no}"
        )

    def _overflow(self, path: List[Node], idx_in_path: int, insert_level: int) -> None:
        """Resolve an overfull node by forced reinsert or split."""
        node = path[idx_in_path]
        node_level = insert_level + (len(path) - 1 - idx_in_path)
        can_reinsert = (
            node.page_no != self.root_page
            and node_level not in self._reinserted_levels
        )
        if can_reinsert:
            self._reinserted_levels.add(node_level)
            self._force_reinsert(path, idx_in_path, node_level)
        else:
            self._split(path, idx_in_path, insert_level)

    def _force_reinsert(self, path: List[Node], idx_in_path: int, level: int) -> None:
        """R* forced reinsert: evict the p entries furthest from the node
        centre and insert them again at the same level (far-first)."""
        node = path[idx_in_path]
        cx, cy = node.mbr().center
        order = sorted(
            range(len(node)),
            key=lambda i: -(
                (node.rects[i].center[0] - cx) ** 2
                + (node.rects[i].center[1] - cy) ** 2
            ),
        )
        evict_set = set(order[:REINSERT_COUNT])
        evicted = [(node.rects[i], node.payloads[i]) for i in order[:REINSERT_COUNT]]
        keep = [i for i in range(len(node)) if i not in evict_set]
        node.rects = [node.rects[i] for i in keep]
        node.payloads = [node.payloads[i] for i in keep]
        self._write_node(node)
        self._adjust_upward(path[: idx_in_path + 1])
        for rect, payload in evicted:
            self._insert_entry(rect, payload, level)

    def _split(self, path: List[Node], idx_in_path: int, insert_level: int) -> None:
        """R* topological split; may propagate an overflow to the parent."""
        node = path[idx_in_path]
        group_a, group_b = rstar_split(list(zip(node.rects, node.payloads)))

        node.rects = [rect for rect, _ in group_a]
        node.payloads = [payload for _, payload in group_a]
        sibling = Node(self._allocate_node_page(), node.is_leaf)
        sibling.rects = [rect for rect, _ in group_b]
        sibling.payloads = [payload for _, payload in group_b]
        self._write_node(node)
        self._write_node(sibling)

        if node.page_no == self.root_page:
            new_root = Node(self._allocate_node_page(), is_leaf=False)
            new_root.add(node.mbr(), (node.page_no, 0, 0))
            new_root.add(sibling.mbr(), (sibling.page_no, 0, 0))
            self._write_node(new_root)
            self.root_page = new_root.page_no
            self.height += 1
            self._write_meta()
            return

        parent = path[idx_in_path - 1]
        idx = self._child_index(parent, node.page_no)
        parent.rects[idx] = node.mbr()
        parent.add(sibling.mbr(), (sibling.page_no, 0, 0))
        if len(parent) <= NODE_CAPACITY:
            self._write_node(parent)
            self._adjust_upward(path[:idx_in_path])
        else:
            self._overflow(path, idx_in_path - 1, insert_level)

    # ------------------------------------------------------------------ #
    # invariants (used by the test suite)
    # ------------------------------------------------------------------ #

    def check_invariants(self) -> None:
        """Raise AssertionError when any structural invariant is violated."""
        leaf_depths: set[int] = set()
        total = self._check_node(self.root_page, depth=0, leaf_depths=leaf_depths)
        assert total == self.count, f"entry count {total} != recorded {self.count}"
        assert len(leaf_depths) <= 1, f"leaves at multiple depths: {leaf_depths}"
        if leaf_depths:
            assert leaf_depths == {self.height - 1}, (
                f"height {self.height} inconsistent with leaf depth {leaf_depths}"
            )

    def _check_node(self, page_no: int, depth: int, leaf_depths: set[int]) -> int:
        node = self._read_node(page_no)
        if node.page_no != self.root_page:
            assert len(node) >= 1, f"empty non-root node {page_no}"
        assert len(node) <= NODE_CAPACITY, f"overfull node {page_no}"
        if node.is_leaf:
            leaf_depths.add(depth)
            return len(node)
        total = 0
        for rect, payload in zip(node.rects, node.payloads):
            child = self._read_node(payload[0])
            assert rect.contains(child.mbr()), (
                f"parent rect {rect} of node {page_no} does not cover child "
                f"{payload[0]} mbr {child.mbr()}"
            )
            total += self._check_node(payload[0], depth + 1, leaf_depths)
        return total


def rstar_split(
    entries: Sequence[Tuple[Rect, Payload]],
) -> Tuple[List[Tuple[Rect, Payload]], List[Tuple[Rect, Payload]]]:
    """The R* split: choose the axis with minimal margin sum, then the
    distribution with minimal overlap (ties by area)."""
    m = min(MIN_FILL, max(1, len(entries) // 3))
    best_axis_key = None
    best_axis_sortings: List[List[Tuple[Rect, Payload]]] = []
    for axis in ("x", "y"):
        if axis == "x":
            by_lower = sorted(entries, key=lambda e: (e[0].xl, e[0].xu))
            by_upper = sorted(entries, key=lambda e: (e[0].xu, e[0].xl))
        else:
            by_lower = sorted(entries, key=lambda e: (e[0].yl, e[0].yu))
            by_upper = sorted(entries, key=lambda e: (e[0].yu, e[0].yl))
        margin_sum = 0.0
        for sorting in (by_lower, by_upper):
            for k in range(m, len(sorting) - m + 1):
                left = Rect.union_all(rect for rect, _ in sorting[:k])
                right = Rect.union_all(rect for rect, _ in sorting[k:])
                margin_sum += left.margin + right.margin
        if best_axis_key is None or margin_sum < best_axis_key:
            best_axis_key = margin_sum
            best_axis_sortings = [by_lower, by_upper]

    best_key = None
    best_groups: Tuple[List, List] | None = None
    for sorting in best_axis_sortings:
        for k in range(m, len(sorting) - m + 1):
            left_rect = Rect.union_all(rect for rect, _ in sorting[:k])
            right_rect = Rect.union_all(rect for rect, _ in sorting[k:])
            key = (
                left_rect.overlap_area(right_rect),
                left_rect.area + right_rect.area,
            )
            if best_key is None or key < best_key:
                best_key = key
                best_groups = (list(sorting[:k]), list(sorting[k:]))
    assert best_groups is not None
    return best_groups
