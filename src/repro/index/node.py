"""R*-tree node layout on 8 KB pages.

Every node occupies exactly one page of the tree's file.  Page 0 is a meta
page holding the root pointer and tree height, so a tree is fully recoverable
from its file.

Node page layout::

    0       is_leaf (u8)
    1       pad
    2..4    entry count (u16)
    4..     entries, 44 bytes each:
                xl, yl, xu, yu  (4 x f64)
                a, b, c         (3 x u32)

For an internal entry ``a`` is the child page number (b = c = 0); for a leaf
entry ``(a, b, c)`` is the OID ``(file_id, page_no, slot)`` of the indexed
tuple.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Tuple

from ..geometry import Rect
from ..storage.disk import PAGE_SIZE

_META = struct.Struct("<IIIQ")  # magic, root page, height, entry count
_NODE_HEADER = struct.Struct("<BBH")
_ENTRY = struct.Struct("<ddddIII")

META_MAGIC = 0x52545231  # "RTR1"

NODE_CAPACITY = (PAGE_SIZE - _NODE_HEADER.size) // _ENTRY.size
"""Maximum entries per node (186 with 8 KB pages)."""

ENTRY_BYTES = _ENTRY.size

Payload = Tuple[int, int, int]


@dataclass
class Node:
    """A parsed node: parallel entry arrays plus its page number."""

    page_no: int
    is_leaf: bool
    rects: List[Rect] = field(default_factory=list)
    payloads: List[Payload] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rects)

    @property
    def is_full(self) -> bool:
        return len(self.rects) >= NODE_CAPACITY

    def mbr(self) -> Rect:
        return Rect.union_all(self.rects)

    def add(self, rect: Rect, payload: Payload) -> None:
        self.rects.append(rect)
        self.payloads.append(payload)

    def entries(self) -> List[Tuple[Rect, Payload]]:
        return list(zip(self.rects, self.payloads))


def pack_node(node: Node, out: bytearray) -> None:
    """Serialise a node into a page-sized bytearray in place."""
    if len(node.rects) > NODE_CAPACITY:
        raise ValueError(
            f"node {node.page_no} has {len(node.rects)} entries "
            f"(capacity {NODE_CAPACITY})"
        )
    _NODE_HEADER.pack_into(out, 0, 1 if node.is_leaf else 0, 0, len(node.rects))
    pos = _NODE_HEADER.size
    for rect, (a, b, c) in zip(node.rects, node.payloads):
        _ENTRY.pack_into(out, pos, rect.xl, rect.yl, rect.xu, rect.yu, a, b, c)
        pos += _ENTRY.size


def unpack_node(page_no: int, page: bytes | bytearray) -> Node:
    """Parse a node from its page image."""
    is_leaf, _pad, count = _NODE_HEADER.unpack_from(page, 0)
    node = Node(page_no, bool(is_leaf))
    pos = _NODE_HEADER.size
    for _ in range(count):
        xl, yl, xu, yu, a, b, c = _ENTRY.unpack_from(page, pos)
        node.rects.append(Rect(xl, yl, xu, yu))
        node.payloads.append((a, b, c))
        pos += _ENTRY.size
    return node


def pack_meta(out: bytearray, root_page: int, height: int, count: int) -> None:
    _META.pack_into(out, 0, META_MAGIC, root_page, height, count)


def unpack_meta(page: bytes | bytearray) -> Tuple[int, int, int]:
    magic, root_page, height, count = _META.unpack_from(page, 0)
    if magic != META_MAGIC:
        raise ValueError("not an R*-tree file (bad magic)")
    return root_page, height, count
