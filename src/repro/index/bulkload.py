"""Bulk loading R*-trees the Paradise way (§4.1).

Three phases, each exposed separately so join drivers can meter them:

1. :func:`extract_keypointers` — scan the relation and collect
   ``<MBR, OID>`` key-pointer elements;
2. :func:`spatial_sort` / :func:`spatial_sort_external` — order
   key-pointers by the Hilbert value of the MBR centre (skipped when the
   input is already spatially clustered — the clustering effect the paper
   measures in Figures 10-12).  The external variant spills sorted runs
   through the buffer pool when the key-pointer stream exceeds the memory
   budget, as a real system with a small buffer pool must;
3. :func:`build_from_sorted` — pack the sorted run bottom-up into a tree.

The paper's motivating numbers: bulk loading 122K objects took 109.9 s vs
864.5 s for repeated inserts; `benchmarks/bench_bulkload_vs_inserts.py`
reproduces the ratio.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..geometry import CurveMapper, Rect
from ..storage.buffer import BufferPool
from ..storage.extsort import ExternalSorter
from ..storage.relation import OID, Relation
from .node import NODE_CAPACITY, Node, pack_meta, pack_node
from .rstar import META_PAGE, RStarTree

DEFAULT_FILL = 0.80
"""Leaf/branch fill factor used by the bulk loader."""

KeyPointer = Tuple[Rect, OID]

# Hilbert key (u64, big-endian so byte order equals numeric order) followed
# by the key-pointer payload; used by the external-sort path.
_SORT_REC = struct.Struct(">QddddIII")


def extract_keypointers(relation: Relation) -> List[KeyPointer]:
    """Sequential scan producing the ``<MBR, OID>`` stream."""
    return [(t.mbr, oid) for oid, t in relation.scan()]


def spatial_sort(
    entries: Sequence[KeyPointer], universe: Optional[Rect] = None
) -> List[KeyPointer]:
    """In-memory sort of key-pointers by Hilbert value of the MBR centre."""
    items = list(entries)
    if not items:
        return items
    if universe is None:
        universe = Rect.union_all(rect for rect, _ in items)
    mapper = CurveMapper(universe)
    items.sort(key=lambda kp: mapper.hilbert_of_rect(kp[0]))
    return items


def spatial_sort_external(
    pool: BufferPool,
    entries: Iterable[KeyPointer],
    universe: Rect,
    memory_bytes: int,
) -> Iterator[KeyPointer]:
    """Hilbert sort that spills runs to disk beyond ``memory_bytes``.

    This is what Paradise actually has to do when bulk loading a 456K-tuple
    index through a 2 MB buffer pool; the spill I/O is what makes index
    builds genuinely more expensive at small buffer sizes.
    """
    mapper = CurveMapper(universe)
    sorter = ExternalSorter(
        pool, key=lambda record: record[:8], memory_bytes=memory_bytes
    )
    for rect, oid in entries:
        sorter.add(
            _SORT_REC.pack(
                mapper.hilbert_of_rect(rect),
                rect.xl, rect.yl, rect.xu, rect.yu,
                *oid,
            )
        )
    for record in sorter.sorted_records():
        _h, xl, yl, xu, yu, a, b, c = _SORT_REC.unpack(record)
        yield Rect(xl, yl, xu, yu), OID(a, b, c)


def build_from_sorted(
    pool: BufferPool,
    sorted_entries: Iterable[KeyPointer],
    fill: float = DEFAULT_FILL,
) -> RStarTree:
    """Pack a sorted key-pointer stream bottom-up into a fresh R*-tree file."""
    if not 0.0 < fill <= 1.0:
        raise ValueError(f"fill factor {fill} outside (0, 1]")
    per_node = max(2, int(NODE_CAPACITY * fill))

    file_id = pool.disk.create_file()
    meta_no = pool.new_page(file_id)
    assert meta_no == META_PAGE

    def flush_node(
        entries: List[Tuple[Rect, Tuple[int, int, int]]], is_leaf: bool
    ) -> Tuple[Rect, Tuple[int, int, int]]:
        node = Node(pool.new_page(file_id), is_leaf)
        for rect, payload in entries:
            node.add(rect, payload)
        _write_raw_node(pool, file_id, node)
        return (node.mbr(), (node.page_no, 0, 0))

    # Leaf level: stream the input, flushing a leaf every ``per_node``.
    parents: List[Tuple[Rect, Tuple[int, int, int]]] = []
    chunk: List[Tuple[Rect, Tuple[int, int, int]]] = []
    count = 0
    for rect, oid in sorted_entries:
        chunk.append((rect, tuple(oid)))
        count += 1
        if len(chunk) == per_node:
            parents.append(flush_node(chunk, is_leaf=True))
            chunk = []
    if chunk:
        parents.append(flush_node(chunk, is_leaf=True))

    if count == 0:
        # An empty tree still has a single empty leaf root.
        root = Node(pool.new_page(file_id), is_leaf=True)
        _write_raw_node(pool, file_id, root)
        _write_raw_meta(pool, file_id, root.page_no, 1, 0)
        return RStarTree(pool, file_id)

    # Upper levels fit in memory (fanout ~150).
    height = 1
    level = parents
    while len(level) > 1:
        next_level: List[Tuple[Rect, Tuple[int, int, int]]] = []
        for start in range(0, len(level), per_node):
            next_level.append(flush_node(level[start : start + per_node], False))
        level = next_level
        height += 1
    _write_raw_meta(pool, file_id, level[0][1][0], height, count)
    return RStarTree(pool, file_id)


def bulk_load_rstar(
    pool: BufferPool,
    relation: Relation,
    presorted: bool = False,
    fill: float = DEFAULT_FILL,
    memory_bytes: Optional[int] = None,
) -> RStarTree:
    """Convenience wrapper running all three phases.

    With ``presorted=True`` the Hilbert sort is skipped, modelling a
    spatially clustered input whose physical order is already the curve
    order.  With ``memory_bytes`` set, the sort spills runs to disk when
    the key-pointer stream exceeds the budget (the small-buffer regime of
    the paper's sweeps); otherwise it sorts in memory.
    """
    if presorted:
        return build_from_sorted(
            pool, ((t.mbr, oid) for oid, t in relation.scan()), fill
        )
    if memory_bytes is not None:
        stream = spatial_sort_external(
            pool,
            ((t.mbr, oid) for oid, t in relation.scan()),
            relation.universe,
            memory_bytes,
        )
        return build_from_sorted(pool, stream, fill)
    entries = spatial_sort(extract_keypointers(relation), relation.universe)
    return build_from_sorted(pool, entries, fill)


def _write_raw_node(pool: BufferPool, file_id: int, node: Node) -> None:
    page = pool.get_page(file_id, node.page_no)
    pack_node(node, page)
    pool.mark_dirty(file_id, node.page_no)


def _write_raw_meta(
    pool: BufferPool, file_id: int, root_page: int, height: int, count: int
) -> None:
    page = pool.get_page(file_id, META_PAGE)
    pack_meta(page, root_page, height, count)
    pool.mark_dirty(file_id, META_PAGE)
