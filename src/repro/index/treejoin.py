"""The R-tree join of Brinkhoff, Kriegel and Seeger [BKS93] (§4.2).

A synchronized depth-first traversal of two R*-trees: at each step a pair of
nodes is joined by finding all intersecting bounding-box pairs between them
(via the same plane-sweep the PBSM merge uses), and the matching child
pointers are traversed in tandem.  Produces the *filter-step* candidate OID
pairs; the refinement step is shared with PBSM.

Includes the BKS93 space-restriction optimisation: entries that do not
intersect the other node's MBR cannot contribute and are dropped before the
sweep.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from ..geometry import Rect, sweep_join
from ..storage.relation import OID
from .node import Node
from .rstar import RStarTree

CandidatePair = Tuple[OID, OID]


def rtree_join(
    tree_r: RStarTree,
    tree_s: RStarTree,
    emit: Callable[[OID, OID], None],
) -> int:
    """Synchronized DFS join of two trees; emits candidate OID pairs.

    Returns the number of candidates emitted.  Handles trees of different
    heights by descending only the taller tree until levels align (the
    standard fix-the-leaf generalisation).
    """
    count = 0

    def join_leaf_pair(nr: Node, ns: Node) -> None:
        nonlocal count
        r_items = _restricted(nr, ns)
        s_items = _restricted(ns, nr)

        def leaf_emit(p_r, p_s) -> None:
            nonlocal count
            emit(OID(*p_r), OID(*p_s))
            count += 1

        sweep_join(r_items, s_items, leaf_emit)

    def join_nodes(nr: Node, level_r: int, ns: Node, level_s: int) -> None:
        if nr.is_leaf and ns.is_leaf:
            join_leaf_pair(nr, ns)
            return
        if not nr.is_leaf and not ns.is_leaf and level_r == level_s:
            r_items = _restricted(nr, ns)
            s_items = _restricted(ns, nr)
            matches: List[Tuple[Tuple[int, int, int], Tuple[int, int, int]]] = []
            sweep_join(r_items, s_items, lambda a, b: matches.append((a, b)))
            # BKS93 orders the qualifying child pairs to reduce disk
            # accesses; bulk-loaded siblings are consecutive on disk, so
            # page-number order makes the descent largely sequential.
            matches.sort(key=lambda pair: (pair[0][0], pair[1][0]))
            for payload_r, payload_s in matches:
                child_r = tree_r._read_node(payload_r[0])
                child_s = tree_s._read_node(payload_s[0])
                join_nodes(child_r, level_r - 1, child_s, level_s - 1)
            return
        # Heights differ (or one side already bottomed out): descend the
        # deeper/internal side only.
        if not nr.is_leaf and (ns.is_leaf or level_r > level_s):
            target = ns.mbr() if len(ns) else None
            for rect, payload in zip(nr.rects, nr.payloads):
                if target is not None and rect.intersects(target):
                    join_nodes(tree_r._read_node(payload[0]), level_r - 1, ns, level_s)
        else:
            target = nr.mbr() if len(nr) else None
            for rect, payload in zip(ns.rects, ns.payloads):
                if target is not None and rect.intersects(target):
                    join_nodes(nr, level_r, tree_s._read_node(payload[0]), level_s - 1)

    root_r = tree_r.root_node()
    root_s = tree_s.root_node()
    if len(root_r) and len(root_s):
        join_nodes(root_r, tree_r.height - 1, root_s, tree_s.height - 1)
    return count


def rtree_join_pairs(tree_r: RStarTree, tree_s: RStarTree) -> List[CandidatePair]:
    """Collect the candidate pairs of :func:`rtree_join` into a list."""
    out: List[CandidatePair] = []
    rtree_join(tree_r, tree_s, lambda a, b: out.append((a, b)))
    return out


def _restricted(node: Node, other: Node) -> List[Tuple[Rect, Tuple[int, int, int]]]:
    """BKS93 space restriction: keep entries intersecting the other MBR."""
    if not len(other):
        return []
    window = other.mbr()
    return [
        (rect, payload)
        for rect, payload in zip(node.rects, node.payloads)
        if rect.intersects(window)
    ]
