"""Seeded trees [LR94, LR95] — the paper's §2 index-building alternative.

Lo & Ravishankar's answer to the missing-index problem: instead of a full
R*-tree build, *seed* the new index with the spatial layout of something
already known — the top levels of the other input's index [LR94], or a
spatial sample of the input itself [LR95] — then grow a subtree under each
seed slot.  Growing per-slot keeps insertions local, minimising the random
I/O a cold R*-tree build suffers.

This implementation represents the seeded tree as a two-part structure: a
small in-memory *seed level* of slot rectangles, and one bulk-packed
R*-subtree per slot (entries are buffered per slot during construction and
packed bottom-up, the I/O-friendly variant of "grown subtrees").  The
result is height-unbalanced overall — exactly the property [LR94] trades
for construction speed — but each subtree is a well-formed R*-tree, so
window search and the BKS93-style join compose from the existing machinery.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..geometry import CurveMapper, Rect
from ..storage.buffer import BufferPool
from ..storage.relation import OID, Relation
from .bulkload import build_from_sorted, spatial_sort
from .rstar import RStarTree
from .treejoin import rtree_join

DEFAULT_SEED_SLOTS = 16
DEFAULT_SAMPLE_SIZE = 512


class SeededTree:
    """A seed level of slots, each owning a bulk-packed R*-subtree."""

    def __init__(self, slots: Sequence[Rect], subtrees: Sequence[RStarTree]):
        if len(slots) != len(subtrees):
            raise ValueError("one subtree per slot required")
        self.slots = list(slots)
        self.subtrees = list(subtrees)
        self.count = sum(len(t) for t in subtrees)

    def __len__(self) -> int:
        return self.count

    def search(self, window: Rect) -> List[OID]:
        out: List[OID] = []
        for slot, subtree in zip(self.slots, self.subtrees):
            if len(subtree) and slot.intersects(window):
                out.extend(subtree.search(window))
        return out

    def num_pages(self) -> int:
        return sum(t.num_pages for t in self.subtrees)


def seed_slots_from_tree(
    tree: RStarTree, max_slots: int = DEFAULT_SEED_SLOTS
) -> List[Rect]:
    """[LR94]: copy the seed layout from an existing index's top levels.

    Descends level by level from the root until a level carries at least
    ``max_slots`` entry rectangles (or the leaves are reached), then caps
    the collected rectangles to the slot budget.
    """
    if len(tree) == 0:
        return []
    level_nodes = [tree.root_node()]
    while True:
        level_rects = [r for node in level_nodes for r in node.rects]
        at_leaves = all(node.is_leaf for node in level_nodes)
        if len(level_rects) >= max_slots or at_leaves:
            return _cap_slots(level_rects, max_slots)
        level_nodes = [
            tree._read_node(payload[0])
            for node in level_nodes
            for payload in node.payloads
        ]


def seed_slots_from_sample(
    relation: Relation,
    max_slots: int = DEFAULT_SEED_SLOTS,
    sample_size: int = DEFAULT_SAMPLE_SIZE,
) -> List[Rect]:
    """[LR95]: when neither input has an index, seed from a spatial sample.

    Samples MBRs, Hilbert-sorts them, slices the run into ``max_slots``
    groups, and uses each group's cover as a slot.
    """
    mbrs: List[Rect] = []
    step = max(1, len(relation) // sample_size)
    for i, (_oid, t) in enumerate(relation.scan()):
        if i % step == 0:
            mbrs.append(t.mbr)
    if not mbrs:
        return []
    mapper = CurveMapper(relation.universe)
    mbrs.sort(key=mapper.hilbert_of_rect)
    slots = max(1, min(max_slots, len(mbrs)))
    chunk = max(1, len(mbrs) // slots)
    out = []
    for start in range(0, len(mbrs), chunk):
        group = mbrs[start : start + chunk]
        if group:
            out.append(Rect.union_all(group))
    return out[:max_slots] if max_slots else out


def _cap_slots(rects: List[Rect], max_slots: int) -> List[Rect]:
    if len(rects) <= max_slots:
        return rects
    # Merge adjacent (Hilbert-ordered) rects down to the slot budget.
    universe = Rect.union_all(rects)
    mapper = CurveMapper(universe)
    rects = sorted(rects, key=mapper.hilbert_of_rect)
    chunk = -(-len(rects) // max_slots)
    return [
        Rect.union_all(rects[i : i + chunk]) for i in range(0, len(rects), chunk)
    ]


def build_seeded_tree(
    pool: BufferPool,
    relation: Relation,
    slots: Sequence[Rect],
) -> SeededTree:
    """Grow a seeded tree: route every tuple to its least-enlargement slot,
    then bulk-pack each slot's buffer into an R*-subtree."""
    if not slots:
        raise ValueError("need at least one seed slot")
    extents: List[Optional[Rect]] = [None] * len(slots)
    buffers: List[List[Tuple[Rect, OID]]] = [[] for _ in slots]
    for oid, t in relation.scan():
        mbr = t.mbr
        idx = _choose_slot(slots, extents, mbr)
        buffers[idx].append((mbr, oid))
        cur = extents[idx]
        extents[idx] = mbr if cur is None else cur.union(mbr)
    subtrees = [
        build_from_sorted(pool, spatial_sort(buffer)) for buffer in buffers
    ]
    final_slots = [
        extents[i] if extents[i] is not None else slots[i]
        for i in range(len(slots))
    ]
    return SeededTree(final_slots, subtrees)


def _choose_slot(
    slots: Sequence[Rect], extents: Sequence[Optional[Rect]], mbr: Rect
) -> int:
    best_idx = 0
    best_key: Optional[Tuple[float, float]] = None
    for idx, seed in enumerate(slots):
        base = extents[idx] or seed
        key = (base.enlargement(mbr), base.area)
        if best_key is None or key < best_key:
            best_key = key
            best_idx = idx
    return best_idx


def seeded_tree_join(
    seeded: SeededTree,
    tree: RStarTree,
    emit: Callable[[OID, OID], None],
) -> int:
    """Join a seeded tree with an R*-tree: each subtree joins via BKS93.

    Pair order is (seeded-side OID, tree-side OID).
    """
    count = 0
    tree_mbr = tree.root_node().mbr() if len(tree) else None
    for slot, subtree in zip(seeded.slots, seeded.subtrees):
        if not len(subtree) or tree_mbr is None or not slot.intersects(tree_mbr):
            continue
        count += rtree_join(subtree, tree, emit)
    return count
