"""Grid files [NHS84] — the multikey substrate of Table 1's join-index row.

A grid file partitions space with per-dimension *linear scales* (sorted
split positions) and a *grid directory* mapping each cell to a data bucket.
Buckets hold ``(Rect, OID)`` entries (objects are placed by their MBR
centre, the point-database convention [BHF93] uses for spatial data);
when a bucket overflows, a split position is added to the scale with the
larger spread, the directory is refined, and the bucket's entries are
redistributed.  Several cells may share one bucket (the classic grid-file
trick that keeps the directory dense but buckets at a sane fill).

Buckets are pages of a heap-file-like store, so grid-file probes cost real
simulated I/O like every other access path here.

This implementation supports exactly what [Rot91]'s spatial join index
needs: insertion, window search over centres, and alignment of two grid
files on a common set of scales.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Tuple

from ..geometry import Rect
from ..storage.buffer import BufferPool
from ..storage.relation import OID, Relation
from .node import NODE_CAPACITY

BUCKET_CAPACITY = NODE_CAPACITY  # one page worth of (Rect, OID) entries

Entry = Tuple[Rect, OID]


class _Bucket:
    """A page-backed bucket of entries."""

    __slots__ = ("page_no", "entries")

    def __init__(self, page_no: int):
        self.page_no = page_no
        self.entries: List[Entry] = []


class GridFile:
    """A 2-D grid file over ``(Rect, OID)`` entries, keyed by MBR centre."""

    def __init__(
        self,
        pool: BufferPool,
        universe: Rect,
        bucket_capacity: int = BUCKET_CAPACITY,
    ):
        if bucket_capacity < 2:
            raise ValueError("bucket capacity must be at least 2")
        self.pool = pool
        self.universe = universe
        self.bucket_capacity = bucket_capacity
        self.file_id = pool.disk.create_file()
        # Linear scales: interior split positions per dimension.
        self.x_scale: List[float] = []
        self.y_scale: List[float] = []
        first = self._new_bucket()
        # Directory indexed [ix][iy] -> bucket; initially one cell.
        self.directory: List[List[_Bucket]] = [[first]]
        self.count = 0
        # Largest half-extents seen: how far an MBR can stick out of the
        # cell its centre falls in (needed for conservative window probes).
        self.max_half_w = 0.0
        self.max_half_h = 0.0

    # ------------------------------------------------------------------ #
    # bucket page plumbing (entries serialised like key-pointers)
    # ------------------------------------------------------------------ #

    def _new_bucket(self) -> _Bucket:
        page_no = self.pool.new_page(self.file_id)
        return _Bucket(page_no)

    def _touch(self, bucket: _Bucket) -> None:
        """Charge a page access for reading/writing the bucket."""
        self.pool.get_page(self.file_id, bucket.page_no)

    def _dirty(self, bucket: _Bucket) -> None:
        self.pool.get_page(self.file_id, bucket.page_no)
        self.pool.mark_dirty(self.file_id, bucket.page_no)

    # ------------------------------------------------------------------ #
    # addressing
    # ------------------------------------------------------------------ #

    def _cell_of(self, x: float, y: float) -> Tuple[int, int]:
        return bisect.bisect_right(self.x_scale, x), bisect.bisect_right(
            self.y_scale, y
        )

    def _bucket_of(self, x: float, y: float) -> _Bucket:
        ix, iy = self._cell_of(x, y)
        return self.directory[ix][iy]

    @property
    def num_cells(self) -> int:
        return (len(self.x_scale) + 1) * (len(self.y_scale) + 1)

    @property
    def num_buckets(self) -> int:
        seen = {
            id(bucket) for column in self.directory for bucket in column
        }
        return len(seen)

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def insert(self, rect: Rect, oid: OID) -> None:
        cx, cy = rect.center
        self.max_half_w = max(self.max_half_w, rect.width / 2.0)
        self.max_half_h = max(self.max_half_h, rect.height / 2.0)
        bucket = self._bucket_of(cx, cy)
        bucket.entries.append((rect, oid))
        self._dirty(bucket)
        self.count += 1
        if len(bucket.entries) > self.bucket_capacity:
            self._split(bucket)

    def _split(self, bucket: _Bucket) -> None:
        """Split an overflowing bucket by adding a scale position."""
        xs = sorted(rect.center[0] for rect, _ in bucket.entries)
        ys = sorted(rect.center[1] for rect, _ in bucket.entries)
        x_spread = xs[-1] - xs[0]
        y_spread = ys[-1] - ys[0]
        if x_spread <= 0 and y_spread <= 0:
            return  # all centres identical; overflow is tolerated
        if x_spread >= y_spread:
            split = xs[len(xs) // 2]
            if split in self.x_scale or split <= xs[0]:
                split = (xs[0] + xs[-1]) / 2.0
            self._add_x_split(split)
        else:
            split = ys[len(ys) // 2]
            if split in self.y_scale or split <= ys[0]:
                split = (ys[0] + ys[-1]) / 2.0
            self._add_y_split(split)

    def _add_x_split(self, split: float) -> None:
        idx = bisect.bisect_right(self.x_scale, split)
        self.x_scale.insert(idx, split)
        # Duplicate directory column idx; cells keep sharing buckets except
        # where the split actually separates an overflowing one.
        column = self.directory[idx]
        self.directory.insert(idx, list(column))
        self._redistribute_after_split(axis=0, index=idx, split=split)

    def _add_y_split(self, split: float) -> None:
        idx = bisect.bisect_right(self.y_scale, split)
        self.y_scale.insert(idx, split)
        for column in self.directory:
            column.insert(idx, column[idx])
        self._redistribute_after_split(axis=1, index=idx, split=split)

    def _redistribute_after_split(self, axis: int, index: int, split: float) -> None:
        """Give the two cell runs created by the split their own buckets
        where a shared bucket overflows, then re-place its entries.

        A bucket may back several cells along the perpendicular axis; every
        high-side cell that referenced it must be repointed at the *same*
        fresh bucket, or its entries would become unreachable.
        """
        ncols = len(self.directory)
        nrows = len(self.directory[0])
        straddlers: Dict[int, _Bucket] = {}
        if axis == 0:
            for iy in range(nrows):
                bucket = self.directory[index][iy]
                if bucket is self.directory[index + 1][iy]:
                    straddlers[id(bucket)] = bucket
        else:
            for ix in range(ncols):
                bucket = self.directory[ix][index]
                if bucket is self.directory[ix][index + 1]:
                    straddlers[id(bucket)] = bucket

        for shared in straddlers.values():
            if len(shared.entries) <= self.bucket_capacity:
                continue  # still fits; keep sharing across the split
            fresh = self._new_bucket()
            moved: List[Entry] = []
            kept: List[Entry] = []
            for rect, oid in shared.entries:
                centre = rect.center[axis]
                # bisect_right addressing sends centre == split to the high
                # cell, so the redistribution must match exactly.
                (moved if centre >= split else kept).append((rect, oid))
            shared.entries = kept
            fresh.entries = moved
            self._dirty(shared)
            self._dirty(fresh)
            for ix in range(ncols):
                for iy in range(nrows):
                    on_high_side = ix > index if axis == 0 else iy > index
                    if on_high_side and self.directory[ix][iy] is shared:
                        self.directory[ix][iy] = fresh

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def search_window(self, window: Rect) -> List[Entry]:
        """All entries whose MBR *centre* lies in the window."""
        out: List[Entry] = []
        ix_lo, iy_lo = self._cell_of(window.xl, window.yl)
        ix_hi, iy_hi = self._cell_of(window.xu, window.yu)
        seen: set[int] = set()
        for ix in range(ix_lo, ix_hi + 1):
            for iy in range(iy_lo, iy_hi + 1):
                bucket = self.directory[ix][iy]
                if id(bucket) in seen:
                    continue
                seen.add(id(bucket))
                self._touch(bucket)
                out.extend(
                    (rect, oid)
                    for rect, oid in bucket.entries
                    if window.contains_point(*rect.center)
                )
        return out

    def all_entries(self) -> List[Entry]:
        out: List[Entry] = []
        seen: set[int] = set()
        for column in self.directory:
            for bucket in column:
                if id(bucket) in seen:
                    continue
                seen.add(id(bucket))
                self._touch(bucket)
                out.extend(bucket.entries)
        return out

    def buckets_overlapping(self, window: Rect) -> List[Tuple[Rect, List[Entry]]]:
        """(cell region, entries) for every distinct bucket whose cells
        intersect the window — what the join-index build iterates."""
        out: List[Tuple[Rect, List[Entry]]] = []
        seen: set[int] = set()
        for ix in range(len(self.directory)):
            for iy in range(len(self.directory[0])):
                region = self.cell_region(ix, iy)
                if not region.intersects(window):
                    continue
                bucket = self.directory[ix][iy]
                if id(bucket) in seen:
                    continue
                seen.add(id(bucket))
                self._touch(bucket)
                out.append((region, list(bucket.entries)))
        return out

    def cell_region(self, ix: int, iy: int) -> Rect:
        """Geometric extent of directory cell (ix, iy)."""
        u = self.universe
        xs = [u.xl, *self.x_scale, u.xu]
        ys = [u.yl, *self.y_scale, u.yu]
        return Rect(
            xs[ix], ys[iy],
            xs[ix + 1] if ix + 1 < len(xs) else u.xu,
            ys[iy + 1] if iy + 1 < len(ys) else u.yu,
        )


def build_grid_file(
    pool: BufferPool,
    relation: Relation,
    bucket_capacity: int = BUCKET_CAPACITY,
) -> GridFile:
    """Load a relation's MBRs into a fresh grid file."""
    grid = GridFile(pool, relation.universe, bucket_capacity)
    for oid, t in relation.scan():
        grid.insert(t.mbr, oid)
    return grid
