"""A disk-based B+-tree over 64-bit keys with fixed-width payloads.

[OM84]'s point: once spatial objects are transformed to 1-D z-values, "the
transformed values ... can be stored in traditional indexing structures
like a B-tree", and the spatial join becomes a merge of two sorted
sequences read off the B-trees' leaf chains.  This module supplies that
traditional structure: a page-based B+-tree with insertion, point and
range search, a linked leaf level for ordered scans, and sorted bulk
loading — all through the buffer pool, so scans and probes cost simulated
I/O like every other access path here.

``repro.joins.zorder.ZOrderIndex`` builds on it to give the transform-based
join a persistent, reusable index form.
"""

from __future__ import annotations

import bisect
import struct
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..storage.buffer import BufferPool
from ..storage.disk import PAGE_SIZE

_META = struct.Struct("<IIIQ")  # magic, root page, height, entry count
_HEADER = struct.Struct("<BBHI")  # is_leaf, pad, count, next_leaf (leaves)
_KEY = struct.Struct("<Q")
_CHILD = struct.Struct("<I")

META_MAGIC = 0x42545231  # "BTR1"
META_PAGE = 0
_NO_LEAF = 0xFFFFFFFF


def leaf_capacity(payload_size: int) -> int:
    return (PAGE_SIZE - _HEADER.size) // (_KEY.size + payload_size)


def branch_capacity() -> int:
    # n keys + n children (first child stored with a dummy key slot).
    return (PAGE_SIZE - _HEADER.size) // (_KEY.size + _CHILD.size) - 1


@dataclass
class _Node:
    page_no: int
    is_leaf: bool
    keys: List[int] = field(default_factory=list)
    # leaves: payloads parallel to keys; branches: children (len = keys+1)
    payloads: List[bytes] = field(default_factory=list)
    children: List[int] = field(default_factory=list)
    next_leaf: Optional[int] = None


class BPlusTree:
    """B+-tree with u64 keys and fixed-width byte payloads."""

    def __init__(self, pool: BufferPool, payload_size: int, file_id: Optional[int] = None):
        if payload_size < 1 or payload_size > 256:
            raise ValueError("payload size must be in [1, 256]")
        self.pool = pool
        self.payload_size = payload_size
        self.leaf_cap = leaf_capacity(payload_size)
        self.branch_cap = branch_capacity()
        self._cache: Dict[int, _Node] = {}
        if file_id is None:
            self.file_id = pool.disk.create_file()
            meta_no = pool.new_page(self.file_id)
            assert meta_no == META_PAGE
            root = _Node(self._alloc(), is_leaf=True)
            self._write(root)
            self.root_page = root.page_no
            self.height = 1
            self.count = 0
            self._write_meta()
        else:
            self.file_id = file_id
            page = pool.get_page(file_id, META_PAGE)
            magic, self.root_page, self.height, self.count = _META.unpack_from(page, 0)
            if magic != META_MAGIC:
                raise ValueError("not a B+-tree file (bad magic)")

    # ------------------------------------------------------------------ #
    # page plumbing
    # ------------------------------------------------------------------ #

    def _alloc(self) -> int:
        return self.pool.new_page(self.file_id)

    def _write_meta(self) -> None:
        page = self.pool.get_page(self.file_id, META_PAGE)
        _META.pack_into(page, 0, META_MAGIC, self.root_page, self.height, self.count)
        self.pool.mark_dirty(self.file_id, META_PAGE)

    def _read(self, page_no: int) -> _Node:
        page = self.pool.get_page(self.file_id, page_no)
        node = self._cache.get(page_no)
        if node is not None:
            return node
        is_leaf, _pad, count, next_leaf = _HEADER.unpack_from(page, 0)
        node = _Node(page_no, bool(is_leaf))
        pos = _HEADER.size
        if node.is_leaf:
            node.next_leaf = None if next_leaf == _NO_LEAF else next_leaf
            for _ in range(count):
                (key,) = _KEY.unpack_from(page, pos)
                pos += _KEY.size
                node.keys.append(key)
                node.payloads.append(bytes(page[pos : pos + self.payload_size]))
                pos += self.payload_size
        else:
            (first_child,) = _CHILD.unpack_from(page, pos)
            pos += _CHILD.size
            node.children.append(first_child)
            for _ in range(count):
                (key,) = _KEY.unpack_from(page, pos)
                pos += _KEY.size
                (child,) = _CHILD.unpack_from(page, pos)
                pos += _CHILD.size
                node.keys.append(key)
                node.children.append(child)
        self._cache[page_no] = node
        return node

    def _write(self, node: _Node) -> None:
        page = self.pool.get_page(self.file_id, node.page_no)
        next_leaf = node.next_leaf if node.next_leaf is not None else _NO_LEAF
        _HEADER.pack_into(
            page, 0, 1 if node.is_leaf else 0, 0, len(node.keys),
            next_leaf if node.is_leaf else 0,
        )
        pos = _HEADER.size
        if node.is_leaf:
            if len(node.keys) > self.leaf_cap:
                raise ValueError("overfull leaf")
            for key, payload in zip(node.keys, node.payloads):
                _KEY.pack_into(page, pos, key)
                pos += _KEY.size
                page[pos : pos + self.payload_size] = payload
                pos += self.payload_size
        else:
            if len(node.keys) > self.branch_cap:
                raise ValueError("overfull branch")
            _CHILD.pack_into(page, pos, node.children[0])
            pos += _CHILD.size
            for key, child in zip(node.keys, node.children[1:]):
                _KEY.pack_into(page, pos, key)
                pos += _KEY.size
                _CHILD.pack_into(page, pos, child)
                pos += _CHILD.size
        self.pool.mark_dirty(self.file_id, node.page_no)
        self._cache[node.page_no] = node

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self.count

    @property
    def num_pages(self) -> int:
        return self.pool.disk.file_length(self.file_id)

    def _descend(self, key: int) -> _Node:
        node = self._read(self.root_page)
        while not node.is_leaf:
            idx = _upper_bound(node.keys, key)
            node = self._read(node.children[idx])
        return node

    def _descend_left(self, key: int) -> _Node:
        """Descend to the first leaf that may hold ``key``.

        Uses *lower* bounds at branches: a leaf split can leave keys equal
        to the separator in the left sibling, so a range scan must start
        left of an equal separator to see every duplicate.
        """
        node = self._read(self.root_page)
        while not node.is_leaf:
            idx = _lower_bound(node.keys, key)
            node = self._read(node.children[idx])
        return node

    def search(self, key: int) -> List[bytes]:
        """All payloads stored under ``key`` (duplicates allowed)."""
        return [payload for _k, payload in self.range_scan(key, key)]

    def range_scan(self, lo: int, hi: int) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(key, payload)`` with lo <= key <= hi, in key order."""
        if lo > hi:
            raise ValueError(f"malformed range [{lo}, {hi}]")
        node = self._descend_left(lo)
        while node is not None:
            for key, payload in zip(node.keys, node.payloads):
                if key > hi:
                    return
                if key >= lo:
                    yield key, payload
            node = self._read(node.next_leaf) if node.next_leaf is not None else None

    def scan_all(self) -> Iterator[Tuple[int, bytes]]:
        """Sequential scan of the whole leaf chain in key order."""
        node = self._read(self.root_page)
        while not node.is_leaf:
            node = self._read(node.children[0])
        while node is not None:
            yield from zip(node.keys, node.payloads)
            node = self._read(node.next_leaf) if node.next_leaf is not None else None

    # ------------------------------------------------------------------ #
    # insertion
    # ------------------------------------------------------------------ #

    def insert(self, key: int, payload: bytes) -> None:
        if len(payload) != self.payload_size:
            raise ValueError(
                f"payload must be exactly {self.payload_size} bytes"
            )
        split = self._insert_into(self.root_page, key, payload)
        if split is not None:
            sep_key, new_page = split
            new_root = _Node(self._alloc(), is_leaf=False)
            new_root.keys = [sep_key]
            new_root.children = [self.root_page, new_page]
            self._write(new_root)
            self.root_page = new_root.page_no
            self.height += 1
        self.count += 1
        self._write_meta()

    def _insert_into(
        self, page_no: int, key: int, payload: bytes
    ) -> Optional[Tuple[int, int]]:
        """Insert below ``page_no``; returns (separator, new page) on split."""
        node = self._read(page_no)
        if node.is_leaf:
            idx = _upper_bound(node.keys, key)
            node.keys.insert(idx, key)
            node.payloads.insert(idx, payload)
            if len(node.keys) <= self.leaf_cap:
                self._write(node)
                return None
            return self._split_leaf(node)
        idx = _upper_bound(node.keys, key)
        split = self._insert_into(node.children[idx], key, payload)
        if split is None:
            return None
        sep_key, new_page = split
        node.keys.insert(idx, sep_key)
        node.children.insert(idx + 1, new_page)
        if len(node.keys) <= self.branch_cap:
            self._write(node)
            return None
        return self._split_branch(node)

    def _split_leaf(self, node: _Node) -> Tuple[int, int]:
        mid = len(node.keys) // 2
        sibling = _Node(self._alloc(), is_leaf=True)
        sibling.keys = node.keys[mid:]
        sibling.payloads = node.payloads[mid:]
        sibling.next_leaf = node.next_leaf
        node.keys = node.keys[:mid]
        node.payloads = node.payloads[:mid]
        node.next_leaf = sibling.page_no
        self._write(node)
        self._write(sibling)
        return sibling.keys[0], sibling.page_no

    def _split_branch(self, node: _Node) -> Tuple[int, int]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        sibling = _Node(self._alloc(), is_leaf=False)
        sibling.keys = node.keys[mid + 1 :]
        sibling.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        self._write(node)
        self._write(sibling)
        return sep, sibling.page_no

    # ------------------------------------------------------------------ #
    # invariants (test support)
    # ------------------------------------------------------------------ #

    def check_invariants(self) -> None:
        total, depth_set, _keys = self._check(self.root_page, 0, None, None)
        assert total == self.count, f"{total} != {self.count}"
        assert len(depth_set) == 1, f"leaves at depths {depth_set}"
        chain = [k for k, _p in self.scan_all()]
        assert chain == sorted(chain), "leaf chain out of order"
        assert len(chain) == self.count

    def _check(self, page_no, depth, lo, hi):
        node = self._read(page_no)
        for key in node.keys:
            assert lo is None or key >= lo, f"key {key} < lower bound {lo}"
            assert hi is None or key <= hi, f"key {key} > upper bound {hi}"
        assert node.keys == sorted(node.keys)
        if node.is_leaf:
            return len(node.keys), {depth}, node.keys
        total = 0
        depths = set()
        bounds = [lo, *node.keys, hi]
        for i, child in enumerate(node.children):
            t, d, _ = self._check(child, depth + 1, bounds[i], bounds[i + 1])
            total += t
            depths |= d
        return total, depths, node.keys


def bulk_load_btree(
    pool: BufferPool,
    sorted_items: List[Tuple[int, bytes]],
    payload_size: int,
    fill: float = 0.9,
) -> BPlusTree:
    """Pack a key-sorted item list bottom-up into a fresh B+-tree."""
    if not 0.0 < fill <= 1.0:
        raise ValueError("fill factor outside (0, 1]")
    for i in range(1, len(sorted_items)):
        if sorted_items[i - 1][0] > sorted_items[i][0]:
            raise ValueError("items not sorted by key")

    tree = BPlusTree(pool, payload_size)
    if not sorted_items:
        return tree

    per_leaf = max(2, int(tree.leaf_cap * fill))
    leaves: List[_Node] = []
    for start in range(0, len(sorted_items), per_leaf):
        chunk = sorted_items[start : start + per_leaf]
        leaf = _Node(tree._alloc(), is_leaf=True)
        leaf.keys = [k for k, _p in chunk]
        leaf.payloads = [p for _k, p in chunk]
        leaves.append(leaf)
    for a, b in zip(leaves, leaves[1:]):
        a.next_leaf = b.page_no
    for leaf in leaves:
        tree._write(leaf)

    per_branch = max(2, int(tree.branch_cap * fill))
    level: List[Tuple[int, int]] = [(leaf.keys[0], leaf.page_no) for leaf in leaves]
    height = 1
    while len(level) > 1:
        next_level: List[Tuple[int, int]] = []
        for start in range(0, len(level), per_branch):
            chunk = level[start : start + per_branch]
            branch = _Node(tree._alloc(), is_leaf=False)
            branch.children = [page for _k, page in chunk]
            branch.keys = [k for k, _page in chunk[1:]]
            tree._write(branch)
            next_level.append((chunk[0][0], branch.page_no))
        level = next_level
        height += 1
    tree.root_page = level[0][1]
    tree.height = height
    tree.count = len(sorted_items)
    tree._write_meta()
    return tree


def _upper_bound(keys: List[int], key: int) -> int:
    """First index whose key is strictly greater (inserts go right of equals)."""
    return bisect.bisect_right(keys, key)


def _lower_bound(keys: List[int], key: int) -> int:
    """First index whose key is >= ``key`` (scans start left of equals)."""
    return bisect.bisect_left(keys, key)
