"""Space-filling curves: Hilbert and Z-order (Morton).

Paradise bulk-loads its R*-trees by sorting key-pointers on the Hilbert value
of the MBR centre (§4.1); the Z-order curve implements the Orenstein-style
transform referenced in §2 and is used by the spatial-sort utilities.
"""

from __future__ import annotations

from typing import Tuple

from .rect import Rect

DEFAULT_ORDER = 16
"""Curve order: the unit square is discretised into 2^order x 2^order cells."""


def hilbert_d(x: int, y: int, order: int = DEFAULT_ORDER) -> int:
    """Distance along the Hilbert curve of the integer cell ``(x, y)``.

    Classic bit-twiddling conversion (Hamilton's ``xy2d``).  ``x`` and ``y``
    must lie in ``[0, 2^order)``.
    """
    side = 1 << order
    if not (0 <= x < side and 0 <= y < side):
        raise ValueError(f"cell ({x}, {y}) outside a {side}x{side} grid")
    rx = ry = 0
    d = 0
    s = side >> 1
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # Rotate the quadrant.
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s >>= 1
    return d


def hilbert_xy(d: int, order: int = DEFAULT_ORDER) -> Tuple[int, int]:
    """Inverse of :func:`hilbert_d` (Hamilton's ``d2xy``)."""
    side = 1 << order
    if not (0 <= d < side * side):
        raise ValueError(f"distance {d} outside curve of order {order}")
    x = y = 0
    t = d
    s = 1
    while s < side:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        x += s * rx
        y += s * ry
        t //= 4
        s <<= 1
    return x, y


def morton_d(x: int, y: int, order: int = DEFAULT_ORDER) -> int:
    """Z-order (Morton) code: interleave the bits of ``x`` and ``y``."""
    side = 1 << order
    if not (0 <= x < side and 0 <= y < side):
        raise ValueError(f"cell ({x}, {y}) outside a {side}x{side} grid")
    code = 0
    for bit in range(order):
        code |= ((x >> bit) & 1) << (2 * bit)
        code |= ((y >> bit) & 1) << (2 * bit + 1)
    return code


def morton_xy(code: int, order: int = DEFAULT_ORDER) -> Tuple[int, int]:
    """Inverse of :func:`morton_d`."""
    x = y = 0
    for bit in range(order):
        x |= ((code >> (2 * bit)) & 1) << bit
        y |= ((code >> (2 * bit + 1)) & 1) << bit
    return x, y


class CurveMapper:
    """Maps continuous points in a universe rectangle to curve distances."""

    def __init__(self, universe: Rect, order: int = DEFAULT_ORDER):
        if universe.width <= 0 or universe.height <= 0:
            # Degenerate universes (all points collinear) still need a
            # usable mapping; pad them slightly.
            universe = Rect(
                universe.xl, universe.yl,
                universe.xl + max(universe.width, 1e-9),
                universe.yl + max(universe.height, 1e-9),
            )
        self.universe = universe
        self.order = order
        self._side = 1 << order

    def _cell(self, x: float, y: float) -> Tuple[int, int]:
        u = self.universe
        cx = int((x - u.xl) / u.width * (self._side - 1))
        cy = int((y - u.yl) / u.height * (self._side - 1))
        cx = min(max(cx, 0), self._side - 1)
        cy = min(max(cy, 0), self._side - 1)
        return cx, cy

    def hilbert(self, x: float, y: float) -> int:
        cx, cy = self._cell(x, y)
        return hilbert_d(cx, cy, self.order)

    def morton(self, x: float, y: float) -> int:
        cx, cy = self._cell(x, y)
        return morton_d(cx, cy, self.order)

    def hilbert_of_rect(self, rect: Rect) -> int:
        """Hilbert value of a rectangle's centre — the Paradise sort key."""
        cx, cy = rect.center
        return self.hilbert(cx, cy)
