"""Axis-aligned rectangles (minimum bounding rectangles).

The MBR is the approximation PBSM's filter step works on.  ``Rect`` is an
immutable value type with the small algebra needed by the join algorithms:
overlap tests, containment, union ("stretch"), intersection, area and margin
(used by the R*-tree split heuristics).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple


@dataclass(frozen=True, slots=True)
class Rect:
    """A closed axis-aligned rectangle ``[xl, xu] x [yl, yu]``.

    Degenerate rectangles (points and segments, where ``xl == xu`` or
    ``yl == yu``) are allowed; they arise as MBRs of axis-parallel
    polylines and of points.
    """

    xl: float
    yl: float
    xu: float
    yu: float

    def __post_init__(self) -> None:
        if self.xl > self.xu or self.yl > self.yu:
            raise ValueError(f"malformed rectangle: {self!r}")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @staticmethod
    def from_points(points: Iterable[Tuple[float, float]]) -> "Rect":
        """Minimum bounding rectangle of a non-empty point sequence."""
        it = iter(points)
        try:
            x0, y0 = next(it)
        except StopIteration:
            raise ValueError("cannot bound an empty point sequence") from None
        xl = xu = x0
        yl = yu = y0
        for x, y in it:
            if x < xl:
                xl = x
            elif x > xu:
                xu = x
            if y < yl:
                yl = y
            elif y > yu:
                yu = y
        return Rect(xl, yl, xu, yu)

    @staticmethod
    def union_all(rects: Iterable["Rect"]) -> "Rect":
        """Minimum cover of a non-empty rectangle sequence (the *universe*)."""
        it = iter(rects)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("cannot cover an empty rectangle sequence") from None
        xl, yl, xu, yu = first.xl, first.yl, first.xu, first.yu
        for r in it:
            if r.xl < xl:
                xl = r.xl
            if r.yl < yl:
                yl = r.yl
            if r.xu > xu:
                xu = r.xu
            if r.yu > yu:
                yu = r.yu
        return Rect(xl, yl, xu, yu)

    # ------------------------------------------------------------------ #
    # predicates
    # ------------------------------------------------------------------ #

    def intersects(self, other: "Rect") -> bool:
        """True when the two closed rectangles share at least one point."""
        return (
            self.xl <= other.xu
            and other.xl <= self.xu
            and self.yl <= other.yu
            and other.yl <= self.yu
        )

    def contains(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside this rectangle."""
        return (
            self.xl <= other.xl
            and self.yl <= other.yl
            and other.xu <= self.xu
            and other.yu <= self.yu
        )

    def contains_point(self, x: float, y: float) -> bool:
        return self.xl <= x <= self.xu and self.yl <= y <= self.yu

    # ------------------------------------------------------------------ #
    # algebra
    # ------------------------------------------------------------------ #

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.xl, other.xl),
            min(self.yl, other.yl),
            max(self.xu, other.xu),
            max(self.yu, other.yu),
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping rectangle, or ``None`` when disjoint."""
        xl = max(self.xl, other.xl)
        yl = max(self.yl, other.yl)
        xu = min(self.xu, other.xu)
        yu = min(self.yu, other.yu)
        if xl > xu or yl > yu:
            return None
        return Rect(xl, yl, xu, yu)

    # ------------------------------------------------------------------ #
    # measures
    # ------------------------------------------------------------------ #

    @property
    def width(self) -> float:
        return self.xu - self.xl

    @property
    def height(self) -> float:
        return self.yu - self.yl

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def margin(self) -> float:
        """Half-perimeter, the R*-tree split goodness metric."""
        return self.width + self.height

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.xl + self.xu) / 2.0, (self.yl + self.yu) / 2.0)

    def overlap_area(self, other: "Rect") -> float:
        w = min(self.xu, other.xu) - max(self.xl, other.xl)
        if w <= 0.0:
            return 0.0
        h = min(self.yu, other.yu) - max(self.yl, other.yl)
        if h <= 0.0:
            return 0.0
        return w * h

    def enlargement(self, other: "Rect") -> float:
        """Area growth needed to also cover ``other`` (R-tree ChooseSubtree)."""
        w = max(self.xu, other.xu) - min(self.xl, other.xl)
        h = max(self.yu, other.yu) - min(self.yl, other.yl)
        return w * h - self.area

    def distance_to_point(self, x: float, y: float) -> float:
        """Euclidean distance from a point to the rectangle (0 if inside)."""
        dx = max(self.xl - x, 0.0, x - self.xu)
        dy = max(self.yl - y, 0.0, y - self.yu)
        return math.hypot(dx, dy)

    # ------------------------------------------------------------------ #
    # serialisation / misc
    # ------------------------------------------------------------------ #

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.xl, self.yl, self.xu, self.yu)

    def __iter__(self) -> Iterator[float]:
        return iter(self.as_tuple())


EMPTYISH = Rect(0.0, 0.0, 0.0, 0.0)
"""A degenerate zero rectangle, handy as a sentinel for empty covers."""
