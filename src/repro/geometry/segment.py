"""Line-segment primitives.

Robust-enough orientation tests and segment intersection for the refinement
step of a spatial join: polylines intersect when some pair of their segments
intersects, and polygon-boundary tests reduce to segment tests plus
point-in-polygon.
"""

from __future__ import annotations

from typing import Optional, Tuple

Point = Tuple[float, float]

_EPS = 1e-12


def orientation(p: Point, q: Point, r: Point) -> int:
    """Sign of the cross product (q - p) x (r - p).

    Returns +1 for counter-clockwise, -1 for clockwise, 0 for collinear
    (within a relative epsilon).
    """
    cross = (q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (r[0] - p[0])
    # Scale the collinearity tolerance by the magnitude of the operands so the
    # test behaves for both tiny and huge coordinates.
    scale = (
        abs(q[0] - p[0]) + abs(q[1] - p[1]) + abs(r[0] - p[0]) + abs(r[1] - p[1])
    )
    tol = _EPS * max(scale, 1.0)
    if cross > tol:
        return 1
    if cross < -tol:
        return -1
    return 0


def on_segment(p: Point, q: Point, r: Point) -> bool:
    """True when collinear point ``q`` lies on the closed segment ``pr``."""
    return (
        min(p[0], r[0]) - _EPS <= q[0] <= max(p[0], r[0]) + _EPS
        and min(p[1], r[1]) - _EPS <= q[1] <= max(p[1], r[1]) + _EPS
    )


def segments_intersect(p1: Point, p2: Point, p3: Point, p4: Point) -> bool:
    """True when closed segments ``p1p2`` and ``p3p4`` share a point."""
    d1 = orientation(p3, p4, p1)
    d2 = orientation(p3, p4, p2)
    d3 = orientation(p1, p2, p3)
    d4 = orientation(p1, p2, p4)

    if d1 != d2 and d3 != d4 and d1 != 0 and d2 != 0 and d3 != 0 and d4 != 0:
        return True
    if d1 == 0 and on_segment(p3, p1, p4):
        return True
    if d2 == 0 and on_segment(p3, p2, p4):
        return True
    if d3 == 0 and on_segment(p1, p3, p2):
        return True
    if d4 == 0 and on_segment(p1, p4, p2):
        return True
    # The strict test above requires all orientations nonzero; re-check the
    # proper-crossing case when exactly the signs differ (covers touching
    # endpoints already handled by the collinear branches).
    return d1 != d2 and d3 != d4 and not (d1 == 0 or d2 == 0 or d3 == 0 or d4 == 0)


def segment_intersection_point(
    p1: Point, p2: Point, p3: Point, p4: Point
) -> Optional[Point]:
    """Intersection point of two segments, or ``None``.

    For collinear overlaps an arbitrary shared point is returned.  Used by
    the map-overlay example, not by the join predicates themselves.
    """
    x1, y1 = p1
    x2, y2 = p2
    x3, y3 = p3
    x4, y4 = p4
    denom = (x1 - x2) * (y3 - y4) - (y1 - y2) * (x3 - x4)
    if abs(denom) < _EPS:
        if not segments_intersect(p1, p2, p3, p4):
            return None
        # Collinear overlap: return an endpoint that lies on the other segment.
        for cand, a, b in ((p1, p3, p4), (p2, p3, p4), (p3, p1, p2), (p4, p1, p2)):
            if orientation(a, b, cand) == 0 and on_segment(a, cand, b):
                return cand
        return None
    t = ((x1 - x3) * (y3 - y4) - (y1 - y3) * (x3 - x4)) / denom
    if t < -_EPS or t > 1.0 + _EPS:
        return None
    u = ((x1 - x3) * (y1 - y2) - (y1 - y3) * (x1 - x2)) / denom
    if u < -_EPS or u > 1.0 + _EPS:
        return None
    return (x1 + t * (x2 - x1), y1 + t * (y2 - y1))
