"""Computational-geometry substrate for the PBSM reproduction."""

from .curves import CurveMapper, hilbert_d, hilbert_xy, morton_d, morton_xy
from .interval_tree import IntervalTree
from .planesweep import (
    naive_join_pairs,
    sweep_join,
    sweep_join_interval_tree,
    sweep_join_pairs,
)
from .polygon import (
    Polygon,
    maximal_enclosed_rect,
    point_in_ring,
    polygon_contains_filtered,
    rect_inside_polygon,
    ring_area_signed,
)
from .polyline import (
    Polyline,
    polylines_intersect_naive,
    polylines_intersect_sweep,
)
from .rect import Rect
from .segment import (
    on_segment,
    orientation,
    segment_intersection_point,
    segments_intersect,
)

__all__ = [
    "CurveMapper",
    "IntervalTree",
    "Polygon",
    "Polyline",
    "Rect",
    "hilbert_d",
    "hilbert_xy",
    "maximal_enclosed_rect",
    "morton_d",
    "morton_xy",
    "naive_join_pairs",
    "on_segment",
    "orientation",
    "point_in_ring",
    "polygon_contains_filtered",
    "polylines_intersect_naive",
    "polylines_intersect_sweep",
    "rect_inside_polygon",
    "ring_area_signed",
    "segment_intersection_point",
    "segments_intersect",
    "sweep_join",
    "sweep_join_interval_tree",
    "sweep_join_pairs",
]
