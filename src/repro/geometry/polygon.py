"""Polygons, including "swiss-cheese" polygons (polygons with holes).

These are the spatial type of the Sequoia land-use data.  The refinement
predicates the paper needs are:

* exact intersection of two polygons (boundary cross or containment), and
* exact containment of one polygon in another (the island-in-landuse query).

Containment is tested with the paper's naive O(n^2) boundary algorithm by
default; the [BKSS94] MBR/MER pre-filters discussed in §4.4 are available as
an optional fast path (see :func:`polygon_contains_filtered`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .rect import Rect
from .segment import on_segment, orientation, segments_intersect

Point = Tuple[float, float]


def _close_ring(points: Sequence[Point]) -> Tuple[Point, ...]:
    pts = tuple((float(x), float(y)) for x, y in points)
    if len(pts) < 3:
        raise ValueError("a ring needs at least three vertices")
    if pts[0] == pts[-1]:
        pts = pts[:-1]
        if len(pts) < 3:
            raise ValueError("a ring needs at least three distinct vertices")
    return pts


def ring_area_signed(ring: Sequence[Point]) -> float:
    """Signed shoelace area; positive for counter-clockwise rings."""
    total = 0.0
    n = len(ring)
    for i in range(n):
        x1, y1 = ring[i]
        x2, y2 = ring[(i + 1) % n]
        total += x1 * y2 - x2 * y1
    return total / 2.0


def point_in_ring(x: float, y: float, ring: Sequence[Point]) -> bool:
    """Even-odd ray casting; boundary points count as inside."""
    n = len(ring)
    inside = False
    for i in range(n):
        p1 = ring[i]
        p2 = ring[(i + 1) % n]
        # Boundary check first so edges are counted deterministically.
        if orientation(p1, (x, y), p2) == 0 and on_segment(p1, (x, y), p2):
            return True
        y1, y2 = p1[1], p2[1]
        if (y1 > y) != (y2 > y):
            x_cross = p1[0] + (y - y1) * (p2[0] - p1[0]) / (y2 - y1)
            if x_cross > x:
                inside = not inside
    return inside


@dataclass(frozen=True)
class Polygon:
    """A simple polygon with optional holes (a swiss-cheese polygon)."""

    shell: Tuple[Point, ...]
    holes: Tuple[Tuple[Point, ...], ...]
    _mbr: Rect = field(init=False, repr=False, compare=False)

    def __init__(self, shell: Sequence[Point], holes: Sequence[Sequence[Point]] = ()):
        object.__setattr__(self, "shell", _close_ring(shell))
        object.__setattr__(
            self, "holes", tuple(_close_ring(h) for h in holes)
        )
        object.__setattr__(self, "_mbr", Rect.from_points(self.shell))

    @property
    def mbr(self) -> Rect:
        return self._mbr

    @property
    def num_points(self) -> int:
        return len(self.shell) + sum(len(h) for h in self.holes)

    @property
    def rings(self) -> List[Tuple[Point, ...]]:
        return [self.shell, *self.holes]

    def area(self) -> float:
        """Unsigned area of the shell minus the holes."""
        total = abs(ring_area_signed(self.shell))
        for hole in self.holes:
            total -= abs(ring_area_signed(hole))
        return total

    def segments(self) -> List[Tuple[Point, Point]]:
        segs: List[Tuple[Point, Point]] = []
        for ring in self.rings:
            n = len(ring)
            for i in range(n):
                segs.append((ring[i], ring[(i + 1) % n]))
        return segs

    # ------------------------------------------------------------------ #
    # predicates
    # ------------------------------------------------------------------ #

    def contains_point(self, x: float, y: float) -> bool:
        """True when the point is in the shell and in none of the holes.

        Hole boundaries count as inside the polygon (they belong to it).
        """
        if not self._mbr.contains_point(x, y):
            return False
        if not point_in_ring(x, y, self.shell):
            return False
        for hole in self.holes:
            if _point_strictly_in_ring(x, y, hole):
                return False
        return True

    def boundary_intersects(self, other: "Polygon") -> bool:
        """True when some boundary segment of one crosses one of the other."""
        osegs = other.segments()
        for p1, p2 in self.segments():
            seg_rect = Rect.from_points((p1, p2))
            if not seg_rect.intersects(other.mbr):
                continue
            for p3, p4 in osegs:
                if segments_intersect(p1, p2, p3, p4):
                    return True
        return False

    def intersects(self, other: "Polygon") -> bool:
        """Exact area/boundary intersection test."""
        if not self._mbr.intersects(other._mbr):
            return False
        if self.boundary_intersects(other):
            return True
        # No boundary crossing: either disjoint or one inside the other.
        return self.contains_point(*other.shell[0]) or other.contains_point(
            *self.shell[0]
        )

    def contains(self, other: "Polygon") -> bool:
        """Exact containment (the paper's naive O(n^2) refinement check).

        ``other`` is contained when no boundary crossing exists, every vertex
        of ``other`` is inside ``self``, and ``other`` does not sit inside a
        hole of ``self``.
        """
        if not self._mbr.contains(other._mbr):
            return False
        if self.boundary_intersects(other):
            return False
        for x, y in other.shell:
            if not self.contains_point(x, y):
                return False
        return True


def _point_strictly_in_ring(x: float, y: float, ring: Sequence[Point]) -> bool:
    """Ray cast that treats boundary points as *outside* (used for holes)."""
    n = len(ring)
    for i in range(n):
        p1, p2 = ring[i], ring[(i + 1) % n]
        if orientation(p1, (x, y), p2) == 0 and on_segment(p1, (x, y), p2):
            return False
    inside = False
    for i in range(n):
        p1, p2 = ring[i], ring[(i + 1) % n]
        y1, y2 = p1[1], p2[1]
        if (y1 > y) != (y2 > y):
            x_cross = p1[0] + (y - y1) * (p2[0] - p1[0]) / (y2 - y1)
            if x_cross > x:
                inside = not inside
    return inside


# ---------------------------------------------------------------------- #
# [BKSS94]-style refinement pre-filters (§4.4 of the paper)
# ---------------------------------------------------------------------- #


def maximal_enclosed_rect(polygon: Polygon, samples: int = 8) -> Optional[Rect]:
    """A (not necessarily maximum) axis-aligned rectangle inside the polygon.

    The paper's §4.4 sketches storing a *maximal enclosed rectangle* (MER)
    per polygon so containment can sometimes be decided from approximations
    alone.  The MER only needs to be *some* exactly-verified enclosed
    rectangle, so we use a cheap seed — the square inscribed in the largest
    centroid-centred circle that the vertices allow — verified with exact
    geometry and halved a few times on failure.  Returns ``None`` when the
    centroid is not inside the polygon (e.g. a crescent shape) or no seed
    verifies.
    """
    cx, cy = _centroid(polygon.shell)
    if not polygon.contains_point(cx, cy):
        return None
    # Largest centroid-centred circle bounded by the nearest vertex; for
    # star-shaped polygons (and most land-use blobs) the inscribed square
    # of that circle is enclosed or nearly so.
    min_d2 = min((x - cx) ** 2 + (y - cy) ** 2 for x, y in polygon.shell)
    for hole in polygon.holes:
        hole_d2 = min((x - cx) ** 2 + (y - cy) ** 2 for x, y in hole)
        min_d2 = min(min_d2, hole_d2)
    half = (min_d2**0.5) / (2.0**0.5)
    if half <= 0.0:
        return None
    for _ in range(6):
        rect = Rect(cx - half, cy - half, cx + half, cy + half)
        if rect_inside_polygon(rect, polygon, samples=samples):
            return rect
        half /= 2.0
    return None


def rect_inside_polygon(rect: Rect, polygon: Polygon, samples: int = 8) -> bool:
    """Exact test that an axis-aligned rectangle lies inside a polygon."""
    corners = [
        (rect.xl, rect.yl), (rect.xu, rect.yl),
        (rect.xu, rect.yu), (rect.xl, rect.yu),
    ]
    for x, y in corners:
        if not polygon.contains_point(x, y):
            return False
    edges = list(zip(corners, corners[1:] + corners[:1]))
    for p1, p2 in edges:
        for p3, p4 in polygon.segments():
            if segments_intersect(p1, p2, p3, p4):
                # Touching at the boundary is fine only if no crossing; be
                # conservative and reject.
                return False
    # Guard against a hole fully inside the rectangle.
    for hole in polygon.holes:
        hx, hy = hole[0]
        if rect.contains_point(hx, hy):
            return False
    return True


def polygon_contains_filtered(
    outer: Polygon,
    inner: Polygon,
    outer_mer: Optional[Rect] = None,
) -> bool:
    """Containment with the [BKSS94] MBR/MER pre-filters of §4.4.

    If the inner polygon's MBR fits in the outer polygon's MER, containment
    is certain and the O(n^2) test is skipped; if the MBRs do not nest,
    non-containment is certain.  Otherwise fall back to exact geometry.
    """
    if not outer.mbr.contains(inner.mbr):
        return False
    if outer_mer is not None and outer_mer.contains(inner.mbr) and not outer.holes:
        return True
    return outer.contains(inner)


def _centroid(ring: Sequence[Point]) -> Point:
    """Area-weighted centroid of a ring (falls back to vertex mean)."""
    a = ring_area_signed(ring)
    if abs(a) < 1e-12:
        xs = sum(p[0] for p in ring) / len(ring)
        ys = sum(p[1] for p in ring) / len(ring)
        return (xs, ys)
    cx = cy = 0.0
    n = len(ring)
    for i in range(n):
        x1, y1 = ring[i]
        x2, y2 = ring[(i + 1) % n]
        w = x1 * y2 - x2 * y1
        cx += (x1 + x2) * w
        cy += (y1 + y2) * w
    return (cx / (6.0 * a), cy / (6.0 * a))
