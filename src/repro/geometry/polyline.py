"""Polylines — the spatial type of the TIGER road/hydrography/rail features.

Two intersection tests are provided:

* :func:`polylines_intersect_naive` — all segment pairs, O(n·m);
* :func:`polylines_intersect_sweep` — a plane-sweep over the merged segment
  list, the technique the paper credits with cutting refinement cost by 62%
  (§4.4).

Both are exact; the sweep is the default used by the refinement step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from .rect import Rect
from .segment import segments_intersect

Point = Tuple[float, float]


@dataclass(frozen=True)
class Polyline:
    """An open chain of two or more vertices."""

    points: Tuple[Point, ...]
    _mbr: Rect = field(init=False, repr=False, compare=False)

    def __init__(self, points: Sequence[Point]):
        pts = tuple((float(x), float(y)) for x, y in points)
        if len(pts) < 2:
            raise ValueError("a polyline needs at least two vertices")
        object.__setattr__(self, "points", pts)
        object.__setattr__(self, "_mbr", Rect.from_points(pts))

    @property
    def mbr(self) -> Rect:
        return self._mbr

    @property
    def num_points(self) -> int:
        return len(self.points)

    @property
    def num_segments(self) -> int:
        return len(self.points) - 1

    def segments(self) -> List[Tuple[Point, Point]]:
        return list(zip(self.points, self.points[1:]))

    def length(self) -> float:
        total = 0.0
        for (x1, y1), (x2, y2) in zip(self.points, self.points[1:]):
            total += ((x2 - x1) ** 2 + (y2 - y1) ** 2) ** 0.5
        return total

    def intersects(self, other: "Polyline") -> bool:
        """Exact intersection test (plane-sweep, MBR pre-filtered)."""
        if not self._mbr.intersects(other._mbr):
            return False
        return polylines_intersect_sweep(self, other)


def polylines_intersect_naive(a: Polyline, b: Polyline) -> bool:
    """Test every segment pair.  O(n·m); the ablation baseline."""
    bsegs = b.segments()
    for p1, p2 in zip(a.points, a.points[1:]):
        for p3, p4 in bsegs:
            if segments_intersect(p1, p2, p3, p4):
                return True
    return False


def polylines_intersect_sweep(a: Polyline, b: Polyline) -> bool:
    """Plane-sweep segment intersection between two chains.

    Segments from both chains are sorted by their lower x coordinate; a
    sweep keeps, per side, the segments whose x-interval is still open and
    tests only cross-side pairs whose x-intervals overlap.  This matches the
    refinement-step optimisation of §4.4.
    """
    events: List[Tuple[float, float, int, Point, Point]] = []
    for p1, p2 in zip(a.points, a.points[1:]):
        xl, xu = (p1[0], p2[0]) if p1[0] <= p2[0] else (p2[0], p1[0])
        events.append((xl, xu, 0, p1, p2))
    for p3, p4 in zip(b.points, b.points[1:]):
        xl, xu = (p3[0], p4[0]) if p3[0] <= p4[0] else (p4[0], p3[0])
        events.append((xl, xu, 1, p3, p4))
    events.sort(key=lambda e: e[0])

    # Active lists per side, pruned lazily as the sweep front advances.
    # Interval pre-filters are padded so they never reject a pair the
    # (epsilon-tolerant) exact segment test would accept.
    pad = 1e-9
    active: Tuple[list, list] = ([], [])
    for xl, xu, side, p1, p2 in events:
        opp = active[1 - side]
        # Drop opposite-side segments that end before this one begins.
        if opp:
            opp[:] = [seg for seg in opp if seg[0] >= xl - pad]
        ylo, yhi = (p1[1], p2[1]) if p1[1] <= p2[1] else (p2[1], p1[1])
        for oxu, oylo, oyhi, q1, q2 in opp:
            if oylo > yhi + pad or oyhi < ylo - pad:
                continue
            if segments_intersect(p1, p2, q1, q2):
                return True
        active[side].append((xu, ylo, yhi, p1, p2))
    return False
