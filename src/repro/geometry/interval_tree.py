"""A static interval tree over 1-D closed intervals.

Footnote 1 of §3.1: the y-overlap check inside PBSM's plane-sweep merge "can
be speeded up by organizing the MBRs ... in an Interval-tree".  This module
provides that structure; the merge uses it when configured to (see
``repro.core.planesweep``), and an ablation benchmark measures its effect.

The classic centred interval tree: each node stores a centre point, the
intervals containing the centre (sorted by both endpoints), and left/right
subtrees of the strictly-smaller / strictly-larger intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")

Interval = Tuple[float, float]


@dataclass
class _Node(Generic[T]):
    center: float
    by_lo: List[Tuple[float, float, T]]  # sorted ascending by lo
    by_hi: List[Tuple[float, float, T]]  # sorted descending by hi
    left: "Optional[_Node[T]]"
    right: "Optional[_Node[T]]"


class IntervalTree(Generic[T]):
    """Static interval tree built once from ``(lo, hi, payload)`` triples."""

    def __init__(self, intervals: Sequence[Tuple[float, float, T]]):
        for lo, hi, _ in intervals:
            if lo > hi:
                raise ValueError(f"malformed interval [{lo}, {hi}]")
        self._size = len(intervals)
        self._root = self._build(list(intervals))

    def __len__(self) -> int:
        return self._size

    @staticmethod
    def _build(items: List[Tuple[float, float, T]]) -> Optional[_Node[T]]:
        if not items:
            return None
        endpoints = sorted(lo for lo, _, _ in items)
        center = endpoints[len(endpoints) // 2]
        here: List[Tuple[float, float, T]] = []
        left_items: List[Tuple[float, float, T]] = []
        right_items: List[Tuple[float, float, T]] = []
        for iv in items:
            lo, hi, _ = iv
            if hi < center:
                left_items.append(iv)
            elif lo > center:
                right_items.append(iv)
            else:
                here.append(iv)
        if not here:
            # Degenerate split (all intervals on one side): fall back to a
            # leaf-ish node holding everything to guarantee termination.
            here = left_items + right_items
            left_items = []
            right_items = []
        return _Node(
            center=center,
            by_lo=sorted(here, key=lambda iv: iv[0]),
            by_hi=sorted(here, key=lambda iv: -iv[1]),
            left=IntervalTree._build(left_items),
            right=IntervalTree._build(right_items),
        )

    def stabbing(self, point: float) -> List[T]:
        """All payloads whose interval contains ``point``."""
        out: List[T] = []
        node = self._root
        while node is not None:
            if point < node.center:
                for lo, _hi, payload in node.by_lo:
                    if lo > point:
                        break
                    out.append(payload)
                node = node.left
            elif point > node.center:
                for _lo, hi, payload in node.by_hi:
                    if hi < point:
                        break
                    out.append(payload)
                node = node.right
            else:
                out.extend(payload for _lo, _hi, payload in node.by_lo)
                node = node.left  # identical centres can only hide left
        return out

    def overlapping(self, lo: float, hi: float) -> List[T]:
        """All payloads whose interval intersects the closed ``[lo, hi]``."""
        if lo > hi:
            raise ValueError(f"malformed query interval [{lo}, {hi}]")
        out: List[T] = []
        self._collect(self._root, lo, hi, out)
        return out

    @staticmethod
    def _collect(
        node: Optional[_Node[T]], lo: float, hi: float, out: List[T]
    ) -> None:
        while node is not None:
            if hi < node.center:
                for ilo, _ihi, payload in node.by_lo:
                    if ilo > hi:
                        break
                    out.append(payload)
                node = node.left
            elif lo > node.center:
                for _ilo, ihi, payload in node.by_hi:
                    if ihi < lo:
                        break
                    out.append(payload)
                node = node.right
            else:
                # Query straddles the centre: all stored intervals overlap.
                out.extend(payload for _ilo, _ihi, payload in node.by_lo)
                IntervalTree._collect(node.left, lo, hi, out)
                node = node.right
