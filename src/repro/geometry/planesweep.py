"""Plane-sweep rectangle join — the "spatial sort-merge" of §3.1.

Given two sets of ``(Rect, payload)`` items, report every cross-set pair
whose rectangles intersect.  This one routine is the computational heart of
PBSM (it merges partition pairs) and of the BKS93 R-tree join (it joins the
entries of two nodes).

Two implementations:

* :func:`sweep_join` — the paper's algorithm: sort both inputs on
  ``mbr.xl``, repeatedly take the globally smallest unprocessed rectangle,
  scan the other input while its x-interval is open, check y-overlap.
* :func:`sweep_join_interval_tree` — footnote 1's variant that accelerates
  the y-overlap check with an interval tree (worthwhile when the x-windows
  are wide and y-selectivity is high).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

from .interval_tree import IntervalTree
from .rect import Rect

A = TypeVar("A")
B = TypeVar("B")

RectItem = Tuple[Rect, A]


def sweep_join(
    left: Sequence[Tuple[Rect, A]],
    right: Sequence[Tuple[Rect, B]],
    emit: Callable[[A, B], None],
    presorted: bool = False,
) -> int:
    """Report all intersecting cross-set rectangle pairs via plane sweep.

    ``emit(a_payload, b_payload)`` is called once per intersecting pair,
    always with the left payload first.  Returns the number of pairs
    emitted.  When ``presorted`` both inputs must already be ascending on
    ``rect.xl``.
    """
    if presorted:
        ls: Sequence[Tuple[Rect, A]] = left
        rs: Sequence[Tuple[Rect, B]] = right
    else:
        ls = sorted(left, key=lambda item: item[0].xl)
        rs = sorted(right, key=lambda item: item[0].xl)

    count = 0
    i = j = 0
    nl, nr = len(ls), len(rs)
    while i < nl and j < nr:
        lrect = ls[i][0]
        rrect = rs[j][0]
        if lrect.xl <= rrect.xl:
            # Sweep the left rectangle against right items whose x-interval
            # starts before it closes.
            rect, payload = ls[i]
            xu, yl, yu = rect.xu, rect.yl, rect.yu
            k = j
            while k < nr:
                other, opayload = rs[k]
                if other.xl > xu:
                    break
                if other.yl <= yu and yl <= other.yu:
                    emit(payload, opayload)
                    count += 1
                k += 1
            i += 1
        else:
            rect, payload = rs[j]
            xu, yl, yu = rect.xu, rect.yl, rect.yu
            k = i
            while k < nl:
                other, opayload = ls[k]
                if other.xl > xu:
                    break
                if other.yl <= yu and yl <= other.yu:
                    emit(opayload, payload)
                    count += 1
                k += 1
            j += 1
    return count


def sweep_join_interval_tree(
    left: Sequence[Tuple[Rect, A]],
    right: Sequence[Tuple[Rect, B]],
    emit: Callable[[A, B], None],
) -> int:
    """Interval-tree variant of the rectangle join (footnote 1 of §3.1).

    Builds a static interval tree over the y-intervals of the smaller input
    and probes it with each rectangle of the other; x-overlap is then checked
    directly.  Output set is identical to :func:`sweep_join`.
    """
    swap = len(left) > len(right)
    small: Sequence[Tuple[Rect, object]] = right if swap else left
    large: Sequence[Tuple[Rect, object]] = left if swap else right

    tree: IntervalTree[Tuple[Rect, object]] = IntervalTree(
        [(rect.yl, rect.yu, (rect, payload)) for rect, payload in small]
    )
    count = 0
    for rect, payload in large:
        for other, opayload in tree.overlapping(rect.yl, rect.yu):
            if other.xl <= rect.xu and rect.xl <= other.xu:
                # ``payload`` comes from ``large``: the left input when
                # swapped, the right input otherwise.
                if swap:
                    emit(payload, opayload)  # type: ignore[arg-type]
                else:
                    emit(opayload, payload)  # type: ignore[arg-type]
                count += 1
    return count


def sweep_join_pairs(
    left: Sequence[Tuple[Rect, A]],
    right: Sequence[Tuple[Rect, B]],
) -> List[Tuple[A, B]]:
    """Convenience wrapper returning the pair list."""
    out: List[Tuple[A, B]] = []
    sweep_join(left, right, lambda a, b: out.append((a, b)))
    return out


def naive_join_pairs(
    left: Sequence[Tuple[Rect, A]],
    right: Sequence[Tuple[Rect, B]],
) -> List[Tuple[A, B]]:
    """O(n*m) reference implementation used as a testing oracle."""
    out: List[Tuple[A, B]] = []
    for lrect, lpayload in left:
        for rrect, rpayload in right:
            if lrect.intersects(rrect):
                out.append((lpayload, rpayload))
    return out
