"""Fault plans: a seed + a spec, compiled into precise, replayable faults.

A :class:`FaultSpec` says *how many* of each fault kind to inject; a
:class:`FaultPlan` is the spec compiled against one join's fault domain
(the partition-pair index space) with a seeded RNG, pinning every fault to
an exact, replayable point:

* **worker faults** — read errors, crashes, hangs, stragglers — are keyed
  by ``(pair index, attempt number)``.  Compilation targets attempt 0 (and
  stacks onto later attempts when several faults of one kind land on the
  same pair), so a plan whose failures stay within the retry budget is
  always survivable: the retry of the same pair no longer matches an
  injection point and succeeds.
* **write errors** fire once per chosen input side while the coordinator
  is spilling partitions, at a deterministic record ordinal.
* **torn frames** name a ``(side, partition, frame)`` whose spill file the
  coordinator corrupts *after* writing it — exercising the CRC path and
  the quarantine/degrade machinery rather than the retry path.
* **coordinator kills** and **torn manifests** are keyed by *checkpoint
  ordinal* — the count of durable checkpoint operations (manifest rewrites
  and result-log appends) the coordinator has completed.  A kill stops the
  coordinator dead right after durable op N; a torn manifest damages the
  manifest's tail at that point.  Both exist to exercise the
  checkpoint/resume path and need a ``checkpoint_dir`` to be survivable.
* **disk-full denials** are keyed by ``(category, byte ordinal)`` on the
  disk budget's per-category charged-byte clock: the first charge whose
  byte interval crosses the ordinal is denied with a
  :class:`~repro.storage.errors.DiskFullError` (one-shot — the retry of
  the same write proceeds), exercising every layer's storage-pressure
  recovery path without needing a real full disk.

Two compilations from the same ``(spec, seed, num_pairs)`` are equal, which
is the determinism contract the fault-matrix suite is built on: replaying a
plan replays the exact failure schedule, and the surviving join must
produce the byte-identical pair set of a fault-free run.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

DEFAULT_HANG_S = 30.0
"""Injected sleep for a hung task; meant to exceed any sane task timeout."""

DEFAULT_SLOW_S = 0.05
"""Injected sleep for a straggler: visible in latency, below any timeout."""


@dataclass(frozen=True)
class FaultSpec:
    """How many faults of each kind one chaos run should inject."""

    disk_read_errors: int = 0
    """Worker-side spill read failures (transient; retry succeeds)."""
    disk_write_errors: int = 0
    """Coordinator-side spill write failures during partitioning."""
    torn_frames: int = 0
    """Spill frames corrupted on disk after writing (CRC must catch)."""
    worker_crashes: int = 0
    """Workers killed mid-task (``os._exit``) — breaks the whole pool."""
    hangs: int = 0
    """Tasks that sleep past the task timeout."""
    slow_tasks: int = 0
    """Stragglers: tasks that sleep but finish inside the timeout."""
    coordinator_kills: int = 0
    """Coordinator deaths keyed by checkpoint ordinal (needs a checkpoint
    dir to be survivable — the resume path is what they exercise)."""
    torn_manifests: int = 0
    """Manifest files damaged at the tail after a durable write, so resume
    must exercise prefix recovery."""
    cache_corruptions: int = 0
    """Cache entries damaged *at rest*: each picks a deterministic byte
    ordinal at which a completed entry's result log is torn after the
    fact.  Applied by the chaos harness (the serve-chaos drill), not the
    worker — it exercises the scrubber/quarantine path, which exists for
    exactly the damage no running coordinator would ever write."""
    disk_full: int = 0
    """Disk-budget charge denials: each picks a category (``spill`` or
    ``checkpoint``) and a byte ordinal on that category's charged-byte
    clock; the first charge crossing the ordinal raises
    :class:`~repro.storage.errors.DiskFullError`, one-shot."""
    hang_s: float = DEFAULT_HANG_S
    slow_s: float = DEFAULT_SLOW_S

    @property
    def total_faults(self) -> int:
        return (
            self.disk_read_errors + self.disk_write_errors + self.torn_frames
            + self.worker_crashes + self.hangs + self.slow_tasks
            + self.coordinator_kills + self.torn_manifests
            + self.cache_corruptions + self.disk_full
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultSpec":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FaultSpec fields: {sorted(unknown)}")
        return cls(**dict(data))


@dataclass(frozen=True)
class WorkerFaults:
    """The picklable per-pair fault slice shipped inside a ``PairTask``.

    Each tuple lists the attempt numbers at which that fault fires for
    this pair; the worker consults it with the attempt number the
    coordinator stamped on the task, so injection needs no shared state.
    """

    read_error_attempts: Tuple[int, ...] = ()
    crash_attempts: Tuple[int, ...] = ()
    hang_attempts: Tuple[int, ...] = ()
    slow_attempts: Tuple[int, ...] = ()
    hang_s: float = DEFAULT_HANG_S
    slow_s: float = DEFAULT_SLOW_S

    @property
    def total_points(self) -> int:
        return (
            len(self.read_error_attempts) + len(self.crash_attempts)
            + len(self.hang_attempts) + len(self.slow_attempts)
        )


@dataclass(frozen=True)
class TornFrame:
    """One spill frame to corrupt: side ('r'/'s'), partition, frame index.

    The frame index is taken modulo the file's record count at tear time,
    so a plan never misses just because a partition came out small.
    """

    side: str
    partition: int
    frame: int


@dataclass(frozen=True)
class WriteError:
    """One coordinator-side spill write failure: fires on the ``ordinal``-th
    record append of the given side's partitioning pass (once per run)."""

    side: str
    ordinal: int


@dataclass(frozen=True)
class FaultPlan:
    """A spec pinned to exact injection points for one join execution."""

    seed: int
    num_pairs: int
    spec: FaultSpec
    worker_faults: Mapping[int, WorkerFaults] = field(default_factory=dict)
    torn_frames: Tuple[TornFrame, ...] = ()
    write_errors: Tuple[WriteError, ...] = ()
    coordinator_kill_ordinals: Tuple[int, ...] = ()
    """Checkpoint ordinals after which the coordinator dies (see
    :class:`repro.faults.inject.CheckpointFaultGate`)."""
    torn_manifest_ordinals: Tuple[int, ...] = ()
    """Checkpoint ordinals after which the manifest's tail is damaged."""
    cache_corruption_ordinals: Tuple[int, ...] = ()
    """Byte ordinals (modulo the victim file's size at damage time) at
    which the serve-chaos harness flips one byte of a completed cache
    entry's result log — the scrubber drill's injection points."""
    disk_full_points: Tuple[Tuple[str, int], ...] = ()
    """``(category, byte ordinal)`` points at which the disk budget denies
    a charge (see :class:`repro.faults.inject.DiskFullInjector`)."""

    # ------------------------------------------------------------------ #

    @classmethod
    def compile(
        cls, spec: FaultSpec, *, seed: int, num_pairs: int
    ) -> "FaultPlan":
        """Pin every fault in ``spec`` to a precise point, deterministically.

        The RNG is seeded with ``seed`` alone, so the same (spec, seed,
        num_pairs) triple always compiles to the same plan.
        """
        if num_pairs < 1:
            raise ValueError("fault domain needs at least one pair")
        rng = random.Random(f"faultplan:{seed}")
        per_pair: Dict[int, Dict[str, list]] = {}

        def stack(kind: str, count: int) -> None:
            # Each fault lands on a random pair at that pair's next unused
            # attempt for its kind — attempt 0 first, so a bounded retry
            # budget always clears plan-injected failures.
            for _ in range(count):
                pair = rng.randrange(num_pairs)
                attempts = per_pair.setdefault(pair, {}).setdefault(kind, [])
                attempts.append(len(attempts))

        stack("read_error", spec.disk_read_errors)
        stack("crash", spec.worker_crashes)
        stack("hang", spec.hangs)
        stack("slow", spec.slow_tasks)

        worker_faults = {
            pair: WorkerFaults(
                read_error_attempts=tuple(kinds.get("read_error", ())),
                crash_attempts=tuple(kinds.get("crash", ())),
                hang_attempts=tuple(kinds.get("hang", ())),
                slow_attempts=tuple(kinds.get("slow", ())),
                hang_s=spec.hang_s,
                slow_s=spec.slow_s,
            )
            for pair, kinds in sorted(per_pair.items())
        }
        torn = tuple(
            TornFrame(
                side=rng.choice("rs"),
                partition=rng.randrange(num_pairs),
                frame=rng.randrange(1 << 16),
            )
            for _ in range(spec.torn_frames)
        )
        writes = tuple(
            WriteError(side=rng.choice("rs"), ordinal=rng.randrange(1 << 10))
            for _ in range(spec.disk_write_errors)
        )
        # Checkpoint-ordinal faults.  A fresh run's durable ops are:
        # 1 = manifest init, 2/3 = spill seals, 4 = merging phase, then one
        # per committed pair.  Kills draw from [2, 5) — after real work
        # exists to preserve, before the worker pool spawns, so a hard
        # SIGKILL cannot orphan workers.  Manifest tears draw from [1, 5):
        # any manifest rewrite's tail is fair game.
        kills = tuple(
            sorted(rng.randrange(2, 5) for _ in range(spec.coordinator_kills))
        )
        manifest_tears = tuple(
            sorted(rng.randrange(1, 5) for _ in range(spec.torn_manifests))
        )
        cache_tears = tuple(
            sorted(rng.randrange(1 << 10) for _ in range(spec.cache_corruptions))
        )
        # Disk-full points draw *after* every earlier kind so adding them
        # to a spec never perturbs the other kinds' draws under one seed.
        # Ordinal ranges are small on purpose: the drill workloads spill a
        # few KB per category, and a point past the bytes a run actually
        # charges would never fire.
        disk_points = []
        for _ in range(spec.disk_full):
            category = rng.choice(("spill", "checkpoint"))
            bound = 1 << 12 if category == "spill" else 1 << 10
            disk_points.append((category, rng.randrange(bound)))
        disk_full_points = tuple(sorted(disk_points))
        return cls(
            seed=seed,
            num_pairs=num_pairs,
            spec=spec,
            worker_faults=worker_faults,
            torn_frames=torn,
            write_errors=writes,
            coordinator_kill_ordinals=kills,
            torn_manifest_ordinals=manifest_tears,
            cache_corruption_ordinals=cache_tears,
            disk_full_points=disk_full_points,
        )

    # ------------------------------------------------------------------ #

    def faults_for_pair(self, pair: int) -> Optional[WorkerFaults]:
        return self.worker_faults.get(pair)

    @property
    def max_hang_s(self) -> float:
        """Longest injected sleep — what a task timeout must undercut."""
        longest = 0.0
        for faults in self.worker_faults.values():
            if faults.hang_attempts:
                longest = max(longest, faults.hang_s)
        return longest

    def to_dict(self) -> dict:
        """The replayable source form: seed + domain + spec (points are
        re-derived by :meth:`compile`, which is deterministic)."""
        return {
            "seed": self.seed,
            "num_pairs": self.num_pairs,
            "spec": self.spec.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        return cls.compile(
            FaultSpec.from_dict(data.get("spec", {})),
            seed=int(data["seed"]),
            num_pairs=int(data["num_pairs"]),
        )

    def save(self, path: "Path | str") -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: "Path | str") -> "FaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))


NAMED_SPECS: Dict[str, FaultSpec] = {
    "none": FaultSpec(),
    "disk_error": FaultSpec(disk_read_errors=2, disk_write_errors=1),
    "torn_frame": FaultSpec(torn_frames=1),
    "worker_crash": FaultSpec(worker_crashes=1),
    "hang": FaultSpec(hangs=1),
    "slow": FaultSpec(slow_tasks=2),
    "coordinator_kill": FaultSpec(coordinator_kills=1),
    "torn_manifest": FaultSpec(torn_manifests=1),
    "worker_faults": FaultSpec(
        disk_read_errors=2, worker_crashes=1, slow_tasks=1
    ),
    # One task sleeps far past any sane query deadline — the serve
    # drill's stalled tenant (override hang_s to taste via load_plan).
    "deadline_stall": FaultSpec(hangs=1),
    # One completed cache entry damaged at rest — the scrubber drill.
    "scrub_corruption": FaultSpec(cache_corruptions=1),
    # Two budget charges denied mid-run — the storage-pressure drill.
    "disk_full": FaultSpec(disk_full=2),
    "combined": FaultSpec(
        disk_read_errors=1,
        disk_write_errors=1,
        torn_frames=1,
        worker_crashes=1,
        hangs=1,
        slow_tasks=1,
    ),
}
"""The fault matrix: one canonical spec per failure mode, plus the works."""


def load_plan(
    name_or_path: str,
    *,
    seed: int = 0,
    num_pairs: int = 8,
    hang_s: Optional[float] = None,
) -> FaultPlan:
    """Resolve a named spec or a plan JSON file into a compiled plan.

    Named specs compile against the given ``seed``/``num_pairs``; JSON
    files are self-contained and ignore both.  ``hang_s`` (when given)
    overrides the spec's hang duration either way — the CLI uses it to
    keep hangs just past its task timeout instead of the 30 s default.
    """
    candidate = Path(name_or_path)
    if name_or_path.endswith(".json") or candidate.exists():
        plan = FaultPlan.load(candidate)
        if hang_s is not None and hang_s != plan.spec.hang_s:
            plan = FaultPlan.compile(
                replace(plan.spec, hang_s=hang_s),
                seed=plan.seed, num_pairs=plan.num_pairs,
            )
        return plan
    if name_or_path not in NAMED_SPECS:
        known = ", ".join(sorted(NAMED_SPECS))
        raise ValueError(
            f"unknown fault plan {name_or_path!r}: expected one of [{known}] "
            "or a path to a plan JSON file"
        )
    spec = NAMED_SPECS[name_or_path]
    if hang_s is not None:
        spec = replace(spec, hang_s=hang_s)
    return FaultPlan.compile(spec, seed=seed, num_pairs=num_pairs)
