"""The injectors: code that *makes* the planned faults happen.

Worker-side faults (:func:`apply_worker_faults`) run inside the worker
process at the top of a partition-pair task, keyed purely by the attempt
number stamped on the task — no shared state, so they behave identically
under ``fork`` and ``spawn``.  Coordinator-side faults are a one-shot
write-error gate (:class:`WriteErrorInjector`) threaded through the
partitioning scan, and :func:`tear_frame`, which flips a byte inside an
already-written spill frame so the CRC path has something real to catch.
"""

from __future__ import annotations

import os
import signal
import struct
import time
from pathlib import Path
from typing import Callable, Optional, Set, Tuple

from ..obs.journal import EVENT_FAULT_INJECTED, NULL_JOURNAL
from ..storage.errors import DiskFullError
from ..storage.spill import FRAME_HEADER_SIZE
from .plan import FaultPlan, WorkerFaults

_HEADER = struct.Struct("<II")

WORKER_CRASH_EXIT_CODE = 87
"""Distinctive exit code for injected crashes (eases log forensics)."""


class InjectedFaultError(IOError):
    """A deliberately injected, transient I/O failure.

    Subclasses ``IOError`` because that is what the fault models: a disk
    read or write that would have raised ``OSError`` in the wild.  The
    retry machinery treats it like any other task failure.
    """

    def __init__(self, message: str, *, kind: str = "disk_error"):
        super().__init__(message)
        self.kind = kind

    def __reduce__(self):
        return (_rebuild_injected, (self.args[0] if self.args else "", self.kind))


def _rebuild_injected(message: str, kind: str) -> "InjectedFaultError":
    return InjectedFaultError(message, kind=kind)


def apply_worker_faults(
    faults: Optional[WorkerFaults], pair: int, attempt: int
) -> None:
    """Fire this (pair, attempt)'s planned worker faults, if any.

    Order matters and is fixed: a crash pre-empts everything (the process
    dies), a hang or straggler sleep happens next (the task is *stuck*,
    not failed), and a read error raises last — modelling the first spill
    read of the task blowing up.
    """
    if faults is None:
        return
    if attempt in faults.crash_attempts:
        # A real crash: no exception, no cleanup, the process is simply
        # gone.  The coordinator sees BrokenProcessPool.
        os._exit(WORKER_CRASH_EXIT_CODE)
    if attempt in faults.hang_attempts:
        time.sleep(faults.hang_s)
    if attempt in faults.slow_attempts:
        time.sleep(faults.slow_s)
    if attempt in faults.read_error_attempts:
        raise InjectedFaultError(
            f"injected spill read error (pair {pair}, attempt {attempt})",
            kind="disk_read_error",
        )


class WriteErrorInjector:
    """One-shot spill-write failures for the coordinator's partition scan.

    The coordinator calls :meth:`check` once per record it appends while
    spilling a side; when the planned ordinal is crossed the injector
    raises — exactly once per planned fault, so the coordinator's rewrite
    of that side succeeds on retry.
    """

    def __init__(self, plan: Optional[FaultPlan], *, journal=NULL_JOURNAL):
        self._pending: Set[Tuple[str, int]] = (
            {(w.side, w.ordinal) for w in plan.write_errors} if plan else set()
        )
        self.fired = 0
        self.journal = journal

    def arm_side(self, side: str, records_in_side: int) -> None:
        """Clamp this side's planned ordinals into the records it will
        actually write, so small inputs cannot dodge the fault."""
        if not records_in_side:
            return
        for key in list(self._pending):
            if key[0] == side and key[1] >= records_in_side:
                self._pending.discard(key)
                self._pending.add((side, key[1] % records_in_side))

    def check(self, side: str, ordinal: int) -> None:
        key = (side, ordinal)
        if key in self._pending:
            self._pending.discard(key)
            self.fired += 1
            self.journal.emit(
                EVENT_FAULT_INJECTED,
                kind="disk_write_error", side=side, ordinal=ordinal,
            )
            raise InjectedFaultError(
                f"injected spill write error (side {side!r}, record {ordinal})",
                kind="disk_write_error",
            )


class DiskFullInjector:
    """One-shot disk-budget denials keyed by category byte ordinals.

    A :class:`~repro.storage.pressure.DiskBudget` consults :meth:`check`
    inside every charge with the half-open byte interval ``[start, end)``
    the charge would occupy on that category's monotonic charged-byte
    clock.  The first charge whose interval crosses a planned ordinal is
    denied with :class:`~repro.storage.errors.DiskFullError` (flagged
    ``injected=True``); the point is then spent, so the recovery path's
    retry of the same write proceeds.  Because the clock only advances on
    *successful* charges, the ordinals mean the same byte positions on
    every replay — the determinism contract of the plan suite.
    """

    def __init__(self, plan: Optional[FaultPlan], *, journal=NULL_JOURNAL):
        self._pending: dict = {}
        if plan is not None:
            for category, ordinal in plan.disk_full_points:
                self._pending.setdefault(category, []).append(ordinal)
        for ordinals in self._pending.values():
            ordinals.sort()
        self.fired = 0
        self.journal = journal

    @property
    def armed(self) -> bool:
        return any(self._pending.values())

    def check(self, category: str, start: int, end: int) -> None:
        ordinals = self._pending.get(category)
        if not ordinals or ordinals[0] >= end:
            return
        # One denial spends *every* ordinal the interval crosses: two
        # points landing inside the same charge must not demand two
        # retries of one write — recovery paths retry exactly once.
        crossed = []
        while ordinals and ordinals[0] < end:
            crossed.append(ordinals.pop(0))
        self.fired += len(crossed)
        self.journal.emit(
            EVENT_FAULT_INJECTED,
            kind="disk_full", category=category, ordinal=crossed[0],
        )
        raise DiskFullError(
            f"injected disk-full denial ({category} byte "
            f"ordinal{'s' if len(crossed) > 1 else ''} "
            f"{', '.join(str(o) for o in crossed)})",
            category=category,
            requested=end - start,
            injected=True,
        )


class CoordinatorKilledError(RuntimeError):
    """The coordinator was (softly) killed by an injected checkpoint fault.

    The soft kill mode raises this instead of sending ``SIGKILL`` so tests
    and the chaos CLI can observe the death, then resume, inside one
    process.  ``ordinal`` is the checkpoint ordinal the kill fired after —
    everything durable up to and including that op must survive.
    """

    def __init__(self, ordinal: int):
        super().__init__(
            f"coordinator killed by fault injection after checkpoint "
            f"ordinal {ordinal}"
        )
        self.ordinal = ordinal


class CheckpointFaultGate:
    """Fires checkpoint-ordinal faults as the store reports durable ops.

    The coordinator wires :meth:`after_durable` into its
    :class:`~repro.checkpoint.store.CheckpointStore`'s ``on_durable``
    callback.  After durable op N completes, the gate tears the manifest's
    tail if N is a planned torn-manifest ordinal, then kills the
    coordinator if N is a planned kill ordinal — tear first, so a plan
    combining both at one ordinal leaves torn state behind for the resume
    to recover.  Each point is one-shot.

    ``hard=True`` kills with ``SIGKILL`` (no cleanup, no exception — what
    the CI chaos job does to prove recovery against a real process death);
    the default soft kill raises :class:`CoordinatorKilledError`.
    ``on_event(kind)`` observes each fired fault (``"coordinator_kill"`` /
    ``"torn_manifest"``) for the coordinator's fault tally.
    """

    def __init__(
        self,
        plan: Optional[FaultPlan],
        *,
        hard: bool = False,
        on_event: Optional[Callable[[str], None]] = None,
        extra_kills: Tuple[int, ...] = (),
        journal=NULL_JOURNAL,
    ):
        self._kills: Set[int] = (
            set(plan.coordinator_kill_ordinals) if plan else set()
        )
        self._kills.update(extra_kills)
        self._tears: Set[int] = (
            set(plan.torn_manifest_ordinals) if plan else set()
        )
        self.hard = hard
        self.on_event = on_event
        self.journal = journal
        self.fired_kills = 0
        self.fired_tears = 0
        self._manifest_path: Optional[str] = None

    @property
    def armed(self) -> bool:
        return bool(self._kills or self._tears)

    def _emit(self, kind: str, ordinal: int) -> None:
        self.journal.emit(EVENT_FAULT_INJECTED, kind=kind, ordinal=ordinal)
        if self.on_event is not None:
            self.on_event(kind)

    def after_durable(self, ordinal: int, path: str, kind: str) -> None:
        if kind == "manifest":
            self._manifest_path = path
        if ordinal in self._tears:
            self._tears.discard(ordinal)
            if self._manifest_path is not None:
                tear_tail(self._manifest_path)
                self.fired_tears += 1
                self._emit("torn_manifest", ordinal)
        if ordinal in self._kills:
            self._kills.discard(ordinal)
            self.fired_kills += 1
            self._emit("coordinator_kill", ordinal)
            if self.hard:
                os.kill(os.getpid(), signal.SIGKILL)
            raise CoordinatorKilledError(ordinal)


def tear_tail(path: "Path | str") -> bool:
    """Damage a file's final byte in place (a torn-tail write, simulated).

    This models durability loss *past* the atomic protocol — firmware
    lying about fsync, a medium error — so resume's prefix-recovery path
    has something real to recover from.  Returns False for an empty or
    missing file (nothing to tear).
    """
    path = Path(path)
    try:
        data = bytearray(path.read_bytes())
    except FileNotFoundError:
        return False
    if not data:
        return False
    data[-1] ^= 0xFF
    path.write_bytes(bytes(data))
    return True


def tear_frame(path: "Path | str", frame: int) -> int:
    """Corrupt one frame of a spill file in place; returns the frame torn.

    ``frame`` is taken modulo the file's record count.  The first payload
    byte of the chosen frame is XOR-flipped (for an empty payload, the
    stored CRC is flipped instead), which the reader's CRC32 check must
    report as a :class:`~repro.storage.errors.SpillCorruptionError` at
    exactly that frame.  Returns -1 for an empty file (nothing to tear).
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    offsets = []
    cursor = 0
    while cursor + FRAME_HEADER_SIZE <= len(data):
        length, _ = _HEADER.unpack_from(data, cursor)
        offsets.append((cursor, length))
        cursor += FRAME_HEADER_SIZE + length
    if not offsets:
        return -1
    target = frame % len(offsets)
    offset, length = offsets[target]
    flip_at = offset + FRAME_HEADER_SIZE if length else offset + 4
    data[flip_at] ^= 0xFF
    path.write_bytes(bytes(data))
    return target
