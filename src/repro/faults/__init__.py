"""``repro.faults`` — seeded, deterministic fault injection for chaos runs.

The subsystem has two halves:

* :mod:`repro.faults.plan` — :class:`FaultSpec` (how many faults of each
  kind) compiled with a seed into a :class:`FaultPlan` (exactly which
  partition pair, attempt, spill frame, or write ordinal each fault hits).
  Same seed + spec → same plan, always: a chaos run is replayable.
* :mod:`repro.faults.inject` — the code that makes planned faults real:
  worker crashes / hangs / stragglers / read errors inside tasks, one-shot
  write errors in the coordinator's partition scan, and torn spill frames
  on disk for the CRC path to catch.

The process backend (:class:`repro.parallel.process.ProcessPBSM`) accepts
a plan via ``fault_plan=`` and must survive it: retry within budget,
respawn a broken pool, quarantine corrupt spills, and degrade exhausted
pairs to a serial coordinator rebuild — returning the byte-identical pair
set of a fault-free run.  ``python -m repro chaos`` drives exactly that
and reports survival.
"""

from .inject import (
    WORKER_CRASH_EXIT_CODE,
    CheckpointFaultGate,
    CoordinatorKilledError,
    DiskFullInjector,
    InjectedFaultError,
    WriteErrorInjector,
    apply_worker_faults,
    tear_frame,
    tear_tail,
)
from .plan import (
    DEFAULT_HANG_S,
    DEFAULT_SLOW_S,
    NAMED_SPECS,
    FaultPlan,
    FaultSpec,
    TornFrame,
    WorkerFaults,
    WriteError,
    load_plan,
)

__all__ = [
    "DEFAULT_HANG_S",
    "DEFAULT_SLOW_S",
    "CheckpointFaultGate",
    "CoordinatorKilledError",
    "DiskFullInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "NAMED_SPECS",
    "TornFrame",
    "WORKER_CRASH_EXIT_CODE",
    "WorkerFaults",
    "WriteError",
    "WriteErrorInjector",
    "apply_worker_faults",
    "load_plan",
    "tear_frame",
    "tear_tail",
]
