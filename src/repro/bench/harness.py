"""Shared infrastructure for the paper-reproduction benchmarks.

Scaling model
-------------
The paper's experiments use ~90 MB of TIGER data and 2/8/24 MB buffer
pools on a Sun SPARC-10.  A pure-Python engine cannot push 456K-tuple
joins through hundreds of benchmark configurations, so every benchmark
runs at ``BENCH_SCALE`` (default 5% of the paper's cardinalities; override
with the ``REPRO_BENCH_SCALE`` environment variable) and the buffer pool
is scaled by the same factor, preserving the buffer-to-data *ratios* that
drive the paper's results.

Reported "seconds" are *simulated* seconds: measured CPU wall time plus
modelled I/O time from the simulated disk (see ``repro.storage.disk``).
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from ..core.stats import JoinResult
from ..data import sequoia, tiger
from ..geometry import CurveMapper, Rect
from ..obs.bench import bench_record, write_bench_file
from ..storage.database import Database
from ..storage.disk import PAGE_SIZE
from ..storage.relation import Relation
from ..storage.tuples import SpatialTuple

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
"""Fraction of the paper's dataset cardinalities the benchmarks run at."""

PAPER_BUFFER_MB = (2.0, 8.0, 24.0)
"""The paper's buffer pool sweep (Figures 7-9, 13-15; Table 4)."""

MIN_POOL_PAGES = 24
"""Floor on the scaled pool: pages do not shrink with the data, so a pool
must still hold the working set of open partition-file tails plus a few
frames, exactly as the paper's 2 MB pool holds 256 pages."""

RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def scaled_buffer_mb(paper_mb: float, scale: float = BENCH_SCALE) -> float:
    """A buffer size preserving the paper's buffer-to-data ratio."""
    floor_mb = MIN_POOL_PAGES * PAGE_SIZE / (1024 * 1024)
    return max(paper_mb * scale, floor_mb)


_GENERATORS = {
    "road": tiger.generate_roads,
    "hydro": tiger.generate_hydrography,
    "rail": tiger.generate_rail,
    "polygon": sequoia.generate_landuse_polygons,
    "island": sequoia.generate_islands,
}


@lru_cache(maxsize=32)
def _cached_tuples(
    name: str, scale: float, clustered: bool
) -> Tuple[SpatialTuple, ...]:
    """Generate (and optionally Hilbert-sort) a dataset once per process.

    Tuples are immutable, so sharing them across benchmark databases is
    safe, and it keeps the benchmark suite's wall time dominated by the
    joins rather than by data generation.
    """
    items = list(_GENERATORS[name](scale))
    if clustered and items:
        universe = Rect.union_all(t.mbr for t in items)
        mapper = CurveMapper(universe)
        items.sort(key=lambda t: mapper.hilbert_of_rect(t.mbr))
    return tuple(items)


def fresh_tiger(
    paper_buffer_mb: float,
    scale: float = BENCH_SCALE,
    clustered: bool = False,
    include: Iterable[str] = ("road", "hydro", "rail"),
) -> Tuple[Database, Dict[str, Relation]]:
    """A new database with TIGER data loaded and the cache cleared (cold)."""
    db = Database(buffer_mb=scaled_buffer_mb(paper_buffer_mb, scale))
    rels = {}
    for name in include:
        rel = db.create_relation(name)
        rel.bulk_load(_cached_tuples(name, scale, clustered))
        rels[name] = rel
    db.pool.clear()
    db.pool.reset_counters()
    return db, rels


def fresh_sequoia(
    paper_buffer_mb: float,
    scale: float = BENCH_SCALE,
    clustered: bool = False,
) -> Tuple[Database, Dict[str, Relation]]:
    db = Database(buffer_mb=scaled_buffer_mb(paper_buffer_mb, scale))
    rels = {}
    for name in ("polygon", "island"):
        rel = db.create_relation(name)
        rel.bulk_load(_cached_tuples(name, scale, clustered))
        rels[name] = rel
    db.pool.clear()
    db.pool.reset_counters()
    return db, rels


class ResultTable:
    """A fixed-width table rendered like the paper's tables and figures."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has {len(self.columns)} columns"
            )
        self.rows.append([_fmt(v) for v in values])

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows), 1)
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = [self.title, "=" * len(self.title), header, sep]
        for row in self.rows:
            lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def emit(self, filename: str) -> str:
        """Render, print, and persist under ``benchmarks/results/``."""
        text = self.render()
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIR / filename
        path.write_text(text + "\n")
        print("\n" + text)
        return text


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def run_cold(db: Database, join: Callable[[], JoinResult]) -> JoinResult:
    """Clear the cache, run the join, return its result."""
    db.pool.clear()
    db.pool.reset_counters()
    return join()


def write_bench_json(
    benchmark: str,
    sweep_results: Dict[float, Dict[str, JoinResult]],
    scale: float = BENCH_SCALE,
) -> "Path":
    """Emit ``BENCH_<benchmark>.json`` for a buffer-sweep result set.

    One schema-validated record per (paper buffer size, algorithm) cell —
    the machine-readable twin of :meth:`ResultTable.emit`'s ``.txt`` table,
    written to the same ``benchmarks/results/`` directory.
    """
    records = [
        bench_record(
            result.report,
            scale=scale,
            buffer_mb=paper_mb,
            buffer_mb_scaled=scaled_buffer_mb(paper_mb, scale),
            algorithm=algo_name,
        )
        for paper_mb, per_algo in sorted(sweep_results.items())
        for algo_name, result in per_algo.items()
    ]
    return write_bench_file(benchmark, records, RESULTS_DIR)
