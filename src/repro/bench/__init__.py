"""Benchmark harness utilities (scaling, cold runs, table rendering)."""

from .harness import (
    BENCH_SCALE,
    PAPER_BUFFER_MB,
    ResultTable,
    fresh_sequoia,
    fresh_tiger,
    run_cold,
    scaled_buffer_mb,
    write_bench_json,
)

__all__ = [
    "BENCH_SCALE",
    "PAPER_BUFFER_MB",
    "ResultTable",
    "fresh_sequoia",
    "fresh_tiger",
    "run_cold",
    "scaled_buffer_mb",
    "write_bench_json",
]
