"""Benchmark harness utilities (scaling, cold runs, table rendering)."""

from .compare import (
    IO_S_TOLERANCE,
    compare_documents,
    compare_files,
    record_key,
)
from .harness import (
    BENCH_SCALE,
    PAPER_BUFFER_MB,
    ResultTable,
    fresh_sequoia,
    fresh_tiger,
    run_cold,
    scaled_buffer_mb,
    write_bench_json,
)

__all__ = [
    "BENCH_SCALE",
    "IO_S_TOLERANCE",
    "PAPER_BUFFER_MB",
    "ResultTable",
    "compare_documents",
    "compare_files",
    "fresh_sequoia",
    "fresh_tiger",
    "record_key",
    "run_cold",
    "scaled_buffer_mb",
    "write_bench_json",
]
