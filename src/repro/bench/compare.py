"""Benchmark-regression gate: diff a fresh ``BENCH_*.json`` vs a baseline.

The engine's cost model is deterministic: for a fixed dataset seed, scale,
and buffer size, the page reads/writes/seeks, candidate counts, and result
counts of a run are exact integers that must not move unless an algorithm
change *meant* to move them.  The gate therefore:

* matches records across the two files by ``(algorithm, buffer_mb)``;
* requires **exact equality** on every deterministic quantity — the
  ``counters`` block (``page_reads``/``page_writes``/``seeks``),
  ``candidates``, and ``result_count``;
* allows **10 % relative drift** on ``io_s``, the modelled I/O seconds
  (deterministic in page counts but accumulated in floating point and
  mildly sensitive to phase interleaving), via :data:`IO_S_TOLERANCE`;
* ignores ``cpu_s``/``total_s`` — measured wall time is machine noise,
  not a regression signal;
* treats a ``scale`` mismatch, a missing record, or an extra record as a
  violation outright: comparing runs at different scales is meaningless.

Re-baselining: when a change *intentionally* shifts the counters (a new
partitioning rule, a smarter sweep), re-emit the baseline at the CI smoke
scale and commit it alongside the change::

    REPRO_BENCH_SCALE=0.01 python -m pytest benchmarks/bench_fig7_road_hydro.py
    cp benchmarks/results/BENCH_fig7_road_hydro.json benchmarks/baselines/

``python -m repro bench-compare <baseline> <fresh>`` exits non-zero on any
violation, printing one line per difference.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Tuple

from ..obs.bench import load_bench_file

IO_S_TOLERANCE = 0.10
"""Allowed relative drift on modelled I/O seconds."""

EXACT_FIELDS = ("candidates", "result_count")
EXACT_COUNTERS = ("page_reads", "page_writes", "seeks")

RecordKey = Tuple[str, float]


def record_key(record: dict) -> RecordKey:
    """Identity of one benchmark cell: (algorithm, paper buffer MB)."""
    return (record["algorithm"], record["buffer_mb"])


def _index(document: dict, label: str, violations: List[str]) -> Dict[RecordKey, dict]:
    out: Dict[RecordKey, dict] = {}
    for record in document["records"]:
        key = record_key(record)
        if key in out:
            violations.append(f"{label}: duplicate record for {key}")
        out[key] = record
    return out


def compare_documents(baseline: dict, fresh: dict) -> List[str]:
    """All the ways ``fresh`` regresses from ``baseline``, as strings.

    An empty list means the gate passes.
    """
    violations: List[str] = []
    if baseline.get("benchmark") != fresh.get("benchmark"):
        violations.append(
            f"benchmark name mismatch: baseline={baseline.get('benchmark')!r} "
            f"fresh={fresh.get('benchmark')!r}"
        )
    base_records = _index(baseline, "baseline", violations)
    fresh_records = _index(fresh, "fresh", violations)

    for key in sorted(set(base_records) - set(fresh_records)):
        violations.append(f"missing record: {key} is in the baseline only")
    for key in sorted(set(fresh_records) - set(base_records)):
        violations.append(f"extra record: {key} is in the fresh run only")

    for key in sorted(set(base_records) & set(fresh_records)):
        violations.extend(
            _compare_record(key, base_records[key], fresh_records[key])
        )
    return violations


def _compare_record(key: RecordKey, base: dict, fresh: dict) -> List[str]:
    out: List[str] = []
    if base["scale"] != fresh["scale"]:
        out.append(
            f"{key}: scale mismatch (baseline {base['scale']} vs fresh "
            f"{fresh['scale']}) — re-run at the baseline's scale"
        )
        return out  # every other number is incomparable across scales

    for field in EXACT_FIELDS:
        if base[field] != fresh[field]:
            out.append(
                f"{key}: {field} drifted from {base[field]} to {fresh[field]}"
            )
    for counter in EXACT_COUNTERS:
        b = base["counters"].get(counter)
        f = fresh["counters"].get(counter)
        if b != f:
            out.append(
                f"{key}: counters.{counter} drifted from {b} to {f}"
            )

    base_io, fresh_io = base["io_s"], fresh["io_s"]
    if base_io == 0.0:
        if fresh_io != 0.0:
            out.append(f"{key}: io_s drifted from 0 to {fresh_io:.6f}")
    elif abs(fresh_io - base_io) / abs(base_io) > IO_S_TOLERANCE:
        out.append(
            f"{key}: io_s drifted {100.0 * (fresh_io - base_io) / base_io:+.1f}% "
            f"({base_io:.4f} -> {fresh_io:.4f}; tolerance "
            f"{IO_S_TOLERANCE:.0%})"
        )
    return out


def compare_files(baseline_path: "Path | str", fresh_path: "Path | str") -> List[str]:
    """Load (schema-validating both sides) and compare two bench files."""
    baseline = load_bench_file(baseline_path)
    fresh = load_bench_file(fresh_path)
    return compare_documents(baseline, fresh)
