"""Relations: named collections of spatial tuples with catalog statistics.

The catalog keeps exactly what PBSM's filter step needs (§3.1): the
cardinality and the *universe* — the minimum cover of the join attribute of
all tuples — which is maintained incrementally on insert, the way a real
system would keep it in its statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, NamedTuple, Optional

from ..geometry import Rect
from .buffer import BufferPool
from .heapfile import RID, HeapFile
from .tuples import SpatialTuple, deserialize_tuple, serialize_tuple


class OID(NamedTuple):
    """System-wide tuple identifier: file + record id.

    OIDs order lexicographically by (file, page, slot); sorting candidate
    pairs on OIDs therefore sorts them into physical disk order, which is
    what the refinement step's sequential-access strategy relies on.
    """

    file_id: int
    page_no: int
    slot: int

    @property
    def rid(self) -> RID:
        return RID(self.page_no, self.slot)


@dataclass
class CatalogEntry:
    """Per-relation statistics kept by the (toy) system catalog."""

    name: str
    cardinality: int = 0
    universe: Optional[Rect] = None
    total_points: int = 0

    def observe(self, t: SpatialTuple) -> None:
        self.cardinality += 1
        self.total_points += t.num_points
        mbr = t.mbr
        self.universe = mbr if self.universe is None else self.universe.union(mbr)

    @property
    def avg_points(self) -> float:
        return self.total_points / self.cardinality if self.cardinality else 0.0


class Relation:
    """A heap file of spatial tuples plus catalog statistics."""

    def __init__(self, pool: BufferPool, name: str):
        self.heap = HeapFile(pool)
        self.catalog = CatalogEntry(name)

    @property
    def name(self) -> str:
        return self.catalog.name

    @property
    def file_id(self) -> int:
        return self.heap.file_id

    def __len__(self) -> int:
        return self.catalog.cardinality

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #

    def insert(self, t: SpatialTuple) -> OID:
        rid = self.heap.append(serialize_tuple(t))
        self.catalog.observe(t)
        return OID(self.heap.file_id, rid.page_no, rid.slot)

    def bulk_load(self, tuples: Iterable[SpatialTuple]) -> int:
        """Append many tuples; returns the number loaded."""
        n = 0
        for t in tuples:
            self.insert(t)
            n += 1
        return n

    # ------------------------------------------------------------------ #
    # access paths
    # ------------------------------------------------------------------ #

    def scan(self) -> Iterator[tuple[OID, SpatialTuple]]:
        """Sequential scan in physical order."""
        fid = self.heap.file_id
        for rid, record in self.heap.scan():
            yield OID(fid, rid.page_no, rid.slot), deserialize_tuple(record)

    def fetch(self, oid: OID) -> SpatialTuple:
        """Fetch one tuple by OID (a random access unless buffered)."""
        if oid.file_id != self.heap.file_id:
            raise ValueError(
                f"OID {oid} does not belong to relation {self.name!r}"
            )
        return deserialize_tuple(self.heap.get(oid.rid))

    # ------------------------------------------------------------------ #
    # catalog accessors
    # ------------------------------------------------------------------ #

    @property
    def universe(self) -> Rect:
        if self.catalog.universe is None:
            raise ValueError(f"relation {self.name!r} is empty")
        return self.catalog.universe

    def size_bytes(self) -> int:
        return self.heap.size_bytes()

    @property
    def num_pages(self) -> int:
        return self.heap.num_pages
