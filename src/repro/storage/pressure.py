"""Disk-space governance: a process-wide byte budget every writer charges.

PBSM's whole point is graceful behaviour inside a fixed resource budget,
and the repo meters memory pressure faithfully — but until now disk was
treated as infinite: spill files, checkpoint run directories, and the
serve artifact cache all grew without bound, and nothing survived a
failed-for-space write.  :class:`DiskBudget` closes that gap.

A budget is a thread-safe ledger of bytes *charged* (before a write
lands) and *released* (when the bytes leave the disk), with:

* an optional hard ceiling (``max_bytes``) past which a charge raises
  :class:`~repro.storage.errors.DiskFullError` — the typed, catchable
  analogue of ``ENOSPC``;
* a high-watermark gauge (the unconstrained peak footprint, which the
  storage-pressure drill uses to derive its constrained budgets);
* per-category accounting across :data:`CATEGORIES` — ``spill``
  (partition spill files), ``checkpoint`` (manifests + result logs),
  ``cache`` (serve-tier artifact entries), ``journal`` (reserved for
  flight-recorder output);
* a hook for the seeded ``disk_full`` fault injector
  (:class:`~repro.faults.inject.DiskFullInjector`): each category keeps
  a monotonic clock of bytes successfully charged, and the injector
  fires when a charge's byte interval crosses a planned ordinal —
  replayable like every other fault kind.

Chargers: ``SpillWriter`` (per framed record, released on ``abort``),
``atomic_write_bytes`` (manifest rewrites), ``ResultLog.append`` (result
frames), and the serve cache releases evicted or quarantined entries.
The budget is coordinator-side state and is never shipped to worker
processes; all charged writes happen in the coordinator.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from ..obs.metrics import NULL_METRICS
from .errors import DiskFullError

CATEGORY_SPILL = "spill"
CATEGORY_CHECKPOINT = "checkpoint"
CATEGORY_CACHE = "cache"
CATEGORY_JOURNAL = "journal"

CATEGORIES = (
    CATEGORY_SPILL,
    CATEGORY_CHECKPOINT,
    CATEGORY_CACHE,
    CATEGORY_JOURNAL,
)
"""The accounting categories every charge and release is keyed by."""


class DiskBudget:
    """Thread-safe disk-space ledger with an optional hard ceiling.

    ``max_bytes=None`` disables enforcement but keeps the metering: the
    high watermark of an unconstrained run is exactly the peak footprint
    a constrained rerun must survive inside.
    """

    def __init__(
        self,
        max_bytes: Optional[int] = None,
        *,
        metrics=NULL_METRICS,
        injector=None,
    ):
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("disk budget cannot be negative")
        self.max_bytes = max_bytes
        self.metrics = metrics
        self.injector = injector
        self._lock = threading.Lock()
        self.used = 0
        self.high_watermark = 0
        self.by_category: Dict[str, int] = {}
        self.peak_by_category: Dict[str, int] = {}
        self.charged_clock: Dict[str, int] = {}
        """Per-category monotonic clock of bytes *successfully* charged —
        never decremented by releases, so the fault injector's byte
        ordinals mean the same thing on every replay."""
        self.charges = 0
        self.denials = 0

    def bind(self, *, metrics=None, injector=None) -> None:
        """Late wiring for a budget constructed before its run context.

        Only the arguments given are set; an engine binding its metrics
        registry does not clobber an injector the caller attached."""
        if metrics is not None:
            self.metrics = metrics
        if injector is not None:
            self.injector = injector

    # ------------------------------------------------------------------ #
    # the ledger
    # ------------------------------------------------------------------ #

    def charge(self, nbytes: int, category: str = CATEGORY_SPILL) -> None:
        """Reserve ``nbytes`` before writing them, or raise.

        Raises :class:`DiskFullError` when the ceiling would be exceeded
        (the ledger is untouched — a denied write was never accounted)
        or when the attached injector's plan says this byte interval of
        this category fails.  Injected and genuine exhaustion raise the
        same type on purpose: recovery code must not tell them apart.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("cannot charge a negative byte count")
        with self._lock:
            clock = self.charged_clock.get(category, 0)
            if self.injector is not None:
                # May raise an injected DiskFullError; the clock does not
                # advance, so a retried charge covers the same interval
                # (with the one-shot ordinal now spent).
                self.injector.check(category, clock, clock + nbytes)
            if (
                self.max_bytes is not None
                and self.used + nbytes > self.max_bytes
            ):
                self.denials += 1
                self.metrics.counter("disk.budget.denials").inc()
                raise DiskFullError(
                    f"disk budget exhausted: {category} write of {nbytes} "
                    f"bytes over {self.used}/{self.max_bytes} used",
                    category=category,
                    requested=nbytes,
                    used=self.used,
                    max_bytes=self.max_bytes,
                )
            self.charges += 1
            self.used += nbytes
            self.charged_clock[category] = clock + nbytes
            total = self.by_category.get(category, 0) + nbytes
            self.by_category[category] = total
            if total > self.peak_by_category.get(category, 0):
                self.peak_by_category[category] = total
            if self.used > self.high_watermark:
                self.high_watermark = self.used
            self.metrics.counter("disk.budget.charged_bytes").inc(nbytes)
            self.metrics.counter(
                f"disk.budget.charged_bytes.{category}"
            ).inc(nbytes)
            self.metrics.gauge("disk.budget.used_bytes").set(self.used)
            self.metrics.gauge("disk.budget.hwm_bytes").set(
                self.high_watermark
            )

    def release(self, nbytes: int, category: str = CATEGORY_SPILL) -> None:
        """Return ``nbytes`` to the budget (the bytes left the disk).

        Clamped at zero both globally and per category, so a release of
        bytes charged under another category (the serve cache frees run
        directories the checkpoint store charged) still frees global
        headroom without driving any ledger negative.
        """
        nbytes = int(nbytes)
        if nbytes <= 0:
            return
        with self._lock:
            self.used = max(0, self.used - nbytes)
            self.by_category[category] = max(
                0, self.by_category.get(category, 0) - nbytes
            )
            self.metrics.counter("disk.budget.released_bytes").inc(nbytes)
            self.metrics.gauge("disk.budget.used_bytes").set(self.used)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def available(self) -> Optional[int]:
        """Bytes of headroom left, or ``None`` for an unbounded budget."""
        with self._lock:
            if self.max_bytes is None:
                return None
            return max(0, self.max_bytes - self.used)

    def would_fit(self, nbytes: int) -> bool:
        with self._lock:
            if self.max_bytes is None:
                return True
            return self.used + int(nbytes) <= self.max_bytes

    def snapshot(self) -> dict:
        """The ledger's current state (serve stats, BENCH disk blocks)."""
        with self._lock:
            return {
                "max_bytes": self.max_bytes,
                "used_bytes": self.used,
                "high_watermark_bytes": self.high_watermark,
                "by_category": dict(sorted(self.by_category.items())),
                "peak_by_category": dict(
                    sorted(self.peak_by_category.items())
                ),
                "charges": self.charges,
                "denials": self.denials,
            }
