"""Typed storage exceptions: corruption vs programmer error, distinguishable.

Every storage-layer failure used to surface as a bare ``ValueError`` or
``KeyError``, which forced callers into string matching to tell "a spill
frame is torn on disk" apart from "you passed a short page buffer".  The
hierarchy here fixes that:

* :class:`StorageError` — root; catch it to mean "the storage layer failed".
* :class:`SpillCorruptionError` — a spill file's on-disk bytes are wrong
  (torn frame header, truncated record, CRC mismatch).  Carries the path,
  the frame index, and the byte offset of the damage, so a coordinator can
  quarantine exactly the file that is lying.
* :class:`ManifestCorruptionError` — a join-checkpoint manifest cannot be
  loaded as a trustworthy prefix of its event log (damaged header frame,
  mid-log framing break, or a CRC-valid frame holding a malformed event).
* :class:`DiskFullError` — a write was denied by the disk-space budget
  (:mod:`repro.storage.pressure`), the typed analogue of ``ENOSPC``.
  Carries the category, the requested and used byte counts, and the
  ceiling, so every layer's recovery move (sweep, gc, evict, degrade)
  can act on exactly what was denied.
* :class:`UnallocatedPageError` — page I/O against a page that was never
  allocated.
* :class:`PageSizeError` — a page buffer of the wrong length.
* :class:`UnknownFileError` — an operation against a file id the simulated
  disk does not know.

The leaf classes double-inherit from the builtin exceptions they replaced
(``ValueError`` / ``KeyError``), so pre-hierarchy callers and tests that
catch the builtins keep working unchanged.
"""

from __future__ import annotations


class StorageError(Exception):
    """Root of the storage-layer exception hierarchy."""


class SpillCorruptionError(StorageError, ValueError):
    """A spill file's framing or checksum is wrong on disk.

    ``path``/``frame_index``/``offset`` locate the damage: the file, the
    zero-based frame whose header or payload failed, and the byte offset
    of that frame's header within the file.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str = "",
        frame_index: int = -1,
        offset: int = -1,
    ):
        super().__init__(message)
        self.path = str(path)
        self.frame_index = frame_index
        self.offset = offset

    def __reduce__(self):
        # Keyword-only attributes need an explicit recipe to survive the
        # pickle round trip from a worker process to the coordinator.
        return (
            _rebuild_spill_corruption,
            (self.args[0] if self.args else "", self.path, self.frame_index, self.offset),
        )


def _rebuild_spill_corruption(
    message: str, path: str, frame_index: int, offset: int
) -> SpillCorruptionError:
    return SpillCorruptionError(
        message, path=path, frame_index=frame_index, offset=offset
    )


class DiskFullError(StorageError, OSError):
    """A write was denied by the disk-space budget (modelled ``ENOSPC``).

    Raised by :meth:`repro.storage.pressure.DiskBudget.charge` *before*
    any bytes hit the disk, so a caught denial never leaves a torn file
    behind.  ``injected`` marks a seeded fault-plan denial (one-shot; a
    retried charge proceeds) as opposed to genuine exhaustion — recovery
    code deliberately treats both identically, the flag exists for
    journals and assertions only.
    """

    def __init__(
        self,
        message: str,
        *,
        category: str = "",
        requested: int = 0,
        used: int = 0,
        max_bytes: int = -1,
        injected: bool = False,
    ):
        super().__init__(message)
        self.category = str(category)
        self.requested = requested
        self.used = used
        self.max_bytes = max_bytes
        self.injected = injected

    def __reduce__(self):
        return (
            _rebuild_disk_full,
            (
                self.args[0] if self.args else "",
                self.category, self.requested, self.used,
                self.max_bytes, self.injected,
            ),
        )


def _rebuild_disk_full(
    message: str,
    category: str,
    requested: int,
    used: int,
    max_bytes: int,
    injected: bool,
) -> DiskFullError:
    return DiskFullError(
        message, category=category, requested=requested, used=used,
        max_bytes=max_bytes, injected=injected,
    )


class ManifestCorruptionError(StorageError, ValueError):
    """A join manifest's bytes cannot be trusted.

    Raised by the checkpoint loader when the manifest's header frame is
    damaged, a CRC-valid frame carries something that is not a well-formed
    event, or the framing is broken in the middle of the log (a torn
    *tail* is not corruption — the loader truncates it to the last intact
    event instead).  The loader's contract is: return a strict prefix of
    the true event log, or raise this — never wrong state.
    """

    def __init__(self, message: str, *, path: str = "", frame_index: int = -1):
        super().__init__(message)
        self.path = str(path)
        self.frame_index = frame_index


class UnallocatedPageError(StorageError, KeyError):
    """Read or write of a page that was never allocated."""

    def __str__(self) -> str:
        # KeyError repr-quotes its message; keep the plain text readable.
        return self.args[0] if self.args else ""


class PageSizeError(StorageError, ValueError):
    """A page buffer whose length is not exactly ``PAGE_SIZE``."""


class UnknownFileError(StorageError, KeyError):
    """An operation against a file id the disk has no record of."""

    def __str__(self) -> str:
        return self.args[0] if self.args else ""
