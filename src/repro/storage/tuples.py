"""Spatial tuples and their on-page serialisation.

A tuple mirrors the TIGER/Sequoia records of the paper: a spatial feature
(polyline or polygon-with-holes) plus a handful of alphanumeric attributes
(name, classification).  Serialisation is explicit ``struct`` packing so
that relation sizes in pages are meaningful and comparable to the paper's
megabyte figures (a TIGER road tuple with 8 points packs to ~150 bytes here
vs ~137 in Paradise).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Union

from ..geometry import Polygon, Polyline, Rect

Geometry = Union[Polyline, Polygon]

_GEOM_POLYLINE = 1
_GEOM_POLYGON = 2

_HEAD = struct.Struct("<BIH")  # geom tag, feature id, category
_U16 = struct.Struct("<H")
_POINT = struct.Struct("<dd")


@dataclass(frozen=True)
class SpatialTuple:
    """One record of a spatial relation."""

    feature_id: int
    category: int
    name: str
    geom: Geometry

    @property
    def mbr(self) -> Rect:
        return self.geom.mbr

    @property
    def num_points(self) -> int:
        return self.geom.num_points


def serialize_tuple(t: SpatialTuple) -> bytes:
    """Pack a tuple into bytes (inverse of :func:`deserialize_tuple`)."""
    if isinstance(t.geom, Polyline):
        tag = _GEOM_POLYLINE
    elif isinstance(t.geom, Polygon):
        tag = _GEOM_POLYGON
    else:
        raise TypeError(f"unsupported geometry: {type(t.geom).__name__}")

    parts = [_HEAD.pack(tag, t.feature_id, t.category)]
    name_bytes = t.name.encode("utf-8")
    if len(name_bytes) > 0xFFFF:
        raise ValueError("name too long")
    parts.append(_U16.pack(len(name_bytes)))
    parts.append(name_bytes)

    if tag == _GEOM_POLYLINE:
        points = t.geom.points
        parts.append(_U16.pack(len(points)))
        for x, y in points:
            parts.append(_POINT.pack(x, y))
    else:
        rings = t.geom.rings
        parts.append(_U16.pack(len(rings)))
        for ring in rings:
            parts.append(_U16.pack(len(ring)))
            for x, y in ring:
                parts.append(_POINT.pack(x, y))
    return b"".join(parts)


def deserialize_tuple(data: bytes) -> SpatialTuple:
    """Unpack bytes produced by :func:`serialize_tuple`."""
    tag, feature_id, category = _HEAD.unpack_from(data, 0)
    pos = _HEAD.size
    (name_len,) = _U16.unpack_from(data, pos)
    pos += _U16.size
    name = data[pos : pos + name_len].decode("utf-8")
    pos += name_len

    geom: Geometry
    if tag == _GEOM_POLYLINE:
        (npoints,) = _U16.unpack_from(data, pos)
        pos += _U16.size
        points = []
        for _ in range(npoints):
            x, y = _POINT.unpack_from(data, pos)
            pos += _POINT.size
            points.append((x, y))
        geom = Polyline(points)
    elif tag == _GEOM_POLYGON:
        (nrings,) = _U16.unpack_from(data, pos)
        pos += _U16.size
        rings = []
        for _ in range(nrings):
            (npoints,) = _U16.unpack_from(data, pos)
            pos += _U16.size
            ring = []
            for _ in range(npoints):
                x, y = _POINT.unpack_from(data, pos)
                pos += _POINT.size
                ring.append((x, y))
            rings.append(ring)
        geom = Polygon(rings[0], rings[1:])
    else:
        raise ValueError(f"unknown geometry tag {tag}")
    return SpatialTuple(feature_id, category, name, geom)


def tuple_size_bytes(t: SpatialTuple) -> int:
    """Serialised size without materialising the bytes twice."""
    name_len = len(t.name.encode("utf-8"))
    base = _HEAD.size + _U16.size + name_len
    if isinstance(t.geom, Polyline):
        return base + _U16.size + len(t.geom.points) * _POINT.size
    rings = t.geom.rings
    return base + _U16.size + sum(
        _U16.size + len(ring) * _POINT.size for ring in rings
    )
