"""A minimal database facade: one simulated disk + one buffer pool.

The single entry point most examples use::

    db = Database(buffer_mb=8.0)
    roads = db.create_relation("roads")
    roads.bulk_load(generate_roads(...))
"""

from __future__ import annotations

from typing import Dict, Optional

from .buffer import BufferPool, pages_for_megabytes
from .disk import IOCostModel, SimulatedDisk
from .relation import Relation


class Database:
    """Owns the simulated disk, the buffer pool, and named relations."""

    def __init__(
        self,
        buffer_mb: float = 8.0,
        cost_model: Optional[IOCostModel] = None,
    ):
        self.disk = SimulatedDisk(cost_model)
        self.pool = BufferPool(self.disk, pages_for_megabytes(buffer_mb))
        self.relations: Dict[str, Relation] = {}

    def create_relation(self, name: str) -> Relation:
        if name in self.relations:
            raise ValueError(f"relation {name!r} already exists")
        rel = Relation(self.pool, name)
        self.relations[name] = rel
        return rel

    def relation(self, name: str) -> Relation:
        return self.relations[name]

    def drop_relation(self, name: str) -> None:
        rel = self.relations.pop(name)
        rel.heap.drop()

    @property
    def buffer_pages(self) -> int:
        return self.pool.capacity

    def buffer_bytes(self) -> int:
        from .disk import PAGE_SIZE

        return self.pool.capacity * PAGE_SIZE
