"""An LRU buffer pool over the simulated disk.

Mirrors the SHORE behaviours the paper leans on:

* fixed number of frames (the experiments sweep 2 MB / 8 MB / 24 MB pools);
* LRU replacement with pinning;
* write clustering — when dirty pages are flushed, they are sorted by
  (file, page number) so runs of consecutive pages become sequential writes
  (§4.6: "the storage manager forms a sorted list of all the dirty pages in
  the buffer pool, and tries to find pages that are consecutive on disk").
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List

from .disk import PAGE_SIZE, PageId, SimulatedDisk


class BufferPoolError(RuntimeError):
    pass


@dataclass
class PoolCounters:
    """Cumulative buffer-pool counters; snapshot-and-diff to meter a span."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_flushes: int = 0

    def copy(self) -> "PoolCounters":
        return PoolCounters(self.hits, self.misses, self.evictions, self.dirty_flushes)

    def minus(self, earlier: "PoolCounters") -> "PoolCounters":
        return PoolCounters(
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.evictions - earlier.evictions,
            self.dirty_flushes - earlier.dirty_flushes,
        )


@dataclass
class _Frame:
    data: bytearray
    dirty: bool = False
    pin_count: int = 0


def pages_for_megabytes(megabytes: float) -> int:
    """Frame count for a pool of the given size (the paper's 2/8/24 MB)."""
    pages = int(megabytes * 1024 * 1024 / PAGE_SIZE)
    if pages < 1:
        raise ValueError(f"buffer pool of {megabytes} MB holds no pages")
    return pages


class BufferPool:
    """LRU page cache with pin counts and clustered dirty-page flushing."""

    def __init__(self, disk: SimulatedDisk, capacity_pages: int):
        if capacity_pages < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.disk = disk
        self.capacity = capacity_pages
        self._frames: "OrderedDict[PageId, _Frame]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_flushes = 0

    # ------------------------------------------------------------------ #
    # core fix/unfix protocol
    # ------------------------------------------------------------------ #

    def get_page(self, file_id: int, page_no: int, pin: bool = False) -> bytearray:
        """Return the frame for a page, faulting it in if needed.

        The returned bytearray is the live frame: callers that mutate it must
        follow up with :meth:`mark_dirty`.  With ``pin=True`` the frame is
        protected from eviction until :meth:`unpin`.
        """
        pid = (file_id, page_no)
        frame = self._frames.get(pid)
        if frame is not None:
            self.hits += 1
            self._frames.move_to_end(pid)
        else:
            self.misses += 1
            self._make_room()
            frame = _Frame(bytearray(self.disk.read_page(file_id, page_no)))
            self._frames[pid] = frame
        if pin:
            frame.pin_count += 1
        return frame.data

    def new_page(self, file_id: int, pin: bool = False) -> int:
        """Allocate a fresh page and cache it dirty; returns its number."""
        page_no = self.disk.allocate_page(file_id)
        self._make_room()
        frame = _Frame(bytearray(PAGE_SIZE), dirty=True)
        if pin:
            frame.pin_count += 1
        self._frames[(file_id, page_no)] = frame
        return page_no

    def mark_dirty(self, file_id: int, page_no: int) -> None:
        frame = self._frames.get((file_id, page_no))
        if frame is None:
            raise BufferPoolError(f"page ({file_id}, {page_no}) not resident")
        frame.dirty = True

    def unpin(self, file_id: int, page_no: int) -> None:
        frame = self._frames.get((file_id, page_no))
        if frame is None or frame.pin_count == 0:
            raise BufferPoolError(f"page ({file_id}, {page_no}) not pinned")
        frame.pin_count -= 1

    # ------------------------------------------------------------------ #
    # replacement & flushing
    # ------------------------------------------------------------------ #

    def _make_room(self) -> None:
        if len(self._frames) < self.capacity:
            return
        # Evict the least-recently-used unpinned frame.  If it is dirty,
        # flush it together with dirty neighbours the way SHORE does.
        victim: PageId | None = None
        for pid, frame in self._frames.items():
            if frame.pin_count == 0:
                victim = pid
                break
        if victim is None:
            raise BufferPoolError("all frames pinned; cannot evict")
        frame = self._frames.pop(victim)
        self.evictions += 1
        if frame.dirty:
            self._flush_run(victim, frame)

    def _flush_run(self, victim: PageId, victim_frame: _Frame) -> None:
        """Write the victim plus resident dirty pages *consecutive to it* on
        disk, in page order — SHORE's write clustering: "forms a sorted list
        of all the dirty pages ... and tries to find pages that are
        consecutive on the disk".  Non-adjacent dirty pages stay resident
        (they may absorb further writes before they must go out)."""
        file_id, page_no = victim
        run = {page_no: victim_frame}
        lo = page_no - 1
        while True:
            neighbour = self._frames.get((file_id, lo))
            if neighbour is None or not neighbour.dirty or neighbour.pin_count:
                break
            run[lo] = neighbour
            lo -= 1
        hi = page_no + 1
        while True:
            neighbour = self._frames.get((file_id, hi))
            if neighbour is None or not neighbour.dirty or neighbour.pin_count:
                break
            run[hi] = neighbour
            hi += 1
        for no in sorted(run):
            frame = run[no]
            self.disk.write_page(file_id, no, bytes(frame.data))
            frame.dirty = False
            self.dirty_flushes += 1

    def flush_all(self) -> None:
        """Write every dirty frame (clustered); frames stay resident."""
        dirty = [
            (pid, frame) for pid, frame in self._frames.items() if frame.dirty
        ]
        dirty.sort(key=lambda item: item[0])
        for pid, frame in dirty:
            self.disk.write_page(pid[0], pid[1], bytes(frame.data))
            frame.dirty = False
            self.dirty_flushes += 1

    def clear(self) -> None:
        """Flush everything and empty the pool (cold-cache experiment start)."""
        self.flush_all()
        for pid, frame in self._frames.items():
            if frame.pin_count:
                raise BufferPoolError(f"page {pid} pinned during clear")
        self._frames.clear()

    def invalidate_file(self, file_id: int) -> None:
        """Drop (without writing) all frames of a file being deleted."""
        stale = [pid for pid in self._frames if pid[0] == file_id]
        for pid in stale:
            frame = self._frames[pid]
            if frame.pin_count:
                raise BufferPoolError(f"page {pid} pinned during file drop")
            del self._frames[pid]

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def resident_pages(self) -> int:
        return len(self._frames)

    def resident_page_ids(self) -> List[PageId]:
        return list(self._frames)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> PoolCounters:
        return PoolCounters(self.hits, self.misses, self.evictions, self.dirty_flushes)

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_flushes = 0
