"""External merge sort over the buffer pool.

The paper's machinery sorts three record streams that may not fit in
memory: key-pointers during bulk loading, candidate OID pairs at the start
of the refinement step, and the refinement batches themselves.  This module
provides a memory-bounded external sort for arbitrary byte records with a
caller-supplied key: records are collected into memory-budgeted sorted runs
spilled to temporary heap files, then k-way merged with ``heapq``.

All spill and merge traffic goes through the buffer pool, so an external
sort costs real (simulated) I/O — runs are written and read back
sequentially, just as the cost models of the era assume.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator, List

from .buffer import BufferPool
from .heapfile import HeapFile

DEFAULT_MEMORY_BYTES = 1 << 20


class ExternalSorter:
    """Memory-bounded sort of byte records by a derived key."""

    def __init__(
        self,
        pool: BufferPool,
        key: Callable[[bytes], object],
        memory_bytes: int = DEFAULT_MEMORY_BYTES,
    ):
        if memory_bytes <= 0:
            raise ValueError("memory budget must be positive")
        self.pool = pool
        self.key = key
        self.memory_bytes = memory_bytes
        self._current: List[bytes] = []
        self._current_bytes = 0
        self._runs: List[HeapFile] = []
        self._closed = False
        self.spilled_runs = 0

    # ------------------------------------------------------------------ #

    def add(self, record: bytes) -> None:
        if self._closed:
            raise RuntimeError("sorter already consumed")
        self._current.append(record)
        self._current_bytes += len(record)
        if self._current_bytes >= self.memory_bytes:
            self._spill()

    def add_all(self, records: Iterable[bytes]) -> None:
        for record in records:
            self.add(record)

    def _spill(self) -> None:
        if not self._current:
            return
        self._current.sort(key=self.key)
        run = HeapFile(self.pool)
        for record in self._current:
            run.append(record)
        self._runs.append(run)
        self.spilled_runs += 1
        self._current = []
        self._current_bytes = 0

    # ------------------------------------------------------------------ #

    def sorted_records(self) -> Iterator[bytes]:
        """Yield all records in key order; consumes the sorter.

        With no spilled runs this is a plain in-memory sort.  Otherwise the
        final in-memory batch joins a k-way heap merge over the run files,
        which are dropped as they drain.
        """
        if self._closed:
            raise RuntimeError("sorter already consumed")
        self._closed = True
        if not self._runs:
            self._current.sort(key=self.key)
            yield from self._current
            self._current = []
            return
        self._spill()  # the tail batch becomes the final run
        try:
            streams = [
                (record for _rid, record in run.scan()) for run in self._runs
            ]
            merged = heapq.merge(
                *streams, key=self.key
            )
            yield from merged
        finally:
            for run in self._runs:
                run.drop()
            self._runs = []


def external_sort(
    pool: BufferPool,
    records: Iterable[bytes],
    key: Callable[[bytes], object],
    memory_bytes: int = DEFAULT_MEMORY_BYTES,
) -> Iterator[bytes]:
    """One-shot convenience wrapper around :class:`ExternalSorter`."""
    sorter = ExternalSorter(pool, key, memory_bytes)
    sorter.add_all(records)
    return sorter.sorted_records()
