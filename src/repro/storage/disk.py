"""A simulated disk with an explicit I/O cost model.

The paper's experiments ran on a Sun SPARC-10 with a 2 GB Seagate SCSI disk
and SHORE as the storage manager.  We replace the physical disk with an
in-memory page store that *accounts* for every page read and write,
classifying each access as sequential (the page follows the previous access
on the same device) or random (requires a seek).  Simulated I/O time is then
``seeks * seek_time + transfers * transfer_time``, with 1996-era defaults.

All page traffic in the repository goes through here, so buffer-pool-size
experiments and the paper's I/O-contribution breakdowns (Table 4) are
reproducible and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .errors import PageSizeError, UnallocatedPageError, UnknownFileError

PAGE_SIZE = 8192
"""Bytes per page, matching SHORE's default."""

PageId = Tuple[int, int]
"""(file_id, page_number)"""


@dataclass
class IOCostModel:
    """Charges for the simulated disk, in seconds.

    Defaults model a mid-90s SCSI disk: ~10 ms average seek + rotational
    delay, ~5 MB/s transfer (an 8 KB page in ~1.6 ms).
    """

    seek_time: float = 0.010
    transfer_time: float = 0.0016


@dataclass
class DiskStats:
    """Cumulative access counters; snapshot-and-diff to meter a phase."""

    page_reads: int = 0
    page_writes: int = 0
    random_reads: int = 0
    random_writes: int = 0
    pages_allocated: int = 0

    def copy(self) -> "DiskStats":
        return DiskStats(
            self.page_reads,
            self.page_writes,
            self.random_reads,
            self.random_writes,
            self.pages_allocated,
        )

    def minus(self, earlier: "DiskStats") -> "DiskStats":
        return DiskStats(
            self.page_reads - earlier.page_reads,
            self.page_writes - earlier.page_writes,
            self.random_reads - earlier.random_reads,
            self.random_writes - earlier.random_writes,
            self.pages_allocated - earlier.pages_allocated,
        )

    @property
    def total_ios(self) -> int:
        return self.page_reads + self.page_writes

    @property
    def seeks(self) -> int:
        return self.random_reads + self.random_writes

    def io_time(self, cost: IOCostModel) -> float:
        return self.seeks * cost.seek_time + self.total_ios * cost.transfer_time


class SimulatedDisk:
    """In-memory page store with sequential/random access classification."""

    def __init__(self, cost_model: IOCostModel | None = None):
        self.cost_model = cost_model or IOCostModel()
        self.stats = DiskStats()
        self._pages: Dict[PageId, bytes] = {}
        self._file_lengths: Dict[int, int] = {}
        self._next_file_id = 0
        self._last_access_per_file: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # file management
    # ------------------------------------------------------------------ #

    def create_file(self) -> int:
        fid = self._next_file_id
        self._next_file_id += 1
        self._file_lengths[fid] = 0
        return fid

    def drop_file(self, file_id: int) -> None:
        if file_id not in self._file_lengths:
            raise UnknownFileError(f"drop of unknown file {file_id}")
        npages = self._file_lengths.pop(file_id)
        for page_no in range(npages):
            self._pages.pop((file_id, page_no), None)
        self._last_access_per_file.pop(file_id, None)

    def file_length(self, file_id: int) -> int:
        """Number of pages allocated to the file."""
        if file_id not in self._file_lengths:
            raise UnknownFileError(f"length of unknown file {file_id}")
        return self._file_lengths[file_id]

    def file_ids(self) -> List[int]:
        return list(self._file_lengths)

    def allocate_page(self, file_id: int) -> int:
        """Extend the file by one (zeroed) page; returns its page number."""
        page_no = self._file_lengths[file_id]
        self._file_lengths[file_id] = page_no + 1
        self._pages[(file_id, page_no)] = bytes(PAGE_SIZE)
        self.stats.pages_allocated += 1
        return page_no

    # ------------------------------------------------------------------ #
    # page I/O
    # ------------------------------------------------------------------ #

    def _is_sequential(self, pid: PageId) -> bool:
        """Sequential = next page of the same file's current access stream.

        Head position is tracked per file, modelling the per-stream
        prefetch/write-behind a real I/O subsystem provides: a scan
        interleaved with writes to another file does not pay a seek per
        page, but random access within any one file does.
        """
        last = self._last_access_per_file.get(pid[0])
        return last is not None and pid[1] == last + 1

    def read_page(self, file_id: int, page_no: int) -> bytes:
        pid = (file_id, page_no)
        if pid not in self._pages:
            raise UnallocatedPageError(f"read of unallocated page {pid}")
        self.stats.page_reads += 1
        if not self._is_sequential(pid):
            self.stats.random_reads += 1
        self._last_access_per_file[pid[0]] = pid[1]
        return self._pages[pid]

    def write_page(self, file_id: int, page_no: int, data: bytes) -> None:
        if len(data) != PAGE_SIZE:
            raise PageSizeError(f"page must be exactly {PAGE_SIZE} bytes")
        pid = (file_id, page_no)
        if pid not in self._pages:
            raise UnallocatedPageError(f"write of unallocated page {pid}")
        self.stats.page_writes += 1
        if not self._is_sequential(pid):
            self.stats.random_writes += 1
        self._last_access_per_file[pid[0]] = pid[1]
        self._pages[pid] = bytes(data)

    # ------------------------------------------------------------------ #
    # metering helpers
    # ------------------------------------------------------------------ #

    def snapshot(self) -> DiskStats:
        return self.stats.copy()

    def io_time_since(self, snapshot: DiskStats) -> float:
        return self.stats.minus(snapshot).io_time(self.cost_model)
