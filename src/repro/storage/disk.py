"""A simulated disk with an explicit I/O cost model.

The paper's experiments ran on a Sun SPARC-10 with a 2 GB Seagate SCSI disk
and SHORE as the storage manager.  We replace the physical disk with an
in-memory page store that *accounts* for every page read and write,
classifying each access as sequential (the page follows the previous access
on the same device) or random (requires a seek).  Simulated I/O time is then
``seeks * seek_time + transfers * transfer_time``, with 1996-era defaults.

All page traffic in the repository goes through here, so buffer-pool-size
experiments and the paper's I/O-contribution breakdowns (Table 4) are
reproducible and deterministic.

This module also owns the **atomic write-ahead protocol** the checkpoint
subsystem persists join manifests with: :func:`atomic_write_bytes` writes
a temp file, fsyncs it, and renames it over the target, so a reader only
ever sees the old bytes or the new bytes — never a tear.  The simulated
disk models the same protocol's price (:meth:`SimulatedDisk.fsync` and
:meth:`SimulatedDisk.charge_durable_write`, charged at
:attr:`IOCostModel.fsync_time`), so experiments that checkpoint can
account for durability like any other I/O.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .errors import PageSizeError, UnallocatedPageError, UnknownFileError

PAGE_SIZE = 8192
"""Bytes per page, matching SHORE's default."""

PageId = Tuple[int, int]
"""(file_id, page_number)"""


@dataclass
class IOCostModel:
    """Charges for the simulated disk, in seconds.

    Defaults model a mid-90s SCSI disk: ~10 ms average seek + rotational
    delay, ~5 MB/s transfer (an 8 KB page in ~1.6 ms).  An fsync forces
    the write cache out and waits for the platter — charged like a seek.
    """

    seek_time: float = 0.010
    transfer_time: float = 0.0016
    fsync_time: float = 0.010


@dataclass
class DiskStats:
    """Cumulative access counters; snapshot-and-diff to meter a phase."""

    page_reads: int = 0
    page_writes: int = 0
    random_reads: int = 0
    random_writes: int = 0
    pages_allocated: int = 0
    fsyncs: int = 0

    def copy(self) -> "DiskStats":
        return DiskStats(
            self.page_reads,
            self.page_writes,
            self.random_reads,
            self.random_writes,
            self.pages_allocated,
            self.fsyncs,
        )

    def minus(self, earlier: "DiskStats") -> "DiskStats":
        return DiskStats(
            self.page_reads - earlier.page_reads,
            self.page_writes - earlier.page_writes,
            self.random_reads - earlier.random_reads,
            self.random_writes - earlier.random_writes,
            self.pages_allocated - earlier.pages_allocated,
            self.fsyncs - earlier.fsyncs,
        )

    @property
    def total_ios(self) -> int:
        return self.page_reads + self.page_writes

    @property
    def seeks(self) -> int:
        return self.random_reads + self.random_writes

    def io_time(self, cost: IOCostModel) -> float:
        return (
            self.seeks * cost.seek_time
            + self.total_ios * cost.transfer_time
            + self.fsyncs * cost.fsync_time
        )


class SimulatedDisk:
    """In-memory page store with sequential/random access classification."""

    def __init__(self, cost_model: IOCostModel | None = None):
        self.cost_model = cost_model or IOCostModel()
        self.stats = DiskStats()
        self._pages: Dict[PageId, bytes] = {}
        self._file_lengths: Dict[int, int] = {}
        self._next_file_id = 0
        self._last_access_per_file: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # file management
    # ------------------------------------------------------------------ #

    def create_file(self) -> int:
        fid = self._next_file_id
        self._next_file_id += 1
        self._file_lengths[fid] = 0
        return fid

    def drop_file(self, file_id: int) -> None:
        if file_id not in self._file_lengths:
            raise UnknownFileError(f"drop of unknown file {file_id}")
        npages = self._file_lengths.pop(file_id)
        for page_no in range(npages):
            self._pages.pop((file_id, page_no), None)
        self._last_access_per_file.pop(file_id, None)

    def file_length(self, file_id: int) -> int:
        """Number of pages allocated to the file."""
        if file_id not in self._file_lengths:
            raise UnknownFileError(f"length of unknown file {file_id}")
        return self._file_lengths[file_id]

    def file_ids(self) -> List[int]:
        return list(self._file_lengths)

    def allocate_page(self, file_id: int) -> int:
        """Extend the file by one (zeroed) page; returns its page number."""
        page_no = self._file_lengths[file_id]
        self._file_lengths[file_id] = page_no + 1
        self._pages[(file_id, page_no)] = bytes(PAGE_SIZE)
        self.stats.pages_allocated += 1
        return page_no

    # ------------------------------------------------------------------ #
    # page I/O
    # ------------------------------------------------------------------ #

    def _is_sequential(self, pid: PageId) -> bool:
        """Sequential = next page of the same file's current access stream.

        Head position is tracked per file, modelling the per-stream
        prefetch/write-behind a real I/O subsystem provides: a scan
        interleaved with writes to another file does not pay a seek per
        page, but random access within any one file does.
        """
        last = self._last_access_per_file.get(pid[0])
        return last is not None and pid[1] == last + 1

    def read_page(self, file_id: int, page_no: int) -> bytes:
        pid = (file_id, page_no)
        if pid not in self._pages:
            raise UnallocatedPageError(f"read of unallocated page {pid}")
        self.stats.page_reads += 1
        if not self._is_sequential(pid):
            self.stats.random_reads += 1
        self._last_access_per_file[pid[0]] = pid[1]
        return self._pages[pid]

    def write_page(self, file_id: int, page_no: int, data: bytes) -> None:
        if len(data) != PAGE_SIZE:
            raise PageSizeError(f"page must be exactly {PAGE_SIZE} bytes")
        pid = (file_id, page_no)
        if pid not in self._pages:
            raise UnallocatedPageError(f"write of unallocated page {pid}")
        self.stats.page_writes += 1
        if not self._is_sequential(pid):
            self.stats.random_writes += 1
        self._last_access_per_file[pid[0]] = pid[1]
        self._pages[pid] = bytes(data)

    # ------------------------------------------------------------------ #
    # durability
    # ------------------------------------------------------------------ #

    def fsync(self, file_id: int) -> None:
        """Force one file's writes to stable storage (cost-model only:
        the in-memory page store is always 'durable')."""
        if file_id not in self._file_lengths:
            raise UnknownFileError(f"fsync of unknown file {file_id}")
        self.stats.fsyncs += 1

    def charge_durable_write(self, nbytes: int) -> None:
        """Charge the atomic write-ahead protocol for ``nbytes`` of state.

        Models what :func:`atomic_write_bytes` does on a real disk: seek
        to the temp file (one random write), stream the payload (page-
        sized sequential writes), fsync the data, then fsync the directory
        so the rename is durable.  Checkpointing code calls this so the
        simulated cost model sees durability as I/O, not as magic.
        """
        pages = max(1, -(-int(nbytes) // PAGE_SIZE))
        self.stats.page_writes += pages
        self.stats.random_writes += 1
        self.stats.fsyncs += 2

    # ------------------------------------------------------------------ #
    # metering helpers
    # ------------------------------------------------------------------ #

    def snapshot(self) -> DiskStats:
        return self.stats.copy()

    def io_time_since(self, snapshot: DiskStats) -> float:
        return self.stats.minus(snapshot).io_time(self.cost_model)


# ---------------------------------------------------------------------- #
# the atomic write-ahead protocol (real filesystem)
# ---------------------------------------------------------------------- #

ATOMIC_TMP_SUFFIX = ".tmp"
"""Suffix of the not-yet-renamed temp file an atomic write stages into."""


def atomic_write_bytes(
    path: "Path | str",
    data: bytes,
    *,
    fsync: bool = True,
    disk: Optional[SimulatedDisk] = None,
    budget=None,
    category: str = "checkpoint",
) -> Path:
    """Crash-safely replace ``path`` with ``data``: write temp, fsync, rename.

    A reader concurrent with (or resumed after) a crash sees either the
    complete old bytes or the complete new bytes under ``path`` — the
    half-written state only ever exists under ``<path>.tmp``, which orphan
    sweeps collect.  ``disk`` (optional) charges the protocol's modeled
    cost on a :class:`SimulatedDisk` via :meth:`~SimulatedDisk.charge_durable_write`.

    ``budget`` (optional :class:`~repro.storage.pressure.DiskBudget`)
    charges ``len(data)`` under ``category`` *before* any byte is staged,
    so a denied write raises :class:`~repro.storage.errors.DiskFullError`
    with the target file untouched.  The caller owns releasing the old
    version's bytes if it is rewriting a file it already charged.
    """
    path = Path(path)
    if budget is not None:
        budget.charge(len(data), category)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ATOMIC_TMP_SUFFIX)
    with tmp.open("wb") as fh:
        fh.write(data)
        if fsync:
            fh.flush()
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    if fsync:
        try:
            dir_fd = os.open(path.parent, os.O_RDONLY)
        except OSError:
            dir_fd = -1  # platform without directory fds: best effort
        if dir_fd >= 0:
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
    if disk is not None:
        disk.charge_durable_write(len(data))
    return path
