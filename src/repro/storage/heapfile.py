"""Heap files of variable-length records on slotted pages.

Record identifiers (RIDs) are ``(page_no, slot)`` pairs; together with the
file they form the OIDs the paper's key-pointer elements carry.  Records are
raw bytes; serialisation of spatial tuples lives in
:mod:`repro.storage.tuples`.

Page layout (offsets in bytes)::

    0..2    number of slots (u16)
    2..4    offset of the lowest record byte (u16); records grow downward
    4..     slot directory, 4 bytes per slot: record offset (u16), length (u16)

A slot whose offset is ``0xFFFF`` is a tombstone left by
:meth:`HeapFile.delete` (0xFFFF can never be a real offset on an 8 KB page,
so zero-length records remain representable).
"""

from __future__ import annotations

import struct
from typing import Iterator, List, NamedTuple, Optional

from .buffer import BufferPool
from .disk import PAGE_SIZE

_HEADER = struct.Struct("<HH")
_SLOT = struct.Struct("<HH")
_HEADER_SIZE = _HEADER.size
_SLOT_SIZE = _SLOT.size
_TOMBSTONE = 0xFFFF

MAX_RECORD_SIZE = PAGE_SIZE - _HEADER_SIZE - _SLOT_SIZE
"""Largest record a single slotted page can hold."""


class RID(NamedTuple):
    """Record identifier within one heap file."""

    page_no: int
    slot: int


class HeapFileError(RuntimeError):
    pass


def _page_free_space(page: bytes | bytearray) -> int:
    num_slots, low = _HEADER.unpack_from(page, 0)
    directory_end = _HEADER_SIZE + num_slots * _SLOT_SIZE
    return low - directory_end


def _init_page(page: bytearray) -> None:
    _HEADER.pack_into(page, 0, 0, PAGE_SIZE)


class HeapFile:
    """An append-oriented record file over the buffer pool."""

    def __init__(self, pool: BufferPool, file_id: Optional[int] = None):
        self.pool = pool
        if file_id is None:
            file_id = pool.disk.create_file()
        self.file_id = file_id

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #

    def append(self, record: bytes) -> RID:
        """Append a record, extending the file as necessary."""
        if len(record) > MAX_RECORD_SIZE:
            raise HeapFileError(
                f"record of {len(record)} bytes exceeds page capacity "
                f"({MAX_RECORD_SIZE})"
            )
        npages = self.pool.disk.file_length(self.file_id)
        if npages > 0:
            page_no = npages - 1
            page = self.pool.get_page(self.file_id, page_no)
            needed = len(record) + _SLOT_SIZE
            if _page_free_space(page) >= needed:
                return self._insert_into(page_no, page, record)
        page_no = self.pool.new_page(self.file_id)
        page = self.pool.get_page(self.file_id, page_no)
        _init_page(page)
        return self._insert_into(page_no, page, record)

    def _insert_into(self, page_no: int, page: bytearray, record: bytes) -> RID:
        num_slots, low = _HEADER.unpack_from(page, 0)
        new_low = low - len(record)
        page[new_low:low] = record
        _SLOT.pack_into(page, _HEADER_SIZE + num_slots * _SLOT_SIZE, new_low, len(record))
        _HEADER.pack_into(page, 0, num_slots + 1, new_low)
        self.pool.mark_dirty(self.file_id, page_no)
        return RID(page_no, num_slots)

    def delete(self, rid: RID) -> None:
        """Tombstone a record (space is not reclaimed)."""
        page = self.pool.get_page(self.file_id, rid.page_no)
        num_slots, _low = _HEADER.unpack_from(page, 0)
        if rid.slot >= num_slots:
            raise HeapFileError(f"no such slot: {rid}")
        offset, _length = _SLOT.unpack_from(page, _HEADER_SIZE + rid.slot * _SLOT_SIZE)
        if offset == _TOMBSTONE:
            raise HeapFileError(f"record already deleted: {rid}")
        _SLOT.pack_into(page, _HEADER_SIZE + rid.slot * _SLOT_SIZE, _TOMBSTONE, 0)
        self.pool.mark_dirty(self.file_id, rid.page_no)

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def get(self, rid: RID) -> bytes:
        page = self.pool.get_page(self.file_id, rid.page_no)
        num_slots, _low = _HEADER.unpack_from(page, 0)
        if rid.slot >= num_slots:
            raise HeapFileError(f"no such slot: {rid}")
        offset, length = _SLOT.unpack_from(page, _HEADER_SIZE + rid.slot * _SLOT_SIZE)
        if offset == _TOMBSTONE:
            raise HeapFileError(f"record deleted: {rid}")
        return bytes(page[offset : offset + length])

    def scan(self) -> Iterator[tuple[RID, bytes]]:
        """Yield all live records in physical (page, slot) order."""
        for page_no in range(self.pool.disk.file_length(self.file_id)):
            yield from self.scan_page(page_no)

    def scan_page(self, page_no: int) -> Iterator[tuple[RID, bytes]]:
        page = self.pool.get_page(self.file_id, page_no)
        num_slots, _low = _HEADER.unpack_from(page, 0)
        records: List[tuple[RID, bytes]] = []
        for slot in range(num_slots):
            offset, length = _SLOT.unpack_from(page, _HEADER_SIZE + slot * _SLOT_SIZE)
            if offset == _TOMBSTONE:
                continue
            records.append((RID(page_no, slot), bytes(page[offset : offset + length])))
        yield from records

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def num_pages(self) -> int:
        return self.pool.disk.file_length(self.file_id)

    def size_bytes(self) -> int:
        return self.num_pages * PAGE_SIZE

    def drop(self) -> None:
        self.pool.invalidate_file(self.file_id)
        self.pool.disk.drop_file(self.file_id)
