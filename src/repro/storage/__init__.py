"""Storage substrate: simulated disk, buffer pool, heap files, relations."""

from .buffer import BufferPool, BufferPoolError, pages_for_megabytes
from .database import Database
from .disk import (
    PAGE_SIZE,
    DiskStats,
    IOCostModel,
    SimulatedDisk,
    atomic_write_bytes,
)
from .errors import (
    DiskFullError,
    ManifestCorruptionError,
    PageSizeError,
    SpillCorruptionError,
    StorageError,
    UnallocatedPageError,
    UnknownFileError,
)
from .pressure import CATEGORIES, DiskBudget
from .heapfile import MAX_RECORD_SIZE, RID, HeapFile, HeapFileError
from .relation import OID, CatalogEntry, Relation
from .tuples import (
    SpatialTuple,
    deserialize_tuple,
    serialize_tuple,
    tuple_size_bytes,
)

__all__ = [
    "CATEGORIES",
    "PAGE_SIZE",
    "MAX_RECORD_SIZE",
    "OID",
    "RID",
    "BufferPool",
    "BufferPoolError",
    "CatalogEntry",
    "Database",
    "DiskBudget",
    "DiskFullError",
    "DiskStats",
    "HeapFile",
    "HeapFileError",
    "IOCostModel",
    "ManifestCorruptionError",
    "PageSizeError",
    "Relation",
    "SimulatedDisk",
    "SpatialTuple",
    "SpillCorruptionError",
    "StorageError",
    "UnallocatedPageError",
    "UnknownFileError",
    "atomic_write_bytes",
    "deserialize_tuple",
    "pages_for_megabytes",
    "serialize_tuple",
    "tuple_size_bytes",
]
