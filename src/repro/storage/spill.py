"""Spill files: framed record files on the *real* filesystem.

Everything else in ``repro.storage`` lives on the simulated disk, whose
pages exist only inside one process.  The multiprocess PBSM backend needs
a handoff medium that worker processes can actually open, so partitions
are spilled to plain files of length-prefixed records::

    <u32 record length> <record bytes> ...

The format is deliberately dumb: sequential append on write, sequential
scan on read, no page structure, no cost model.  Spill I/O is part of the
real wall-clock time the process backend is measured by, not part of the
simulated 1996 disk the single-node experiments account against.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, Iterator, List

_LEN = struct.Struct("<I")

MAX_RECORD_BYTES = 1 << 30
"""Sanity bound on one framed record (catches corrupt length prefixes)."""


class SpillWriter:
    """Append length-prefixed records to a spill file.

    Usable as a context manager; ``count`` tracks records written so the
    coordinator can seed scheduling estimates without re-reading the file.
    """

    def __init__(self, path: "Path | str"):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("wb")
        self.count = 0

    def append(self, record: bytes) -> None:
        if len(record) > MAX_RECORD_BYTES:
            raise ValueError(f"record of {len(record)} bytes exceeds frame bound")
        self._fh.write(_LEN.pack(len(record)))
        self._fh.write(record)
        self.count += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "SpillWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def write_spill(path: "Path | str", records: Iterable[bytes]) -> int:
    """Write all records to ``path``; returns the record count."""
    with SpillWriter(path) as writer:
        for record in records:
            writer.append(record)
        return writer.count


def read_spill(path: "Path | str") -> Iterator[bytes]:
    """Yield the records of a spill file in write order."""
    with Path(path).open("rb") as fh:
        while True:
            header = fh.read(_LEN.size)
            if not header:
                return
            if len(header) < _LEN.size:
                raise ValueError(f"truncated frame header in {path}")
            (length,) = _LEN.unpack(header)
            if length > MAX_RECORD_BYTES:
                raise ValueError(f"corrupt frame length {length} in {path}")
            record = fh.read(length)
            if len(record) < length:
                raise ValueError(f"truncated record in {path}")
            yield record


def read_spill_all(path: "Path | str") -> List[bytes]:
    """Materialise a whole spill file (partitions are sized to fit)."""
    return list(read_spill(path))
