"""Spill files: integrity-checked framed record files on the *real* filesystem.

Everything else in ``repro.storage`` lives on the simulated disk, whose
pages exist only inside one process.  The multiprocess PBSM backend needs
a handoff medium that worker processes can actually open, so partitions
are spilled to plain files of length-prefixed, checksummed records::

    <u32 record length> <u32 crc32(record)> <record bytes> ...

The format is deliberately dumb: sequential append on write, sequential
scan on read, no page structure, no cost model.  Spill I/O is part of the
real wall-clock time the process backend is measured by, not part of the
simulated 1996 disk the single-node experiments account against.

The per-frame CRC32 is what makes a *torn* spill frame — a partial write,
a flipped bit, a truncated tail — detectable instead of silently joining
garbage: every framing violation raises
:class:`~repro.storage.errors.SpillCorruptionError` carrying the path, the
frame index, and the byte offset of the damaged frame, so the coordinator
can quarantine exactly the partition whose file is lying.

Crash recovery reads the same files with ``torn_tail="truncate"``: a
violation whose damage reaches the end of the file is what a died-mid-
append writer leaves behind, so the reader treats it as a clean end of
log and yields the intact prefix.  Damage *followed by* more bytes is
still corruption and still raises — a torn tail cannot have a successor
frame.

Writers can be atomic (``SpillWriter(path, atomic=True)``): records go to
``<path>.tmp`` and the file is fsynced and renamed into place on close,
so a reader never observes a half-written spill under its final name and
an abandoned write leaves only a ``*.tmp`` orphan for
:func:`sweep_orphan_spills` to collect.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from pathlib import Path
from typing import BinaryIO, Callable, Iterable, Iterator, List, Optional

from .errors import SpillCorruptionError

_HEADER = struct.Struct("<II")
"""Frame header: record length + CRC32 of the record bytes."""

FRAME_HEADER_SIZE = _HEADER.size

MAX_RECORD_BYTES = 1 << 30
"""Sanity bound on one framed record (catches corrupt length prefixes)."""

TORN_TAIL_ERROR = "error"
"""Any framing violation raises, even at the end of the file."""

TORN_TAIL_TRUNCATE = "truncate"
"""A violation whose damage reaches EOF ends the log cleanly instead."""

TMP_SUFFIX = ".tmp"
"""Suffix of unsealed (atomic, not yet renamed) spill files."""


def pack_frame(record: bytes) -> bytes:
    """One framed record: length + CRC32 header, then the payload."""
    if len(record) > MAX_RECORD_BYTES:
        raise ValueError(f"record of {len(record)} bytes exceeds frame bound")
    return _HEADER.pack(len(record), zlib.crc32(record)) + record


class SpillWriter:
    """Append length-prefixed, checksummed records to a spill file.

    Usable as a context manager: a clean exit seals the file, an exception
    aborts it (the partial file is deleted — an abandoned partition must
    not leave its frames on disk).  With ``atomic=True`` records are
    written to ``<path>.tmp`` and fsync+renamed into place on close, so
    the final path only ever holds a completely written spill.  ``count``
    tracks records written so the coordinator can seed scheduling
    estimates without re-reading the file.

    With a ``budget`` (:class:`~repro.storage.pressure.DiskBudget`) every
    frame is charged *before* it is written — a denied append raises
    :class:`~repro.storage.errors.DiskFullError` with the file unchanged
    — and ``abort`` releases everything this writer charged.  ``close``
    does not release: sealed bytes stay on disk and stay accounted.
    """

    def __init__(
        self,
        path: "Path | str",
        *,
        atomic: bool = False,
        budget=None,
        category: str = "spill",
    ):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.atomic = atomic
        self.budget = budget
        self.category = category
        self.charged = 0
        self._write_path = (
            self.path.with_name(self.path.name + TMP_SUFFIX)
            if atomic
            else self.path
        )
        self._fh: Optional[BinaryIO] = self._write_path.open("wb")
        self.count = 0

    def append(self, record: bytes) -> None:
        assert self._fh is not None, "writer is closed"
        frame = pack_frame(record)
        if self.budget is not None:
            self.budget.charge(len(frame), self.category)
            self.charged += len(frame)
        self._fh.write(frame)
        self.count += 1

    def close(self) -> None:
        """Seal the file: flush (and, when atomic, fsync + rename)."""
        if self._fh is None:
            return
        fh, self._fh = self._fh, None
        if self.atomic:
            fh.flush()
            os.fsync(fh.fileno())
        fh.close()
        if self.atomic:
            os.replace(self._write_path, self.path)

    def abort(self) -> None:
        """Discard the write: close and delete whatever hit the disk."""
        if self._fh is not None:
            fh, self._fh = self._fh, None
            fh.close()
        for path in {self._write_path, self.path}:
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
        self.release_budget()

    def release_budget(self) -> None:
        """Return this writer's charged bytes (its files left the disk)."""
        if self.budget is not None and self.charged:
            self.budget.release(self.charged, self.category)
            self.charged = 0

    def __enter__(self) -> "SpillWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()


def write_spill(path: "Path | str", records: Iterable[bytes]) -> int:
    """Write all records to ``path``; returns the record count."""
    with SpillWriter(path) as writer:
        for record in records:
            writer.append(record)
        return writer.count


def sweep_orphan_spills(directory: "Path | str") -> List[str]:
    """Delete every unsealed ``*.tmp`` file under ``directory``.

    Atomic writers that died before their rename leave these behind; the
    coordinator calls this on its failure paths (and before a resume) so
    an abandoned partitioning pass cannot leak its frames forever.
    Returns the paths removed.
    """
    directory = Path(directory)
    removed: List[str] = []
    if not directory.is_dir():
        return removed
    for path in sorted(directory.rglob(f"*{TMP_SUFFIX}")):
        try:
            os.unlink(path)
        except FileNotFoundError:
            continue
        removed.append(str(path))
    return removed


def _read_frames(
    fh: BinaryIO,
    size: int,
    label: str,
    torn_tail: str,
    on_torn_tail: Optional[Callable[[SpillCorruptionError], None]],
) -> Iterator[bytes]:
    """The framing scanner shared by file and in-memory readers.

    ``torn_tail`` picks the policy for a framing violation whose damaged
    region reaches the end of the input: :data:`TORN_TAIL_ERROR` raises,
    :data:`TORN_TAIL_TRUNCATE` calls ``on_torn_tail`` (if given) with the
    would-be error and ends the iteration — the intact prefix is the log.
    A violation with bytes *after* the damaged frame always raises: that
    is mid-file corruption, not a torn append.
    """
    if torn_tail not in (TORN_TAIL_ERROR, TORN_TAIL_TRUNCATE):
        raise ValueError(f"unknown torn-tail policy {torn_tail!r}")
    frame_index = 0
    offset = 0
    while True:
        header = fh.read(FRAME_HEADER_SIZE)
        if not header:
            return

        def violation(message: str, *, at_tail: bool) -> SpillCorruptionError:
            error = SpillCorruptionError(
                f"{message} in {label} (frame {frame_index} at byte {offset})",
                path=label, frame_index=frame_index, offset=offset,
            )
            if at_tail and torn_tail == TORN_TAIL_TRUNCATE:
                if on_torn_tail is not None:
                    on_torn_tail(error)
                return None  # type: ignore[return-value]  # sentinel: stop
            raise error

        if len(header) < FRAME_HEADER_SIZE:
            # A short header read necessarily touches EOF.
            violation("torn frame header", at_tail=True)
            return
        length, expected_crc = _HEADER.unpack(header)
        frame_end = offset + FRAME_HEADER_SIZE + length
        if length > MAX_RECORD_BYTES:
            # The length prefix is garbage; framing cannot resync past it,
            # so it only counts as a tail when nothing could follow it.
            violation("corrupt frame length", at_tail=frame_end >= size)
            return
        record = fh.read(length)
        if len(record) < length:
            violation(
                f"truncated record ({len(record)} of {length} bytes)",
                at_tail=True,
            )
            return
        actual_crc = zlib.crc32(record)
        if actual_crc != expected_crc:
            violation(
                f"checksum mismatch (crc32 {actual_crc:#010x} != stored "
                f"{expected_crc:#010x})",
                at_tail=frame_end >= size,
            )
            return
        yield record
        frame_index += 1
        offset = frame_end


def read_spill(
    path: "Path | str",
    *,
    torn_tail: str = TORN_TAIL_ERROR,
    on_torn_tail: Optional[Callable[[SpillCorruptionError], None]] = None,
) -> Iterator[bytes]:
    """Yield the records of a spill file in write order.

    Raises :class:`SpillCorruptionError` on any framing violation: a torn
    header, an implausible length, a truncated record, or a CRC mismatch.
    With ``torn_tail="truncate"`` a violation at the end of the file — what
    a writer that died mid-append leaves — is a clean end-of-log instead;
    ``on_torn_tail`` (if given) observes the recovered damage.
    """
    path = Path(path)
    size = os.path.getsize(path)
    with path.open("rb") as fh:
        yield from _read_frames(fh, size, str(path), torn_tail, on_torn_tail)


def read_frames_bytes(
    data: bytes,
    *,
    label: str = "<bytes>",
    torn_tail: str = TORN_TAIL_ERROR,
    on_torn_tail: Optional[Callable[[SpillCorruptionError], None]] = None,
) -> Iterator[bytes]:
    """:func:`read_spill` over an in-memory byte string (manifest loading)."""
    yield from _read_frames(
        io.BytesIO(data), len(data), label, torn_tail, on_torn_tail
    )


def read_spill_all(
    path: "Path | str",
    *,
    torn_tail: str = TORN_TAIL_ERROR,
    on_torn_tail: Optional[Callable[[SpillCorruptionError], None]] = None,
) -> List[bytes]:
    """Materialise a whole spill file (partitions are sized to fit)."""
    return list(read_spill(path, torn_tail=torn_tail, on_torn_tail=on_torn_tail))
