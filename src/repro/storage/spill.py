"""Spill files: integrity-checked framed record files on the *real* filesystem.

Everything else in ``repro.storage`` lives on the simulated disk, whose
pages exist only inside one process.  The multiprocess PBSM backend needs
a handoff medium that worker processes can actually open, so partitions
are spilled to plain files of length-prefixed, checksummed records::

    <u32 record length> <u32 crc32(record)> <record bytes> ...

The format is deliberately dumb: sequential append on write, sequential
scan on read, no page structure, no cost model.  Spill I/O is part of the
real wall-clock time the process backend is measured by, not part of the
simulated 1996 disk the single-node experiments account against.

The per-frame CRC32 is what makes a *torn* spill frame — a partial write,
a flipped bit, a truncated tail — detectable instead of silently joining
garbage: every framing violation raises
:class:`~repro.storage.errors.SpillCorruptionError` carrying the path, the
frame index, and the byte offset of the damaged frame, so the coordinator
can quarantine exactly the partition whose file is lying.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import Iterable, Iterator, List

from .errors import SpillCorruptionError

_HEADER = struct.Struct("<II")
"""Frame header: record length + CRC32 of the record bytes."""

FRAME_HEADER_SIZE = _HEADER.size

MAX_RECORD_BYTES = 1 << 30
"""Sanity bound on one framed record (catches corrupt length prefixes)."""


class SpillWriter:
    """Append length-prefixed, checksummed records to a spill file.

    Usable as a context manager; ``count`` tracks records written so the
    coordinator can seed scheduling estimates without re-reading the file.
    """

    def __init__(self, path: "Path | str"):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("wb")
        self.count = 0

    def append(self, record: bytes) -> None:
        if len(record) > MAX_RECORD_BYTES:
            raise ValueError(f"record of {len(record)} bytes exceeds frame bound")
        self._fh.write(_HEADER.pack(len(record), zlib.crc32(record)))
        self._fh.write(record)
        self.count += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "SpillWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def write_spill(path: "Path | str", records: Iterable[bytes]) -> int:
    """Write all records to ``path``; returns the record count."""
    with SpillWriter(path) as writer:
        for record in records:
            writer.append(record)
        return writer.count


def read_spill(path: "Path | str") -> Iterator[bytes]:
    """Yield the records of a spill file in write order.

    Raises :class:`SpillCorruptionError` on any framing violation: a torn
    header, an implausible length, a truncated record, or a CRC mismatch.
    """
    path = Path(path)
    with path.open("rb") as fh:
        frame_index = 0
        offset = 0
        while True:
            header = fh.read(FRAME_HEADER_SIZE)
            if not header:
                return
            if len(header) < FRAME_HEADER_SIZE:
                raise SpillCorruptionError(
                    f"torn frame header in {path} "
                    f"(frame {frame_index} at byte {offset})",
                    path=str(path), frame_index=frame_index, offset=offset,
                )
            length, expected_crc = _HEADER.unpack(header)
            if length > MAX_RECORD_BYTES:
                raise SpillCorruptionError(
                    f"corrupt frame length {length} in {path} "
                    f"(frame {frame_index} at byte {offset})",
                    path=str(path), frame_index=frame_index, offset=offset,
                )
            record = fh.read(length)
            if len(record) < length:
                raise SpillCorruptionError(
                    f"truncated record in {path} "
                    f"(frame {frame_index} at byte {offset}: "
                    f"{len(record)} of {length} bytes)",
                    path=str(path), frame_index=frame_index, offset=offset,
                )
            actual_crc = zlib.crc32(record)
            if actual_crc != expected_crc:
                raise SpillCorruptionError(
                    f"checksum mismatch in {path} "
                    f"(frame {frame_index} at byte {offset}: "
                    f"crc32 {actual_crc:#010x} != stored {expected_crc:#010x})",
                    path=str(path), frame_index=frame_index, offset=offset,
                )
            yield record
            frame_index += 1
            offset += FRAME_HEADER_SIZE + length


def read_spill_all(path: "Path | str") -> List[bytes]:
    """Materialise a whole spill file (partitions are sized to fit)."""
    return list(read_spill(path))
