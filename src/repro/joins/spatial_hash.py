"""Spatial hash join [LR96] — the concurrent related work (§2, Table 1).

Implemented as a documented extension for comparison with PBSM.  Following
Lo & Ravishankar's design:

* the *inner* input R is sampled and the samples, spatially sorted, seed B
  bucket extents;
* each R tuple goes to exactly **one** bucket (the one whose extent grows
  least), so R is never replicated;
* each S tuple is replicated into every bucket whose (final) extent its MBR
  overlaps;
* bucket pairs are joined in memory with the plane-sweep;
* unlike [LR96], which ignores the refinement step, we run the same exact
  refinement as PBSM so results are comparable end-to-end.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.keypointer import CandidateFile, KeyPointerFile
from ..core.partition import estimate_num_partitions
from ..core.predicates import Predicate
from ..core.refine import refine
from ..core.stats import JoinReport, JoinResult, PhaseMeter
from ..geometry import CurveMapper, Rect, sweep_join
from ..storage.buffer import BufferPool
from ..storage.disk import PAGE_SIZE
from ..storage.relation import Relation

DEFAULT_SAMPLE_SIZE = 1024


class SpatialHashJoin:
    """LR96-style spatial hash join driver."""

    def __init__(
        self,
        pool: BufferPool,
        memory_bytes: Optional[int] = None,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
    ):
        self.pool = pool
        self.memory_bytes = memory_bytes
        self.sample_size = sample_size

    def run(
        self, rel_r: Relation, rel_s: Relation, predicate: Predicate
    ) -> JoinResult:
        report = JoinReport(algorithm="SpatialHashJoin")
        meter = PhaseMeter(self.pool.disk, report)
        if len(rel_r) == 0 or len(rel_s) == 0:
            return JoinResult([], report)

        memory = self.memory_bytes or self.pool.capacity * PAGE_SIZE
        num_buckets = max(
            1, estimate_num_partitions(len(rel_r), len(rel_s), memory)
        )
        report.notes["num_buckets"] = num_buckets

        with meter.phase("Sample & Seed"):
            seeds = self._seed_extents(rel_r, num_buckets)

        buckets_r = [KeyPointerFile(self.pool) for _ in range(len(seeds))]
        extents: List[Optional[Rect]] = [None] * len(seeds)
        with meter.phase(f"Partition {rel_r.name}"):
            for oid, t in rel_r.scan():
                mbr = t.mbr
                idx = self._choose_bucket(seeds, extents, mbr)
                buckets_r[idx].append(mbr, oid)
                cur = extents[idx]
                extents[idx] = mbr if cur is None else cur.union(mbr)

        buckets_s = [KeyPointerFile(self.pool) for _ in range(len(seeds))]
        with meter.phase(f"Partition {rel_s.name}"):
            for oid, t in rel_s.scan():
                mbr = t.mbr
                for idx, extent in enumerate(extents):
                    if extent is not None and extent.intersects(mbr):
                        buckets_s[idx].append(mbr, oid)

        candidate_file = CandidateFile(self.pool)
        with meter.phase("Join Buckets"):
            for bucket_r, bucket_s in zip(buckets_r, buckets_s):
                if bucket_r.count == 0 or bucket_s.count == 0:
                    continue
                # Key-pointer records carry two-layer (tile, class) tags
                # for PBSM's merge; the hash join's buckets are disjoint
                # on R already, so the sweep only needs (rect, oid).
                items_r = [(r, oid) for r, oid, _t, _c in bucket_r.read_all()]
                items_s = [(r, oid) for r, oid, _t, _c in bucket_s.read_all()]
                sweep_join(items_r, items_s, candidate_file.append)
            for bucket in (*buckets_r, *buckets_s):
                bucket.drop()
        report.candidates = candidate_file.count

        with meter.phase("Refinement"):
            candidates = candidate_file.read_all()
            candidate_file.drop()
            results = refine(rel_r, rel_s, candidates, predicate, memory)
        report.result_count = len(results)
        return JoinResult(results, report)

    # ------------------------------------------------------------------ #

    def _seed_extents(self, rel_r: Relation, num_buckets: int) -> List[Rect]:
        """Sample R, Hilbert-sort the samples, and slice into bucket seeds."""
        mbrs: List[Rect] = []
        step = max(1, len(rel_r) // self.sample_size)
        for i, (_oid, t) in enumerate(rel_r.scan()):
            if i % step == 0:
                mbrs.append(t.mbr)
        mapper = CurveMapper(rel_r.universe)
        mbrs.sort(key=mapper.hilbert_of_rect)
        num_buckets = min(num_buckets, len(mbrs))
        chunk = max(1, len(mbrs) // num_buckets)
        seeds = []
        for start in range(0, len(mbrs), chunk):
            group = mbrs[start : start + chunk]
            if group:
                seeds.append(Rect.union_all(group))
        return seeds[:num_buckets] if num_buckets else seeds

    @staticmethod
    def _choose_bucket(
        seeds: List[Rect], extents: List[Optional[Rect]], mbr: Rect
    ) -> int:
        """Least-enlargement assignment against the current extents."""
        best_idx = 0
        best_key: Optional[Tuple[float, float]] = None
        for idx, seed in enumerate(seeds):
            base = extents[idx] or seed
            key = (base.enlargement(mbr), base.area)
            if best_key is None or key < best_key:
                best_key = key
                best_idx = idx
        return best_idx
