"""Seeded-tree spatial join [LR94, LR95] — the paper's cited alternative
for the missing-index case ("One solution to this problem is to build a
spatial index on both inputs and then use a tree join algorithm [LR95]").

Three scenarios, matching Lo & Ravishankar's papers:

* index on one input only [LR94]: seed the other input's tree from the
  existing index's top levels, grow it, tree-join;
* no indices [LR95]: sample both inputs to seed both trees, grow, join;
* both indices exist: plain BKS93 (delegated).

The refinement step is the same exact-geometry stage every other join in
this repository uses.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..core.predicates import Predicate
from ..core.refine import refine
from ..core.stats import JoinReport, JoinResult, PhaseMeter
from ..index.rstar import RStarTree
from ..index.seeded import (
    DEFAULT_SEED_SLOTS,
    SeededTree,
    build_seeded_tree,
    seed_slots_from_sample,
    seed_slots_from_tree,
    seeded_tree_join,
)
from ..index.treejoin import rtree_join
from ..storage.buffer import BufferPool
from ..storage.disk import PAGE_SIZE
from ..storage.relation import OID, Relation


def seeded_seeded_join(
    seeded_r: SeededTree,
    seeded_s: SeededTree,
    emit: Callable[[OID, OID], None],
) -> int:
    """Join two seeded trees: BKS93 on every intersecting subtree pair."""
    count = 0
    for slot_r, sub_r in zip(seeded_r.slots, seeded_r.subtrees):
        if not len(sub_r):
            continue
        for slot_s, sub_s in zip(seeded_s.slots, seeded_s.subtrees):
            if not len(sub_s) or not slot_r.intersects(slot_s):
                continue
            count += rtree_join(sub_r, sub_s, emit)
    return count


class SeededTreeJoin:
    """LR94/LR95 join driver; result pairs are ``(OID_R, OID_S)``."""

    def __init__(self, pool: BufferPool, seed_slots: int = DEFAULT_SEED_SLOTS):
        self.pool = pool
        self.seed_slots = seed_slots

    def run(
        self,
        rel_r: Relation,
        rel_s: Relation,
        predicate: Predicate,
        index_r: Optional[RStarTree] = None,
        index_s: Optional[RStarTree] = None,
    ) -> JoinResult:
        report = JoinReport(algorithm="SeededTreeJoin")
        meter = PhaseMeter(self.pool.disk, report)
        if len(rel_r) == 0 or len(rel_s) == 0:
            return JoinResult([], report)

        candidates: List[Tuple[OID, OID]] = []
        emit = lambda a, b: candidates.append((a, b))  # noqa: E731

        if index_r is not None and index_s is not None:
            report.notes["mode"] = "both-indices (plain BKS93)"
            with meter.phase("Join Indices"):
                rtree_join(index_r, index_s, emit)
        elif index_r is not None or index_s is not None:
            report.notes["mode"] = "one-index (LR94 seeded tree)"
            have, missing, have_is_r = (
                (index_r, rel_s, True)
                if index_r is not None
                else (index_s, rel_r, False)
            )
            with meter.phase(f"Seed & Grow {missing.name} Tree"):
                slots = seed_slots_from_tree(have, self.seed_slots)
                seeded = build_seeded_tree(self.pool, missing, slots)
            with meter.phase("Join Trees"):
                if have_is_r:
                    # Seeded tree holds S; flip the emitted pair order.
                    seeded_tree_join(seeded, have, lambda s, r: emit(r, s))
                else:
                    seeded_tree_join(seeded, have, emit)
        else:
            report.notes["mode"] = "no-index (LR95 sampled seeds)"
            with meter.phase(f"Seed & Grow {rel_r.name} Tree"):
                slots_r = seed_slots_from_sample(rel_r, self.seed_slots)
                seeded_r = build_seeded_tree(self.pool, rel_r, slots_r)
            with meter.phase(f"Seed & Grow {rel_s.name} Tree"):
                slots_s = seed_slots_from_sample(rel_s, self.seed_slots)
                seeded_s = build_seeded_tree(self.pool, rel_s, slots_s)
            with meter.phase("Join Trees"):
                seeded_seeded_join(seeded_r, seeded_s, emit)

        report.candidates = len(candidates)
        memory = self.pool.capacity * PAGE_SIZE
        with meter.phase("Refinement"):
            results = refine(rel_r, rel_s, candidates, predicate, memory)
        report.result_count = len(results)
        return JoinResult(results, report)
