"""Spatial join indices [Rot91] over grid files — Table 1's remaining row.

Rotem's idea, transplanted from Valduriez's relational join indices: when a
spatial join between two relations will be asked repeatedly, *partially
precompute* it.  Two grid files (one per relation) drive the computation of
all MBR-intersecting OID pairs, which are stored persistently as the join
index.  Answering the join later is then just a scan of the join index plus
the exact refinement step — no filter step at query time at all.

Günther's analysis (§2) says join indices beat tree joins at *low* join
selectivities; the benchmark in ``bench_joinindex.py`` shows the trade:
expensive build, very cheap repeated queries.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.keypointer import CandidateFile
from ..core.predicates import Predicate
from ..core.refine import refine
from ..core.stats import JoinReport, JoinResult, PhaseMeter
from ..geometry import Rect, sweep_join
from ..index.gridfile import build_grid_file
from ..storage.buffer import BufferPool
from ..storage.disk import PAGE_SIZE
from ..storage.relation import OID, Relation


class SpatialJoinIndex:
    """A persistent set of filter-level ``<OID_R, OID_S>`` pairs."""

    def __init__(
        self,
        pool: BufferPool,
        rel_r: Relation,
        rel_s: Relation,
        candidate_file: CandidateFile,
        build_report: JoinReport,
    ):
        self.pool = pool
        self.rel_r = rel_r
        self.rel_s = rel_s
        self.candidate_file = candidate_file
        self.build_report = build_report

    # ------------------------------------------------------------------ #

    @staticmethod
    def build(
        pool: BufferPool,
        rel_r: Relation,
        rel_s: Relation,
        bucket_capacity: Optional[int] = None,
    ) -> "SpatialJoinIndex":
        """Compute the join index via grid files ([Rot91]'s construction)."""
        report = JoinReport(algorithm="SpatialJoinIndex.build")
        meter = PhaseMeter(pool.disk, report)
        candidate_file = CandidateFile(pool)
        if len(rel_r) == 0 or len(rel_s) == 0:
            return SpatialJoinIndex(pool, rel_r, rel_s, candidate_file, report)

        kwargs = {} if bucket_capacity is None else {"bucket_capacity": bucket_capacity}
        with meter.phase(f"Build {rel_r.name} Grid"):
            grid_r = build_grid_file(pool, rel_r, **kwargs)
        with meter.phase(f"Build {rel_s.name} Grid"):
            grid_s = build_grid_file(pool, rel_s, **kwargs)

        with meter.phase("Compute Join Index"):
            pairs: set[Tuple[OID, OID]] = set()
            for region, entries_r in grid_r.buckets_overlapping(
                grid_r.universe
            ):
                if not entries_r:
                    continue
                # Probe S around this bucket's entries: the probe window is
                # the entries' cover expanded by S's largest half-extents,
                # so no S MBR that could intersect is missed.
                cover = Rect.union_all(rect for rect, _ in entries_r)
                window = Rect(
                    cover.xl - grid_s.max_half_w,
                    cover.yl - grid_s.max_half_h,
                    cover.xu + grid_s.max_half_w,
                    cover.yu + grid_s.max_half_h,
                )
                entries_s = grid_s.search_window(window)
                if not entries_s:
                    continue
                sweep_join(
                    entries_r,
                    entries_s,
                    lambda a, b: pairs.add((a, b)),
                )
            for oid_r, oid_s in sorted(pairs):
                candidate_file.append(oid_r, oid_s)
        report.candidates = candidate_file.count
        return SpatialJoinIndex(pool, rel_r, rel_s, candidate_file, report)

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self.candidate_file.count

    def query(self, predicate: Predicate) -> JoinResult:
        """Answer the join from the precomputed index + refinement."""
        report = JoinReport(algorithm="SpatialJoinIndex.query")
        meter = PhaseMeter(self.pool.disk, report)
        memory = self.pool.capacity * PAGE_SIZE
        with meter.phase("Scan Join Index"):
            candidates: List[Tuple[OID, OID]] = self.candidate_file.read_all()
        report.candidates = len(candidates)
        with meter.phase("Refinement"):
            results = refine(self.rel_r, self.rel_s, candidates, predicate, memory)
        report.result_count = len(results)
        return JoinResult(results, report)

    def drop(self) -> None:
        self.candidate_file.drop()
