"""Z-order spatial join [Ore86, OM88] — Table 1's transform-based class.

Orenstein's approach superimposes a grid on the universe, approximates each
object by the quadtree cells ("pixels") that overlap it, transforms each
cell to a 1-D *z-value* interval, and joins two relations by merging their
sorted z-value sequences.  Quadtree cell intervals are nested or disjoint,
so the merge is a simple stack algorithm: an element pairs with every
element of the other input whose interval encloses it.

The paper (§2) notes the defining trade-off, which this implementation
exposes as ``max_level``: a fine grid filters better but replicates each
object into more z-elements ([Ore89]).  `benchmarks/bench_zorder.py`
measures exactly that curve.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..core.predicates import Predicate
from ..core.refine import refine
from ..core.stats import JoinReport, JoinResult, PhaseMeter
from ..geometry import Rect, morton_d
from ..storage.buffer import BufferPool
from ..storage.disk import PAGE_SIZE
from ..storage.extsort import ExternalSorter
from ..storage.relation import OID, Relation

DEFAULT_MAX_LEVEL = 8
"""Default quadtree depth (up to 4^8 = 64K pixels)."""

DEFAULT_MAX_CELLS = 16
"""Cap on z-elements per object (Orenstein's space/precision knob)."""

ZElement = Tuple[int, int, OID]  # (zlo, zhi, oid)

# Big-endian zlo, zhi then the OID: byte order equals (zlo, zhi) order.
_ZREC = struct.Struct(">QQIII")


def decompose_rect(
    rect: Rect,
    universe: Rect,
    max_level: int = DEFAULT_MAX_LEVEL,
    max_cells: int = DEFAULT_MAX_CELLS,
) -> List[Tuple[int, int]]:
    """Quadtree cells covering ``rect``, as (zlo, zhi) intervals.

    The universe is refined breadth-first; a cell is finalised when it lies
    fully inside the rectangle, and refinement stops when ``max_level`` is
    reached or when one more level would exceed ``max_cells`` (remaining
    open cells are emitted coarse — a *conservative* approximation, so the
    join output stays a superset of the truth).  Breadth-first refinement
    keeps the approximation balanced: the budget cannot be burned deep down
    one branch while other branches stay coarse.
    """
    if max_level < 0:
        raise ValueError("max_level must be >= 0")
    target = rect.intersection(universe)
    if target is None:
        return []

    def interval(x: int, y: int, level: int) -> Tuple[int, int]:
        full_span = 2 * (max_level - level)
        z = morton_d(x, y, order=level) if level else 0
        return (z << full_span, ((z + 1) << full_span) - 1)

    done: List[Tuple[int, int]] = []
    open_cells: List[Tuple[Rect, int, int]] = [(universe, 0, 0)]
    level = 0
    while open_cells and level < max_level:
        refined: List[Tuple[Rect, int, int]] = []
        for cell, x, y in open_cells:
            if target.contains(cell):
                done.append(interval(x, y, level))
                continue
            half_w = cell.width / 2.0
            half_h = cell.height / 2.0
            for dx in (0, 1):
                for dy in (0, 1):
                    child = Rect(
                        cell.xl + dx * half_w,
                        cell.yl + dy * half_h,
                        cell.xl + (dx + 1) * half_w,
                        cell.yl + (dy + 1) * half_h,
                    )
                    if child.intersects(target):
                        refined.append((child, (x << 1) | dx, (y << 1) | dy))
        if len(done) + len(refined) > max_cells:
            break  # refining further would blow the cell budget
        open_cells = refined
        level += 1
    done.extend(interval(x, y, level) for _cell, x, y in open_cells)
    return _merge_adjacent(sorted(done))


def _merge_adjacent(intervals: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Coalesce abutting z-intervals (siblings often merge)."""
    merged: List[Tuple[int, int]] = []
    for lo, hi in intervals:
        if merged and lo <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def zmerge(
    elems_r: List[ZElement],
    elems_s: List[ZElement],
    emit: Callable[[OID, OID], None],
) -> int:
    """Merge two sorted element sequences, emitting enclosing pairs.

    Inputs must be sorted by ``(zlo, -zhi)`` — ascending start, *enclosing
    interval first* on ties — so each stack's open intervals are properly
    nested.  Quadtree intervals are nested or disjoint, so interval overlap
    means one encloses the other; a stack per side holds the currently
    "open" intervals.  Because the same object contributes several
    elements, callers must dedup the emitted pairs (the shared refinement
    step does).
    """
    count = 0
    stack_r: List[ZElement] = []
    stack_s: List[ZElement] = []
    i = j = 0
    nr, ns = len(elems_r), len(elems_s)
    while i < nr or j < ns:
        if j >= ns:
            take_r = True
        elif i >= nr:
            take_r = False
        else:
            # Ascending zlo; on ties the enclosing (larger zhi) interval
            # must enter its stack first, whichever side it is on.
            key_r = (elems_r[i][0], -elems_r[i][1])
            key_s = (elems_s[j][0], -elems_s[j][1])
            take_r = key_r <= key_s
        current = elems_r[i] if take_r else elems_s[j]
        zlo = current[0]
        while stack_r and stack_r[-1][1] < zlo:
            stack_r.pop()
        while stack_s and stack_s[-1][1] < zlo:
            stack_s.pop()
        if take_r:
            for other in stack_s:
                emit(current[2], other[2])
                count += 1
            stack_r.append(current)
            i += 1
        else:
            for other in stack_r:
                emit(other[2], current[2])
                count += 1
            stack_s.append(current)
            j += 1
    return count


@dataclass
class ZOrderConfig:
    max_level: int = DEFAULT_MAX_LEVEL
    max_cells: int = DEFAULT_MAX_CELLS
    memory_bytes: Optional[int] = None


class ZOrderJoin:
    """Orenstein-style z-value merge join driver."""

    def __init__(self, pool: BufferPool, config: Optional[ZOrderConfig] = None):
        self.pool = pool
        self.config = config or ZOrderConfig()

    def _transform(
        self, relation: Relation, universe: Rect, memory: int
    ) -> List[ZElement]:
        """Decompose every tuple and return its elements sorted by zlo.

        Spills through the external sorter when the element stream exceeds
        the memory budget, like every other sort in the system.
        """
        cfg = self.config
        # Sort by (zlo asc, zhi desc): invert the zhi bytes in the key so
        # enclosing intervals precede their children at equal zlo.
        sorter = ExternalSorter(
            self.pool,
            key=lambda record: record[:8] + bytes(~b & 0xFF for b in record[8:16]),
            memory_bytes=memory,
        )
        n_elements = 0
        for oid, t in relation.scan():
            for zlo, zhi in decompose_rect(
                t.mbr, universe, cfg.max_level, cfg.max_cells
            ):
                sorter.add(_ZREC.pack(zlo, zhi, *oid))
                n_elements += 1
        out: List[ZElement] = []
        for record in sorter.sorted_records():
            zlo, zhi, a, b, c = _ZREC.unpack(record)
            out.append((zlo, zhi, OID(a, b, c)))
        return out

    def run(
        self, rel_r: Relation, rel_s: Relation, predicate: Predicate
    ) -> JoinResult:
        report = JoinReport(algorithm="ZOrderJoin")
        meter = PhaseMeter(self.pool.disk, report)
        if len(rel_r) == 0 or len(rel_s) == 0:
            return JoinResult([], report)

        memory = self.config.memory_bytes or self.pool.capacity * PAGE_SIZE
        universe = rel_r.universe.union(rel_s.universe)

        with meter.phase(f"Transform {rel_r.name}"):
            elems_r = self._transform(rel_r, universe, memory)
        with meter.phase(f"Transform {rel_s.name}"):
            elems_s = self._transform(rel_s, universe, memory)
        report.notes["z_elements_r"] = len(elems_r)
        report.notes["z_elements_s"] = len(elems_s)

        candidates: List[Tuple[OID, OID]] = []
        with meter.phase("Merge Z-Sequences"):
            zmerge(elems_r, elems_s, lambda a, b: candidates.append((a, b)))
        report.candidates = len(candidates)
        # Multiple cells of the same object pair repeatedly; the filter's
        # real precision is the distinct pair count ([Ore89]'s metric).
        report.notes["distinct_candidates"] = len(set(candidates))

        with meter.phase("Refinement"):
            results = refine(rel_r, rel_s, candidates, predicate, memory)
        report.result_count = len(results)
        return JoinResult(results, report)


# ---------------------------------------------------------------------- #
# Persistent z-value indices [OM84]
# ---------------------------------------------------------------------- #

_ZPAYLOAD = struct.Struct("<QIII")  # zhi + OID


class ZOrderIndex:
    """A relation's z-elements stored in a B+-tree keyed by ``zlo`` [OM84].

    This is the persistent form of the transform: build once, reuse for
    every later join or window query.  Joining two such indices is a merge
    of their leaf chains — no transform phase at query time.
    """

    def __init__(self, tree, universe: Rect, config: ZOrderConfig):
        self.tree = tree
        self.universe = universe
        self.config = config

    @staticmethod
    def build(
        pool: BufferPool,
        relation: Relation,
        universe: Optional[Rect] = None,
        config: Optional[ZOrderConfig] = None,
    ) -> "ZOrderIndex":
        """Decompose every tuple and bulk-load the element B+-tree."""
        from ..index.btree import bulk_load_btree

        config = config or ZOrderConfig()
        universe = universe or relation.universe
        items: List[Tuple[int, bytes]] = []
        for oid, t in relation.scan():
            for zlo, zhi in decompose_rect(
                t.mbr, universe, config.max_level, config.max_cells
            ):
                items.append((zlo, _ZPAYLOAD.pack(zhi, *oid)))
        items.sort(key=lambda item: (item[0], -_ZPAYLOAD.unpack(item[1])[0]))
        tree = bulk_load_btree(pool, items, _ZPAYLOAD.size)
        return ZOrderIndex(tree, universe, config)

    def __len__(self) -> int:
        return len(self.tree)

    def elements(self) -> List[ZElement]:
        """All elements in (zlo asc, zhi desc) order — zmerge's precondition.

        The B+-tree orders by ``zlo`` only; runs of equal ``zlo`` are
        re-sorted locally on the way out.
        """
        out: List[ZElement] = []
        run: List[ZElement] = []
        run_key: Optional[int] = None
        for zlo, payload in self.tree.scan_all():
            zhi, a, b, c = _ZPAYLOAD.unpack(payload)
            if zlo != run_key:
                run.sort(key=lambda e: -e[1])
                out.extend(run)
                run = []
                run_key = zlo
            run.append((zlo, zhi, OID(a, b, c)))
        run.sort(key=lambda e: -e[1])
        out.extend(run)
        return out


def zorder_join_indexed(
    pool: BufferPool,
    rel_r: Relation,
    rel_s: Relation,
    index_r: ZOrderIndex,
    index_s: ZOrderIndex,
    predicate: Predicate,
) -> JoinResult:
    """Join two relations from their pre-built z-value indices [OM84].

    The transform phase disappears: the filter step is one merge of the two
    leaf chains, followed by the shared refinement.
    """
    report = JoinReport(algorithm="ZOrderJoin(indexed)")
    meter = PhaseMeter(pool.disk, report)
    if index_r.universe != index_s.universe:
        raise ValueError("indices were built over different universes")

    with meter.phase("Merge Z-Indices"):
        elems_r = index_r.elements()
        elems_s = index_s.elements()
        candidates: List[Tuple[OID, OID]] = []
        zmerge(elems_r, elems_s, lambda a, b: candidates.append((a, b)))
    report.candidates = len(candidates)

    memory = pool.capacity * PAGE_SIZE
    with meter.phase("Refinement"):
        results = refine(rel_r, rel_s, candidates, predicate, memory)
    report.result_count = len(results)
    return JoinResult(results, report)
