"""The R-tree based spatial join (§4.2): bulk-load any missing R*-tree
indices, join them with the BKS93 synchronized traversal, then run the same
batched refinement step PBSM uses (§3.2).
"""

from __future__ import annotations

from typing import Optional

from ..core.keypointer import CandidateFile
from ..core.predicates import Predicate
from ..core.refine import refine
from ..core.stats import JoinReport, JoinResult, PhaseMeter
from ..index.bulkload import bulk_load_rstar
from ..index.rstar import RStarTree
from ..index.treejoin import rtree_join
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..storage.buffer import BufferPool
from ..storage.disk import PAGE_SIZE
from ..storage.relation import Relation


class RTreeJoin:
    """R-tree join driver; result pairs are ``(OID_R, OID_S)``."""

    def __init__(
        self,
        pool: BufferPool,
        refine_memory_bytes: Optional[int] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.pool = pool
        self.refine_memory_bytes = refine_memory_bytes
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS

    def _build(
        self,
        meter: PhaseMeter,
        relation: Relation,
        clustered: bool,
    ) -> RStarTree:
        memory = self.pool.capacity * PAGE_SIZE
        with meter.phase(f"Build {relation.name} Index"):
            return bulk_load_rstar(
                self.pool, relation,
                presorted=clustered, memory_bytes=memory,
            )

    def run(
        self,
        rel_r: Relation,
        rel_s: Relation,
        predicate: Predicate,
        index_r: Optional[RStarTree] = None,
        index_s: Optional[RStarTree] = None,
        r_clustered: bool = False,
        s_clustered: bool = False,
    ) -> JoinResult:
        report = JoinReport(algorithm="RTreeJoin")
        meter = PhaseMeter(self.pool.disk, report, tracer=self.tracer)
        if len(rel_r) == 0 or len(rel_s) == 0:
            return JoinResult([], report)

        if index_r is None:
            index_r = self._build(meter, rel_r, r_clustered)
        if index_s is None:
            index_s = self._build(meter, rel_s, s_clustered)

        # Filter output goes to a temp file, exactly as PBSM's does: the
        # candidate set is an intermediate result, not guaranteed to fit.
        candidate_file = CandidateFile(self.pool)
        with meter.phase("Join Indices"):
            rtree_join(index_r, index_s, candidate_file.append)
        report.candidates = candidate_file.count
        self.metrics.counter("rtree.candidates").inc(candidate_file.count)

        memory = self.refine_memory_bytes or self.pool.capacity * PAGE_SIZE
        with meter.phase("Refinement"):
            candidates = candidate_file.read_all()
            candidate_file.drop()
            results = refine(
                rel_r, rel_s, candidates, predicate, memory,
                tracer=self.tracer, metrics=self.metrics,
            )
        report.result_count = len(results)
        return JoinResult(results, report)
