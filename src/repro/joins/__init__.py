"""Spatial join algorithms: PBSM's competitors and baselines."""

from .inl import IndexedNestedLoopsJoin
from .joinindex import SpatialJoinIndex
from .naive import NaiveNestedLoopsJoin
from .rtree import RTreeJoin
from .seeded import SeededTreeJoin, seeded_seeded_join
from .spatial_hash import SpatialHashJoin
from .zorder import (
    ZOrderConfig,
    ZOrderIndex,
    ZOrderJoin,
    decompose_rect,
    zmerge,
    zorder_join_indexed,
)

__all__ = [
    "IndexedNestedLoopsJoin",
    "NaiveNestedLoopsJoin",
    "RTreeJoin",
    "SeededTreeJoin",
    "SpatialJoinIndex",
    "SpatialHashJoin",
    "ZOrderConfig",
    "ZOrderIndex",
    "ZOrderJoin",
    "decompose_rect",
    "seeded_seeded_join",
    "zmerge",
    "zorder_join_indexed",
]
