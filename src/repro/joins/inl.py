"""Indexed nested loops spatial join (§4.1).

If neither input has an index, one is bulk-loaded on the *smaller* input;
the larger input is then scanned and each of its tuples probes the index.
Matching inner tuples are fetched immediately (a random I/O unless buffered)
and the exact predicate is evaluated tuple-at-a-time — there is no batched
refinement step, which is exactly why INL suffers at small buffer sizes in
Figures 7 and 14.
"""

from __future__ import annotations

from typing import Optional

from ..core.predicates import Predicate
from ..core.stats import JoinReport, JoinResult, PhaseMeter
from ..index.bulkload import bulk_load_rstar
from ..index.rstar import RStarTree
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..storage.buffer import BufferPool
from ..storage.disk import PAGE_SIZE
from ..storage.relation import Relation


class IndexedNestedLoopsJoin:
    """INL join driver; result pairs are always ``(OID_R, OID_S)``."""

    def __init__(
        self,
        pool: BufferPool,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.pool = pool
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS

    def run(
        self,
        rel_r: Relation,
        rel_s: Relation,
        predicate: Predicate,
        index_r: Optional[RStarTree] = None,
        index_s: Optional[RStarTree] = None,
        r_clustered: bool = False,
        s_clustered: bool = False,
    ) -> JoinResult:
        report = JoinReport(algorithm="INL")
        meter = PhaseMeter(self.pool.disk, report, tracer=self.tracer)
        if len(rel_r) == 0 or len(rel_s) == 0:
            return JoinResult([], report)

        # Decide which side is probed: a pre-existing index wins; with two,
        # probe the smaller; with none, build on the smaller input (§4.1,
        # §4.5).
        if index_r is not None and index_s is not None:
            probe_r_side = len(rel_r) <= len(rel_s)
        elif index_r is not None:
            probe_r_side = True
        elif index_s is not None:
            probe_r_side = False
        else:
            probe_r_side = len(rel_r) <= len(rel_s)

        inner, outer = (rel_r, rel_s) if probe_r_side else (rel_s, rel_r)
        index = index_r if probe_r_side else index_s
        inner_clustered = r_clustered if probe_r_side else s_clustered

        if index is None:
            memory = self.pool.capacity * PAGE_SIZE
            with meter.phase(f"Build {inner.name} Index"):
                index = bulk_load_rstar(
                    self.pool, inner,
                    presorted=inner_clustered, memory_bytes=memory,
                )
            report.notes["built_index_on"] = inner.name

        results = []
        candidates = 0
        probes = self.metrics.counter("inl.probes")
        matches_hist = self.metrics.histogram("inl.candidates_per_probe")
        with meter.phase("Probe Index"):
            for outer_oid, outer_tuple in outer.scan():
                probes.inc()
                probe_matches = 0
                for inner_oid in index.search(outer_tuple.mbr):
                    candidates += 1
                    probe_matches += 1
                    inner_tuple = inner.fetch(inner_oid)
                    if probe_r_side:
                        ok = predicate(inner_tuple, outer_tuple)
                        pair = (inner_oid, outer_oid)
                    else:
                        ok = predicate(outer_tuple, inner_tuple)
                        pair = (outer_oid, inner_oid)
                    if ok:
                        results.append(pair)
                matches_hist.observe(probe_matches)
        results.sort()
        report.candidates = candidates
        self.metrics.counter("inl.candidates").inc(candidates)
        report.result_count = len(results)
        return JoinResult(results, report)
