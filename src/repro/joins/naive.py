"""Naive nested-loops spatial join — the correctness oracle.

Not in the paper's evaluation; used by the test suite to validate every
other algorithm's output on small inputs, and available to users who want a
trivially-correct baseline.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.predicates import Predicate
from ..core.stats import JoinReport, JoinResult, PhaseMeter
from ..storage.buffer import BufferPool
from ..storage.relation import OID, Relation


class NaiveNestedLoopsJoin:
    """Materialise both inputs and test every pair (MBR pre-filtered)."""

    def __init__(self, pool: BufferPool):
        self.pool = pool

    def run(
        self, rel_r: Relation, rel_s: Relation, predicate: Predicate
    ) -> JoinResult:
        report = JoinReport(algorithm="NaiveNL")
        meter = PhaseMeter(self.pool.disk, report)
        results: List[Tuple[OID, OID]] = []
        candidates = 0
        with meter.phase("Nested Loops"):
            s_tuples = list(rel_s.scan())
            for oid_r, t_r in rel_r.scan():
                mbr_r = t_r.mbr
                for oid_s, t_s in s_tuples:
                    if not mbr_r.intersects(t_s.mbr):
                        continue
                    candidates += 1
                    if predicate(t_r, t_s):
                        results.append((oid_r, oid_s))
        results.sort()
        report.candidates = candidates
        report.result_count = len(results)
        return JoinResult(results, report)
