"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``demo``  — run a small PBSM join end to end and print the cost report
  (``--json`` for the machine-readable report, ``--seed`` for alternative
  reproducible datasets);
* ``trace`` — run a PBSM road × hydro join under the ``repro.obs``
  observability layer and write the JSONL trace, metrics snapshot, and
  chrome-trace timeline;
* ``plan``  — show which algorithm the paper's decision table picks for a
  described scenario;
* ``info``  — package, subsystem, and experiment inventory.
"""

from __future__ import annotations

import argparse
import json
import sys


def _cmd_demo(args: argparse.Namespace) -> int:
    from . import Database, PBSMJoin, intersects
    from .data import make_tiger_datasets
    from .obs import report_to_dict

    db = Database(buffer_mb=args.buffer_mb)
    rels = make_tiger_datasets(
        db, scale=args.scale, include=("road", "hydro"), seed=args.seed
    )
    if not args.json:
        print(
            f"loaded {len(rels['road'])} roads and {len(rels['hydro'])} "
            f"hydrography features (scale={args.scale})"
        )
    db.pool.clear()
    result = PBSMJoin(db.pool).run(rels["road"], rels["hydro"], intersects)
    if args.json:
        document = report_to_dict(result.report)
        document["scale"] = args.scale
        document["buffer_mb"] = args.buffer_mb
        document["seed"] = args.seed
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    print(f"{len(result)} intersecting pairs\n")
    print(result.report.format_table())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from . import Database, PBSMJoin, intersects
    from .data import make_tiger_datasets
    from .obs import (
        MetricsRegistry,
        Tracer,
        write_chrome_trace,
        write_metrics_json,
        write_trace_jsonl,
    )

    db = Database(buffer_mb=args.buffer_mb)
    rels = make_tiger_datasets(
        db, scale=args.scale, include=("road", "hydro"), seed=args.seed
    )
    db.pool.clear()
    db.pool.reset_counters()

    tracer = Tracer(disk=db.disk, pool=db.pool)
    metrics = MetricsRegistry()
    result = PBSMJoin(db.pool, tracer=tracer, metrics=metrics).run(
        rels["road"], rels["hydro"], intersects
    )

    out = Path(args.out)
    trace_path = write_trace_jsonl(tracer, out / "trace.jsonl")
    metrics_path = write_metrics_json(
        metrics,
        out / "metrics.json",
        extra={
            "algorithm": "PBSM",
            "scale": args.scale,
            "buffer_mb": args.buffer_mb,
            "result_count": len(result),
        },
    )
    chrome_path = write_chrome_trace(tracer, out / "chrome_trace.json")

    print(result.report.format_table())
    print(f"\n{tracer.span_count} spans from {len(result)} result pairs")
    print(f"trace:   {trace_path}")
    print(f"metrics: {metrics_path}")
    print(f"timeline: {chrome_path}  (open in chrome://tracing or Perfetto)")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from .core.planner import choose_algorithm
    from .storage import Database
    from .data import make_tiger_datasets
    from .index import bulk_load_rstar

    db = Database(buffer_mb=args.buffer_mb)
    rels = make_tiger_datasets(db, scale=args.scale, include=("road", "hydro"))
    idx_r = bulk_load_rstar(db.pool, rels["road"]) if args.index_r else None
    idx_s = bulk_load_rstar(db.pool, rels["hydro"]) if args.index_s else None
    plan = choose_algorithm(
        rels["road"], rels["hydro"], db.pool.capacity, idx_r, idx_s
    )
    print(f"scenario: index on road={args.index_r}, index on hydro={args.index_s}, "
          f"buffer={args.buffer_mb} MB")
    print(f"chosen algorithm: {plan.algorithm.upper()}")
    print(f"reason: {plan.reason}")
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    from . import __version__

    print(f"repro {__version__} — Partition Based Spatial-Merge Join "
          "(Patel & DeWitt, SIGMOD 1996)")
    print(__doc__)
    print("subsystems: repro.geometry, repro.storage, repro.index, "
          "repro.core, repro.joins, repro.exec, repro.data, repro.bench")
    print("reproduce the paper: pytest benchmarks/ --benchmark-only")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PBSM spatial join reproduction",
    )
    sub = parser.add_subparsers(dest="command")

    demo = sub.add_parser("demo", help="run a small PBSM join")
    demo.add_argument("--scale", type=float, default=0.01)
    demo.add_argument("--buffer-mb", type=float, default=8.0)
    demo.add_argument("--seed", type=int, default=None,
                      help="base seed for the data generators")
    demo.add_argument("--json", action="store_true",
                      help="emit the cost report as JSON instead of a table")
    demo.set_defaults(func=_cmd_demo)

    trace = sub.add_parser(
        "trace", help="run a traced PBSM join and dump trace/metrics files"
    )
    trace.add_argument("--scale", type=float, default=0.01)
    trace.add_argument("--buffer-mb", type=float, default=8.0)
    trace.add_argument("--seed", type=int, default=None,
                       help="base seed for the data generators")
    trace.add_argument("--out", default="trace_out",
                       help="directory for trace.jsonl / metrics.json / "
                            "chrome_trace.json")
    trace.set_defaults(func=_cmd_trace)

    plan = sub.add_parser("plan", help="apply the paper's algorithm-choice rules")
    plan.add_argument("--scale", type=float, default=0.005)
    plan.add_argument("--buffer-mb", type=float, default=0.5)
    plan.add_argument("--index-r", action="store_true", help="road index pre-exists")
    plan.add_argument("--index-s", action="store_true", help="hydro index pre-exists")
    plan.set_defaults(func=_cmd_plan)

    info = sub.add_parser("info", help="package inventory")
    info.set_defaults(func=_cmd_info)

    args = parser.parse_args(argv)
    if not getattr(args, "func", None):
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
