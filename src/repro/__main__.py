"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``demo``  — run a small PBSM join end to end and print the cost report;
* ``plan``  — show which algorithm the paper's decision table picks for a
  described scenario;
* ``info``  — package, subsystem, and experiment inventory.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_demo(args: argparse.Namespace) -> int:
    from . import Database, PBSMJoin, intersects
    from .data import make_tiger_datasets

    db = Database(buffer_mb=args.buffer_mb)
    rels = make_tiger_datasets(db, scale=args.scale, include=("road", "hydro"))
    print(
        f"loaded {len(rels['road'])} roads and {len(rels['hydro'])} "
        f"hydrography features (scale={args.scale})"
    )
    db.pool.clear()
    result = PBSMJoin(db.pool).run(rels["road"], rels["hydro"], intersects)
    print(f"{len(result)} intersecting pairs\n")
    print(result.report.format_table())
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from .core.planner import choose_algorithm
    from .storage import Database
    from .data import make_tiger_datasets
    from .index import bulk_load_rstar

    db = Database(buffer_mb=args.buffer_mb)
    rels = make_tiger_datasets(db, scale=args.scale, include=("road", "hydro"))
    idx_r = bulk_load_rstar(db.pool, rels["road"]) if args.index_r else None
    idx_s = bulk_load_rstar(db.pool, rels["hydro"]) if args.index_s else None
    plan = choose_algorithm(
        rels["road"], rels["hydro"], db.pool.capacity, idx_r, idx_s
    )
    print(f"scenario: index on road={args.index_r}, index on hydro={args.index_s}, "
          f"buffer={args.buffer_mb} MB")
    print(f"chosen algorithm: {plan.algorithm.upper()}")
    print(f"reason: {plan.reason}")
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    from . import __version__

    print(f"repro {__version__} — Partition Based Spatial-Merge Join "
          "(Patel & DeWitt, SIGMOD 1996)")
    print(__doc__)
    print("subsystems: repro.geometry, repro.storage, repro.index, "
          "repro.core, repro.joins, repro.exec, repro.data, repro.bench")
    print("reproduce the paper: pytest benchmarks/ --benchmark-only")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PBSM spatial join reproduction",
    )
    sub = parser.add_subparsers(dest="command")

    demo = sub.add_parser("demo", help="run a small PBSM join")
    demo.add_argument("--scale", type=float, default=0.01)
    demo.add_argument("--buffer-mb", type=float, default=8.0)
    demo.set_defaults(func=_cmd_demo)

    plan = sub.add_parser("plan", help="apply the paper's algorithm-choice rules")
    plan.add_argument("--scale", type=float, default=0.005)
    plan.add_argument("--buffer-mb", type=float, default=0.5)
    plan.add_argument("--index-r", action="store_true", help="road index pre-exists")
    plan.add_argument("--index-s", action="store_true", help="hydro index pre-exists")
    plan.set_defaults(func=_cmd_plan)

    info = sub.add_parser("info", help="package inventory")
    info.set_defaults(func=_cmd_info)

    args = parser.parse_args(argv)
    if not getattr(args, "func", None):
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
