"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``demo``  — run a small PBSM join end to end and print the cost report
  (``--json`` for the machine-readable report, ``--seed`` for alternative
  reproducible datasets);
* ``trace`` — run a PBSM road × hydro join under the ``repro.obs``
  observability layer and write the JSONL trace, metrics snapshot, and
  chrome-trace timeline;
* ``parallel`` — run a spatial join on a parallel backend
  (``--backend process|simulated|serial --workers N``, ``--dataset``
  picks the input pair, including the polygon workload
  ``landuse_island``) and report the wall/critical-path numbers plus
  the ``merge.duplicates_dropped`` invariant (two-layer partitioning
  keeps it at 0); ``--verify`` cross-checks the pair set
  against the serial reference; ``--checkpoint-dir D`` makes the
  coordinator's state durable and ``--resume`` continues an interrupted
  checkpointed run; ``--out DIR`` records the run journal and ``--live``
  streams in-flight progress from worker heartbeats;
* ``chaos`` — run the road × hydro join on the process backend under a
  named (or JSON-file) fault plan, verify the pair set against the serial
  reference, and report the fault/recovery tallies; non-zero exit when the
  join did not survive; writes the flight-recorder artifacts
  (``journal.jsonl``, ``trace.jsonl``, ``chrome_trace.json``,
  ``metrics.json``) to ``--out`` (default ``run_out``) for ``repro
  report``; ``--kill-coordinator-after N`` kills the coordinator after
  checkpoint ordinal N (soft kill auto-resumes in the same invocation;
  ``--kill-hard`` sends real SIGKILL for a CI resume);
* ``report`` — analyze a recorded run directory (journal + optional
  trace) and render the markdown run report: partition skew (the Figure 4
  CoV statistic), LPT critical path, straggler ranking, and the
  fault/retry timeline; ``--timings`` appends the measured
  (non-deterministic) sections;
* ``checkpoints`` — list, inspect, or garbage-collect the join manifests
  under a checkpoint directory (``gc --max-bytes N`` prunes
  least-recently-used runs to a size budget — the serve cache's policy);
* ``serve`` — run the resident join service: a long-lived coordinator on
  a local TCP socket multiplexing queries onto one shared process pool,
  with admission control (bounded in-flight + queue, explicit rejects)
  and a fingerprint-keyed artifact cache that answers repeated queries
  from their committed result logs and resumes half-finished ones;
* ``query`` — one-shot client for a running server (``--op
  join|ping|stats|shutdown``);
* ``plan``  — show which algorithm the paper's decision table picks for a
  described scenario;
* ``bench-compare`` — diff a fresh ``BENCH_*.json`` against a committed
  baseline and exit non-zero if deterministic counters drifted;
* ``info``  — package, subsystem, and experiment inventory.
"""

from __future__ import annotations

import argparse
import json
import sys


def _cmd_demo(args: argparse.Namespace) -> int:
    from . import Database, PBSMJoin, intersects
    from .data import make_tiger_datasets
    from .obs import report_to_dict

    db = Database(buffer_mb=args.buffer_mb)
    rels = make_tiger_datasets(
        db, scale=args.scale, include=("road", "hydro"), seed=args.seed
    )
    if not args.json:
        print(
            f"loaded {len(rels['road'])} roads and {len(rels['hydro'])} "
            f"hydrography features (scale={args.scale})"
        )
    db.pool.clear()
    result = PBSMJoin(db.pool).run(rels["road"], rels["hydro"], intersects)
    if args.json:
        document = report_to_dict(result.report)
        document["scale"] = args.scale
        document["buffer_mb"] = args.buffer_mb
        document["seed"] = args.seed
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    print(f"{len(result)} intersecting pairs\n")
    print(result.report.format_table())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from . import Database, PBSMJoin, intersects
    from .data import make_tiger_datasets
    from .obs import (
        MetricsRegistry,
        Tracer,
        write_chrome_trace,
        write_metrics_json,
        write_trace_jsonl,
    )

    db = Database(buffer_mb=args.buffer_mb)
    rels = make_tiger_datasets(
        db, scale=args.scale, include=("road", "hydro"), seed=args.seed
    )
    db.pool.clear()
    db.pool.reset_counters()

    tracer = Tracer(disk=db.disk, pool=db.pool)
    metrics = MetricsRegistry()
    result = PBSMJoin(db.pool, tracer=tracer, metrics=metrics).run(
        rels["road"], rels["hydro"], intersects
    )

    out = Path(args.out)
    trace_path = write_trace_jsonl(tracer, out / "trace.jsonl")
    metrics_path = write_metrics_json(
        metrics,
        out / "metrics.json",
        extra={
            "algorithm": "PBSM",
            "scale": args.scale,
            "buffer_mb": args.buffer_mb,
            "result_count": len(result),
        },
    )
    chrome_path = write_chrome_trace(tracer, out / "chrome_trace.json")

    print(result.report.format_table())
    print(f"\n{tracer.span_count} spans from {len(result)} result pairs")
    print(f"trace:   {trace_path}")
    print(f"metrics: {metrics_path}")
    print(f"timeline: {chrome_path}  (open in chrome://tracing or Perfetto)")
    return 0


def _live_renderer(stream):
    """Journal ``on_event`` hook: one progress line per interesting event.

    This is the whole ``parallel --live`` implementation — the journal
    already sees every dispatch, heartbeat, completion, and fault as it
    happens, so live progress is just a callback that prints them.
    """
    state = {"done": 0, "total": None}

    def on_event(record: dict) -> None:
        kind = record.get("type")
        line = None
        if kind == "run_started":
            line = (f"run started: backend={record.get('backend')} "
                    f"workers={record.get('workers')} "
                    f"partitions={record.get('partitions')}")
        elif kind == "schedule":
            state["total"] = len(record.get("order", []))
            line = f"{state['total']} partition-pair tasks scheduled (LPT order)"
        elif kind == "task_dispatched":
            line = f"-> pair {record.get('pair')} attempt {record.get('attempt')}"
        elif kind == "worker_heartbeat":
            line = (f"   worker {record.get('pid')} pair {record.get('pair')} "
                    f"{record.get('phase')}")
        elif kind in ("task_finished", "task_replayed"):
            state["done"] += 1
            total = state["total"] if state["total"] is not None else "?"
            verb = "replayed" if kind == "task_replayed" else "done"
            line = (f"<- pair {record.get('pair')} {verb} "
                    f"({state['done']}/{total}, "
                    f"{record.get('results', 0)} results)")
        elif kind == "node_finished":
            line = (f"<- node {record.get('node')} finished "
                    f"({record.get('local_pairs', 0)} local pairs)")
        elif kind == "fault_injected":
            line = f"!! fault {record.get('kind')} pair {record.get('pair')}"
        elif kind == "retry":
            line = (f"!! retry pair {record.get('pair')} "
                    f"attempt {record.get('attempt')} "
                    f"(cause {record.get('cause')})")
        elif kind == "pool_respawn":
            line = "!! worker pool respawned"
        elif kind == "run_finished":
            line = f"run finished: {record.get('results')} result pairs"
        if line is not None and not state.get("dead"):
            # A dead stream (e.g. the output piped to a pager that quit)
            # must not kill the join: stop rendering, keep flying.
            try:
                stream.write(f"[live] {line}\n")
                stream.flush()
            except (OSError, ValueError):
                state["dead"] = True

    return on_event


def _cmd_parallel(args: argparse.Namespace) -> int:
    from . import intersects
    from .checkpoint import CheckpointMismatchError
    from .obs import RunJournal, journal_path
    from .parallel import parallel_join
    from .serve.query import DATASETS, result_digest
    from .storage import DiskFullError

    if args.resume and not args.checkpoint_dir:
        print("parallel: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.checkpoint_dir and args.backend != "process":
        print("parallel: --checkpoint-dir requires --backend process",
              file=sys.stderr)
        return 2
    if (args.live or args.out) and args.backend == "serial":
        print("parallel: --live/--out need a scheduled backend "
              "(process or simulated); the serial reference has no "
              "journal to record", file=sys.stderr)
        return 2
    budget = None
    if args.disk_budget is not None:
        if args.backend != "process":
            print("parallel: --disk-budget requires --backend process "
                  "(the other backends write no real bytes to govern)",
                  file=sys.stderr)
            return 2
        from .storage import DiskBudget

        budget = DiskBudget(args.disk_budget)

    journal = None
    if args.live or args.out:
        journal = RunJournal(
            journal_path(args.out) if args.out else None,
            on_event=_live_renderer(sys.stdout) if args.live else None,
        )

    gen_r, gen_s = DATASETS[args.dataset]
    if args.seed is None:
        side_r = list(gen_r(args.scale))
        side_s = list(gen_s(args.scale))
    else:
        side_r = list(gen_r(args.scale, seed=args.seed))
        side_s = list(gen_s(args.scale, seed=args.seed + 1))

    try:
        result = parallel_join(
            side_r, side_s, intersects,
            backend=args.backend, workers=args.workers, scheme=args.scheme,
            start_method=args.start_method, journal=journal,
            checkpoint_dir=args.checkpoint_dir, resume=args.resume,
            disk_budget=budget,
        )
    except CheckpointMismatchError as exc:
        print(f"parallel: {exc}", file=sys.stderr)
        return 2
    except DiskFullError as exc:
        print(f"parallel: disk budget exhausted past every recovery: {exc}",
              file=sys.stderr)
        return 3
    finally:
        if journal is not None:
            journal.close()

    verified = None
    if args.verify and args.backend != "serial":
        reference = parallel_join(side_r, side_s, intersects, backend="serial")
        verified = reference.pairs == result.pairs

    if args.json:
        document = {
            "backend": result.backend,
            "workers": args.workers,
            "dataset": args.dataset,
            "scale": args.scale,
            "seed": args.seed,
            "result_count": len(result),
            "result_digest": result_digest(result.pairs),
            "merge": {
                "duplicates_dropped": result.duplicates_dropped,
                "coordinator_merge_s": round(result.coordinator_merge_s, 6),
            },
            "wall_s": round(result.wall_s, 6),
            "critical_path_s": round(result.critical_path_s, 6),
            "total_work_s": round(result.total_work_s, 6),
            "speedup": round(result.speedup, 4),
            "storage_factor_r": round(result.storage_factor_r, 4),
            "storage_factor_s": round(result.storage_factor_s, 4),
            "nodes": [
                {
                    "node_id": n.node_id,
                    "tuples_r": n.tuples_r,
                    "tuples_s": n.tuples_s,
                    "local_pairs": n.local_pairs,
                    "remote_fetches": n.remote_fetches,
                    "seconds": round(n.sim_seconds, 6),
                }
                for n in result.nodes
            ],
            "tasks": len(result.tasks),
        }
        if args.checkpoint_dir:
            document["checkpoint_run_id"] = result.checkpoint_run_id
            document["resumed_pairs"] = result.resumed_pairs
        if budget is not None:
            document["disk"] = budget.snapshot()
        if args.out:
            document["journal"] = str(journal.path)
        if verified is not None:
            document["verified_against_serial"] = verified
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0 if verified in (None, True) else 1

    print(
        f"{len(side_r)} x {len(side_s)} features ({args.dataset}, "
        f"scale={args.scale}) on backend={result.backend!r}"
    )
    print(f"{len(result)} intersecting pairs "
          f"(merge duplicates dropped: {result.duplicates_dropped})")
    print(
        f"wall {result.wall_s:.3f}s; per-{'worker' if args.backend == 'process' else 'node'} "
        f"work {result.total_work_s:.3f}s over {len(result.nodes)} "
        f"{'workers' if args.backend == 'process' else 'nodes'} "
        f"(critical path {result.critical_path_s:.3f}s, "
        f"work-distribution speedup {result.speedup:.2f}x)"
    )
    if result.tasks:
        costs = sorted(t.cost_estimate for t in result.tasks)
        print(
            f"{len(result.tasks)} partition-pair tasks, LPT cost seeds "
            f"min/median/max = {costs[0]}/{costs[len(costs) // 2]}/{costs[-1]}"
        )
    if args.checkpoint_dir:
        line = f"checkpoint run {result.checkpoint_run_id} under {args.checkpoint_dir}"
        if args.resume:
            line += f"; resumed {len(result.resumed_pairs)} committed pair(s)"
        print(line)
    if budget is not None:
        snap = budget.snapshot()
        print(f"disk budget {snap['max_bytes']} bytes: "
              f"peak {snap['high_watermark_bytes']}, "
              f"{snap['used_bytes']} still on disk, "
              f"{snap['denials']} denial(s)")
    if args.out:
        print(f"run journal: {journal.path}  "
              f"(analyze with `python -m repro report {args.out}`)")
    if verified is not None:
        print(f"verified against serial reference: {'OK' if verified else 'MISMATCH'}")
        return 0 if verified else 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from pathlib import Path

    from . import intersects
    from .checkpoint import CheckpointMismatchError
    from .data import tiger
    from .faults import CoordinatorKilledError, load_plan
    from .parallel import ProcessPBSM, parallel_join

    try:
        plan = load_plan(
            args.plan, seed=args.seed, num_pairs=args.partitions,
            hang_s=args.hang_s,
        )
    except (ValueError, OSError) as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return 2
    if plan.max_hang_s > 0 and plan.max_hang_s <= args.timeout:
        print(
            f"chaos: plan hangs for {plan.max_hang_s}s but the task timeout "
            f"is {args.timeout}s; hangs would never trip it "
            "(raise --hang-s or lower --timeout)",
            file=sys.stderr,
        )
        return 2
    wants_checkpoint_faults = bool(
        plan.coordinator_kill_ordinals or plan.torn_manifest_ordinals
    )
    if args.kill_coordinator_after is not None and args.kill_coordinator_after < 1:
        print("chaos: --kill-coordinator-after must be >= 1", file=sys.stderr)
        return 2
    if (args.kill_coordinator_after is not None or wants_checkpoint_faults) \
            and not args.checkpoint_dir:
        print(
            "chaos: coordinator kills / torn manifests need --checkpoint-dir "
            "(there is no durable state to recover without one)",
            file=sys.stderr,
        )
        return 2
    if args.resume and not args.checkpoint_dir:
        print("chaos: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2

    roads = list(tiger.generate_roads(args.scale))
    hydro = list(tiger.generate_hydrography(args.scale))
    reference = parallel_join(roads, hydro, intersects, backend="serial")

    # Flight recorder: every chaos run leaves a run directory that
    # `python -m repro report` can diagnose without re-running anything.
    out_dir = Path(args.out) if args.out else None
    journal = tracer = metrics = None
    recorder = {}
    if out_dir is not None:
        from .obs import (
            MetricsRegistry,
            RunJournal,
            Tracer,
            journal_path,
        )

        journal = RunJournal(journal_path(out_dir))
        tracer = Tracer()
        metrics = MetricsRegistry()
        recorder = {"journal": journal, "tracer": tracer, "metrics": metrics}

    engine = ProcessPBSM(
        args.workers, num_partitions=args.partitions,
        start_method=args.start_method, fault_plan=plan,
        task_timeout_s=args.timeout, max_task_retries=args.retries,
        checkpoint_dir=args.checkpoint_dir,
        kill_coordinator_after=args.kill_coordinator_after,
        kill_hard=args.kill_hard,
        **recorder,
    )
    killed_at = None
    try:
        try:
            if args.resume:
                result = engine.resume(roads, hydro, intersects)
            else:
                result = engine.run(roads, hydro, intersects)
        except CheckpointMismatchError as exc:
            print(f"chaos: {exc}", file=sys.stderr)
            return 2
        except CoordinatorKilledError as exc:
            # Soft kill: the coordinator "died" after a durable checkpoint
            # op.  Resume from the same checkpoint directory in this
            # process, which is the whole point — everything committed
            # before the kill must carry the rest of the join.
            killed_at = exc.ordinal
            if not args.json:
                print(
                    f"coordinator killed after checkpoint ordinal "
                    f"{exc.ordinal}; resuming from {args.checkpoint_dir} ..."
                )
            # Disarm the explicit kill or the recovery run would die at
            # the same ordinal forever.
            engine.kill_coordinator_after = None
            result = engine.resume(roads, hydro, intersects)
    finally:
        if journal is not None:
            journal.close()
    if out_dir is not None:
        from .obs import write_chrome_trace, write_metrics_json, write_trace_jsonl

        write_trace_jsonl(tracer, out_dir / "trace.jsonl")
        write_metrics_json(
            metrics, out_dir / "metrics.json",
            extra={"plan": plan.to_dict(), "scale": args.scale,
                   "workers": args.workers, "partitions": args.partitions},
        )
        write_chrome_trace(tracer, out_dir / "chrome_trace.json",
                           journal_events=journal.records)
    survived = result.pairs == reference.pairs

    summary = dict(result.fault_summary)
    faults_block = {
        "injected": sum(
            v for k, v in summary.items() if k.startswith("injected_")
        ),
        "retries": summary.get("retries", 0),
        "timeouts": summary.get("timeouts", 0),
        "quarantined": summary.get("quarantined", 0),
        "degraded": summary.get("degraded", 0),
        "pool_respawns": summary.get("pool_respawns", 0),
        "survived": survived,
        "plan": plan.to_dict(),
    }
    if killed_at is not None or args.resume or args.checkpoint_dir:
        faults_block["coordinator_killed_at"] = killed_at
        faults_block["resumed_pairs"] = len(result.resumed_pairs)

    plan_label = Path(args.plan).stem if args.plan.endswith(".json") else args.plan
    if args.bench_out:
        from .obs.schema import SCHEMA_VERSION, validate_bench_file

        record = {
            "algorithm": "PBSM-process",
            "scale": args.scale,
            "buffer_mb": 0.0,
            "total_s": round(result.wall_s, 6),
            "cpu_s": 0.0,
            "io_s": 0.0,
            "candidates": sum(t.candidates for t in result.tasks),
            "result_count": len(result),
            "phases": [],
            "counters": {"page_reads": 0, "page_writes": 0, "seeks": 0},
            "notes": {"workers": args.workers, "partitions": args.partitions},
            "faults": faults_block,
        }
        document = {
            "schema_version": SCHEMA_VERSION,
            "benchmark": f"chaos_{plan_label}",
            "records": [record],
        }
        validate_bench_file(document)
        out = Path(args.bench_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    if args.json:
        document = {
            "plan": plan_label,
            "scale": args.scale,
            "workers": args.workers,
            "partitions": args.partitions,
            "result_count": len(result),
            "reference_count": len(reference),
            "wall_s": round(result.wall_s, 6),
            "degraded_pairs": result.degraded_pairs,
            "fault_summary": summary,
            "faults": faults_block,
            "survived": survived,
        }
        if args.checkpoint_dir:
            document["checkpoint_run_id"] = result.checkpoint_run_id
            document["coordinator_killed_at"] = killed_at
            document["resumed_pairs"] = result.resumed_pairs
        if out_dir is not None:
            document["run_dir"] = str(out_dir)
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0 if survived else 1

    print(
        f"chaos plan {plan_label!r} (seed={plan.seed}, "
        f"{plan.spec.total_faults} fault(s)) over {args.workers} workers x "
        f"{args.partitions} partition pairs at scale {args.scale}"
    )
    if summary:
        tallies = ", ".join(f"{k}={v}" for k, v in sorted(summary.items()))
        print(f"fault/recovery events: {tallies}")
    else:
        print("fault/recovery events: none")
    if result.degraded_pairs:
        print(f"degraded pairs (coordinator rebuilt serially): "
              f"{result.degraded_pairs}")
    if args.checkpoint_dir:
        line = f"checkpoint run {result.checkpoint_run_id}"
        if killed_at is not None:
            line += f"; coordinator killed after ordinal {killed_at}"
        if result.resumed_pairs:
            line += (f"; resumed {len(result.resumed_pairs)} committed "
                     f"pair(s): {result.resumed_pairs}")
        print(line)
    if out_dir is not None:
        print(f"flight recorder: {out_dir}/  "
              f"(analyze with `python -m repro report {out_dir}`)")
    print(
        f"{len(result)} pairs vs {len(reference)} serial reference pairs "
        f"in {result.wall_s:.3f}s"
    )
    print(f"survived: {'OK — pair set identical to fault-free serial run' if survived else 'MISMATCH'}")
    return 0 if survived else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from .obs import analyze_run, render_report

    try:
        analysis = analyze_run(args.run_dir)
    except FileNotFoundError as exc:
        print(f"report: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(analysis.to_dict(), indent=2, sort_keys=True))
        return 0
    print(render_report(analysis, timings=args.timings), end="")
    return 0


def _cmd_checkpoints(args: argparse.Namespace) -> int:
    import time as _time
    from pathlib import Path

    from .checkpoint import gc_checkpoint_dir, inspect_checkpoint_dir

    root = Path(args.dir)
    if not root.is_dir():
        print(f"checkpoints: no such directory: {root}", file=sys.stderr)
        return 2

    infos = inspect_checkpoint_dir(root)
    by_id = {info.run_id: info for info in infos}

    if args.action == "gc":
        if args.run_id is not None and args.run_id not in by_id:
            print(f"checkpoints: unknown run id {args.run_id!r} in {root}",
                  file=sys.stderr)
            return 2
        if args.max_bytes is not None and (
            args.run_id is not None or args.all_runs
        ):
            print("checkpoints: --max-bytes is its own policy; drop the "
                  "run id / --all", file=sys.stderr)
            return 2
        report = gc_checkpoint_dir(root, run_id=args.run_id,
                                   all_runs=args.all_runs,
                                   max_bytes=args.max_bytes,
                                   dry_run=args.dry_run)
        if args.json:
            print(json.dumps(
                {"removed": report.removed, "kept": report.kept,
                 "bytes_freed": report.bytes_freed,
                 "dry_run": args.dry_run},
                indent=2, sort_keys=True,
            ))
            return 0
        if args.dry_run:
            print(f"would remove {len(report.removed)} run(s), "
                  f"freeing {report.bytes_freed} bytes")
            for run_id in report.removed:
                info = by_id.get(run_id)
                detail = ""
                if info is not None:
                    age = _time.time() - info.mtime
                    detail = f"  ({info.bytes_total} bytes, {age:.0f}s old)"
                print(f"  would remove {run_id}{detail}")
        else:
            print(f"removed {len(report.removed)} run(s), "
                  f"freed {report.bytes_freed} bytes")
            for run_id in report.removed:
                print(f"  removed {run_id}")
        for run_id in report.kept:
            print(f"  kept    {run_id}  (resumable; gc it by name or --all)")
        return 0

    if args.action == "inspect":
        if args.run_id is None:
            print("checkpoints: inspect needs a run id", file=sys.stderr)
            return 2
        info = by_id.get(args.run_id)
        if info is None:
            print(f"checkpoints: unknown run id {args.run_id!r} in {root}",
                  file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(info.to_dict(), indent=2, sort_keys=True))
            return 0
        total = "?" if info.pairs_total is None else info.pairs_total
        print(f"run:         {info.run_id}")
        print(f"path:        {info.path}")
        print(f"state:       {info.state}")
        print(f"pairs:       {info.pairs_done}/{total} committed")
        print(f"artifacts:   {info.bytes_total} bytes on disk")
        print(f"age:         {_time.time() - info.mtime:.0f}s since last "
              "durable write")
        if info.error:
            print(f"error:       {info.error}")
        return 0

    # list
    if args.json:
        print(json.dumps([info.to_dict() for info in infos],
                         indent=2, sort_keys=True))
        return 0
    if not infos:
        print(f"no checkpointed runs under {root}")
        return 0
    for info in infos:
        total = "?" if info.pairs_total is None else info.pairs_total
        age = _time.time() - info.mtime
        note = f"  [{info.error}]" if info.error else ""
        print(f"{info.run_id}  {info.state:<12} "
              f"{info.pairs_done}/{total} pairs  "
              f"{info.bytes_total} bytes  {age:.0f}s old{note}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading
    from pathlib import Path

    from .serve import JoinServer

    plan = None
    if args.faults:
        from .faults import load_plan

        plan = load_plan(
            args.faults, seed=args.fault_seed, num_pairs=args.fault_pairs,
            hang_s=args.fault_hang_s,
        )
    server = JoinServer(
        args.cache_dir,
        args.out,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        max_cache_bytes=args.max_cache_bytes,
        disk_budget_bytes=args.disk_budget,
        start_method=args.start_method,
        fault_plan=plan,
        kill_coordinator_after=args.kill_coordinator_after,
        breaker_threshold=args.breaker_threshold,
        breaker_window_s=args.breaker_window,
        breaker_cooldown_s=args.breaker_cooldown,
        scrub_interval_s=args.scrub_interval,
        telemetry_interval_s=args.telemetry_interval,
    )
    host, port = server.start()
    if args.port_file:
        port_path = Path(args.port_file)
        port_path.parent.mkdir(parents=True, exist_ok=True)
        port_path.write_text(f"{port}\n")
    print(f"serving on {host}:{port}  "
          f"(cache {server.cache.root}, journals {server.out_dir})",
          flush=True)

    stop = threading.Event()

    def _on_signal(_signum, _frame):
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    # Wake periodically: either a signal landed or a client sent the
    # shutdown op (which stops the server from its own thread).
    while not stop.is_set() and not server.stopped.is_set():
        stop.wait(0.2)
    server.shutdown(drain=True)
    stats = server.stats()
    print(f"drained: {stats['completed']} completed, "
          f"{stats['rejected']} rejected, "
          f"{stats['outcomes']['deadline_exceeded']} deadline-exceeded, "
          f"{stats['outcomes']['storage_overload']} storage-overload, "
          f"{stats['outcomes']['degraded']} degraded, "
          f"{stats['hits']} cache hits / {stats['misses']} misses")
    return 0


_QUERY_TIMEOUT_GRACE_S = 30.0
"""Socket-timeout slack past the query deadline: enough for the server
to notice the deadline, abandon the pool, and write its typed reject."""


def _cmd_query(args: argparse.Namespace) -> int:
    from .serve import ServeClient, read_port_file

    port = args.port
    if port is None and args.port_file:
        port = read_port_file(args.port_file)
    if port is None:
        print("query: need --port or --port-file", file=sys.stderr)
        return 2
    # --timeout is the *query deadline*: the server enforces it through
    # deadline_s and answers a typed reject.  The socket timeout trails it
    # by a grace period so the server's answer (not a client-side timeout)
    # is what the user sees; past the grace, something is truly wedged.
    socket_timeout = (
        args.timeout + _QUERY_TIMEOUT_GRACE_S
        if args.timeout is not None
        else None
    )
    try:
        with ServeClient(args.host, port, timeout=socket_timeout) as client:
            if args.op == "ping":
                response = client.ping()
            elif args.op == "stats":
                response = client.stats()
            elif args.op == "telemetry":
                response = client.telemetry()
            elif args.op == "metrics":
                response = client.metrics()
            elif args.op == "shutdown":
                response = client.shutdown()
            else:
                response = client.join(
                    dataset=args.dataset,
                    scale=args.scale,
                    seed=args.seed,
                    predicate=args.predicate,
                    workers=args.workers,
                    include_pairs=args.pairs,
                    deadline_s=args.timeout,
                )
    except (OSError, TimeoutError) as exc:
        print(f"query: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("ok") else 1


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from .obs.top import render_top
    from .serve import ServeClient, read_port_file

    port = args.port
    if port is None and args.port_file:
        port = read_port_file(args.port_file)
    if port is None:
        print("top: need a port file argument or --port", file=sys.stderr)
        return 2
    # Clear-and-redraw only on a real terminal; piped output appends
    # plain frames and dies quietly when the pipe closes (head, less).
    interactive = sys.stdout.isatty() and not args.once
    try:
        with ServeClient(args.host, port, timeout=10.0) as client:
            while True:
                response = client.telemetry(args.window)
                if not response.get("ok"):
                    print(
                        f"top: {response.get('message', 'telemetry failed')}",
                        file=sys.stderr,
                    )
                    return 1
                frame = render_top(response["telemetry"])
                try:
                    if interactive:
                        sys.stdout.write("\x1b[2J\x1b[H")
                    sys.stdout.write(frame)
                    sys.stdout.flush()
                except (OSError, ValueError):
                    return 0  # downstream pipe closed; nothing left to show
                if args.once:
                    return 0
                time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except (OSError, TimeoutError) as exc:
        print(f"top: {exc}", file=sys.stderr)
        return 1


_RUNS_GATE_EXIT = 4
"""`repro runs compare` exit status when a regression gate fires —
distinct from usage errors (2) so CI can tell "regressed" from "broken"."""


def _cmd_runs(args: argparse.Namespace) -> int:
    from .obs import corpus

    if args.runs_op == "list":
        records = corpus.scan_corpus(args.root)
        if args.json:
            print(json.dumps(
                [r.to_dict() for r in records], indent=2, sort_keys=True
            ))
        else:
            sys.stdout.write(corpus.render_list(records))
        return 0

    if args.runs_op == "show":
        records = corpus.scan_corpus(args.root)
        record = corpus.find_record(records, args.run_id)
        if record is None:
            print(
                f"runs: no run {args.run_id!r} under {args.root} "
                f"({len(records)} runs indexed; try `repro runs list`)",
                file=sys.stderr,
            )
            return 2
        if args.json:
            print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        else:
            sys.stdout.write(corpus.render_show(record))
        return 0

    # compare: two artifacts, or --trend over a corpus
    if args.trend:
        if len(args.paths) != 1 or not args.metric:
            print(
                "runs compare --trend needs exactly one corpus root and "
                "--metric", file=sys.stderr,
            )
            return 2
        metric = args.metric[0]
        records = [
            r for r in corpus.scan_corpus(args.paths[0])
            if not args.kind or r.kind == args.kind
        ]
        points = [
            (r.run_id, r.metrics[metric])
            for r in records
            if metric in r.metrics
        ]
        if len(points) < 2:
            print(
                f"runs: metric {metric!r} present in {len(points)} run(s); "
                "a trend needs at least 2", file=sys.stderr,
            )
            return 2
        run_ids = [p[0] for p in points]
        values = [p[1] for p in points]
        trend = corpus.fit_trend(values)
        if args.json:
            print(json.dumps(
                {"metric": metric, "runs": run_ids, "values": values,
                 "trend": trend},
                indent=2, sort_keys=True,
            ))
        else:
            sys.stdout.write(
                corpus.render_trend(metric, run_ids, values, trend)
            )
        if trend["slope_frac"] > args.threshold:
            print(
                f"REGRESSION: {metric} trends "
                f"{trend['slope_frac'] * 100:+.2f}% per run "
                f"(threshold {args.threshold:.0%})"
            )
            return _RUNS_GATE_EXIT
        return 0

    if len(args.paths) != 2:
        print("runs compare needs exactly two run artifacts", file=sys.stderr)
        return 2
    try:
        record_a = corpus.index_path(args.paths[0])
        record_b = corpus.index_path(args.paths[1])
    except corpus.CorpusError as exc:
        print(f"runs: {exc}", file=sys.stderr)
        return 2
    rows = corpus.compare_runs(record_a, record_b, metrics=args.metric or None)
    if args.json:
        print(json.dumps(
            {"a": record_a.to_dict(), "b": record_b.to_dict(), "rows": rows},
            indent=2, sort_keys=True,
        ))
    else:
        sys.stdout.write(corpus.render_compare(record_a, record_b, rows))
    failures = corpus.check_gates(rows, args.gate or [], args.threshold)
    for failure in failures:
        print(f"REGRESSION: {failure}")
    return _RUNS_GATE_EXIT if failures else 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from .core.planner import choose_algorithm
    from .storage import Database
    from .data import make_tiger_datasets
    from .index import bulk_load_rstar

    db = Database(buffer_mb=args.buffer_mb)
    rels = make_tiger_datasets(db, scale=args.scale, include=("road", "hydro"))
    idx_r = bulk_load_rstar(db.pool, rels["road"]) if args.index_r else None
    idx_s = bulk_load_rstar(db.pool, rels["hydro"]) if args.index_s else None
    plan = choose_algorithm(
        rels["road"], rels["hydro"], db.pool.capacity, idx_r, idx_s
    )
    print(f"scenario: index on road={args.index_r}, index on hydro={args.index_s}, "
          f"buffer={args.buffer_mb} MB")
    print(f"chosen algorithm: {plan.algorithm.upper()}")
    print(f"reason: {plan.reason}")
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from .bench.compare import compare_files

    violations = compare_files(args.baseline, args.fresh)
    if violations:
        print(f"bench-compare: {len(violations)} violation(s) vs {args.baseline}")
        for violation in violations:
            print(f"  {violation}")
        print(
            "If the drift is intentional, re-baseline: re-run the benchmark "
            "at the baseline's REPRO_BENCH_SCALE and commit the fresh JSON "
            "(see src/repro/bench/compare.py)."
        )
        return 1
    print(f"bench-compare: OK ({args.fresh} matches {args.baseline})")
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    from . import __version__

    print(f"repro {__version__} — Partition Based Spatial-Merge Join "
          "(Patel & DeWitt, SIGMOD 1996)")
    print(__doc__)
    print("subsystems: repro.geometry, repro.storage, repro.index, "
          "repro.core, repro.joins, repro.exec, repro.data, repro.bench, "
          "repro.parallel, repro.checkpoint, repro.serve")
    print("reproduce the paper: pytest benchmarks/ --benchmark-only")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PBSM spatial join reproduction",
    )
    sub = parser.add_subparsers(dest="command")

    demo = sub.add_parser("demo", help="run a small PBSM join")
    demo.add_argument("--scale", type=float, default=0.01)
    demo.add_argument("--buffer-mb", type=float, default=8.0)
    demo.add_argument("--seed", type=int, default=None,
                      help="base seed for the data generators")
    demo.add_argument("--json", action="store_true",
                      help="emit the cost report as JSON instead of a table")
    demo.set_defaults(func=_cmd_demo)

    trace = sub.add_parser(
        "trace", help="run a traced PBSM join and dump trace/metrics files"
    )
    trace.add_argument("--scale", type=float, default=0.01)
    trace.add_argument("--buffer-mb", type=float, default=8.0)
    trace.add_argument("--seed", type=int, default=None,
                       help="base seed for the data generators")
    trace.add_argument("--out", default="trace_out",
                       help="directory for trace.jsonl / metrics.json / "
                            "chrome_trace.json")
    trace.set_defaults(func=_cmd_trace)

    parallel = sub.add_parser(
        "parallel", help="run the join on a parallel backend"
    )
    parallel.add_argument("--backend", default="process",
                          choices=["process", "simulated", "serial"])
    parallel.add_argument("--workers", type=int, default=4,
                          help="worker processes (process) or virtual nodes "
                               "(simulated)")
    parallel.add_argument("--scale", type=float, default=0.01)
    parallel.add_argument("--seed", type=int, default=None,
                          help="base seed for the data generators")
    parallel.add_argument("--dataset", default="road_hydro",
                          choices=["road_hydro", "road_rail", "landuse_island"],
                          help="input pair: TIGER roads x hydrography "
                               "(default), roads x rail, or the SEQUOIA-style "
                               "polygon workload landuse x islands")
    parallel.add_argument("--scheme", default="replicate_objects",
                          choices=["replicate_objects", "replicate_mbrs"],
                          help="boundary-object declustering (simulated only)")
    parallel.add_argument("--start-method", default=None,
                          choices=["fork", "spawn", "forkserver"],
                          help="multiprocessing start method (process only)")
    parallel.add_argument("--verify", action="store_true",
                          help="cross-check the pair set against the serial "
                               "reference; non-zero exit on mismatch")
    parallel.add_argument("--checkpoint-dir", default=None,
                          help="make coordinator state durable under this "
                               "directory (process backend only)")
    parallel.add_argument("--disk-budget", type=int, default=None,
                          metavar="N",
                          help="hard ceiling on spill+checkpoint bytes "
                               "(process backend only); past it the engine "
                               "reclaims, then degrades pairs to the serial "
                               "no-spill path — the pair set stays "
                               "byte-identical")
    parallel.add_argument("--resume", action="store_true",
                          help="continue a checkpointed run instead of "
                               "starting over")
    parallel.add_argument("--out", default=None, metavar="DIR",
                          help="record the run journal to DIR/journal.jsonl "
                               "for `repro report`")
    parallel.add_argument("--live", action="store_true",
                          help="stream in-flight progress (dispatches, "
                               "worker heartbeats, completions) as the "
                               "journal sees it")
    parallel.add_argument("--json", action="store_true",
                          help="emit the run summary as JSON")
    parallel.set_defaults(func=_cmd_parallel)

    chaos = sub.add_parser(
        "chaos",
        help="run the join under a fault plan and verify it survives",
    )
    chaos.add_argument("--plan", default="combined",
                       help="named fault plan (none, disk_error, torn_frame, "
                            "worker_crash, hang, slow, combined) or a path to "
                            "a plan JSON file")
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault-plan compilation seed (named plans only)")
    chaos.add_argument("--scale", type=float, default=0.002)
    chaos.add_argument("--workers", type=int, default=2)
    chaos.add_argument("--partitions", type=int, default=8,
                       help="partition-pair count = the fault domain size")
    chaos.add_argument("--timeout", type=float, default=2.0,
                       help="per-task timeout in seconds")
    chaos.add_argument("--retries", type=int, default=3,
                       help="retry budget per partition pair")
    chaos.add_argument("--hang-s", type=float, default=6.0,
                       help="injected hang duration; must exceed --timeout")
    chaos.add_argument("--start-method", default=None,
                       choices=["fork", "spawn", "forkserver"])
    chaos.add_argument("--checkpoint-dir", default=None,
                       help="durable coordinator state; required for "
                            "coordinator-kill / torn-manifest faults")
    chaos.add_argument("--resume", action="store_true",
                       help="continue a checkpointed chaos run (checkpoint "
                            "faults are not re-armed on resume)")
    chaos.add_argument("--kill-coordinator-after", type=int, default=None,
                       metavar="N",
                       help="kill the coordinator after checkpoint ordinal N "
                            "(soft kill auto-resumes in this invocation)")
    chaos.add_argument("--kill-hard", action="store_true",
                       help="kill with real SIGKILL instead of the soft "
                            "in-process kill; the invocation dies and a "
                            "second one must --resume")
    chaos.add_argument("--bench-out", default=None,
                       help="also write a schema-valid BENCH_*.json with the "
                            "faults block to this path")
    chaos.add_argument("--out", default="run_out", metavar="DIR",
                       help="flight-recorder run directory (journal.jsonl, "
                            "trace.jsonl, chrome_trace.json, metrics.json); "
                            "'' disables recording")
    chaos.add_argument("--json", action="store_true",
                       help="emit the chaos report as JSON")
    chaos.set_defaults(func=_cmd_chaos)

    report = sub.add_parser(
        "report",
        help="analyze a recorded run directory and render the run report",
    )
    report.add_argument("run_dir", nargs="?", default="run_out",
                        help="directory holding journal.jsonl (and optionally "
                             "trace.jsonl); chaos writes one by default")
    report.add_argument("--timings", action="store_true",
                        help="append the measured (non-deterministic) "
                             "sections: wall-clock stragglers, backoff, "
                             "phase cpu/io, event tallies")
    report.add_argument("--json", action="store_true",
                        help="emit the full analysis as JSON")
    report.set_defaults(func=_cmd_report)

    checkpoints = sub.add_parser(
        "checkpoints",
        help="list/inspect/gc durable join manifests in a checkpoint dir",
    )
    checkpoints.add_argument("action", choices=["list", "inspect", "gc"],
                             help="list all runs, inspect one run, or "
                                  "garbage-collect finished runs")
    checkpoints.add_argument("run_id", nargs="?", default=None,
                             help="run directory name (run-<fingerprint>); "
                                  "required for inspect, optional for gc")
    checkpoints.add_argument("--dir", required=True,
                             help="the checkpoint directory to operate on")
    checkpoints.add_argument("--all", action="store_true", dest="all_runs",
                             help="gc every run, including resumable ones")
    checkpoints.add_argument("--max-bytes", type=int, default=None,
                             metavar="N",
                             help="gc: prune least-recently-used runs until "
                                  "the directory fits N bytes (the serve "
                                  "cache's eviction policy)")
    checkpoints.add_argument("--dry-run", action="store_true",
                             help="gc: report what would be removed (same "
                                  "selection policy, nothing deleted)")
    checkpoints.add_argument("--json", action="store_true",
                             help="emit machine-readable output")
    checkpoints.set_defaults(func=_cmd_checkpoints)

    serve = sub.add_parser(
        "serve",
        help="run the resident join service (local TCP, JSON lines)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port to bind (0 picks a free one)")
    serve.add_argument("--port-file", default=None,
                       help="write the bound port here once listening")
    serve.add_argument("--cache-dir", required=True,
                       help="artifact cache root (a checkpoint directory; "
                            "one-shot --checkpoint-dir runs interoperate)")
    serve.add_argument("--out", default="serve_out",
                       help="journal root: serve.jsonl plus one query-NNNN/ "
                            "run dir per served query (for `repro report`)")
    serve.add_argument("--workers", type=int, default=2,
                       help="size of the single shared worker pool")
    serve.add_argument("--max-inflight", type=int, default=2,
                       help="queries executing at once")
    serve.add_argument("--max-queue", type=int, default=8,
                       help="queries allowed to wait; beyond this, "
                            "reject with error=queue_full")
    serve.add_argument("--max-cache-bytes", type=int, default=None,
                       metavar="N",
                       help="LRU-evict unpinned cache entries to fit N bytes")
    serve.add_argument("--disk-budget", type=int, default=None,
                       metavar="N",
                       help="hard ceiling on bytes this server writes "
                            "(spills + checkpoints = cache fills); "
                            "over-footprint queries get a typed "
                            "error=storage_overload reject with "
                            "estimated_bytes/available_bytes")
    serve.add_argument("--start-method", default=None,
                       choices=["fork", "forkserver", "spawn"])
    serve.add_argument("--faults", default=None, metavar="PLAN",
                       help="named fault plan or plan JSON applied to every "
                            "executed (non-cached) query")
    serve.add_argument("--fault-seed", type=int, default=0)
    serve.add_argument("--fault-pairs", type=int, default=8,
                       help="pair count the named fault plan compiles against")
    serve.add_argument("--kill-coordinator-after", type=int, default=None,
                       metavar="N",
                       help="drill: soft-kill the next executed query after "
                            "checkpoint ordinal N, then recover it by "
                            "resuming the cache entry")
    serve.set_defaults(func=_cmd_serve)

    serve.add_argument("--fault-hang-s", type=float, default=None,
                       metavar="S",
                       help="override the fault plan's hang duration "
                            "(the deadline-stall drill keeps it just past "
                            "the query deadline instead of 30s)")
    serve.add_argument("--breaker-threshold", type=int, default=5,
                       help="pool deaths within the window that open the "
                            "circuit breaker")
    serve.add_argument("--breaker-window", type=float, default=30.0,
                       metavar="S", help="breaker failure-counting window")
    serve.add_argument("--breaker-cooldown", type=float, default=5.0,
                       metavar="S",
                       help="open time before a half-open probe query")
    serve.add_argument("--scrub-interval", type=float, default=None,
                       metavar="S",
                       help="run the cache scrubber every S seconds "
                            "(default: scrubber off)")
    serve.add_argument("--telemetry-interval", type=float, default=None,
                       metavar="S",
                       help="sample live telemetry every S seconds (the "
                            "`telemetry` wire op and `repro top` read it; "
                            "default: sampler off)")

    query = sub.add_parser(
        "query", help="one-shot client for a running join server"
    )
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--port", type=int, default=None)
    query.add_argument("--port-file", default=None,
                       help="read the port a `repro serve --port-file` wrote")
    query.add_argument("--op", default="join",
                       choices=["join", "ping", "stats", "telemetry",
                                "metrics", "shutdown"])
    query.add_argument("--dataset", default="road_hydro")
    query.add_argument("--scale", type=float, default=0.01)
    query.add_argument("--seed", type=int, default=0,
                       help="generator seed (0 = generator defaults, like "
                            "`parallel` without --seed)")
    query.add_argument("--predicate", default="intersects")
    query.add_argument("--workers", type=int, default=2)
    query.add_argument("--pairs", action="store_true",
                       help="include the full result pair list")
    query.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="query deadline in seconds: sent as deadline_s "
                            "(the server cancels the join past it and "
                            "answers error=deadline_exceeded); also bounds "
                            "the socket wait at S plus grace "
                            "(default: block forever)")
    query.set_defaults(func=_cmd_query)

    top = sub.add_parser(
        "top",
        help="live terminal dashboard for a running join server",
    )
    top.add_argument("port_file", nargs="?", default=None,
                     help="port file a `repro serve --port-file` wrote")
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=None,
                     help="connect directly instead of reading a port file")
    top.add_argument("--interval", type=float, default=1.0, metavar="S",
                     help="poll the telemetry op every S seconds")
    top.add_argument("--window", type=float, default=None, metavar="S",
                     help="restrict series stats to the last S seconds")
    top.add_argument("--once", action="store_true",
                     help="print one frame and exit (for scripts and CI)")
    top.set_defaults(func=_cmd_top)

    runs = sub.add_parser(
        "runs",
        help="cross-run warehouse: index, diff, and trend run artifacts",
    )
    runs_sub = runs.add_subparsers(dest="runs_op", required=True)
    runs_list = runs_sub.add_parser(
        "list", help="index every run dir / serve root / BENCH file under a tree"
    )
    runs_list.add_argument("root", help="directory tree to scan")
    runs_list.add_argument("--json", action="store_true")
    runs_list.set_defaults(func=_cmd_runs)
    runs_show = runs_sub.add_parser(
        "show", help="one indexed run's identity and metrics"
    )
    runs_show.add_argument("root", help="directory tree to scan")
    runs_show.add_argument("run_id", help="run id from `repro runs list`")
    runs_show.add_argument("--json", action="store_true")
    runs_show.set_defaults(func=_cmd_runs)
    runs_compare = runs_sub.add_parser(
        "compare",
        help="diff two runs metric-by-metric, or --trend a corpus; "
             f"exits {_RUNS_GATE_EXIT} past a regression threshold",
    )
    runs_compare.add_argument(
        "paths", nargs="*",
        help="two run artifacts (run dir, serve root, or BENCH_*.json) — "
             "or one corpus root with --trend",
    )
    runs_compare.add_argument("--metric", action="append", default=None,
                              help="restrict to this metric (repeatable); "
                                   "with --trend, the metric to fit")
    runs_compare.add_argument("--gate", action="append", default=None,
                              help="fail (exit 4) if this metric regressed "
                                   "past --threshold (repeatable)")
    runs_compare.add_argument("--threshold", type=float, default=0.10,
                              help="regression threshold as a fraction "
                                   "(default 0.10 = 10%%)")
    runs_compare.add_argument("--trend", action="store_true",
                              help="fit a least-squares trend per metric "
                                   "over every matching run under the root")
    runs_compare.add_argument("--kind", default=None,
                              choices=["engine", "serve", "bench"],
                              help="with --trend, only index runs of this kind")
    runs_compare.add_argument("--json", action="store_true")
    runs_compare.set_defaults(func=_cmd_runs)

    plan = sub.add_parser("plan", help="apply the paper's algorithm-choice rules")
    plan.add_argument("--scale", type=float, default=0.005)
    plan.add_argument("--buffer-mb", type=float, default=0.5)
    plan.add_argument("--index-r", action="store_true", help="road index pre-exists")
    plan.add_argument("--index-s", action="store_true", help="hydro index pre-exists")
    plan.set_defaults(func=_cmd_plan)

    bench_compare = sub.add_parser(
        "bench-compare",
        help="fail if a fresh BENCH_*.json drifted from a baseline",
    )
    bench_compare.add_argument("baseline", help="committed baseline BENCH_*.json")
    bench_compare.add_argument("fresh", help="freshly emitted BENCH_*.json")
    bench_compare.set_defaults(func=_cmd_bench_compare)

    info = sub.add_parser("info", help="package inventory")
    info.set_defaults(func=_cmd_info)

    args = parser.parse_args(argv)
    if not getattr(args, "func", None):
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
