"""The serving tier: a resident join service over the PBSM engine.

One long-lived coordinator (:mod:`repro.serve.server`) accepts join
queries over a local TCP socket, multiplexes them onto a single shared
process pool (:mod:`repro.serve.pool`), and answers repeats from a
fingerprint-keyed artifact cache (:mod:`repro.serve.cache`) built on the
checkpoint store — a completed query's durable result log *is* its
cache entry, and a half-finished one resumes instead of restarting.
Admission control keeps the service honest under load: bounded
in-flight queries, a bounded queue, and explicit rejects past both.

Resilience rides on three mechanisms: per-query **deadlines**
(``deadline_s`` on the spec, cooperatively cancelled inside the engine,
typed ``deadline_exceeded`` rejects with adoptable checkpoint state), a
**circuit breaker** over the shared pool's respawn rate
(:mod:`repro.serve.pool` — open breakers shed queries to a
byte-identical in-process serial path, reported as ``degraded``), and a
background **cache scrubber** (:mod:`repro.serve.scrub`) that CRC-walks
entries at rest, repairing warm ones and quarantining liars.

``python -m repro serve`` runs it; :mod:`repro.serve.client` talks to
it; ``benchmarks/bench_serve_throughput.py`` measures it.
"""

from .cache import (
    LOOKUP_HIT,
    LOOKUP_MISS,
    LOOKUP_WARM,
    QUARANTINE_DIRNAME,
    ArtifactCache,
)
from .client import ServeClient, read_port_file, wait_for_server
from .pool import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    SharedPoolProvider,
)
from .query import (
    DATASETS,
    PREDICATES,
    QueryError,
    QuerySpec,
    result_digest,
)
from .scrub import CacheScrubber
from .server import (
    BREAKER_STATE_CODES,
    DEFAULT_HOST,
    REJECT_DEADLINE,
    REJECT_QUEUE_FULL,
    REJECT_SHUTTING_DOWN,
    REJECT_STORAGE_OVERLOAD,
    SOURCE_COALESCED,
    SOURCE_DEGRADED,
    SOURCE_HIT,
    SOURCE_MISS,
    SOURCE_WARM,
    JoinServer,
    StorageOverloadError,
    outcome_block,
)

__all__ = [
    "ArtifactCache",
    "BREAKER_CLOSED",
    "BREAKER_STATE_CODES",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CacheScrubber",
    "DATASETS",
    "DEFAULT_HOST",
    "JoinServer",
    "LOOKUP_HIT",
    "LOOKUP_MISS",
    "LOOKUP_WARM",
    "PREDICATES",
    "QUARANTINE_DIRNAME",
    "QueryError",
    "QuerySpec",
    "REJECT_DEADLINE",
    "REJECT_QUEUE_FULL",
    "REJECT_SHUTTING_DOWN",
    "REJECT_STORAGE_OVERLOAD",
    "SOURCE_COALESCED",
    "SOURCE_DEGRADED",
    "SOURCE_HIT",
    "SOURCE_MISS",
    "SOURCE_WARM",
    "ServeClient",
    "SharedPoolProvider",
    "StorageOverloadError",
    "outcome_block",
    "read_port_file",
    "result_digest",
    "wait_for_server",
]
