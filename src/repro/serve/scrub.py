"""The cache scrubber: a low-rate background CRC walk over the cache.

Crash drills (PR 4) prove the checkpoint protocol never *writes* a lying
entry; this thread defends against everything the protocol cannot see —
bit rot, a truncating filesystem, an operator's stray ``dd`` — by
re-verifying entries **at rest**, before a query trips over them.

One :meth:`CacheScrubber.scrub_once` pass walks every unpinned run
directory under the :class:`~repro.serve.cache.ArtifactCache` root and
classifies it:

* **clean** — the manifest loads, every result-log frame passes its CRC
  and decodes as a pair result, and (for a ``complete`` entry) the
  merged replay matches the manifest's ``result_count`` with zero
  duplicates dropped.
* **repaired** — a *warm* entry whose result log is damaged part-way:
  the log is atomically rewritten down to its longest intact frame
  prefix.  Committed pairs in the prefix survive; the damaged tail's
  pairs simply return to *uncommitted*, so the next warm resume re-runs
  only those — the cheapest correct outcome.
* **quarantined** — anything a trim cannot make honest (corrupt or
  missing manifest; a ``complete`` entry whose log is damaged or whose
  replay count disagrees) is moved to ``quarantine/`` via
  :meth:`~repro.serve.cache.ArtifactCache.quarantine`.  The fingerprint
  becomes a cold miss; the bytes stay for post-mortem.

Pinned entries are always skipped: a pin means a query thread is mid
read or write in there, and whatever looks wrong is just in flux.  The
pin check and any rewrite happen under the cache lock, and pinning
itself takes that lock, so an entry cannot gain a writer mid-repair.

Every pass ends by re-enforcing the cache's byte budget
(:meth:`~repro.serve.cache.ArtifactCache.ensure_budget`), so LRU
evictions — and the disk-budget releases they carry — happen even on an
idle server, not only on the query path.

The scrubber never raises into its thread — a pass that blows up is
counted (``serve.scrub.errors``) and the next tick tries again.  Every
pass emits a ``cache_scrub`` journal event and ``serve.scrub.*``
metrics; each quarantine additionally emits ``cache_quarantine`` (from
the cache) so the fault timeline shows *which* entry went bad.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from pathlib import Path
from typing import Optional, Tuple

from ..checkpoint.manifest import _decode
from ..checkpoint.resultlog import replay_result_log, result_from_wire
from ..checkpoint.store import (
    RESULTS_FILENAME,
    STATE_COMPLETE,
    inspect_checkpoint_dir,
)
from ..core.refine import merge_sorted_unique
from ..obs.journal import EVENT_CACHE_SCRUB, NULL_JOURNAL
from ..obs.metrics import NULL_METRICS
from ..storage.errors import ManifestCorruptionError
from ..storage.spill import FRAME_HEADER_SIZE, MAX_RECORD_BYTES

from .cache import ArtifactCache

SCRUB_CLEAN = "clean"
SCRUB_REPAIRED = "repaired"
SCRUB_QUARANTINED = "quarantined"
SCRUB_SKIPPED = "skipped"


def intact_prefix(path: Path) -> Tuple[int, int]:
    """``(frames, bytes)`` of the longest trustworthy result-log prefix.

    A frame counts only if its header is whole, its payload passes the
    CRC, *and* the payload decodes as a pair-result record — a CRC-valid
    frame holding garbage is damage too.  A missing file is an empty
    (perfectly intact) log.
    """
    try:
        data = path.read_bytes()
    except OSError:
        return 0, 0
    label = str(path)
    offset = 0
    frames = 0
    while True:
        header = data[offset:offset + FRAME_HEADER_SIZE]
        if len(header) < FRAME_HEADER_SIZE:
            break
        length, crc = struct.unpack("<II", header)
        if length > MAX_RECORD_BYTES:
            break
        payload = data[
            offset + FRAME_HEADER_SIZE:offset + FRAME_HEADER_SIZE + length
        ]
        if len(payload) < length:
            break
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            break
        try:
            result_from_wire(_decode(payload, label, frames))
        except (
            KeyError, TypeError, ValueError, ManifestCorruptionError,
        ):
            break
        offset += FRAME_HEADER_SIZE + length
        frames += 1
    return frames, offset


class CacheScrubber:
    """Background verifier for an :class:`ArtifactCache`."""

    def __init__(
        self,
        cache: ArtifactCache,
        *,
        interval_s: float = 30.0,
        journal=NULL_JOURNAL,
        metrics=NULL_METRICS,
    ):
        if interval_s <= 0:
            raise ValueError("scrub interval must be positive")
        self.cache = cache
        self.interval_s = interval_s
        self.journal = journal
        self.metrics = metrics
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._counter_lock = threading.Lock()
        self.passes = 0
        self.scanned = 0
        self.repaired = 0
        self.quarantined = 0
        self.evicted = 0
        self.errors = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="cache-scrubber", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.scrub_once()
            except Exception:
                # The scrubber heals the cache; it must never hurt the
                # server.  Count the blown pass and try again next tick.
                with self._counter_lock:
                    self.errors += 1
                self.metrics.counter("serve.scrub.errors").inc()

    # ------------------------------------------------------------------ #
    # one pass
    # ------------------------------------------------------------------ #

    def scrub_once(self) -> dict:
        """Walk every entry once; returns this pass's tallies."""
        scanned = repaired = quarantined = 0
        for info in inspect_checkpoint_dir(self.cache.root):
            verdict = self._scrub_entry(info)
            if verdict == SCRUB_SKIPPED:
                continue
            scanned += 1
            if verdict == SCRUB_REPAIRED:
                repaired += 1
            elif verdict == SCRUB_QUARANTINED:
                quarantined += 1
        # Re-enforce the byte budget as part of every pass: quarantines
        # above may have freed nothing under the serving root, and cold
        # entries accumulate between queries — the scrubber is the only
        # actor guaranteed to visit an idle cache.
        evicted = len(self.cache.ensure_budget())
        with self._counter_lock:
            self.passes += 1
            self.scanned += scanned
            self.repaired += repaired
            self.quarantined += quarantined
            self.evicted += evicted
        self.metrics.counter("serve.scrub.passes").inc()
        self.metrics.counter("serve.scrub.scanned").inc(scanned)
        self.metrics.counter("serve.scrub.repaired").inc(repaired)
        self.metrics.counter("serve.scrub.quarantined").inc(quarantined)
        self.metrics.counter("serve.scrub.evicted").inc(evicted)
        self.journal.emit(
            EVENT_CACHE_SCRUB,
            scanned=scanned, repaired=repaired, quarantined=quarantined,
            evicted=evicted,
        )
        return {
            "scanned": scanned,
            "repaired": repaired,
            "quarantined": quarantined,
            "evicted": evicted,
        }

    def _scrub_entry(self, info) -> str:
        if info.run_id in self.cache.pinned_ids():
            return SCRUB_SKIPPED
        if info.state in ("corrupt", "missing-manifest", "unknown"):
            return (
                SCRUB_QUARANTINED
                if self.cache.quarantine(info.run_id, f"manifest_{info.state}")
                else SCRUB_SKIPPED
            )
        log_path = Path(info.path) / RESULTS_FILENAME
        # The pin re-check and any rewrite share the cache lock with
        # pin(), so no query can start writing this entry mid-repair.
        with self.cache._lock:
            if info.run_id in self.cache.pinned_ids():
                return SCRUB_SKIPPED
            frames, intact_bytes = intact_prefix(log_path)
            try:
                log_bytes = log_path.stat().st_size
            except OSError:
                log_bytes = 0
            if intact_bytes < log_bytes:
                if info.state == STATE_COMPLETE:
                    # Trimming a *complete* log would contradict the
                    # manifest's result_count: nothing to repair toward.
                    return (
                        SCRUB_QUARANTINED
                        if self.cache.quarantine(
                            info.run_id, "result_log_damage"
                        )
                        else SCRUB_SKIPPED
                    )
                self._trim_log(log_path, intact_bytes)
                return SCRUB_REPAIRED
        if info.state == STATE_COMPLETE and not self._replay_matches(
            log_path, info.result_count
        ):
            return (
                SCRUB_QUARANTINED
                if self.cache.quarantine(info.run_id, "result_count_mismatch")
                else SCRUB_SKIPPED
            )
        return SCRUB_CLEAN

    @staticmethod
    def _trim_log(log_path: Path, intact_bytes: int) -> None:
        """Atomically rewrite the log down to its intact prefix."""
        tmp = log_path.with_name(log_path.name + ".scrub")
        with open(tmp, "wb") as fh:
            with open(log_path, "rb") as src:
                fh.write(src.read(intact_bytes))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, log_path)

    @staticmethod
    def _replay_matches(log_path: Path, result_count) -> bool:
        """Does the merged replay reproduce the manifest's count exactly?"""
        try:
            committed, _torn = replay_result_log(log_path)
        except (OSError, ValueError):
            return False
        merged, dropped = merge_sorted_unique(
            [committed[index].pairs for index in sorted(committed)]
        )
        return not dropped and result_count == len(merged)

    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        with self._counter_lock:
            return {
                "running": self._thread is not None,
                "interval_s": self.interval_s,
                "passes": self.passes,
                "scanned": self.scanned,
                "repaired": self.repaired,
                "quarantined": self.quarantined,
                "evicted": self.evicted,
                "errors": self.errors,
            }
