"""Query specs: what a client asks the join service for.

A :class:`QuerySpec` names a join the service knows how to materialise —
a dataset pair (the TIGER generator workloads), a scale, a generator
seed, an exact predicate, and the execution knobs that change the
*answer* (partition count, via the run fingerprint) or only its *cost*
(buffer budget).  Specs travel as flat JSON objects on the wire
(:mod:`repro.serve.server`) and resolve, deterministically, to the same
input tuples and :class:`~repro.checkpoint.manifest.RunFingerprint` that
a one-shot ``python -m repro parallel --checkpoint-dir`` run of the same
query would compute — which is the whole trick: served artifacts and
one-shot artifacts are interchangeable because their identity is.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..core.pbsm import PBSMConfig
from ..core.predicates import Predicate, contains, intersects, intersects_naive
from ..data import sequoia, tiger
from ..checkpoint.manifest import RunFingerprint
from ..parallel.process import DEFAULT_TASK_MEMORY, DEFAULT_TASKS_PER_WORKER
from ..storage.tuples import SpatialTuple

DATASETS: Dict[str, Tuple[Callable, Callable]] = {
    "road_hydro": (tiger.generate_roads, tiger.generate_hydrography),
    "road_rail": (tiger.generate_roads, tiger.generate_rail),
    "landuse_island": (
        sequoia.generate_landuse_polygons,
        sequoia.generate_islands,
    ),
}
"""Dataset pair name -> (R generator, S generator)."""

POLYGON_DATASETS = frozenset({"landuse_island"})
"""Pairs whose tuples are polygons on both sides — the only inputs the
``contains`` predicate accepts (TIGER roads/hydro/rail are polylines)."""

PREDICATES: Dict[str, Predicate] = {
    "intersects": intersects,
    "intersects_naive": intersects_naive,
    "contains": contains,
}

MAX_SCALE = 1.0
"""Upper bound on a served query's scale: admission control for one
query's memory footprint, not a physical limit."""


class QueryError(ValueError):
    """A request that can never be served: malformed or unknown fields."""


def result_digest(pairs: Iterable[Tuple[int, int]]) -> str:
    """Canonical SHA-256 of a join's answer (the byte-identity check).

    The digest is taken over the sorted, deduplicated feature-id pair
    list in canonical JSON, so any two paths to the same answer — a cold
    run, a checkpoint replay, a one-shot ``parallel`` run — hash equal,
    and anything else does not.  Responses always carry it; shipping the
    full pair list is opt-in."""
    canon = sorted({(int(a), int(b)) for a, b in pairs})
    blob = json.dumps([list(p) for p in canon], separators=(",", ":"))
    return hashlib.sha256(blob.encode("ascii")).hexdigest()


@dataclass(frozen=True)
class QuerySpec:
    """One join query, as named over the wire."""

    dataset: str = "road_hydro"
    scale: float = 0.01
    seed: int = 0
    predicate: str = "intersects"
    workers: int = 2
    num_partitions: int = 0
    """0 means the process backend's default (workers x tasks/worker)."""
    memory_bytes: int = DEFAULT_TASK_MEMORY
    include_pairs: bool = False
    """Ship the full result pair list back (costly; off by default —
    responses always carry the count and a SHA-256 of the sorted pairs)."""
    deadline_s: Optional[float] = None
    """Wall-clock budget for this query.  Past it the server stops
    dispatching pair tasks, abandons in-flight ones, and answers with a
    typed ``deadline_exceeded`` reject — committed checkpoint state stays
    adoptable, so a retry resumes instead of restarting.  A *cost* knob,
    not an *answer* knob: it is deliberately excluded from the run
    fingerprint, so deadlined and undeadlined runs share a cache entry."""

    def __post_init__(self):
        if self.dataset not in DATASETS:
            raise QueryError(
                f"unknown dataset {self.dataset!r}; "
                f"expected one of {sorted(DATASETS)}"
            )
        if self.predicate not in PREDICATES:
            raise QueryError(
                f"unknown predicate {self.predicate!r}; "
                f"expected one of {sorted(PREDICATES)}"
            )
        if self.predicate == "contains" and self.dataset not in POLYGON_DATASETS:
            raise QueryError(
                f"predicate 'contains' needs polygon inputs; dataset "
                f"{self.dataset!r} is polylines (use one of "
                f"{sorted(POLYGON_DATASETS)})"
            )
        if not 0 < self.scale <= MAX_SCALE:
            raise QueryError(f"scale must be in (0, {MAX_SCALE}]")
        if self.seed < 0:
            raise QueryError("seed cannot be negative")
        if self.workers < 1:
            raise QueryError("need at least one worker")
        if self.num_partitions < 0:
            raise QueryError("num_partitions cannot be negative")
        if self.memory_bytes < 1:
            raise QueryError("memory budget must be positive")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise QueryError("deadline_s must be positive when given")

    # ------------------------------------------------------------------ #

    @property
    def partitions(self) -> int:
        """The effective partition count — must match what ProcessPBSM
        would derive, or the fingerprints (and thus the cache keys)
        of served and one-shot runs would diverge."""
        return self.num_partitions or self.workers * DEFAULT_TASKS_PER_WORKER

    @property
    def predicate_fn(self) -> Predicate:
        return PREDICATES[self.predicate]

    @property
    def dataset_key(self) -> Tuple[str, float, int]:
        """What the input tuples depend on (the server memoizes by this)."""
        return (self.dataset, self.scale, self.seed)

    def generate(self) -> Tuple[List[SpatialTuple], List[SpatialTuple]]:
        """Materialise the two inputs (deterministic in ``dataset_key``).

        ``seed=0`` keeps each generator's default seed, exactly like the
        ``parallel`` subcommand without ``--seed``; otherwise the R side
        uses ``seed`` and the S side ``seed + 1`` (same convention)."""
        gen_r, gen_s = DATASETS[self.dataset]
        if self.seed == 0:
            return list(gen_r(self.scale)), list(gen_s(self.scale))
        return (
            list(gen_r(self.scale, seed=self.seed)),
            list(gen_s(self.scale, seed=self.seed + 1)),
        )

    def fingerprint(
        self,
        tuples_r: List[SpatialTuple],
        tuples_s: List[SpatialTuple],
    ) -> RunFingerprint:
        return RunFingerprint.compute(
            tuples_r, tuples_s, self.predicate_fn,
            self.partitions, PBSMConfig(),
        )

    # ------------------------------------------------------------------ #
    # wire form
    # ------------------------------------------------------------------ #

    def to_wire(self) -> dict:
        return {
            "dataset": self.dataset,
            "scale": self.scale,
            "seed": self.seed,
            "predicate": self.predicate,
            "workers": self.workers,
            "num_partitions": self.num_partitions,
            "memory_bytes": self.memory_bytes,
            "include_pairs": self.include_pairs,
            "deadline_s": self.deadline_s,
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "QuerySpec":
        """Build a spec from a request object; unknown keys are rejected
        (a typo'd knob silently ignored would serve the wrong join)."""
        known = {
            "dataset", "scale", "seed", "predicate", "workers",
            "num_partitions", "memory_bytes", "include_pairs",
            "deadline_s",
        }
        extra = set(payload) - known - {"op"}
        if extra:
            raise QueryError(f"unknown query fields: {sorted(extra)}")
        try:
            return cls(
                dataset=str(payload.get("dataset", "road_hydro")),
                scale=float(payload.get("scale", 0.01)),
                seed=int(payload.get("seed", 0)),
                predicate=str(payload.get("predicate", "intersects")),
                workers=int(payload.get("workers", 2)),
                num_partitions=int(payload.get("num_partitions", 0)),
                memory_bytes=int(payload.get("memory_bytes", DEFAULT_TASK_MEMORY)),
                include_pairs=bool(payload.get("include_pairs", False)),
                deadline_s=(
                    float(payload["deadline_s"])
                    if payload.get("deadline_s") is not None
                    else None
                ),
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, QueryError):
                raise
            raise QueryError(f"malformed query: {exc}") from exc
