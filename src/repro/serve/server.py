"""The join server: one resident coordinator, many queries.

:class:`JoinServer` listens on a local TCP socket for newline-delimited
JSON requests (one object per line, one response line per request) and
multiplexes join queries onto a single shared process pool.  Three
mechanisms do the real work:

**Admission control.**  At most ``max_inflight`` queries execute at
once; at most ``max_queue`` more may wait.  A query past both bounds is
rejected *immediately* with ``error: "queue_full"`` — explicit
backpressure the client can act on (back off, retry elsewhere) instead
of an invisible, ever-growing queue.  During shutdown the reject reason
is ``"shutting_down"``.

**The artifact cache.**  Every executed query runs with its checkpoint
directory pointed at the cache root, so the durable spill + result-log
state a crash-safe run leaves behind doubles as the cache fill.  A
repeat of a *completed* query replays its committed result log — no
processes, no partitioning, just a file read.  A repeat of a query that
died midway resumes: spills are adopted, committed pairs replayed, only
the remainder merged.  Identity is the run fingerprint, which one-shot
``repro parallel --checkpoint-dir`` runs share — the server can adopt a
CLI run's artifacts and vice versa.

**Coalescing.**  Two simultaneous identical queries would race to write
the same run directory.  Per fingerprint, the first arrival becomes the
*leader* and executes; followers wait on the leader's completion event,
then re-classify — by construction a cache hit — and replay, reported
as ``source: "coalesced"``.

Every query gets its own journal directory under ``out_dir`` (so
``python -m repro report out/query-0007`` works on any served query),
and the server keeps a service-level journal of ``query_received`` /
``cache_hit`` / ``cache_evict`` / ``query_done`` events.  SIGTERM
handling lives in the CLI wrapper; it calls :meth:`shutdown`, which
drains in-flight queries, rejects new ones, retires the pool, and
leaves the cache manifests consistent (they are atomically written, so
there is nothing to repair — drain just stops adding to them).
"""

from __future__ import annotations

import json
import socket
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..checkpoint.store import CheckpointMismatchError
from ..faults.inject import CoordinatorKilledError
from ..core.pbsm import PBSMConfig
from ..core.partition import SpatialPartitioner
from ..geometry import Rect
from ..obs.journal import (
    EVENT_CACHE_HIT,
    EVENT_DISK_PRESSURE,
    EVENT_QUERY_DONE,
    EVENT_QUERY_RECEIVED,
    EVENT_SAMPLE,
    RunJournal,
    ThreadSafeJournal,
)
from ..obs.expo import render_exposition
from ..obs.metrics import (
    LATENCY_BUCKETS_S,
    Histogram,
    MetricsRegistry,
    snapshot_delta,
)
from ..obs.timeseries import SlowLog, TelemetrySampler
from ..parallel.process import DeadlineExceededError, ProcessPBSM
from ..parallel.tasks import KEYPOINTER_RECORD_BYTES
from ..storage.errors import DiskFullError
from ..storage.pressure import CATEGORY_CACHE, DiskBudget
from ..storage.spill import FRAME_HEADER_SIZE
from ..storage.tuples import serialize_tuple
from .cache import LOOKUP_HIT, LOOKUP_WARM, ArtifactCache
from .pool import SharedPoolProvider
from .query import QueryError, QuerySpec, result_digest
from .scrub import CacheScrubber

DEFAULT_HOST = "127.0.0.1"

REJECT_QUEUE_FULL = "queue_full"
REJECT_SHUTTING_DOWN = "shutting_down"
REJECT_DEADLINE = "deadline_exceeded"
REJECT_STORAGE_OVERLOAD = "storage_overload"
"""Spill-aware admission: the query's estimated on-disk footprint does
not fit the server's disk-budget headroom, even after cache eviction.
The reject carries ``estimated_bytes`` and ``available_bytes`` so the
client can shrink the query (scale, partitions) or retry after churn."""

SOURCE_HIT = "hit"
SOURCE_WARM = "warm"
SOURCE_MISS = "miss"
SOURCE_COALESCED = "coalesced"
SOURCE_DEGRADED = "degraded"
"""The breaker shed this query off the pool: the answer came from the
in-process serial path — byte-identical, just slower and uncached."""

SERVE_JOURNAL_FILENAME = "serve.jsonl"
QUERY_JOURNAL_FILENAME = "journal.jsonl"

_DATASET_MEMO_CAP = 16

BREAKER_STATE_CODES = {"closed": 0.0, "half_open": 1.0, "open": 2.0}
"""Numeric encoding of the breaker state for the telemetry time series
(a string cannot ride a ring buffer; an unknown state samples as -1)."""


def outcome_block(stats: dict) -> dict:
    """The canonical outcome summary, shaped from a :meth:`JoinServer.stats`.

    One formatter for the three surfaces that report it — the ``stats``
    op (as its ``summary``), the ``telemetry`` op, and
    ``bench_serve_throughput``'s notes — so their fields can never skew.
    """
    return {
        "outcomes": dict(stats["outcomes"]),
        "breaker_state": stats["breaker"]["state"],
        "breaker_trips": stats["breaker"]["trips"],
        "scrub_passes": stats["scrub"]["passes"],
        "scrub_quarantined": stats["scrub"]["quarantined"],
        "duplicates_dropped": stats["duplicates_dropped"],
        "pool_generation": stats["pool_generation"],
    }


class StorageOverloadError(Exception):
    """A query's estimated spill footprint exceeds the disk budget.

    Raised inside the execute path and answered as a typed
    ``storage_overload`` reject — never a crash, never a partial answer.
    ``estimated_bytes`` is the partition phase's projected on-disk
    footprint; ``available_bytes`` is the budget headroom left after a
    best-effort cache eviction pass.
    """

    def __init__(
        self, message: str, *, estimated_bytes: int, available_bytes: int
    ):
        super().__init__(message)
        self.estimated_bytes = estimated_bytes
        self.available_bytes = available_bytes


class JoinServer:
    """Resident join service over a local TCP socket."""

    def __init__(
        self,
        cache_dir: "Path | str",
        out_dir: "Path | str",
        *,
        host: str = DEFAULT_HOST,
        port: int = 0,
        workers: int = 2,
        max_inflight: int = 2,
        max_queue: int = 8,
        max_cache_bytes: Optional[int] = None,
        disk_budget_bytes: Optional[int] = None,
        start_method: Optional[str] = None,
        fault_plan=None,
        kill_coordinator_after: Optional[int] = None,
        kill_limit: int = 1,
        metrics: Optional[MetricsRegistry] = None,
        breaker_threshold: int = 5,
        breaker_window_s: float = 30.0,
        breaker_cooldown_s: float = 5.0,
        scrub_interval_s: Optional[float] = None,
        telemetry_interval_s: Optional[float] = None,
        slowlog_top_k: int = 8,
    ):
        if max_inflight < 1:
            raise ValueError("need at least one in-flight slot")
        if max_queue < 0:
            raise ValueError("queue bound cannot be negative")
        self.host = host
        self.port = port
        self.workers = workers
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.start_method = start_method
        self.fault_plan = fault_plan
        self.kill_coordinator_after = kill_coordinator_after
        """Coordinator-kill drill: inject a soft kill after this durable
        ordinal into the next ``kill_limit`` executed (non-hit) queries;
        the server recovers each by resuming from its own cache entry."""
        self.out_dir = Path(out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.journal = ThreadSafeJournal(
            RunJournal(self.out_dir / SERVE_JOURNAL_FILENAME)
        )
        self.disk_budget: Optional[DiskBudget] = (
            DiskBudget(disk_budget_bytes, metrics=self.metrics)
            if disk_budget_bytes is not None
            else None
        )
        """One ledger across every query this process serves: engine runs
        charge their spill + checkpoint bytes into it (and a checkpointed
        run's bytes *stay* charged — they are the cache fill), eviction
        and quarantine release them.  Meters this server's own writes;
        entries inherited from a previous process are not back-charged."""
        self.cache = ArtifactCache(
            cache_dir,
            max_bytes=max_cache_bytes,
            journal=self.journal,
            metrics=self.metrics,
            budget=self.disk_budget,
        )
        self.provider = SharedPoolProvider(
            workers,
            breaker_threshold=breaker_threshold,
            breaker_window_s=breaker_window_s,
            breaker_cooldown_s=breaker_cooldown_s,
            journal=self.journal,
        )
        self.scrub_interval_s = scrub_interval_s
        """``None`` leaves the scrubber thread stopped; :meth:`scrub_once`
        on :attr:`scrubber` still works (tests drive it deterministically)."""
        self.scrubber = CacheScrubber(
            self.cache,
            interval_s=scrub_interval_s if scrub_interval_s else 30.0,
            journal=self.journal,
            metrics=self.metrics,
        )
        self._latency = self.metrics.histogram(
            "serve.latency_s", LATENCY_BUCKETS_S
        )
        self.telemetry_interval_s = telemetry_interval_s
        """``None`` leaves the sampler thread stopped; :meth:`TelemetrySampler.sample`
        on :attr:`sampler` still ticks manually (tests and drills drive it
        deterministically, optionally under an injected clock)."""
        self.sampler = TelemetrySampler(
            self._telemetry_tick,
            interval_s=telemetry_interval_s if telemetry_interval_s else 1.0,
        )
        self.slowlog = SlowLog(top_k=slowlog_top_k)
        self._telemetry_prev: Dict[str, dict] = {}
        self._lock = threading.RLock()
        self._idle = threading.Condition(self._lock)
        self._exec_slots = threading.Semaphore(max_inflight)
        self._leaders: Dict[str, threading.Event] = {}
        self._datasets: Dict[tuple, tuple] = {}
        self._drill_remaining = kill_limit if kill_coordinator_after else 0
        self._seq = 0
        self._queued = 0
        self._inflight = 0
        self._admitted = 0
        self._rejected = 0
        self._completed = 0
        self._failed = 0
        self._deadline_exceeded = 0
        self._storage_overload = 0
        self._degraded = 0
        self._hits = 0
        self._misses = 0
        self._coalesced = 0
        self._started_at = time.perf_counter()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._shutdown_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> Tuple[str, int]:
        """Bind, listen, and start accepting; returns ``(host, port)``."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(16)
        listener.settimeout(0.2)
        self._listener = listener
        self.host, self.port = listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        self._accept_thread.start()
        if self.scrub_interval_s is not None:
            self.scrubber.start()
        if self.telemetry_interval_s is not None:
            self.sampler.start()
        return self.host, self.port

    def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes (however triggered)."""
        if self._listener is None:
            self.start()
        self._stopped.wait()

    @property
    def stopped(self) -> threading.Event:
        return self._stopped

    def shutdown(self, *, drain: bool = True) -> None:
        """Drain and stop: reject new joins, finish admitted ones, retire
        the pool.  Idempotent; concurrent callers wait for the first."""
        with self._shutdown_lock:
            if self._stopped.is_set():
                return
            self._draining.set()
            if drain:
                with self._idle:
                    self._idle.wait_for(
                        lambda: self._queued == 0 and self._inflight == 0
                    )
            if self._listener is not None:
                try:
                    self._listener.close()
                except OSError:
                    pass
            self.sampler.stop()
            self.scrubber.stop()
            self.provider.close()
            self.cache.ensure_budget()
            self.journal.close()
            self._stopped.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    # ------------------------------------------------------------------ #
    # socket plumbing
    # ------------------------------------------------------------------ #

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopped.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed by shutdown
            threading.Thread(
                target=self._conn_loop, args=(conn,), daemon=True
            ).start()

    def _conn_loop(self, conn: socket.socket) -> None:
        try:
            rfile = conn.makefile("r", encoding="utf-8", newline="\n")
            wfile = conn.makefile("w", encoding="utf-8", newline="\n")
            for line in rfile:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except ValueError:
                    response = _error("bad_request", "request is not JSON")
                else:
                    response = self._dispatch(payload)
                wfile.write(json.dumps(response, sort_keys=True) + "\n")
                wfile.flush()
        except (OSError, ValueError):
            pass  # client went away mid-request; nothing to tell it
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(self, payload) -> dict:
        if not isinstance(payload, dict):
            return _error("bad_request", "request must be a JSON object")
        op = payload.get("op", "join")
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "stats":
            stats = self.stats()
            return {
                "ok": True,
                "op": "stats",
                "stats": stats,
                "summary": outcome_block(stats),
            }
        if op == "telemetry":
            window_s = payload.get("window_s")
            if window_s is not None:
                try:
                    window_s = float(window_s)
                except (TypeError, ValueError):
                    return _error("bad_request", "window_s must be a number")
            return {
                "ok": True,
                "op": "telemetry",
                "telemetry": self.telemetry(window_s),
            }
        if op == "metrics":
            return {
                "ok": True,
                "op": "metrics",
                "content_type": "text/plain; version=0.0.4",
                "exposition": render_exposition(self.metrics.snapshot()),
            }
        if op == "shutdown":
            with self._lock:
                pending = self._queued + self._inflight
            # Reply before the listener dies; the drain happens off-thread.
            threading.Thread(target=self.shutdown, daemon=True).start()
            return {"ok": True, "op": "shutdown", "draining": pending}
        if op == "join":
            return self._op_join(payload)
        return _error("bad_request", f"unknown op {op!r}")

    # ------------------------------------------------------------------ #
    # the join path
    # ------------------------------------------------------------------ #

    def _op_join(self, payload: dict) -> dict:
        try:
            spec = QuerySpec.from_wire(payload)
        except QueryError as exc:
            self.metrics.counter("serve.bad_requests").inc()
            return _error("bad_request", str(exc))
        started = time.perf_counter()
        with self._lock:
            if self._draining.is_set():
                return self._reject(REJECT_SHUTTING_DOWN)
            if self._queued + self._inflight >= self.max_inflight + self.max_queue:
                return self._reject(REJECT_QUEUE_FULL)
            self._admitted += 1
            self._queued += 1
            self._seq += 1
            query_id = f"query-{self._seq:04d}"
            self.metrics.counter("serve.admitted").inc()
            self.metrics.gauge("serve.queue_depth").set(self._queued)
        self.journal.emit(
            EVENT_QUERY_RECEIVED, query=query_id, **spec.to_wire()
        )
        self._exec_slots.acquire()
        phases: Dict[str, float] = {
            "queue_s": round(time.perf_counter() - started, 6)
        }
        with self._lock:
            self._queued -= 1
            self._inflight += 1
            self.metrics.gauge("serve.queue_depth").set(self._queued)
        try:
            response = self._execute(spec, query_id, started, phases)
            with self._lock:
                self._completed += 1
            self.metrics.counter("serve.completed").inc()
            self.slowlog.record(
                {
                    "query": query_id,
                    "source": response.get("source"),
                    "run_id": response.get("run_id"),
                    "result_count": response.get("result_count"),
                    "latency_s": response.get("latency_s"),
                    "phases": phases,
                }
            )
            return response
        except DeadlineExceededError as exc:
            # A typed reject, not a failure: the query asked for a budget
            # and the budget ran out.  Committed checkpoint state stays in
            # the cache, so a retry of the same spec resumes warm.
            with self._lock:
                self._deadline_exceeded += 1
            self.metrics.counter("serve.deadline_exceeded").inc()
            return _error(
                REJECT_DEADLINE,
                str(exc),
                query=query_id,
                deadline_s=exc.deadline_s,
                completed_pairs=exc.completed,
                pending_pairs=exc.pending,
            )
        except StorageOverloadError as exc:
            # Spill-aware admission fired: the query would not fit the
            # disk budget even after evicting cold cache entries.  A
            # typed reject with the numbers the client needs to act.
            with self._lock:
                self._storage_overload += 1
            self.metrics.counter("serve.storage_overload").inc()
            return _error(
                REJECT_STORAGE_OVERLOAD,
                str(exc),
                query=query_id,
                estimated_bytes=exc.estimated_bytes,
                available_bytes=exc.available_bytes,
            )
        except DiskFullError as exc:
            # The admission estimate let the query through but the disk
            # genuinely filled past every engine-side recovery (sweep,
            # sibling gc, degradation).  Same typed reject — a budget
            # problem must never surface as an internal server error.
            with self._lock:
                self._storage_overload += 1
            self.metrics.counter("serve.storage_overload").inc()
            available = (
                self.disk_budget.available()
                if self.disk_budget is not None
                else None
            )
            return _error(
                REJECT_STORAGE_OVERLOAD,
                str(exc),
                query=query_id,
                estimated_bytes=exc.requested,
                available_bytes=available,
            )
        except Exception as exc:  # noqa: BLE001 — one query must not kill the server
            with self._lock:
                self._failed += 1
            self.metrics.counter("serve.failed").inc()
            return _error(
                "internal", f"{type(exc).__name__}: {exc}", query=query_id
            )
        finally:
            self._exec_slots.release()
            with self._idle:
                self._inflight -= 1
                self._idle.notify_all()

    def _execute(
        self,
        spec: QuerySpec,
        query_id: str,
        started: float,
        phases: Optional[Dict[str, float]] = None,
    ) -> dict:
        if phases is None:
            phases = {}
        mark = time.perf_counter()
        tuples_r, tuples_s = self._materialise(spec)
        phases["materialise_s"] = round(time.perf_counter() - mark, 6)
        fingerprint = spec.fingerprint(tuples_r, tuples_s)
        run_id = fingerprint.run_id
        coalesced = self._await_leadership(run_id)
        query_dir = self.out_dir / query_id
        journal = RunJournal(query_dir / QUERY_JOURNAL_FILENAME)
        drill: Optional[dict] = None
        try:
            with self.cache.pinned(run_id):
                journal.emit(
                    EVENT_QUERY_RECEIVED, query=query_id, **spec.to_wire()
                )
                disposition = self.cache.lookup(fingerprint)
                pairs: Optional[List[Tuple[int, int]]] = None
                if disposition == LOOKUP_HIT:
                    pairs = self.cache.replay(fingerprint)
                if pairs is not None:
                    source = SOURCE_COALESCED if coalesced else SOURCE_HIT
                    with self._lock:
                        self._hits += 1
                        if coalesced:
                            self._coalesced += 1
                    self.metrics.counter("serve.cache.hits").inc()
                    for j in (journal, self.journal):
                        j.emit(
                            EVENT_CACHE_HIT,
                            query=query_id, run_id=run_id,
                            result_count=len(pairs), coalesced=coalesced,
                        )
                else:
                    # Warm or miss (a hit whose replay failed verification
                    # lands here too): the engine does the work, writing
                    # its durable state into the cache as it goes.
                    source = (
                        SOURCE_WARM
                        if disposition == LOOKUP_WARM
                        else SOURCE_MISS
                    )
                    with self._lock:
                        self._misses += 1
                    self.metrics.counter("serve.cache.misses").inc()
                    self._admit_storage(spec, tuples_r, tuples_s, query_id)
                    if self.provider.admit():
                        pairs, drill = self._run_engine(
                            spec, tuples_r, tuples_s, journal,
                            resume=(source == SOURCE_WARM),
                        )
                        self.provider.report_success()
                    else:
                        # The breaker is open: shed off the pool onto the
                        # in-process serial path.  Same answer (digest
                        # equality is the CI drill), same deadline, no
                        # cache fill (no checkpoint dir — a degraded run
                        # must not shadow the real entry).
                        source = SOURCE_DEGRADED
                        with self._lock:
                            self._degraded += 1
                        self.metrics.counter("serve.degraded").inc()
                        pairs = self._run_shed(
                            spec, tuples_r, tuples_s, journal
                        )
                self.cache.touch(run_id)
                latency = time.perf_counter() - started
                self._latency.observe(latency)
                phases["execute_s"] = round(
                    max(
                        0.0,
                        latency
                        - phases.get("queue_s", 0.0)
                        - phases.get("materialise_s", 0.0),
                    ),
                    6,
                )
                digest = result_digest(pairs)
                for j in (journal, self.journal):
                    j.emit(
                        EVENT_QUERY_DONE,
                        query=query_id, run_id=run_id, source=source,
                        result_count=len(pairs),
                        latency_s=round(latency, 6),
                    )
        finally:
            journal.close()
            self._yield_leadership(run_id)
        self.cache.ensure_budget()
        response = {
            "ok": True,
            "op": "join",
            "query": query_id,
            "source": source,
            "run_id": run_id,
            "result_count": len(pairs),
            "result_sha256": digest,
            "latency_s": round(latency, 6),
            "journal": str(query_dir),
        }
        if drill is not None:
            response["drill"] = drill
        if spec.include_pairs:
            response["pairs"] = [list(p) for p in pairs]
        return response

    def _run_engine(
        self, spec, tuples_r, tuples_s, journal, *, resume: bool
    ) -> Tuple[List[Tuple[int, int]], Optional[dict]]:
        """Execute (or resume) the join through the shared pool; if the
        coordinator-kill drill fires, recover by resuming our own cache
        entry — the same protocol a crashed one-shot run recovers by."""
        kill_after: Optional[int] = None
        with self._lock:
            if self._drill_remaining > 0:
                self._drill_remaining -= 1
                kill_after = self.kill_coordinator_after
        engine = self._engine(spec, journal, kill_after=kill_after)
        drill: Optional[dict] = None
        try:
            if resume:
                result = engine.resume(tuples_r, tuples_s, spec.predicate_fn)
            else:
                result = engine.run(tuples_r, tuples_s, spec.predicate_fn)
        except CoordinatorKilledError as exc:
            drill = {"killed_at_ordinal": exc.ordinal, "resumed": True}
            self.metrics.counter("serve.drill_kills").inc()
            engine = self._engine(spec, journal)
            result = engine.resume(tuples_r, tuples_s, spec.predicate_fn)
        except CheckpointMismatchError:
            # The warm entry was for this fingerprint at lookup time, so
            # this should be unreachable; treat it as a cold start rather
            # than failing the query on our own bookkeeping.
            result = self._engine(spec, journal).run(
                tuples_r, tuples_s, spec.predicate_fn
            )
        return sorted(set(result.pairs)), drill

    def _run_shed(self, spec, tuples_r, tuples_s, journal):
        """The breaker's degraded path: the whole join, serially, in this
        process.  No pool, no fault plan, no checkpoint — just the same
        partition/merge/refine math, bounded by the same deadline."""
        engine = ProcessPBSM(
            spec.workers,
            num_partitions=spec.partitions,
            memory_bytes=spec.memory_bytes,
            journal=journal,
            metrics=self.metrics,
            deadline_s=spec.deadline_s,
        )
        result = engine.run_serial(tuples_r, tuples_s, spec.predicate_fn)
        return sorted(set(result.pairs))

    def _engine(self, spec, journal, *, kill_after=None) -> ProcessPBSM:
        return ProcessPBSM(
            spec.workers,
            num_partitions=spec.partitions,
            memory_bytes=spec.memory_bytes,
            start_method=self.start_method,
            journal=journal,
            metrics=self.metrics,
            fault_plan=self.fault_plan,
            checkpoint_dir=str(self.cache.root),
            kill_coordinator_after=kill_after,
            pool_provider=self.provider,
            deadline_s=spec.deadline_s,
            disk_budget=self.disk_budget,
        )

    # ------------------------------------------------------------------ #
    # spill-aware admission
    # ------------------------------------------------------------------ #

    def _admit_storage(self, spec, tuples_r, tuples_s, query_id) -> None:
        """Refuse a query whose spill footprint cannot fit the budget.

        Runs on the miss/warm path, before any engine work.  When the
        estimate exceeds the headroom, one cache-eviction pass tries to
        make room; still over, the query gets a typed
        ``storage_overload`` reject instead of dying mid-partition on
        :class:`~repro.storage.errors.DiskFullError` with the disk
        already full of half a run.
        """
        budget = self.disk_budget
        if budget is None or budget.max_bytes is None:
            return
        estimated = self._estimate_spill_bytes(spec, tuples_r, tuples_s)
        available = budget.available()
        if estimated > available:
            self.cache.ensure_budget()
            available = budget.available()
        if estimated <= available:
            return
        self.journal.emit(
            EVENT_DISK_PRESSURE,
            category=CATEGORY_CACHE,
            query=query_id,
            estimated_bytes=estimated,
            available_bytes=available,
        )
        raise StorageOverloadError(
            f"estimated spill footprint {estimated} bytes exceeds "
            f"disk-budget headroom {available} bytes",
            estimated_bytes=estimated,
            available_bytes=available,
        )

    def _estimate_spill_bytes(self, spec, tuples_r, tuples_s) -> int:
        """Exact partition-phase footprint for this query's inputs.

        Walks the same two-layer partitioner the engine will build and
        sums the frame bytes each side's scan would spill: one
        key-pointer frame per ``(tile, class)`` slot plus the serialized
        tuple once per receiving partition.  Checkpoint manifest and
        result-log bytes are not modelled — the spills dominate by
        orders of magnitude.
        """
        if not tuples_r or not tuples_s:
            return 0
        config = PBSMConfig()
        partitions = spec.partitions
        universe = Rect.union_all(t.mbr for t in tuples_r).union(
            Rect.union_all(t.mbr for t in tuples_s)
        )
        partitioner = SpatialPartitioner(
            universe, partitions, max(config.num_tiles, partitions),
            config.scheme,
        )
        total = 0
        kp_frame = KEYPOINTER_RECORD_BYTES + FRAME_HEADER_SIZE
        for tuples in (tuples_r, tuples_s):
            for t in tuples:
                receiving = set()
                slots = 0
                for tile, _cls in partitioner.tile_assignments(t.mbr):
                    receiving.add(partitioner.partition_of_tile(tile))
                    slots += 1
                total += slots * kp_frame
                total += len(receiving) * (
                    FRAME_HEADER_SIZE + len(serialize_tuple(t))
                )
        return total

    def _materialise(self, spec: QuerySpec):
        """Input tuples for the spec, memoized by dataset key — queries
        differing only in predicate or partitioning share one generation."""
        key = spec.dataset_key
        with self._lock:
            cached = self._datasets.get(key)
        if cached is not None:
            return cached
        data = spec.generate()
        with self._lock:
            if len(self._datasets) >= _DATASET_MEMO_CAP:
                self._datasets.pop(next(iter(self._datasets)))
            self._datasets[key] = data
        return data

    # ------------------------------------------------------------------ #
    # coalescing
    # ------------------------------------------------------------------ #

    def _await_leadership(self, run_id: str) -> bool:
        """Become the sole executor for ``run_id``; returns whether we
        waited behind another query for the same fingerprint (in which
        case its completed cache entry is now ours to replay)."""
        coalesced = False
        while True:
            with self._lock:
                leader = self._leaders.get(run_id)
                if leader is None:
                    self._leaders[run_id] = threading.Event()
                    return coalesced
            coalesced = True
            leader.wait()

    def _yield_leadership(self, run_id: str) -> None:
        with self._lock:
            event = self._leaders.pop(run_id, None)
        if event is not None:
            event.set()

    # ------------------------------------------------------------------ #

    def _reject(self, reason: str) -> dict:
        self._rejected += 1  # caller holds the lock
        self.metrics.counter("serve.rejected").inc()
        return _error(reason, f"query rejected: {reason}")

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #

    def _telemetry_tick(self) -> Dict[str, float]:
        """One sampler tick's readings: instantaneous state plus per-tick
        rates from the metrics registry's delta since the previous tick —
        windowed rates without re-reading cumulative totals."""
        snap = self.metrics.snapshot()
        delta = snapshot_delta(snap, self._telemetry_prev)
        self._telemetry_prev = snap
        with self._lock:
            queued = self._queued
            inflight = self._inflight
            hits = self._hits
            misses = self._misses
        readings: Dict[str, float] = {
            "queue_depth": float(queued),
            "inflight": float(inflight),
        }
        lookups = hits + misses
        if lookups:
            readings["cache_hit_ratio"] = round(hits / lookups, 6)
        for metric, signal in (
            ("serve.admitted", "admitted"),
            ("serve.completed", "completed"),
            ("serve.rejected", "rejected"),
            ("serve.failed", "failed"),
            ("serve.deadline_exceeded", "deadline_exceeded"),
            ("serve.storage_overload", "storage_overload"),
            ("serve.degraded", "degraded"),
            ("serve.cache.hits", "cache_hits"),
            ("serve.cache.misses", "cache_misses"),
        ):
            entry = delta.get(metric)
            readings[signal] = float(entry["value"]) if entry else 0.0
        latency = delta.get("serve.latency_s")
        if latency and latency.get("count"):
            window = Histogram.from_snapshot(latency)
            readings["latency_count"] = float(latency["count"])
            for q, label in ((0.5, "p50"), (0.95, "p95")):
                value = window.quantile(q)
                if value is not None:
                    readings[f"latency_{label}_s"] = round(value, 6)
            readings["latency_max_s"] = round(latency["max"], 6)
        state = self.provider.breaker_stats().get("state")
        readings["breaker_state"] = BREAKER_STATE_CODES.get(state, -1.0)
        if self.disk_budget is not None:
            disk = self.disk_budget.snapshot()
            readings["disk_used_bytes"] = float(disk["used_bytes"])
            readings["disk_hwm_bytes"] = float(disk["high_watermark_bytes"])
            denials = delta.get("disk.budget.denials")
            readings["disk_denials"] = (
                float(denials["value"]) if denials else 0.0
            )
        if not self._stopped.is_set():
            # Load peaks into the service journal, so the run warehouse
            # sees the live shape post-hoc; the full series stays on the
            # wire op — journaling every signal would bloat the stream.
            self.journal.emit(
                EVENT_SAMPLE,
                kind="telemetry",
                queued=queued,
                inflight=inflight,
                completed=int(readings.get("completed", 0)),
                breaker_state=state,
            )
        return readings

    def telemetry(self, window_s: Optional[float] = None) -> dict:
        """The ``telemetry`` wire op's payload: sampler window stats, the
        slow log, the shared outcome summary, and the full stats dict."""
        stats = self.stats()
        return {
            "sampling": {
                "interval_s": self.telemetry_interval_s,
                "ticks": self.sampler.ticks,
                "capacity": self.sampler.capacity,
            },
            "series": self.sampler.snapshot(window_s),
            "slow_log": self.slowlog.top(),
            "outcomes": outcome_block(stats),
            "stats": stats,
        }

    def stats(self) -> dict:
        with self._lock:
            latency = {
                "count": self._latency.count,
                "p50_s": self._latency.quantile(0.5),
                "p95_s": self._latency.quantile(0.95),
                "p99_s": self._latency.quantile(0.99),
            }
            return {
                "admitted": self._admitted,
                "rejected": self._rejected,
                "completed": self._completed,
                "failed": self._failed,
                "outcomes": {
                    "completed": self._completed,
                    "deadline_exceeded": self._deadline_exceeded,
                    "storage_overload": self._storage_overload,
                    "degraded": self._degraded,
                    "rejected": self._rejected,
                    "failed": self._failed,
                },
                "queued": self._queued,
                "inflight": self._inflight,
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "hits": self._hits,
                "misses": self._misses,
                "coalesced": self._coalesced,
                "latency": latency,
                "cache": self.cache.stats(),
                "disk": (
                    self.disk_budget.snapshot()
                    if self.disk_budget is not None
                    else None
                ),
                "breaker": self.provider.breaker_stats(),
                "scrub": self.scrubber.stats(),
                "duplicates_dropped": self.metrics.counter(
                    "merge.duplicates_dropped"
                ).value,
                "pool_generation": self.provider.generation,
                "workers": self.workers,
                "draining": self._draining.is_set(),
                "uptime_s": round(time.perf_counter() - self._started_at, 6),
            }


def _error(code: str, message: str, **extra) -> dict:
    response = {"ok": False, "error": code, "message": message}
    response.update(extra)
    return response
