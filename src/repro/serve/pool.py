"""The resident pool: one process pool multiplexed across all queries.

A one-shot run owns its :class:`~concurrent.futures.ProcessPoolExecutor`
— spawn, use, shut down.  A serving tier cannot afford that: spawn cost
per query would dwarf small joins, and an unbounded pool-per-query would
blow past the machine.  :class:`SharedPoolProvider` plugs into the
:class:`~repro.parallel.process.ProcessPBSM` pool-provider seam and
hands every run the *same* resident executor.

The awkward part is failure.  When any tenant's task crashes its worker,
the executor breaks for **everyone**: the crashing run sees
``BrokenProcessPool``, its co-tenants see their futures cancelled and
``submit`` refused.  Each tenant independently calls :meth:`discard`;
the first call retires the broken generation (shutdown without waiting,
in-flight futures cancelled) and the next :meth:`acquire` — from any
tenant — spawns the replacement.  Late discards of an already-retired
pool are no-ops, so tenants never kill each other's *healthy* pool.
Every tenant then heals through the engine's normal respawn/requeue
path, exactly as if its private pool had broken.

:meth:`release` is deliberately a no-op — the run is done, the pool is
not.  Only the server's :meth:`close` (shutdown/SIGTERM) retires the
pool for good.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Optional


class SharedPoolProvider:
    """Pool provider that keeps one executor alive across runs."""

    shared = True

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise ValueError("need at least one worker")
        self.max_workers = max_workers
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._closed = False
        self.generation = 0
        """How many pools have been spawned; bumps on every heal."""

    def acquire(self, max_workers, context, initializer=None, initargs=()):
        """Hand out the resident pool (spawning it lazily).

        The per-run ``max_workers`` is ignored — the pool is sized for
        the *server*, and run fingerprints exclude worker count, so a
        query asking for 2 workers and one asking for 8 are the same
        join either way.  Initializers are refused: they carry one run's
        state into workers that serve everybody (the engine already
        skips its heartbeat initializer for ``shared`` providers).
        """
        if initializer is not None:
            raise ValueError(
                "a shared pool cannot run per-run initializers"
            )
        with self._lock:
            if self._closed:
                raise RuntimeError("shared pool provider is closed")
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers, mp_context=context
                )
                self.generation += 1
            return self._pool

    def discard(self, pool) -> None:
        """Retire a broken generation (first caller wins; late calls no-op)."""
        with self._lock:
            if pool is not self._pool:
                return  # already retired by a co-tenant
            self._pool = None
        pool.shutdown(wait=False, cancel_futures=True)

    def release(self, pool) -> None:
        """End-of-run hook: the pool outlives the run, so do nothing."""

    def close(self) -> None:
        """Server shutdown: drain the workers and refuse future acquires."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
