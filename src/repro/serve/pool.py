"""The resident pool: one process pool multiplexed across all queries.

A one-shot run owns its :class:`~concurrent.futures.ProcessPoolExecutor`
— spawn, use, shut down.  A serving tier cannot afford that: spawn cost
per query would dwarf small joins, and an unbounded pool-per-query would
blow past the machine.  :class:`SharedPoolProvider` plugs into the
:class:`~repro.parallel.process.ProcessPBSM` pool-provider seam and
hands every run the *same* resident executor.

The awkward part is failure.  When any tenant's task crashes its worker,
the executor breaks for **everyone**: the crashing run sees
``BrokenProcessPool``, its co-tenants see their futures cancelled and
``submit`` refused.  Each tenant independently calls :meth:`discard`;
the first call retires the broken generation (shutdown without waiting,
in-flight futures cancelled) and the next :meth:`acquire` — from any
tenant — spawns the replacement.  Late discards of an already-retired
pool are no-ops, so tenants never kill each other's *healthy* pool.
Every tenant then heals through the engine's normal respawn/requeue
path, exactly as if its private pool had broken.

Healing forever is its own failure mode: a workload that keeps wedging
or crashing workers turns the service into a pool-respawn loop where
every query pays the spawn cost and then dies anyway.  The provider
therefore carries a **circuit breaker** over its own retirement rate.
Every *actual* retirement (first discard of a generation — late no-op
discards don't count) records a failure; when :attr:`breaker_threshold`
failures land inside :attr:`breaker_window_s`, the breaker **opens** and
:meth:`admit` starts answering ``False`` — the serve tier sheds those
queries to the in-process serial path (byte-identical answers, no pool).
After :attr:`breaker_cooldown_s` the next :meth:`admit` claims a single
**half-open probe**: one query gets the pool back, and its fate decides
— :meth:`report_success` closes the breaker, another retirement reopens
it with a fresh cooldown.  State transitions are journaled
(``breaker_transition``) and exposed via :meth:`breaker_stats` for the
``stats`` op.

:meth:`release` is deliberately a no-op — the run is done, the pool is
not.  Only the server's :meth:`close` (shutdown/SIGTERM) retires the
pool for good.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from typing import Deque, Optional

from ..obs.journal import EVENT_BREAKER, NULL_JOURNAL

BREAKER_CLOSED = "closed"
"""Healthy: pool-backed queries flow."""
BREAKER_OPEN = "open"
"""Tripped: pool-backed queries are shed until the cooldown elapses."""
BREAKER_HALF_OPEN = "half_open"
"""Probing: exactly one query holds the pool; its fate decides."""


class SharedPoolProvider:
    """Pool provider that keeps one executor alive across runs."""

    shared = True

    def __init__(
        self,
        max_workers: int,
        *,
        breaker_threshold: int = 5,
        breaker_window_s: float = 30.0,
        breaker_cooldown_s: float = 5.0,
        journal=NULL_JOURNAL,
    ):
        if max_workers < 1:
            raise ValueError("need at least one worker")
        if breaker_threshold < 1:
            raise ValueError("breaker threshold must be at least 1")
        if breaker_window_s <= 0 or breaker_cooldown_s <= 0:
            raise ValueError("breaker window and cooldown must be positive")
        self.max_workers = max_workers
        self.breaker_threshold = breaker_threshold
        self.breaker_window_s = breaker_window_s
        self.breaker_cooldown_s = breaker_cooldown_s
        self.journal = journal
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._closed = False
        self.generation = 0
        """How many pools have been spawned; bumps on every heal."""
        self._state = BREAKER_CLOSED
        self._failures: Deque[float] = deque()
        self._opened_at = 0.0
        self._trips = 0

    # ------------------------------------------------------------------ #
    # provider seam (what ProcessPBSM calls)
    # ------------------------------------------------------------------ #

    def acquire(self, max_workers, context, initializer=None, initargs=()):
        """Hand out the resident pool (spawning it lazily).

        The per-run ``max_workers`` is ignored — the pool is sized for
        the *server*, and run fingerprints exclude worker count, so a
        query asking for 2 workers and one asking for 8 are the same
        join either way.  Initializers are refused: they carry one run's
        state into workers that serve everybody (the engine already
        skips its heartbeat initializer for ``shared`` providers).
        """
        if initializer is not None:
            raise ValueError(
                "a shared pool cannot run per-run initializers"
            )
        with self._lock:
            if self._closed:
                raise RuntimeError("shared pool provider is closed")
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers, mp_context=context
                )
                self.generation += 1
            return self._pool

    def discard(self, pool) -> None:
        """Retire a broken generation (first caller wins; late calls no-op).

        Only the caller that actually retires the generation charges the
        breaker one failure — N tenants reporting the same dead pool is
        one pool death, not N.
        """
        with self._lock:
            if pool is not self._pool:
                return  # already retired by a co-tenant
            self._pool = None
            self._record_failure_locked()
        pool.shutdown(wait=False, cancel_futures=True)

    def release(self, pool) -> None:
        """End-of-run hook: the pool outlives the run, so do nothing."""

    def close(self) -> None:
        """Server shutdown: drain the workers and refuse future acquires."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # circuit breaker (what JoinServer calls)
    # ------------------------------------------------------------------ #

    def admit(self) -> bool:
        """May the next pool-backed query have the pool?

        ``True`` while the breaker is closed, and — once per cooldown —
        for the single probe query that moves an open breaker to
        half-open.  ``False`` sheds the query to the serial path.  The
        caller that got a probe admission must report the outcome:
        :meth:`report_success` on a clean finish (the breaker closes),
        while a failed probe reports itself through the pool it breaks —
        its :meth:`discard` reopens the breaker with a fresh cooldown.
        """
        with self._lock:
            now = time.monotonic()
            self._prune_locked(now)
            if self._state == BREAKER_CLOSED:
                return True
            if now - self._opened_at >= self.breaker_cooldown_s:
                # One probe per cooldown window — bumping the clock here
                # also means a probe that vanishes (client gone, crash
                # before reporting) cannot wedge the breaker half-open:
                # the next window simply claims a fresh probe.
                self._opened_at = now
                if self._state == BREAKER_OPEN:
                    self._transition_locked(BREAKER_HALF_OPEN)
                return True  # this caller is the probe
            return False

    def report_success(self) -> None:
        """A pool-backed query finished cleanly; a half-open probe's
        success closes the breaker and clears the failure window."""
        with self._lock:
            if self._state == BREAKER_HALF_OPEN:
                self._failures.clear()
                self._transition_locked(BREAKER_CLOSED)

    def breaker_stats(self) -> dict:
        """Snapshot for the ``stats`` op (threshold knobs included so a
        dashboard can render 'failures 3/5 in 30s' without config)."""
        with self._lock:
            self._prune_locked(time.monotonic())
            return {
                "state": self._state,
                "failures_in_window": len(self._failures),
                "threshold": self.breaker_threshold,
                "window_s": self.breaker_window_s,
                "cooldown_s": self.breaker_cooldown_s,
                "trips": self._trips,
            }

    # -- internals (all require self._lock held) ----------------------- #

    def _prune_locked(self, now: float) -> None:
        horizon = now - self.breaker_window_s
        while self._failures and self._failures[0] < horizon:
            self._failures.popleft()

    def _record_failure_locked(self) -> None:
        now = time.monotonic()
        self._failures.append(now)
        self._prune_locked(now)
        if self._state == BREAKER_HALF_OPEN:
            # The probe died: back to open, fresh cooldown.
            self._opened_at = now
            self._transition_locked(BREAKER_OPEN)
        elif (
            self._state == BREAKER_CLOSED
            and len(self._failures) >= self.breaker_threshold
        ):
            self._opened_at = now
            self._trips += 1
            self._transition_locked(BREAKER_OPEN)

    def _transition_locked(self, to_state: str) -> None:
        from_state, self._state = self._state, to_state
        self.journal.emit(
            EVENT_BREAKER,
            from_state=from_state,
            to_state=to_state,
            failures_in_window=len(self._failures),
        )
