"""The artifact cache: checkpoint run directories as a serving cache.

PR 4's checkpoint store already makes every join's partition spills and
committed pair results durable, fingerprinted, and replayable — built as
crash-recovery machinery, but shaped exactly like a cache entry.  An
:class:`ArtifactCache` manages a checkpoint root as one:

* **lookup** classifies a fingerprint's run directory as a *hit* (the
  manifest says ``complete`` and the result log replays clean — answer
  the query by unioning the committed pairs, no processes spawned), a
  *warm* entry (partitioned but unfinished — resume it, adopting the
  spill files and merging only uncommitted pairs), or a *miss* (run cold
  with ``checkpoint_dir`` pointed here, which **is** the fill);
* **pinning** marks entries queries are actively reading or writing;
* **eviction** prunes least-recently-used runs until the directory fits
  ``max_bytes``, via the same
  :func:`~repro.checkpoint.store.select_lru_victims` policy that
  ``repro checkpoints gc --max-bytes`` applies from the CLI — and never
  evicts a pinned entry, however blown the budget.

Recency is a logical touch counter, not wall clock: entries this server
process has served are younger than anything it has not, and ties among
cold entries fall back to manifest mtime.  All state mutations take the
cache lock; the server's query threads share one instance.
"""

from __future__ import annotations

import shutil
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from ..checkpoint.manifest import JoinManifest, RunFingerprint
from ..checkpoint.resultlog import replay_result_log
from ..core.refine import merge_sorted_unique
from ..checkpoint.store import (
    MANIFEST_FILENAME,
    RESULTS_FILENAME,
    STATE_COMPLETE,
    inspect_checkpoint_dir,
    select_lru_victims,
)
from ..obs.journal import (
    EVENT_CACHE_CORRUPT,
    EVENT_CACHE_EVICT,
    EVENT_CACHE_QUARANTINE,
    NULL_JOURNAL,
)
from ..obs.metrics import NULL_METRICS
from ..storage.errors import ManifestCorruptionError, SpillCorruptionError
from ..storage.pressure import CATEGORY_CACHE

LOOKUP_HIT = "hit"
LOOKUP_WARM = "warm"
LOOKUP_MISS = "miss"

QUARANTINE_DIRNAME = "quarantine"
"""Subdirectory corrupt entries are moved into.  It does not start with
the ``run-`` prefix, so :func:`inspect_checkpoint_dir` never walks into
it — quarantined state is invisible to lookup, eviction, and stats, and
the fingerprint it occupied becomes an ordinary cold miss."""


class ArtifactCache:
    """Fingerprint-keyed cache of checkpoint run directories."""

    def __init__(
        self,
        root: "Path | str",
        *,
        max_bytes: Optional[int] = None,
        journal=NULL_JOURNAL,
        metrics=NULL_METRICS,
        budget=None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes cannot be negative")
        self.max_bytes = max_bytes
        self.journal = journal
        self.metrics = metrics
        self.budget = budget
        """Optional :class:`~repro.storage.pressure.DiskBudget`: eviction
        and quarantine release an entry's bytes back to it (under the
        ``cache`` category — the engine charged them as spill/checkpoint,
        and the budget's release clamps keep cross-category frees safe)."""
        self._lock = threading.RLock()
        self._pins: Dict[str, int] = {}
        self._recency: Dict[str, int] = {}
        self._clock = 0

    # ------------------------------------------------------------------ #
    # pinning
    # ------------------------------------------------------------------ #

    @contextmanager
    def pinned(self, run_id: str):
        """Hold ``run_id`` unevictable for the duration of the block."""
        self.pin(run_id)
        try:
            yield
        finally:
            self.unpin(run_id)

    def pin(self, run_id: str) -> None:
        with self._lock:
            self._pins[run_id] = self._pins.get(run_id, 0) + 1

    def unpin(self, run_id: str) -> None:
        with self._lock:
            count = self._pins.get(run_id, 0) - 1
            if count <= 0:
                self._pins.pop(run_id, None)
            else:
                self._pins[run_id] = count

    def pinned_ids(self) -> Set[str]:
        with self._lock:
            return set(self._pins)

    def touch(self, run_id: str) -> None:
        """Mark ``run_id`` most-recently-used."""
        with self._lock:
            self._clock += 1
            self._recency[run_id] = self._clock

    # ------------------------------------------------------------------ #
    # lookup + replay
    # ------------------------------------------------------------------ #

    def run_dir(self, fingerprint: RunFingerprint) -> Path:
        return self.root / fingerprint.run_id

    def lookup(self, fingerprint: RunFingerprint) -> str:
        """Classify this fingerprint's cache state (no side effects).

        Anything unreadable — missing manifest, corrupt framing, a
        fingerprint that does not match its directory name — is a miss;
        the cold run's ``run()`` discards and rewrites the directory.
        """
        run_dir = self.run_dir(fingerprint)
        manifest_path = run_dir / MANIFEST_FILENAME
        if not manifest_path.exists():
            return LOOKUP_MISS
        try:
            manifest = JoinManifest.from_bytes(
                manifest_path.read_bytes(), label=str(manifest_path)
            )
        except ManifestCorruptionError:
            return LOOKUP_MISS
        if manifest.fingerprint != fingerprint:
            return LOOKUP_MISS
        if manifest.state == STATE_COMPLETE:
            return LOOKUP_HIT
        return LOOKUP_WARM

    def replay(
        self, fingerprint: RunFingerprint
    ) -> Optional[List[Tuple[int, int]]]:
        """Answer a complete run from its committed result log.

        Returns the sorted feature-id pair set — byte-equal to what the
        run that wrote the log returned — or ``None`` when the entry
        cannot be trusted after all (the caller falls back to the miss
        path).  Two-layer partitioning makes the per-pair logs disjoint,
        so the replay is a k-way merge, not a set union; the ``complete``
        manifest event records the result count, and the replayed merge
        must reproduce it exactly — anything else (including an
        unexpected duplicate) means the directory is lying and is not
        served.

        Distrust is always a *downgrade*, never an exception: a log that
        is truncated, torn mid-file, or CRC-broken surfaces to the query
        path as a plain miss, with a ``cache_corrupt`` journal event and
        a ``serve.cache.corrupt`` tick recording why.
        """
        run_dir = self.run_dir(fingerprint)
        manifest_path = run_dir / MANIFEST_FILENAME
        try:
            manifest = JoinManifest.from_bytes(
                manifest_path.read_bytes(), label=str(manifest_path)
            )
        except (OSError, ManifestCorruptionError):
            return None
        if (
            manifest.fingerprint != fingerprint
            or manifest.state != STATE_COMPLETE
        ):
            return None
        try:
            committed, _torn = replay_result_log(run_dir / RESULTS_FILENAME)
        except (OSError, ValueError, SpillCorruptionError) as exc:
            # ManifestCorruptionError (malformed record) and
            # SpillCorruptionError (CRC / short frame) both land here —
            # and so does a log file deleted out from under us.
            self._distrust(fingerprint.run_id, type(exc).__name__)
            return None
        merged, dropped = merge_sorted_unique(
            [committed[index].pairs for index in sorted(committed)]
        )
        if dropped or manifest.result_count != len(merged):
            self._distrust(
                fingerprint.run_id,
                "duplicate_results" if dropped else "result_count_mismatch",
            )
            return None
        return merged

    def _distrust(self, run_id: str, reason: str) -> None:
        """Record that a complete-looking entry failed replay checks."""
        self.journal.emit(EVENT_CACHE_CORRUPT, run_id=run_id, reason=reason)
        self.metrics.counter("serve.cache.corrupt").inc()

    # ------------------------------------------------------------------ #
    # quarantine
    # ------------------------------------------------------------------ #

    def quarantine(self, run_id: str, reason: str) -> bool:
        """Move a corrupt entry out of the serving root (scrubber's verb).

        The directory lands under ``root/quarantine/<run_id>`` — outside
        the ``run-`` namespace every walker uses — so the entry becomes a
        cold miss while its bytes stay on disk for post-mortem.  Pinned
        entries are refused (a query thread is mid-read or mid-write in
        there; whatever looked corrupt is in flux) and so is a directory
        that no longer exists.  Returns whether the move happened.
        """
        with self._lock:
            if run_id in self._pins:
                return False
            src = self.root / run_id
            if not src.is_dir():
                return False
            dest_root = self.root / QUARANTINE_DIRNAME
            dest_root.mkdir(parents=True, exist_ok=True)
            dest = dest_root / run_id
            if dest.exists():
                shutil.rmtree(dest, ignore_errors=True)
            if self.budget is not None:
                # Quarantined bytes leave the *governed* serving set (no
                # walker ever counts them again); operators collect the
                # quarantine directory out-of-band.
                freed = sum(
                    f.stat().st_size for f in src.rglob("*") if f.is_file()
                )
                self.budget.release(freed, CATEGORY_CACHE)
            shutil.move(str(src), str(dest))
            self._recency.pop(run_id, None)
            self.journal.emit(
                EVENT_CACHE_QUARANTINE, run_id=run_id, reason=reason
            )
            self.metrics.counter("serve.cache.quarantined").inc()
            return True

    # ------------------------------------------------------------------ #
    # eviction
    # ------------------------------------------------------------------ #

    def bytes_total(self) -> int:
        return sum(
            info.bytes_total for info in inspect_checkpoint_dir(self.root)
        )

    def ensure_budget(self) -> List[str]:
        """Evict LRU entries until the cache fits ``max_bytes``.

        Pinned entries are skipped unconditionally; the budget may stay
        blown while queries hold their entries, and the next call picks
        the survivors up.  Returns the evicted run ids.
        """
        if self.max_bytes is None:
            return []
        with self._lock:
            infos = inspect_checkpoint_dir(self.root)
            victims = select_lru_victims(
                infos,
                self.max_bytes,
                pinned=set(self._pins),
                recency=dict(self._recency),
            )
            evicted = []
            for info in victims:
                shutil.rmtree(info.path, ignore_errors=True)
                self._recency.pop(info.run_id, None)
                evicted.append(info.run_id)
                if self.budget is not None:
                    self.budget.release(info.bytes_total, CATEGORY_CACHE)
                self.journal.emit(
                    EVENT_CACHE_EVICT,
                    run_id=info.run_id, bytes=info.bytes_total,
                )
                self.metrics.counter("serve.cache.evictions").inc()
            return evicted

    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        with self._lock:
            infos = inspect_checkpoint_dir(self.root)
            return {
                "entries": len(infos),
                "bytes_total": sum(i.bytes_total for i in infos),
                "max_bytes": self.max_bytes,
                "pinned": sorted(self._pins),
            }
