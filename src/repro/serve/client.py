"""Blocking client for the join service's line protocol.

One :class:`ServeClient` is one TCP connection; requests go out as one
JSON object per line and block until the matching response line comes
back.  The protocol is strictly request/response in order, so a client
is as simple as a socket, two buffered file wrappers, and ``json`` —
deliberately free of engine imports, a benchmark or test harness can
hammer a server from threads with one client each.

All methods return the server's response dict verbatim (``ok`` tells
you whether it worked; ``error`` carries ``queue_full`` /
``shutting_down`` / ``bad_request`` / ``internal`` when it did not).
Transport failures raise ``ConnectionError``.
"""

from __future__ import annotations

import json
import socket
import time
from pathlib import Path
from typing import Optional


class ServeClient:
    """One connection to a :class:`~repro.serve.server.JoinServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = None,
    ):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("r", encoding="utf-8", newline="\n")
        self._wfile = self._sock.makefile("w", encoding="utf-8", newline="\n")

    def request(self, payload: dict) -> dict:
        """Send one request object, block for its one response line."""
        self._wfile.write(json.dumps(payload, sort_keys=True) + "\n")
        self._wfile.flush()
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection mid-request")
        return json.loads(line)

    def join(self, **spec_fields) -> dict:
        """Submit a join query; keywords are QuerySpec wire fields."""
        payload = {"op": "join"}
        payload.update(spec_fields)
        return self.request(payload)

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def shutdown(self) -> dict:
        """Ask the server to drain and stop (replies before it does)."""
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        for closer in (self._wfile, self._rfile, self._sock):
            try:
                closer.close()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def wait_for_server(
    host: str,
    port: int,
    *,
    timeout_s: float = 10.0,
) -> None:
    """Block until the server answers a ping (for subprocess harnesses)."""
    deadline = time.monotonic() + timeout_s
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with ServeClient(host, port, timeout=1.0) as client:
                if client.ping().get("ok"):
                    return
        except (OSError, ValueError) as exc:
            last_error = exc
        time.sleep(0.05)
    raise ConnectionError(
        f"no join server answering on {host}:{port} after {timeout_s}s"
        + (f" (last error: {last_error})" if last_error else "")
    )


def read_port_file(path: "Path | str", *, timeout_s: float = 10.0) -> int:
    """Wait for a ``repro serve --port-file`` to appear and parse it."""
    path = Path(path)
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            text = path.read_text().strip()
        except OSError:
            text = ""
        if text:
            return int(text)
        time.sleep(0.05)
    raise TimeoutError(f"port file {path} never appeared")
