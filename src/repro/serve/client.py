"""Blocking client for the join service's line protocol.

One :class:`ServeClient` is one TCP connection; requests go out as one
JSON object per line and block until the matching response line comes
back.  The protocol is strictly request/response in order, so a client
is as simple as a socket, two buffered file wrappers, and ``json`` —
deliberately free of engine imports, a benchmark or test harness can
hammer a server from threads with one client each.

Transient transport failures — a reset connection, a refused connect
while the server's accept loop restarts, a broken pipe — are retried
with bounded exponential backoff: the connection is torn down, rebuilt,
and the request resent.  That is safe because every op is idempotent
for the caller (a ``join`` re-asks for the same fingerprint and at
worst finds the first attempt's cache entry).  A *timeout* is never
retried — the server may still be working, and the deadline machinery
owns that story.

All methods return the server's response dict verbatim (``ok`` tells
you whether it worked; ``error`` carries ``queue_full`` /
``shutting_down`` / ``deadline_exceeded`` / ``bad_request`` /
``internal`` when it did not).  Transport failures that survive the
retry budget raise ``ConnectionError``.
"""

from __future__ import annotations

import json
import socket
import time
from pathlib import Path
from typing import Optional


class ServeClient:
    """One connection to a :class:`~repro.serve.server.JoinServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = None,
        retries: int = 2,
        retry_backoff_s: float = 0.05,
    ):
        if retries < 0:
            raise ValueError("retry budget cannot be negative")
        if retry_backoff_s < 0:
            raise ValueError("retry backoff cannot be negative")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self._sock: Optional[socket.socket] = None
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._rfile = self._sock.makefile("r", encoding="utf-8", newline="\n")
        self._wfile = self._sock.makefile("w", encoding="utf-8", newline="\n")

    def request(self, payload: dict) -> dict:
        """Send one request object, block for its one response line.

        Retries transient connection failures (``ConnectionResetError``,
        ``ECONNREFUSED``, a broken pipe, a mid-request close) up to
        ``retries`` times with exponential backoff, reconnecting and
        resending each time.  A refused *reconnect* burns an attempt just
        like a reset request did.  ``socket.timeout`` propagates
        immediately: silence is not evidence the server is gone.
        """
        attempt = 0
        while True:
            try:
                if self._sock is None:
                    self._connect()
                return self._request_once(payload)
            except socket.timeout:
                raise
            except ConnectionError:
                # ConnectionResetError, ConnectionRefusedError (including
                # from _connect above), BrokenPipeError — all transient.
                if attempt >= self.retries:
                    raise
                backoff = self.retry_backoff_s * (2 ** attempt)
                attempt += 1
                self.close()
                self._sock = None
                if backoff > 0:
                    time.sleep(backoff)

    def _request_once(self, payload: dict) -> dict:
        try:
            self._wfile.write(json.dumps(payload, sort_keys=True) + "\n")
            self._wfile.flush()
            line = self._rfile.readline()
        except socket.timeout:
            raise
        except OSError as exc:
            if isinstance(exc, ConnectionError):
                raise
            raise ConnectionError(f"transport failure: {exc}") from exc
        if not line:
            raise ConnectionResetError(
                "server closed the connection mid-request"
            )
        return json.loads(line)

    def join(self, **spec_fields) -> dict:
        """Submit a join query; keywords are QuerySpec wire fields."""
        payload = {"op": "join"}
        payload.update(spec_fields)
        return self.request(payload)

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def telemetry(self, window_s: Optional[float] = None) -> dict:
        """The live telemetry payload (series windows, slow log, outcome
        summary); ``window_s`` restricts series stats to recent samples."""
        payload: dict = {"op": "telemetry"}
        if window_s is not None:
            payload["window_s"] = window_s
        return self.request(payload)

    def metrics(self) -> dict:
        """The Prometheus-style plaintext exposition (``exposition`` key)."""
        return self.request({"op": "metrics"})

    def shutdown(self) -> dict:
        """Ask the server to drain and stop (replies before it does)."""
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        for name in ("_wfile", "_rfile", "_sock"):
            closer = getattr(self, name, None)
            if closer is None:
                continue
            try:
                closer.close()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def wait_for_server(
    host: str,
    port: int,
    *,
    timeout_s: float = 10.0,
) -> None:
    """Block until the server answers a ping (for subprocess harnesses)."""
    deadline = time.monotonic() + timeout_s
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with ServeClient(host, port, timeout=1.0, retries=0) as client:
                if client.ping().get("ok"):
                    return
        except (OSError, ValueError) as exc:
            last_error = exc
        time.sleep(0.05)
    raise ConnectionError(
        f"no join server answering on {host}:{port} after {timeout_s}s"
        + (f" (last error: {last_error})" if last_error else "")
    )


def read_port_file(path: "Path | str", *, timeout_s: float = 10.0) -> int:
    """Wait for a ``repro serve --port-file`` to appear and parse it."""
    path = Path(path)
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            text = path.read_text().strip()
        except OSError:
            text = ""
        if text:
            return int(text)
        time.sleep(0.05)
    raise TimeoutError(f"port file {path} never appeared")
