"""Partition-pair merge tasks: the picklable unit of multiprocess PBSM.

The coordinator partitions both inputs once with PBSM's own tiled
partitioning function and spills, per partition, two kinds of file a worker
process can read back (:mod:`repro.storage.spill`):

* a **key-pointer spill** — packed ``<MBR_f32, feature_id, tile, class>``
  records, the filter step's input: one record per two-layer ``(tile,
  class)`` replica slot (:mod:`repro.core.partition`), so a worker's merge
  groups by tile and applies the duplicate-free class filter without any
  geometry recomputation.  MBRs are rounded conservatively (exactly like
  the single-node key-pointer files), so the sweep's output stays a
  superset of the true result; tile/class tags are computed from the exact
  f64 MBR *before* rounding and persisted;
* a **tuple spill** — the partition's full tuples (``serialize_tuple``
  format), the refinement step's input.

A :class:`PairTask` names those files plus the join configuration; it
pickles in a few hundred bytes no matter how large the partition is.
:func:`run_pair_task` — a module-level function so it imports cleanly
under the ``spawn`` start method — executes merge *and* refinement for one
partition pair and returns exact feature-id result pairs, together with
the worker's spans and metrics in wire form for the coordinator to adopt.

Failure contract: any exception inside a worker is re-raised as
:class:`WorkerTaskError` carrying the pair index, the attempt number, the
worker pid, and the formatted cause — never a bare traceback with no clue
which partition pair died.  Spill corruption is flagged on the error so
the coordinator can quarantine the partition instead of burning retries on
a file that will never read clean.  Tasks may also carry a
:class:`~repro.faults.plan.WorkerFaults` slice of a fault plan, fired at
the top of the task by attempt number.

Flight-recorder hooks: when the coordinator runs a journal
(:mod:`repro.obs.journal`), workers ship their task-lifecycle events
(``task_started``/``task_finished``) back on the result wire alongside
spans and metrics, and ping a **heartbeat queue** — installed in each
pool worker by :func:`init_worker_heartbeats` — at every phase boundary.
The queue is the only channel that outlives a worker crash: a result
wire from a dead process never arrives, but its last heartbeat already
did, which is exactly what the live view and the post-mortem need.
"""

from __future__ import annotations

import os
import struct
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.keypointer import _f32_down, _f32_up
from ..core.pbsm import PBSMConfig, merge_partition_pair
from ..core.predicates import Predicate
from ..faults.inject import apply_worker_faults
from ..faults.plan import WorkerFaults
from ..geometry import Rect
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..storage.errors import SpillCorruptionError
from ..storage.spill import SpillWriter, read_spill
from ..storage.tuples import SpatialTuple, deserialize_tuple, serialize_tuple

_FIDKP = struct.Struct("<ffffIIB")
"""One spilled key-pointer: conservative f32 MBR + u32 feature id + u32
tile + u8 two-layer class."""

KEYPOINTER_RECORD_BYTES = _FIDKP.size
"""On-disk payload of one spilled key-pointer (the spill frame header is
extra) — the serve tier's spill-footprint estimator depends on this."""

FidKeyPointer = Tuple[Rect, int, int, int]
"""``(rect, feature_id, tile, class)`` — one two-layer replica slot."""

_HEARTBEAT_QUEUE = None
"""Worker-process global: the coordinator's heartbeat queue, installed by
:func:`init_worker_heartbeats` when the pool is spawned with a journal.
``None`` (the default) keeps the hot path ping-free."""


def init_worker_heartbeats(queue) -> None:
    """Pool initializer: arm this worker's heartbeat channel.

    Passed as ``initializer=init_worker_heartbeats, initargs=(queue,)``
    to ``ProcessPoolExecutor`` — multiprocessing queues survive that trip
    under every start method because they are process-constructor
    arguments, not task payloads.
    """
    global _HEARTBEAT_QUEUE
    _HEARTBEAT_QUEUE = queue


def _heartbeat(pair: int, attempt: int, phase: str) -> None:
    """Best-effort liveness ping; a sick queue must never fail the task."""
    queue = _HEARTBEAT_QUEUE
    if queue is None:
        return
    try:
        queue.put_nowait(
            {"pid": os.getpid(), "pair": pair, "attempt": attempt,
             "phase": phase}
        )
    except Exception:
        pass


def pack_fid_keypointer(
    rect: Rect, feature_id: int, tile: int = 0, cls: int = 0
) -> bytes:
    return _FIDKP.pack(
        _f32_down(rect.xl), _f32_down(rect.yl),
        _f32_up(rect.xu), _f32_up(rect.yu),
        feature_id, tile, cls,
    )


def unpack_fid_keypointer(record: bytes) -> FidKeyPointer:
    xl, yl, xu, yu, fid, tile, cls = _FIDKP.unpack(record)
    return Rect(xl, yl, xu, yu), fid, tile, cls


def fid_keypointer(t: SpatialTuple, tile: int = 0, cls: int = 0) -> FidKeyPointer:
    """The key-pointer a tuple spills to, with identical f32 rounding.

    The coordinator's degraded path rebuilds a partition from base tuples;
    routing through the pack/unpack pair guarantees the rebuilt MBRs are
    bit-identical to what a worker would have read from the spill file.
    Tile/class tags come from the exact f64 MBR, so the rebuilt replica
    slots are identical too.
    """
    return unpack_fid_keypointer(pack_fid_keypointer(t.mbr, t.feature_id, tile, cls))


class WorkerTaskError(RuntimeError):
    """A partition-pair task failed, with enough context to act on it.

    Carries the pair index, attempt number, and worker pid (``0`` when the
    failure happened before a worker could report), plus the formatted
    cause.  ``corruption`` marks spill-file damage: retrying cannot help,
    the coordinator must quarantine and rebuild.
    """

    def __init__(
        self,
        pair_index: int,
        attempt: int,
        worker_pid: int,
        cause_type: str,
        cause_message: str,
        traceback_text: str = "",
        corruption: bool = False,
    ):
        super().__init__(
            f"partition pair {pair_index} failed on attempt {attempt} "
            f"in worker {worker_pid or '<unknown>'}: "
            f"{cause_type}: {cause_message}"
        )
        self.pair_index = pair_index
        self.attempt = attempt
        self.worker_pid = worker_pid
        self.cause_type = cause_type
        self.cause_message = cause_message
        self.traceback_text = traceback_text
        self.corruption = corruption

    def __reduce__(self):
        return (
            WorkerTaskError,
            (
                self.pair_index, self.attempt, self.worker_pid,
                self.cause_type, self.cause_message, self.traceback_text,
                self.corruption,
            ),
        )


class PartitionSpill:
    """Writer for one partition's key-pointer + tuple spill files.

    A context manager with writer semantics: a clean ``with`` exit seals
    both files, an exception aborts them (partial files are deleted, so a
    failed partitioning pass cannot leak ``.kp``/``.tup`` litter).  With
    ``atomic=True`` both files stage through ``*.tmp`` and only appear
    under their final names once complete — what checkpointed runs need so
    a resume can trust any spill file that *exists*.
    """

    def __init__(
        self,
        directory: str,
        side: str,
        index: int,
        *,
        atomic: bool = False,
        budget=None,
    ):
        base = os.path.join(directory, f"part{index:04d}.{side}")
        self.kp_path = base + ".kp"
        self.tuple_path = base + ".tup"
        self._kp = SpillWriter(self.kp_path, atomic=atomic, budget=budget)
        self._tuples = SpillWriter(
            self.tuple_path, atomic=atomic, budget=budget
        )

    @property
    def count(self) -> int:
        return self._kp.count

    @property
    def charged(self) -> int:
        """Bytes this spill holds against its disk budget."""
        return self._kp.charged + self._tuples.charged

    def release_budget(self) -> None:
        """Return both writers' charged bytes (the files left the disk)."""
        self._kp.release_budget()
        self._tuples.release_budget()

    def add(self, t: SpatialTuple, slots: Sequence[Tuple[int, int]]) -> None:
        """Spill one tuple with its two-layer ``(tile, class)`` slots.

        One key-pointer record per slot (the merge's per-tile groups), the
        full tuple once.  ``count`` — the LPT cost seed — therefore counts
        replica slots, which is exactly the sweep work a worker will do.
        """
        for tile, cls in slots:
            self._kp.append(pack_fid_keypointer(t.mbr, t.feature_id, tile, cls))
        self._tuples.append(serialize_tuple(t))

    def close(self) -> None:
        self._kp.close()
        self._tuples.close()

    def abort(self) -> None:
        """Discard both writes, deleting whatever reached the disk."""
        self._kp.abort()
        self._tuples.abort()

    def remove(self) -> None:
        """Delete the files (a failed partitioning pass starts over)."""
        self.close()
        for path in (self.kp_path, self.tuple_path):
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass

    def __enter__(self) -> "PartitionSpill":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()


@dataclass(frozen=True)
class SpillHandle:
    """A sealed partition spill adopted from a checkpoint, read-only.

    Duck-compatible with :class:`PartitionSpill` where the coordinator
    builds tasks (``kp_path`` / ``tuple_path`` / ``count``): a resumed run
    mixes adopted handles and freshly written spills without caring which
    is which.
    """

    kp_path: str
    tuple_path: str
    count: int


def read_keypointer_spill(path: str) -> List[FidKeyPointer]:
    return [unpack_fid_keypointer(record) for record in read_spill(path)]


def read_tuple_spill(path: str) -> Dict[int, SpatialTuple]:
    """The partition's tuples keyed by feature id (refinement's lookup)."""
    out: Dict[int, SpatialTuple] = {}
    for record in read_spill(path):
        t = deserialize_tuple(record)
        out[t.feature_id] = t
    return out


@dataclass(frozen=True)
class PairTask:
    """Everything a worker needs to merge + refine one partition pair."""

    index: int
    kp_r_path: str
    kp_s_path: str
    tuples_r_path: str
    tuples_s_path: str
    count_r: int
    count_s: int
    memory_bytes: int
    config: PBSMConfig
    predicate: Predicate
    observe: bool = False
    """Ship wire-form spans and a metrics snapshot back with the result."""
    attempt: int = 0
    """Which dispatch of this pair this is (0 = first); stamps results,
    errors, and fault-injection decisions."""
    faults: Optional[WorkerFaults] = None
    """This pair's slice of the active fault plan, if any."""

    @property
    def cost_estimate(self) -> int:
        """The LPT scheduling seed: total key-pointers in the pair."""
        return self.count_r + self.count_s


@dataclass
class PairTaskResult:
    """One executed partition pair, ready to merge at the coordinator."""

    index: int
    worker_pid: int
    pairs: List[Tuple[int, int]]
    candidates: int
    count_r: int
    count_s: int
    wall_s: float
    attempt: int = 0
    degraded: bool = False
    """True when the coordinator rebuilt this pair serially after the
    process path gave up on it (retry exhaustion or quarantined spill)."""
    degraded_reason: str = ""
    duplicates_dropped: int = 0
    """Duplicate candidates this pair's refinement had to drop.  Two-layer
    partitioning makes pair output duplicate-free by construction, so this
    must read 0; anything else is an invariant violation the coordinator
    rolls up into ``merge.duplicates_dropped``."""
    spans: List[dict] = field(default_factory=list)
    metrics: Dict[str, dict] = field(default_factory=dict)
    events: List[dict] = field(default_factory=list)
    """Worker-side journal events (task_started/task_finished) with
    worker-relative ``t`` timestamps, shipped on the wire like spans; the
    coordinator re-emits them into its journal as ``worker_t``."""


def sweep_pair(
    kps_r: Sequence[FidKeyPointer],
    kps_s: Sequence[FidKeyPointer],
    memory_bytes: int,
    config: PBSMConfig,
    *,
    label: str,
    tracer: Tracer = NULL_TRACER,
    metrics: MetricsRegistry = NULL_METRICS,
) -> List[Tuple[int, int]]:
    """The filter step for one in-memory pair: candidate feature-id pairs."""
    candidates: List[Tuple[int, int]] = []
    merge_partition_pair(
        kps_r, kps_s,
        lambda fid_r, fid_s: candidates.append((fid_r, fid_s)),
        memory_bytes, config,
        label=label, tracer=tracer, metrics=metrics,
    )
    return candidates


def refine_pair(
    candidates: Sequence[Tuple[int, int]],
    tuples_r: Dict[int, SpatialTuple],
    tuples_s: Dict[int, SpatialTuple],
    predicate: Predicate,
) -> Tuple[List[Tuple[int, int]], int]:
    """Exact predicate over the sorted candidates of one pair.

    Two-layer partitioning makes the candidate stream duplicate-free by
    construction, so this no longer builds a dedup set — it sorts, applies
    the predicate, and *counts* any adjacent duplicates it still sees.
    Returns ``(sorted exact pairs, duplicates_dropped)``; a non-zero drop
    count means the dedup-free invariant broke and is surfaced all the way
    up to the coordinator's ``merge.duplicates_dropped`` metric.
    """
    results: List[Tuple[int, int]] = []
    dropped = 0
    prev: Optional[Tuple[int, int]] = None
    for pair in sorted(candidates):
        if pair == prev:
            dropped += 1
            continue
        prev = pair
        fid_r, fid_s = pair
        if predicate(tuples_r[fid_r], tuples_s[fid_s]):
            results.append(pair)
    return results, dropped


def merge_refine_pair(
    kps_r: Sequence[FidKeyPointer],
    kps_s: Sequence[FidKeyPointer],
    tuples_r: Dict[int, SpatialTuple],
    tuples_s: Dict[int, SpatialTuple],
    predicate: Predicate,
    memory_bytes: int,
    config: PBSMConfig,
    *,
    label: str,
    tracer: Tracer = NULL_TRACER,
    metrics: MetricsRegistry = NULL_METRICS,
) -> Tuple[List[Tuple[int, int]], int, int]:
    """Merge + refine one in-memory partition pair; the shared heart of the
    worker task and the coordinator's degraded rebuild.

    Returns ``(sorted exact feature-id pairs, candidate count, duplicates
    dropped)``.  Both callers feeding it identical inputs get identical
    output, which is what makes graceful degradation invisible in the
    final pair set.
    """
    candidates = sweep_pair(
        kps_r, kps_s, memory_bytes, config,
        label=label, tracer=tracer, metrics=metrics,
    )
    pairs, dropped = refine_pair(candidates, tuples_r, tuples_s, predicate)
    return pairs, len(candidates), dropped


def run_pair_task(task: PairTask) -> PairTaskResult:
    """Execute one partition-pair task inside a worker process.

    Filter: read the key-pointer spills, plane-sweep per tile group with
    the two-layer class filter (with §3.5 recursion if configured).
    Refine: look the candidate feature-id pairs up in the partition's
    tuple spills and apply the exact predicate.  The returned pair list is
    sorted, exact, and — because only one tile may emit any given pair —
    disjoint from every other task's, so the coordinator's merge is a
    plain ordered concatenation with no dedup barrier.

    Any failure is re-raised as :class:`WorkerTaskError` with the pair
    index, attempt, and pid attached (corruption flagged); planned faults
    fire first, keyed by the task's attempt number.
    """
    try:
        apply_worker_faults(task.faults, task.index, task.attempt)
        return _run_pair_task(task)
    except WorkerTaskError:
        raise
    except SpillCorruptionError as exc:
        raise WorkerTaskError(
            task.index, task.attempt, os.getpid(),
            type(exc).__name__, str(exc), traceback.format_exc(),
            corruption=True,
        ) from exc
    except Exception as exc:
        raise WorkerTaskError(
            task.index, task.attempt, os.getpid(),
            type(exc).__name__, str(exc), traceback.format_exc(),
        ) from exc


def _run_pair_task(task: PairTask) -> PairTaskResult:
    started = time.perf_counter()
    tracer = Tracer() if task.observe else NULL_TRACER
    metrics = MetricsRegistry() if task.observe else NULL_METRICS
    events: List[dict] = []

    def event(event_type: str, **fields) -> None:
        if task.observe:
            events.append(
                {"type": event_type,
                 "t": round(time.perf_counter() - started, 6),
                 "pair": task.index, "attempt": task.attempt,
                 "pid": os.getpid(), **fields}
            )

    event("task_started")
    _heartbeat(task.index, task.attempt, "merge")
    with tracer.span(
        "worker.task", pair=task.index, pid=os.getpid(), attempt=task.attempt
    ) as span:
        with tracer.span("worker.merge", pair=task.index):
            kps_r = read_keypointer_spill(task.kp_r_path)
            kps_s = read_keypointer_spill(task.kp_s_path)
            candidates = sweep_pair(
                kps_r, kps_s, task.memory_bytes, task.config,
                label=str(task.index), tracer=tracer, metrics=metrics,
            )

        _heartbeat(task.index, task.attempt, "refine")
        with tracer.span(
            "worker.refine", pair=task.index, candidates=len(candidates)
        ):
            tuples_r = read_tuple_spill(task.tuples_r_path)
            tuples_s = read_tuple_spill(task.tuples_s_path)
            pairs, dropped = refine_pair(
                candidates, tuples_r, tuples_s, task.predicate
            )

        span.tag("candidates", len(candidates))
        span.tag("results", len(pairs))
        metrics.counter("parallel.worker.candidates").inc(len(candidates))
        metrics.counter("parallel.worker.pairs_checked").inc(
            len(candidates) - dropped
        )
        metrics.counter("parallel.worker.results").inc(len(pairs))
        metrics.histogram("parallel.worker.task_keypointers").observe(
            task.cost_estimate
        )

    event("task_finished", candidates=len(candidates), results=len(pairs))
    _heartbeat(task.index, task.attempt, "done")
    return PairTaskResult(
        index=task.index,
        worker_pid=os.getpid(),
        pairs=pairs,
        candidates=len(candidates),
        count_r=task.count_r,
        count_s=task.count_s,
        wall_s=time.perf_counter() - started,
        attempt=task.attempt,
        duplicates_dropped=dropped,
        spans=tracer.export_wire(),
        metrics=metrics.snapshot() if task.observe else {},
        events=events,
    )
