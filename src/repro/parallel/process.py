"""True multiprocess PBSM: partition once, schedule pairs across cores.

Where :class:`repro.parallel.engine.ParallelPBSM` *simulates* §5's
shared-nothing machine on virtual nodes (modelled seconds, one process),
this backend executes the join on real worker processes and is measured in
real wall-clock seconds:

1. **Partition** — the coordinator runs PBSM's tiled partitioning function
   over both inputs once, spilling each partition's key-pointers and
   tuples to files workers can read (:mod:`repro.parallel.tasks`).
2. **Schedule** — partition-pair merge tasks are submitted to a
   ``ProcessPoolExecutor`` in longest-processing-time-first order, seeded
   by per-pair key-pointer counts.  LPT places the big pairs first; the
   executor's single shared task queue then acts as the work-stealing
   fallback — when skew makes the estimate wrong, whichever worker frees
   up first simply pulls the next pair, so no worker idles while tasks
   remain.
3. **Merge** — exact per-pair results (feature-id pairs) arrive sorted
   and, under two-layer partitioning, *disjoint*: only the tile holding a
   pair's reference point may emit it, so the coordinator k-way merges
   the streams in order instead of paying a sorted-set dedup barrier.
   ``merge.duplicates_dropped`` counts anything the merge still had to
   drop — it must read 0, and CI gates on it.  Each worker's spans and
   metrics come back in wire form and are adopted into the coordinator's
   tracer/registry, so one trace shows every process's work in its own
   lane.

The scheduler is **crash-recovering**.  A failed partition-pair task (a
worker exception, a killed process, a task past its timeout) is retried
with exponential backoff up to ``max_task_retries`` times, re-dispatched
to whatever workers survive; a ``BrokenProcessPool`` is healed by
respawning the pool and resubmitting every in-flight pair.  A spill file
that fails its CRC is *quarantined* — retrying a corrupt file cannot
help — and when a pair exhausts its retry budget or loses its spill to
corruption, the coordinator **degrades gracefully**: it rebuilds that
partition from the base relations it still holds and merges it serially
in-process.  Degraded or not, the result pair set is identical to the
serial and simulated backends for every seed — the cross-backend
equivalence tests and the fault-matrix suite assert exactly that.

Deterministic fault injection plugs in via ``fault_plan=`` (see
:mod:`repro.faults`); every recovery action is counted in the
``faults.*`` metrics and summarised on the result.

The coordinator itself is made killable by ``checkpoint_dir=``
(:mod:`repro.checkpoint`): the run writes a durable join manifest and a
per-pair result log, and :meth:`ProcessPBSM.resume` rebuilds the run from
them — re-adopting intact partition spills, replaying committed pairs'
results, metrics, and spans, and re-merging only the pairs that never
committed.  Kill + resume produces the byte-identical pair set of an
uninterrupted run; the kill-matrix suite asserts it at every checkpoint
ordinal.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import shutil
import tempfile
import time
from pathlib import Path
from collections import Counter as TallyCounter
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..checkpoint.manifest import (
    STATE_COMPLETE,
    STATE_MERGING,
    JoinManifest,
    RunFingerprint,
)
from ..checkpoint.store import CheckpointMismatchError, CheckpointStore
from ..core.partition import SpatialPartitioner
from ..core.pbsm import PBSMConfig
from ..core.refine import merge_sorted_unique
from ..core.predicates import Predicate
from ..faults.inject import (
    CheckpointFaultGate,
    DiskFullInjector,
    InjectedFaultError,
    WriteErrorInjector,
    tear_frame,
)
from ..faults.plan import FaultPlan
from ..obs.journal import (
    EVENT_DEADLINE_EXCEEDED,
    EVENT_DEGRADED,
    EVENT_DISK_FULL_RECOVERED,
    EVENT_DISK_PRESSURE,
    EVENT_FAULT_INJECTED,
    EVENT_PARTITION_SEALED,
    EVENT_POOL_RESPAWN,
    EVENT_QUARANTINED,
    EVENT_RETRY,
    EVENT_RUN_FINISHED,
    EVENT_RUN_STARTED,
    EVENT_SAMPLE,
    EVENT_SCHEDULE,
    EVENT_TASK_DISPATCHED,
    EVENT_TASK_FINISHED,
    EVENT_TASK_REPLAYED,
    EVENT_TIMEOUT,
    EVENT_WORKER_HEARTBEAT,
    NULL_JOURNAL,
)
from ..obs.metrics import LATENCY_BUCKETS_S, NULL_METRICS, MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..storage.errors import DiskFullError, ManifestCorruptionError
from ..storage.pressure import DiskBudget
from ..storage.spill import TMP_SUFFIX
from ..storage.tuples import SpatialTuple
from .engine import NodeReport, ParallelJoinResult, TaskReport
from .tasks import (
    PairTask,
    PairTaskResult,
    PartitionSpill,
    SpillHandle,
    WorkerTaskError,
    fid_keypointer,
    init_worker_heartbeats,
    merge_refine_pair,
    run_pair_task,
)

SideSpills = List[Union[PartitionSpill, SpillHandle]]
"""One side's per-partition spills: freshly written or checkpoint-adopted."""

DEFAULT_TASK_MEMORY = 8 * 1024 * 1024
"""Per-task merge memory budget (drives §3.5 recursion, when enabled)."""

DEFAULT_TASKS_PER_WORKER = 4
"""Partition count multiplier: more pairs than workers, so LPT ordering
and queue-based stealing have room to balance skewed pairs."""

START_METHOD_ENV = "REPRO_MP_START_METHOD"
"""Environment override for the multiprocessing start method (CI uses it
to force ``spawn`` on platforms that default to ``fork``)."""

DEFAULT_MAX_TASK_RETRIES = 2
"""Retry budget per partition pair before the coordinator degrades it."""

DEFAULT_RETRY_BACKOFF_S = 0.05
"""Base of the exponential backoff between retries of one pair."""

PARTITION_WRITE_RETRIES = 3
"""Bounded rewrites of one side's spill pass on a write error."""

_POLL_S = 0.25
"""Executor wait slice when task deadlines are armed."""

DEFAULT_SAMPLE_INTERVAL_S = 0.5
"""Coordinator sampler cadence: how often a journaling run records its
queue depth / inflight / utilization timeseries."""


class DeadlineExceededError(RuntimeError):
    """The run blew its wall-clock deadline and was cooperatively cancelled.

    Raised by :class:`ProcessPBSM` when ``deadline_s`` elapses before the
    join completes: queued pair tasks stop being dispatched, in-flight
    futures are abandoned through the same pool-abandonment path a task
    timeout uses (a wedged worker cannot be killed inside
    ``ProcessPoolExecutor`` without breaking the pool), and this error
    surfaces.  Every pair harvested before the deadline was already
    committed through ``on_result``, so with a checkpoint directory the
    partial state stays adoptable — a retry *resumes* the join instead of
    restarting it.
    """

    def __init__(self, deadline_s: float, *, completed: int = 0, pending: int = 0):
        super().__init__(
            f"join exceeded its {deadline_s}s deadline "
            f"({completed} pairs committed, {pending} abandoned)"
        )
        self.deadline_s = deadline_s
        self.completed = completed
        self.pending = pending


class RunPoolProvider:
    """Per-run executor ownership: the default pool lifecycle.

    The coordinator's scheduling loop never creates or destroys a
    ``ProcessPoolExecutor`` directly; it asks its provider.  This default
    provider reproduces the historical behaviour — a fresh pool per
    acquire, torn down when the run abandons or finishes it — while the
    serving tier substitutes :class:`repro.serve.pool.SharedPoolProvider`
    to multiplex many concurrent queries onto one resident pool.

    ``shared`` tells the coordinator whether it may install per-pool
    worker state (the heartbeat initializer): only a private pool can
    carry one run's heartbeat queue.
    """

    shared = False

    def acquire(
        self,
        max_workers: int,
        context,
        initializer=None,
        initargs: tuple = (),
    ) -> ProcessPoolExecutor:
        if initializer is not None:
            return ProcessPoolExecutor(
                max_workers=max_workers, mp_context=context,
                initializer=initializer, initargs=initargs,
            )
        return ProcessPoolExecutor(max_workers=max_workers, mp_context=context)

    def discard(self, pool: ProcessPoolExecutor) -> None:
        """Drop a broken or wedged pool without waiting on its workers."""
        pool.shutdown(wait=False, cancel_futures=True)

    def release(self, pool: ProcessPoolExecutor) -> None:
        """The run is done with a healthy pool."""
        pool.shutdown(wait=True)


class ProcessPBSM:
    """PBSM executed across real worker processes, surviving their faults."""

    def __init__(
        self,
        workers: int = 4,
        *,
        num_partitions: Optional[int] = None,
        config: Optional[PBSMConfig] = None,
        memory_bytes: int = DEFAULT_TASK_MEMORY,
        start_method: Optional[str] = None,
        spill_dir: Optional[str] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        journal=NULL_JOURNAL,
        sample_interval_s: float = DEFAULT_SAMPLE_INTERVAL_S,
        fault_plan: Optional[FaultPlan] = None,
        task_timeout_s: Optional[float] = None,
        deadline_s: Optional[float] = None,
        max_task_retries: int = DEFAULT_MAX_TASK_RETRIES,
        retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
        degrade_on_failure: bool = True,
        checkpoint_dir: Optional[str] = None,
        kill_coordinator_after: Optional[int] = None,
        kill_hard: bool = False,
        pool_provider: Optional[RunPoolProvider] = None,
        disk_budget: Optional[DiskBudget] = None,
    ):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self.config = config or PBSMConfig()
        if num_partitions is not None and num_partitions < 1:
            raise ValueError("need at least one partition")
        self.num_partitions = num_partitions or workers * DEFAULT_TASKS_PER_WORKER
        self.memory_bytes = memory_bytes
        self.start_method = start_method or os.environ.get(START_METHOD_ENV)
        self.spill_dir = spill_dir
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.journal = journal
        """Flight recorder (:class:`repro.obs.journal.RunJournal`); the
        default :data:`NULL_JOURNAL` records nothing.  When enabled, the
        coordinator also opens a heartbeat side channel to the workers and
        samples its own scheduling state every ``sample_interval_s``."""
        if sample_interval_s <= 0:
            raise ValueError("sample interval must be positive")
        self.sample_interval_s = sample_interval_s
        self.fault_plan = fault_plan
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ValueError("task timeout must be positive")
        self.task_timeout_s = task_timeout_s
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("run deadline must be positive")
        self.deadline_s = deadline_s
        """Wall-clock budget for the whole run.  Unlike ``task_timeout_s``
        (per-attempt), this bounds the run: past it the coordinator stops
        dispatching, abandons in-flight futures through the pool-abandonment
        path, and raises :class:`DeadlineExceededError`.  Committed
        checkpoint state survives, so a retry can :meth:`resume`."""
        self._deadline_at: Optional[float] = None
        if max_task_retries < 0:
            raise ValueError("retry budget cannot be negative")
        self.max_task_retries = max_task_retries
        self.retry_backoff_s = retry_backoff_s
        self.degrade_on_failure = degrade_on_failure
        self.checkpoint_dir = checkpoint_dir
        """Directory for durable run state (manifest, result log, spills);
        ``None`` disables checkpointing and keeps spills in a tempdir."""
        if kill_coordinator_after is not None:
            if checkpoint_dir is None:
                raise ValueError(
                    "kill_coordinator_after requires checkpoint_dir: an "
                    "unchecked coordinator kill just loses the run"
                )
            if kill_coordinator_after < 1:
                raise ValueError("kill ordinal must be >= 1")
        self.kill_coordinator_after = kill_coordinator_after
        self.kill_hard = kill_hard
        self.pool_provider = pool_provider or RunPoolProvider()
        """Executor lifecycle hooks.  The default owns a fresh pool per
        run; a shared provider (the serve tier) hands every run the same
        resident pool, ignores ``release``, and heals ``discard`` by
        swapping in a new generation for everyone."""
        self.disk_budget = disk_budget
        """Optional :class:`~repro.storage.pressure.DiskBudget` every
        coordinator-side write (partition spills, checkpoint manifests,
        result-log commits) charges before touching disk.  A denied spill
        write triggers one reclaim-and-retry of that partition; a second
        denial degrades the pair to the serial no-spill path, which is
        byte-identical.  The budget stays in the coordinator — workers
        only ever *read* spills.  A ``fault_plan`` with ``disk_full``
        points auto-creates an unbounded metering budget so the injector
        has a clock to key on."""
        self._faults: TallyCounter = TallyCounter()
        self._disk_injector: Optional[DiskFullInjector] = None
        self._budget: Optional[DiskBudget] = None
        self._disk_degraded: Set[int] = set()
        self._active_store: Optional[CheckpointStore] = None

    # ------------------------------------------------------------------ #

    def run(
        self,
        tuples_r: Sequence[SpatialTuple],
        tuples_s: Sequence[SpatialTuple],
        predicate: Predicate,
    ) -> ParallelJoinResult:
        """Partition, schedule, execute, recover, merge.  Pairs are feature
        ids; the set is identical to the serial reference even when the
        run degrades partitions after faults.

        With ``checkpoint_dir`` set, every durable step (manifest updates
        and per-pair result commits) is written through the atomic
        protocol first, so a died coordinator can be picked up by
        :meth:`resume`.  Existing checkpoint state for the same join is
        *discarded* — ``run()`` means start over; only ``resume()``
        adopts."""
        return self._run(tuples_r, tuples_s, predicate, resuming=False)

    def resume(
        self,
        tuples_r: Sequence[SpatialTuple],
        tuples_s: Sequence[SpatialTuple],
        predicate: Predicate,
    ) -> ParallelJoinResult:
        """Continue a checkpointed run from its durable state.

        Validates the run fingerprint (inputs, predicate, grid, config)
        against the checkpoint directory, re-adopts partition spills that
        are intact, replays committed pairs from the result log (their
        metrics and spans are merged into this run's observability), and
        re-merges only the pairs that never committed.  Raises
        :class:`~repro.checkpoint.store.CheckpointMismatchError` when the
        directory holds a *different* join's state; a missing or torn
        manifest degrades to a fresh (but still checkpointed) run.
        """
        if self.checkpoint_dir is None:
            raise ValueError("resume() requires checkpoint_dir")
        return self._run(tuples_r, tuples_s, predicate, resuming=True)

    def run_serial(
        self,
        tuples_r: Sequence[SpatialTuple],
        tuples_s: Sequence[SpatialTuple],
        predicate: Predicate,
    ) -> ParallelJoinResult:
        """The whole join, serially, in this process: the shed path.

        No pool, no spills, no checkpoint.  Every partition pair is
        rebuilt from the base relations through the same machinery the
        degraded path uses, so the answer is byte-identical to any other
        backend — the serve tier's circuit breaker leans on that to serve
        ``degraded`` responses whose digests match a healthy run's.  Worker
        faults never fire here (they live in ``run_pair_task``), and the
        run deadline still applies, checked between pairs.
        """
        started = time.perf_counter()
        self._faults = TallyCounter()
        self._arm_deadline()
        self.journal.emit(
            EVENT_RUN_STARTED,
            backend="process-serial",
            workers=0,
            partitions=self.num_partitions,
            tuples_r=len(tuples_r),
            tuples_s=len(tuples_s),
            resuming=False,
        )
        if not tuples_r or not tuples_s:
            self.journal.emit(EVENT_RUN_FINISHED, results=0, degraded_pairs=[])
            return ParallelJoinResult(
                [], backend="process-serial",
                wall_s=time.perf_counter() - started,
            )
        partitioner = self._partitioner(tuples_r, tuples_s)
        outcomes: List[PairTaskResult] = []
        for index in range(self.num_partitions):
            if self._deadline_expired():
                raise self._deadline_error(
                    queued=self.num_partitions - index,
                    inflight=[],
                    completed=len(outcomes),
                )
            outcomes.append(
                self._degraded_pair(
                    index, "breaker_shed",
                    tuples_r, tuples_s, partitioner, predicate,
                )
            )
        merged, concat_dropped = merge_sorted_unique(
            [o.pairs for o in outcomes]
        )
        duplicates_dropped = concat_dropped + sum(
            o.duplicates_dropped for o in outcomes
        )
        self.metrics.counter("merge.duplicates_dropped").inc(
            duplicates_dropped
        )
        self.journal.emit(
            EVENT_RUN_FINISHED,
            results=len(merged),
            degraded_pairs=sorted(o.index for o in outcomes),
            replayed_pairs=[],
        )
        return ParallelJoinResult(
            merged,
            nodes=self._node_reports(outcomes),
            storage_factor_r=sum(o.count_r for o in outcomes) / len(tuples_r),
            storage_factor_s=sum(o.count_s for o in outcomes) / len(tuples_s),
            backend="process-serial",
            wall_s=time.perf_counter() - started,
            degraded_pairs=sorted(o.index for o in outcomes),
            fault_summary=self._fault_summary(),
            duplicates_dropped=duplicates_dropped,
        )

    # ------------------------------------------------------------------ #
    # run deadline
    # ------------------------------------------------------------------ #

    def _arm_deadline(self) -> None:
        self._deadline_at = (
            time.monotonic() + self.deadline_s
            if self.deadline_s is not None
            else None
        )

    def _deadline_expired(self) -> bool:
        return (
            self._deadline_at is not None
            and time.monotonic() > self._deadline_at
        )

    def _deadline_error(
        self, *, queued: int, inflight: List[int], completed: int
    ) -> DeadlineExceededError:
        """Journal the expiry and build the typed error (caller raises)."""
        assert self.deadline_s is not None
        self._count("deadline_exceeded")
        self.journal.emit(
            EVENT_DEADLINE_EXCEEDED,
            deadline_s=self.deadline_s,
            queued=queued,
            inflight=sorted(inflight),
            completed=completed,
        )
        return DeadlineExceededError(
            self.deadline_s,
            completed=completed,
            pending=queued + len(inflight),
        )

    def _run(
        self,
        tuples_r: Sequence[SpatialTuple],
        tuples_s: Sequence[SpatialTuple],
        predicate: Predicate,
        *,
        resuming: bool,
    ) -> ParallelJoinResult:
        started = time.perf_counter()
        self._faults = TallyCounter()
        self._arm_deadline()
        self._disk_degraded = set()
        self._disk_injector = None
        budget = self.disk_budget
        if (
            budget is None
            and self.fault_plan is not None
            and self.fault_plan.disk_full_points
        ):
            # The injector needs a charged-byte clock to key on; an
            # unbounded budget meters without ever denying on its own.
            budget = DiskBudget()
        if budget is not None:
            budget.bind(metrics=self.metrics)
            if self.fault_plan is not None and self.fault_plan.disk_full_points:
                self._disk_injector = DiskFullInjector(
                    self.fault_plan, journal=self.journal
                )
                budget.bind(injector=self._disk_injector)
        self._budget = budget
        self.journal.emit(
            EVENT_RUN_STARTED,
            backend="process",
            workers=self.workers,
            partitions=self.num_partitions,
            tuples_r=len(tuples_r),
            tuples_s=len(tuples_s),
            resuming=resuming,
            disk_budget=budget.max_bytes if budget is not None else None,
        )
        if not tuples_r or not tuples_s:
            self.journal.emit(EVENT_RUN_FINISHED, results=0, degraded_pairs=[])
            return ParallelJoinResult(
                [], backend="process", wall_s=time.perf_counter() - started
            )

        store: Optional[CheckpointStore] = None
        manifest: Optional[JoinManifest] = None
        committed: Dict[int, PairTaskResult] = {}
        run_id = ""
        if self.checkpoint_dir is not None:
            fingerprint = RunFingerprint.compute(
                tuples_r, tuples_s, predicate, self.num_partitions, self.config
            )
            run_id = fingerprint.run_id
            # A resume is the recovery run: the plan's coordinator-kill and
            # torn-manifest points already fired (or are waived) — re-arming
            # them would make recovery unrecoverable.  An *explicit*
            # kill_coordinator_after still applies (killing the recovery
            # coordinator too is a legitimate test), so callers that
            # auto-resume must clear it first.
            gate = CheckpointFaultGate(
                None if resuming else self.fault_plan,
                hard=self.kill_hard,
                on_event=self._gate_event,
                extra_kills=(
                    ()
                    if self.kill_coordinator_after is None
                    else (self.kill_coordinator_after,)
                ),
                journal=self.journal,
            )
            store = CheckpointStore(
                self.checkpoint_dir, fingerprint,
                on_durable=gate.after_durable, journal=self.journal,
                budget=budget,
            )
            store.run_dir.mkdir(parents=True, exist_ok=True)
            swept = store.sweep_orphans()
            if swept:
                self._count("orphan_spills_swept", len(swept))
            manifest, committed = self._recover_state(store, resuming)
            store.begin(manifest)
            spill_root = str(store.spill_dir)
        else:
            spill_root = tempfile.mkdtemp(
                prefix="repro-pbsm-", dir=self.spill_dir
            )
        self._active_store = store

        spills_r: SideSpills = []
        spills_s: SideSpills = []
        try:
            partitioner = self._partitioner(tuples_r, tuples_s)
            injector = WriteErrorInjector(self.fault_plan, journal=self.journal)
            fresh_sides: Set[str] = set()
            with self.tracer.span("process.partition"):
                spills_r, placed_r = self._obtain_side(
                    "r", tuples_r, partitioner, spill_root, injector,
                    store, fresh_sides,
                )
                spills_s, placed_s = self._obtain_side(
                    "s", tuples_s, partitioner, spill_root, injector,
                    store, fresh_sides,
                )
            if self.fault_plan and self.fault_plan.torn_frames and fresh_sides:
                # Only freshly written sides: re-tearing an adopted spill
                # would XOR the same byte back to clean — and the fault
                # already happened in the run that wrote it.
                self._apply_torn_frames(spills_r, spills_s, fresh_sides)
            all_tasks = self._build_tasks(spills_r, spills_s, predicate)
            tasks = [t for t in all_tasks if t.index not in committed]
            self.journal.emit(
                EVENT_SCHEDULE,
                order=[
                    {"pair": t.index, "cost": t.cost_estimate} for t in tasks
                ],
            )
            for index in sorted(committed):
                prior = committed[index]
                self.journal.emit(
                    EVENT_TASK_REPLAYED,
                    pair=index,
                    candidates=prior.candidates,
                    results=len(prior.pairs),
                )
                if prior.spans:
                    self.tracer.adopt_wire(
                        prior.spans, worker=prior.worker_pid, replayed=True
                    )
                if prior.metrics:
                    self.metrics.merge_snapshot(prior.metrics)
            on_result: Optional[Callable[[PairTaskResult], None]] = None
            if store is not None:
                assert manifest is not None
                if (
                    manifest.pairs_total is None
                    and manifest.state != STATE_COMPLETE
                ):
                    store.append_event(
                        {
                            "type": "phase",
                            "state": STATE_MERGING,
                            "pairs_total": len(all_tasks),
                        }
                    )
                on_result = store.append_result
            with self.tracer.span("process.execute", tasks=len(tasks)):
                outcomes, exhausted, quarantined = self._execute(
                    tasks, on_result=on_result
                )
            failed = set(exhausted) | quarantined
            if failed:
                degraded = self._degrade_pairs(
                    failed, exhausted, quarantined,
                    tuples_r, tuples_s, partitioner, predicate,
                )
                if store is not None:
                    for outcome in degraded:
                        store.append_result(outcome)
                outcomes.extend(degraded)
            # Partitions whose spills were dropped under disk pressure
            # never became tasks; rebuild them in memory — no spill, no
            # budget charge — so the answer stays byte-identical.
            for index in sorted(self._disk_degraded - set(committed)):
                outcome = self._degraded_pair(
                    index, "disk_full",
                    tuples_r, tuples_s, partitioner, predicate,
                )
                self._count("degraded")
                self.journal.emit(
                    EVENT_DEGRADED, pair=index, reason="disk_full"
                )
                if store is not None:
                    store.append_result(outcome)
                outcomes.append(outcome)
            outcomes.extend(committed[index] for index in sorted(committed))
            outcomes.sort(key=lambda o: o.index)
            # Two-layer partitioning guarantees every result pair belongs
            # to exactly one task, so the per-task sorted lists are
            # disjoint: merging them is a streaming k-way interleave, not
            # a sorted-set union.  The drop counter is the invariant's
            # tripwire — it must stay 0 and CI gates on it.
            merge_started = time.perf_counter()
            with self.tracer.span("process.merge", streams=len(outcomes)):
                merged, concat_dropped = merge_sorted_unique(
                    [o.pairs for o in outcomes]
                )
            coordinator_merge_s = time.perf_counter() - merge_started
            duplicates_dropped = concat_dropped + sum(
                o.duplicates_dropped for o in outcomes
            )
            self.metrics.counter("merge.duplicates_dropped").inc(
                duplicates_dropped
            )
            if store is not None:
                assert manifest is not None
                if manifest.state != STATE_COMPLETE:
                    store.append_event(
                        {"type": "complete", "result_count": len(merged)}
                    )
            self.journal.emit(
                EVENT_RUN_FINISHED,
                results=len(merged),
                degraded_pairs=sorted(o.index for o in outcomes if o.degraded),
                replayed_pairs=sorted(committed),
            )
        finally:
            if store is not None:
                store.sweep_orphans()
                store.close()
            else:
                shutil.rmtree(spill_root, ignore_errors=True)
                if budget is not None:
                    # The tempdir's spills just left the disk; checkpoint
                    # runs keep their charges (the files persist).
                    for spill in list(spills_r) + list(spills_s):
                        release = getattr(spill, "release_budget", None)
                        if release is not None:
                            release()

        result = ParallelJoinResult(
            merged,
            nodes=self._node_reports(outcomes),
            storage_factor_r=placed_r / len(tuples_r),
            storage_factor_s=placed_s / len(tuples_s),
            backend="process",
            wall_s=time.perf_counter() - started,
            tasks=[
                TaskReport(
                    index=o.index,
                    cost_estimate=o.count_r + o.count_s,
                    candidates=o.candidates,
                    results=len(o.pairs),
                    wall_s=o.wall_s,
                    worker_pid=o.worker_pid,
                    attempts=o.attempt + 1,
                    degraded=o.degraded,
                    resumed=o.index in committed,
                )
                for o in outcomes
            ],
            degraded_pairs=sorted(
                o.index for o in outcomes if o.degraded
            ),
            fault_summary=self._fault_summary(),
            resumed_pairs=sorted(committed),
            checkpoint_run_id=run_id,
            duplicates_dropped=duplicates_dropped,
            coordinator_merge_s=coordinator_merge_s,
        )
        self.metrics.gauge("parallel.process.partitions").set(self.num_partitions)
        self.metrics.gauge("parallel.process.workers").set(self.workers)
        self.metrics.counter("parallel.process.tasks").inc(len(outcomes))
        return result

    # ------------------------------------------------------------------ #
    # checkpoint recovery
    # ------------------------------------------------------------------ #

    def _gate_event(self, kind: str) -> None:
        if kind == "coordinator_kill":
            self._count("injected_coordinator_kills")
        elif kind == "torn_manifest":
            self._count("injected_torn_manifests")

    def _recover_state(
        self, store: CheckpointStore, resuming: bool
    ) -> Tuple[JoinManifest, Dict[int, PairTaskResult]]:
        """Decide what durable state this run starts from.

        ``run()`` (not resuming) owns its directory outright: same-
        fingerprint leftovers are discarded.  ``resume()`` loads the
        manifest — a torn tail recovers to its intact prefix, a corrupt
        manifest (or one for a directory holding only *other* joins) is
        handled per the contract in :meth:`resume` — and replays the
        result log into the committed-pair map; an untrustworthy log is
        discarded wholesale, requeueing every pair.
        """
        if not resuming:
            store.discard_results()
            return JoinManifest(store.fingerprint), {}
        try:
            manifest = store.load()
        except ManifestCorruptionError:
            self._count("manifest_discarded")
            store.discard_results()
            return JoinManifest(store.fingerprint), {}
        if manifest is None:
            siblings = store.sibling_run_ids()
            if siblings:
                raise CheckpointMismatchError(
                    store.fingerprint.run_id, siblings
                )
            return JoinManifest(store.fingerprint), {}
        if manifest.recovered_torn_tail:
            self._count("torn_tail_recovered")
        committed: Dict[int, PairTaskResult] = {}
        try:
            committed, torn = store.replay_results()
            if torn:
                self._count("torn_tail_recovered")
        except ManifestCorruptionError:
            self._count("result_log_discarded")
            store.discard_results()
            committed = {}
        if committed:
            self._count("resumed_pairs", len(committed))
        return manifest, committed

    def _obtain_side(
        self,
        side: str,
        tuples: Sequence[SpatialTuple],
        partitioner: SpatialPartitioner,
        spill_root: str,
        injector: WriteErrorInjector,
        store: Optional[CheckpointStore],
        fresh_sides: Set[str],
    ) -> Tuple[SideSpills, int]:
        """Adopt one side's sealed spills from the checkpoint, else spill it.

        Adoption requires every recorded file to exist at its recorded
        size; anything less re-partitions the side from the base relation
        and appends a superseding seal event (last seal per side wins)."""
        manifest = store.manifest if store is not None else None
        if manifest is not None:
            seal = manifest.sealed(side)
            if seal is not None:
                handles = self._adopt_spills(seal, spill_root)
                if handles is not None:
                    self._count("spill_sides_adopted")
                    self.journal.emit(
                        EVENT_PARTITION_SEALED,
                        side=side,
                        placed=int(seal["placed"]),
                        counts=[h.count for h in handles],
                        adopted=True,
                    )
                    return handles, int(seal["placed"])
                self._count("spill_sides_rebuilt")
        spills, placed = self._partition_side_resilient(
            side, tuples, partitioner, spill_root, injector,
            atomic=store is not None,
        )
        fresh_sides.add(side)
        self.journal.emit(
            EVENT_PARTITION_SEALED,
            side=side,
            placed=placed,
            counts=[s.count for s in spills],
            adopted=False,
        )
        if store is not None and not self._disk_degraded:
            # A side partitioned under disk pressure holds deliberately
            # empty spills for its degraded partitions; sealing it would
            # let a resume adopt files that lie about the data.  No seal
            # event → a resume re-partitions the side from source.
            store.append_event(
                {
                    "type": "spills_sealed",
                    "side": side,
                    "placed": placed,
                    "files": [
                        {
                            "partition": p,
                            "kp": os.path.basename(s.kp_path),
                            "tup": os.path.basename(s.tuple_path),
                            "kp_bytes": os.path.getsize(s.kp_path),
                            "tup_bytes": os.path.getsize(s.tuple_path),
                            "count": s.count,
                        }
                        for p, s in enumerate(spills)
                    ],
                }
            )
        return list(spills), placed

    def _adopt_spills(
        self, seal: dict, spill_root: str
    ) -> Optional[SideSpills]:
        """Re-validate one seal event against the disk; ``None`` = rebuild."""
        files = seal.get("files", [])
        if len(files) != self.num_partitions:
            return None
        handles: SideSpills = []
        for entry in files:
            kp = os.path.join(spill_root, entry["kp"])
            tup = os.path.join(spill_root, entry["tup"])
            try:
                if (
                    os.path.getsize(kp) != entry["kp_bytes"]
                    or os.path.getsize(tup) != entry["tup_bytes"]
                ):
                    return None
            except OSError:
                return None
            handles.append(
                SpillHandle(
                    kp_path=kp, tuple_path=tup, count=int(entry["count"])
                )
            )
        return handles

    def _count(self, what: str, amount: int = 1) -> None:
        """One fault/recovery event: tallied on the run *and* in metrics."""
        self._faults[what] += amount
        self.metrics.counter(f"faults.{what}").inc(amount)

    def _fault_summary(self) -> dict:
        """The run's fault tallies plus spent disk_full plan points.

        The injector fires inside ``DiskBudget.charge`` — below the
        layers that tally recoveries — so its count is folded in here
        rather than at each catch site; that covers the spill and
        checkpoint layers uniformly."""
        summary = dict(self._faults)
        if self._disk_injector is not None and self._disk_injector.fired:
            summary["injected_disk_full"] = self._disk_injector.fired
        return summary

    # ------------------------------------------------------------------ #
    # partitioning + spilling
    # ------------------------------------------------------------------ #

    def _partitioner(
        self,
        tuples_r: Sequence[SpatialTuple],
        tuples_s: Sequence[SpatialTuple],
    ) -> SpatialPartitioner:
        from ..geometry import Rect

        universe = Rect.union_all(t.mbr for t in tuples_r).union(
            Rect.union_all(t.mbr for t in tuples_s)
        )
        return SpatialPartitioner(
            universe,
            self.num_partitions,
            max(self.config.num_tiles, self.num_partitions),
            self.config.scheme,
        )

    def _partition_side_resilient(
        self,
        side: str,
        tuples: Sequence[SpatialTuple],
        partitioner: SpatialPartitioner,
        spill_root: str,
        injector: WriteErrorInjector,
        atomic: bool = False,
    ) -> Tuple[List[PartitionSpill], int]:
        """Spill one side, rewriting the whole pass on a disk write error.

        Spill paths are deterministic and the writer truncates, so a retry
        simply starts the side over; the injector is one-shot, so planned
        write errors cannot starve the bounded retry loop."""
        injector.arm_side(side, len(tuples))
        last: Optional[Exception] = None
        for _ in range(PARTITION_WRITE_RETRIES + 1):
            try:
                return self._partition_side(
                    side, tuples, partitioner, spill_root, injector, atomic
                )
            except InjectedFaultError as exc:
                last = exc
                self._count("injected_write_errors")
                self._count("partition_retries")
        assert last is not None
        raise last

    def _partition_side(
        self,
        side: str,
        tuples: Sequence[SpatialTuple],
        partitioner: SpatialPartitioner,
        spill_root: str,
        injector: WriteErrorInjector,
        atomic: bool = False,
    ) -> Tuple[List[PartitionSpill], int]:
        """Spill one input, replicated across the partitions it overlaps.

        Each tuple's two-layer ``(tile, class)`` slots — computed from the
        exact f64 MBR — are grouped by the partition their tile hashes to;
        every receiving partition gets one tagged key-pointer per slot and
        the full tuple once.  With ``atomic=True`` (checkpointed runs)
        each spill stages through ``*.tmp`` and only reaches its final
        name sealed, so a resume can trust any spill file that exists
        under the run directory.

        A spill write denied by the disk budget triggers one reclaim-and-
        replay of that partition (stale orphans swept, finished sibling
        checkpoint runs collected, the partition's spill rewritten from
        its routed tuples); a second denial *degrades* the partition —
        its spills are replaced with sealed empty files so no task is
        built, and the coordinator rebuilds the pair serially in memory
        after the merge phase.  Either way the run finishes exact."""
        budget = self._budget
        spills = [
            PartitionSpill(spill_root, side, p, atomic=atomic, budget=budget)
            for p in range(self.num_partitions)
        ]
        placed = 0
        # Per-partition replay log for disk-pressure recovery: every tuple
        # fully added to a partition, with its slots.  Only kept when a
        # budget could deny a write.
        routed: Dict[int, List[Tuple[SpatialTuple, List[Tuple[int, int]]]]] = {}
        try:
            for ordinal, t in enumerate(tuples):
                injector.check(side, ordinal)
                by_part: Dict[int, List[Tuple[int, int]]] = {}
                for tile, cls in partitioner.tile_assignments(t.mbr):
                    by_part.setdefault(
                        partitioner.partition_of_tile(tile), []
                    ).append((tile, cls))
                for p in sorted(by_part):
                    if p in self._disk_degraded:
                        continue
                    try:
                        spills[p].add(t, by_part[p])
                    except DiskFullError:
                        if not self._recover_spill_pressure(
                            side, p, spills, routed.get(p, ()),
                            spill_root, atomic, t, by_part[p],
                        ):
                            self._disk_degraded.add(p)
                            routed.pop(p, None)
                            continue
                    placed += 1
                    if budget is not None:
                        routed.setdefault(p, []).append((t, by_part[p]))
        except BaseException:
            # Abort, not remove: discard in-progress temp files *and* any
            # sealed output, leaving no spill litter on the failure path.
            for spill in spills:
                spill.abort()
            raise
        for spill in spills:
            spill.close()
        skew = self.metrics.histogram(f"parallel.partition.keypointers_{side}")
        for spill in spills:
            skew.observe(spill.count)
        return spills, placed

    def _recover_spill_pressure(
        self,
        side: str,
        p: int,
        spills: List[PartitionSpill],
        replay,
        spill_root: str,
        atomic: bool,
        t: SpatialTuple,
        slots: List[Tuple[int, int]],
    ) -> bool:
        """One reclaim-and-replay attempt for a budget-denied partition.

        Returns True when the partition's spill was rewritten in full
        (including the tuple whose add was denied); False means the
        partition was degraded — its spills are now sealed empty files,
        so no task is built and the pair is rebuilt serially instead.
        """
        budget = self._budget
        self._count("disk_pressure")
        self.journal.emit(
            EVENT_DISK_PRESSURE, category="spill", side=side, partition=p
        )
        # Reclaim, cheapest first: the partition's own partial spill (its
        # frames are being rewritten anyway), stale orphan temp files,
        # and — when checkpointing — completed sibling runs.
        spills[p].abort()
        self._sweep_stale_orphans(spill_root, spills)
        if self._active_store is not None:
            self._active_store.reclaim_completed_siblings()
        spills[p] = PartitionSpill(
            spill_root, side, p, atomic=atomic, budget=budget
        )
        try:
            for prev_t, prev_slots in replay:
                spills[p].add(prev_t, prev_slots)
            spills[p].add(t, slots)
        except DiskFullError:
            spills[p].abort()
            empty = PartitionSpill(spill_root, side, p, atomic=atomic)
            empty.close()
            spills[p] = empty
            self._count("disk_degraded")
            return False
        self._count("disk_full_recovered")
        self.journal.emit(
            EVENT_DISK_FULL_RECOVERED,
            category="spill", side=side, partition=p, action="sweep_retry",
        )
        return True

    def _sweep_stale_orphans(
        self, spill_root: str, spills: List[PartitionSpill]
    ) -> int:
        """Delete orphan ``*.tmp`` files that are not a live writer's
        staging file, crediting their bytes back to the budget — the
        budget models the spill directory's footprint, so any file freed
        is headroom regained.  Returns bytes freed."""
        live = set()
        for spill in spills:
            live.add(spill.kp_path + TMP_SUFFIX)
            live.add(spill.tuple_path + TMP_SUFFIX)
        root = Path(spill_root)
        freed = 0
        if not root.is_dir():
            return 0
        for path in sorted(root.rglob("*" + TMP_SUFFIX)):
            if str(path) in live:
                continue
            try:
                size = path.stat().st_size
                os.unlink(path)
            except OSError:
                continue
            freed += size
        if freed and self._budget is not None:
            self._budget.release(freed, "spill")
        return freed

    def _apply_torn_frames(
        self,
        spills_r: SideSpills,
        spills_s: SideSpills,
        sides: Optional[Set[str]] = None,
    ) -> None:
        """Corrupt the planned spill frames on disk, post-write.

        A torn frame in a partition that never becomes a task would go
        unread, so plans targeting an inactive pair are redirected onto an
        active one deterministically — the fault always has a victim.
        ``sides`` (when given) restricts tearing to those sides: a resumed
        run tears only what it freshly wrote, never adopted spills."""
        assert self.fault_plan is not None
        active = [
            p
            for p, (spill_r, spill_s) in enumerate(zip(spills_r, spills_s))
            if spill_r.count and spill_s.count
        ]
        if not active:
            return
        active_set = set(active)
        for torn in self.fault_plan.torn_frames:
            if sides is not None and torn.side not in sides:
                continue
            partition = torn.partition % self.num_partitions
            if partition not in active_set:
                partition = active[torn.partition % len(active)]
            spill = (spills_r if torn.side == "r" else spills_s)[partition]
            if tear_frame(spill.kp_path, torn.frame) >= 0:
                self._count("injected_torn_frames")
                self.journal.emit(
                    EVENT_FAULT_INJECTED,
                    kind="torn_frame", side=torn.side, pair=partition,
                )

    def _build_tasks(
        self,
        spills_r: SideSpills,
        spills_s: SideSpills,
        predicate: Predicate,
    ) -> List[PairTask]:
        """One task per non-empty partition pair, in LPT order."""
        observe = (
            self.tracer.enabled or self.metrics.enabled
            or self.journal.enabled
        )
        plan = self.fault_plan
        tasks = [
            PairTask(
                index=p,
                kp_r_path=spill_r.kp_path,
                kp_s_path=spill_s.kp_path,
                tuples_r_path=spill_r.tuple_path,
                tuples_s_path=spill_s.tuple_path,
                count_r=spill_r.count,
                count_s=spill_s.count,
                memory_bytes=self.memory_bytes,
                config=self.config,
                predicate=predicate,
                observe=observe,
                faults=plan.faults_for_pair(p) if plan else None,
            )
            for p, (spill_r, spill_s) in enumerate(zip(spills_r, spills_s))
            if spill_r.count and spill_s.count
        ]
        # Longest processing time first, seeded by key-pointer counts; ties
        # broken by partition index so the submission order is reproducible.
        tasks.sort(key=lambda t: (-t.cost_estimate, t.index))
        cost = self.metrics.histogram("parallel.task.cost_estimate")
        for task in tasks:
            cost.observe(task.cost_estimate)
        planned = sum(t.faults.total_points for t in tasks if t.faults)
        if planned:
            self._count("injected_worker_faults", planned)
        return tasks

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def _execute(
        self,
        tasks: List[PairTask],
        on_result: Optional[Callable[[PairTaskResult], None]] = None,
    ) -> Tuple[List[PairTaskResult], Dict[int, WorkerTaskError], Set[int]]:
        """Run the tasks on the pool, recovering from task and pool faults.

        Returns ``(outcomes, exhausted, quarantined)``: completed results,
        pairs whose retry budget ran out (with their last error), and pairs
        whose spill files failed integrity checks.  The shared submission
        queue is what rebalances skew; retries simply re-enter it, so a
        re-dispatched pair lands on whichever worker survives and frees up
        first.

        ``on_result`` observes each harvested result *before* its spans and
        metrics are adopted — the checkpoint layer commits the pair there,
        so a kill mid-harvest loses at most the one uncommitted result.
        """
        if not tasks:
            return [], {}, set()
        context = multiprocessing.get_context(self.start_method)
        max_workers = min(self.workers, len(tasks))
        by_index = {task.index: task for task in tasks}
        attempts: Dict[int, int] = {task.index: 0 for task in tasks}
        to_submit: List[int] = [task.index for task in tasks]  # LPT order
        outcomes: List[PairTaskResult] = []
        exhausted: Dict[int, WorkerTaskError] = {}
        quarantined: Set[int] = set()
        pool: Optional[ProcessPoolExecutor] = None
        inflight: Dict[Future, int] = {}
        deadlines: Dict[Future, float] = {}
        backoff_hist = self.metrics.histogram(
            "faults.retry_backoff_s", LATENCY_BUCKETS_S
        )
        journal = self.journal
        provider = self.pool_provider
        # The heartbeat side channel: an mp queue handed to every worker
        # via the pool initializer (initargs travel as process-constructor
        # arguments, which is the one spawn-safe way to inherit a queue).
        # Only a journaling run with a *private* pool pays for it — a
        # shared pool serves many runs at once and cannot carry one run's
        # initializer state.
        heartbeats = (
            context.Queue()
            if journal.enabled and not provider.shared
            else None
        )
        worker_phase: Dict[int, dict] = {}
        next_sample = time.monotonic() + self.sample_interval_s

        def planned_kinds(index: int, attempt: int) -> List[str]:
            """The fault kinds the plan pinned to this (pair, attempt) that
            will actually fire, in injection order — how the coordinator
            tells *injected* trouble apart from collateral damage (innocent
            pairs requeued by a BrokenProcessPool).  Attribution happens at
            dispatch, not at failure or harvest: a dispatched attempt
            always executes its planned injection, so the emitted set is a
            pure function of the plan — harvest-time detection would race
            against whichever unrelated crash broke the pool first."""
            faults = by_index[index].faults
            if faults is None:
                return []
            if attempt in faults.crash_attempts:
                # A crash pre-empts the rest of the attempt's faults.
                return ["worker_crash"]
            kinds = []
            if attempt in faults.hang_attempts:
                kinds.append("hang")
            if attempt in faults.slow_attempts:
                kinds.append("slow_task")
            if attempt in faults.read_error_attempts:
                kinds.append("disk_read_error")
            return kinds

        def drain_heartbeats() -> None:
            if heartbeats is None:
                return
            while True:
                try:
                    ping = heartbeats.get_nowait()
                except Exception:
                    return
                worker_phase[ping["pid"]] = ping
                journal.emit(
                    EVENT_WORKER_HEARTBEAT,
                    pid=ping["pid"], pair=ping["pair"],
                    attempt=ping["attempt"], phase=ping["phase"],
                )

        def maybe_sample() -> None:
            nonlocal next_sample
            if not journal.enabled or time.monotonic() < next_sample:
                return
            next_sample = time.monotonic() + self.sample_interval_s
            journal.emit(
                EVENT_SAMPLE,
                queued=len(to_submit),
                inflight=sorted(inflight.values()),
                done=len(outcomes),
                total=len(tasks),
                workers={
                    str(pid): ping["phase"]
                    for pid, ping in sorted(worker_phase.items())
                },
            )

        def abandon_pool() -> None:
            """Drop a broken or wedged pool; in-flight work is requeued by
            the caller.  The provider disposes without waiting: a hung
            worker must not hold the coordinator hostage."""
            nonlocal pool
            if pool is not None:
                provider.discard(pool)
                pool = None
            inflight.clear()
            deadlines.clear()
            self._count("pool_respawns")
            journal.emit(EVENT_POOL_RESPAWN, queued=len(to_submit))

        def on_failure(index: int, error: WorkerTaskError) -> None:
            """Charge one attempt; requeue within budget, else give up."""
            self._count("task_failures")
            failed_attempt = attempts[index]
            if error.corruption:
                # The file is wrong on disk — no retry can fix it.
                quarantined.add(index)
                self._count("quarantined")
                journal.emit(
                    EVENT_QUARANTINED, pair=index, attempt=failed_attempt
                )
                return
            attempt = attempts[index] = attempts[index] + 1
            if attempt > self.max_task_retries:
                exhausted[index] = error
                self._count("retry_exhausted")
                return
            self._count("retries")
            backoff = self.retry_backoff_s * (2 ** (attempt - 1))
            backoff_hist.observe(backoff)
            journal.emit(
                EVENT_RETRY,
                pair=index, attempt=attempt,
                backoff_s=round(backoff, 6), cause=error.cause_type,
            )
            if backoff > 0:
                time.sleep(backoff)
            to_submit.append(index)

        def harvest(index: int, outcome: PairTaskResult) -> None:
            """Journal one harvested result: the worker's wire events are
            re-emitted with their producer-relative clock as ``worker_t``
            (worker and coordinator clocks are not comparable)."""
            if not journal.enabled:
                return
            for event in outcome.events:
                fields = {
                    k: v for k, v in event.items() if k not in ("type", "t")
                }
                fields["worker_t"] = event["t"]
                if event["type"] == EVENT_TASK_FINISHED:
                    fields["wall_s"] = round(outcome.wall_s, 6)
                journal.emit(event["type"], **fields)

        try:
            while to_submit or inflight:
                if self._deadline_expired():
                    # Cooperative cancellation.  Everything harvested so
                    # far was already committed through ``on_result``, so a
                    # checkpointed retry resumes instead of restarting.
                    # In-flight futures ride the same pool-abandonment path
                    # a task timeout uses (a wedged worker cannot be killed
                    # without breaking the pool); with nothing in flight
                    # the pool is left healthy for its other tenants.
                    error = self._deadline_error(
                        queued=len(to_submit),
                        inflight=list(inflight.values()),
                        completed=len(outcomes),
                    )
                    if inflight:
                        abandon_pool()
                    raise error
                if pool is None:
                    if heartbeats is not None:
                        pool = provider.acquire(
                            max_workers, context,
                            initializer=init_worker_heartbeats,
                            initargs=(heartbeats,),
                        )
                    else:
                        pool = provider.acquire(max_workers, context)
                while to_submit:
                    index = to_submit.pop(0)
                    task = dataclasses.replace(
                        by_index[index], attempt=attempts[index]
                    )
                    try:
                        future = pool.submit(run_pair_task, task)
                    except RuntimeError:
                        # BrokenProcessPool, or (shared pool) a co-tenant
                        # already discarded this generation and submit
                        # raises "cannot schedule new futures"; heal and
                        # resubmit everything (no attempt charged — the
                        # task never reached a worker).
                        to_submit.insert(0, index)
                        to_submit.extend(inflight.values())
                        abandon_pool()
                        break
                    inflight[future] = index
                    journal.emit(
                        EVENT_TASK_DISPATCHED,
                        pair=index, attempt=task.attempt,
                        cost=task.cost_estimate,
                    )
                    for kind in planned_kinds(index, task.attempt):
                        journal.emit(
                            EVENT_FAULT_INJECTED,
                            kind=kind, pair=index, attempt=task.attempt,
                        )
                    if self.task_timeout_s is not None:
                        deadlines[future] = (
                            time.monotonic() + self.task_timeout_s
                        )
                if pool is None or not inflight:
                    continue

                # A journaling run polls so heartbeats and sampler ticks
                # keep flowing while tasks are quiet; otherwise the wait
                # only needs a slice when a deadline — per-task or
                # whole-run — must be enforced.
                wait(
                    set(inflight),
                    timeout=(
                        _POLL_S
                        if (
                            deadlines
                            or journal.enabled
                            or self._deadline_at is not None
                        )
                        else None
                    ),
                    return_when=FIRST_COMPLETED,
                )
                drain_heartbeats()
                maybe_sample()
                # Harvest everything that finished, well or badly.
                pool_broke = False
                for future in [f for f in inflight if f.done()]:
                    index = inflight.pop(future)
                    deadlines.pop(future, None)
                    try:
                        outcome = future.result()
                    except WorkerTaskError as error:
                        on_failure(index, error)
                    except (BrokenProcessPool, CancelledError):
                        # CancelledError reaches here only on a shared
                        # pool: a co-tenant's discard cancelled our queued
                        # future — same recovery as a pool death.
                        pool_broke = True
                        on_failure(
                            index,
                            WorkerTaskError(
                                index, attempts[index], 0,
                                "BrokenProcessPool",
                                "worker process died mid-task",
                            ),
                        )
                    else:
                        outcomes.append(outcome)
                        harvest(index, outcome)
                        if on_result is not None:
                            on_result(outcome)
                        if outcome.spans:
                            self.tracer.adopt_wire(
                                outcome.spans, worker=outcome.worker_pid
                            )
                        if outcome.metrics:
                            self.metrics.merge_snapshot(outcome.metrics)
                if pool_broke:
                    # Every surviving in-flight future is doomed with the
                    # pool; charge them the shared crash and requeue.
                    for future, index in list(inflight.items()):
                        on_failure(
                            index,
                            WorkerTaskError(
                                index, attempts[index], 0,
                                "BrokenProcessPool",
                                "pool broke while task was in flight",
                            ),
                        )
                    abandon_pool()
                    continue

                # Enforce task deadlines: a wedged worker cannot be killed
                # inside ProcessPoolExecutor without breaking the pool, so
                # the pool is abandoned wholesale and unfinished innocents
                # are resubmitted uncharged.
                if deadlines and not any(f.done() for f in inflight):
                    # (any completed-but-unharvested future postpones this
                    # to the next round, so results are never dropped)
                    now = time.monotonic()
                    timed_out = {
                        inflight[f]
                        for f, deadline in deadlines.items()
                        if now > deadline
                    }
                    if timed_out:
                        for index in list(inflight.values()):
                            if index in timed_out:
                                self._count("timeouts")
                                journal.emit(
                                    EVENT_TIMEOUT,
                                    pair=index,
                                    attempt=attempts[index],
                                    timeout_s=self.task_timeout_s,
                                )
                                on_failure(
                                    index,
                                    WorkerTaskError(
                                        index, attempts[index], 0,
                                        "TaskTimeout",
                                        f"no result within "
                                        f"{self.task_timeout_s}s",
                                    ),
                                )
                            else:
                                to_submit.append(index)
                        abandon_pool()
        finally:
            if pool is not None:
                provider.release(pool)
            drain_heartbeats()
            if heartbeats is not None:
                heartbeats.close()
                heartbeats.join_thread()
        outcomes.sort(key=lambda o: o.index)
        return outcomes, exhausted, quarantined

    # ------------------------------------------------------------------ #
    # graceful degradation
    # ------------------------------------------------------------------ #

    def _degrade_pairs(
        self,
        failed: Set[int],
        exhausted: Dict[int, WorkerTaskError],
        quarantined: Set[int],
        tuples_r: Sequence[SpatialTuple],
        tuples_s: Sequence[SpatialTuple],
        partitioner: SpatialPartitioner,
        predicate: Predicate,
    ) -> List[PairTaskResult]:
        """Rebuild the pairs the process path gave up on, serially.

        The coordinator still holds the base relations, so a partition
        whose spill files are corrupt or whose task kept dying is simply
        re-derived from source tuples and merged in-process — slower, but
        exact.  With ``degrade_on_failure=False`` the first exhausted
        pair's error (pair id, attempt, worker context attached) is raised
        instead.
        """
        if not self.degrade_on_failure:
            index = min(failed)
            error = exhausted.get(index)
            if error is None:
                error = WorkerTaskError(
                    index, 0, 0,
                    "SpillCorruptionError",
                    "partition spill quarantined by integrity check",
                    corruption=True,
                )
            raise error
        results = []
        for index in sorted(failed):
            if self._deadline_expired():
                raise self._deadline_error(
                    queued=len(failed) - len(results),
                    inflight=[],
                    completed=len(results),
                )
            reason = "corrupt_spill" if index in quarantined else "retry_exhausted"
            results.append(
                self._degraded_pair(
                    index, reason, tuples_r, tuples_s, partitioner, predicate
                )
            )
            self._count("degraded")
            self.journal.emit(EVENT_DEGRADED, pair=index, reason=reason)
        return results

    def _degraded_pair(
        self,
        index: int,
        reason: str,
        tuples_r: Sequence[SpatialTuple],
        tuples_s: Sequence[SpatialTuple],
        partitioner: SpatialPartitioner,
        predicate: Predicate,
    ) -> PairTaskResult:
        """Serially merge one partition pair from the base relations."""
        started = time.perf_counter()
        with self.tracer.span("process.degraded_pair", pair=index) as span:
            span.tag("degraded", True)
            span.tag("reason", reason)
            kps_r, lookup_r = _rebuild_partition(tuples_r, partitioner, index)
            kps_s, lookup_s = _rebuild_partition(tuples_s, partitioner, index)
            pairs, candidates, dropped = merge_refine_pair(
                kps_r, kps_s, lookup_r, lookup_s,
                predicate, self.memory_bytes, self.config,
                label=f"degraded.{index}",
                tracer=self.tracer, metrics=self.metrics,
            )
            span.tag("results", len(pairs))
        return PairTaskResult(
            index=index,
            worker_pid=os.getpid(),
            pairs=pairs,
            candidates=candidates,
            count_r=len(kps_r),
            count_s=len(kps_s),
            wall_s=time.perf_counter() - started,
            degraded=True,
            degraded_reason=reason,
            duplicates_dropped=dropped,
        )

    def _node_reports(self, outcomes: List[PairTaskResult]) -> List[NodeReport]:
        """Per-worker rollups: which process did how much, for how long."""
        by_pid: Dict[int, NodeReport] = {}
        for outcome in outcomes:
            report = by_pid.get(outcome.worker_pid)
            if report is None:
                report = NodeReport(node_id=len(by_pid))
                by_pid[outcome.worker_pid] = report
            report.tuples_r += outcome.count_r
            report.tuples_s += outcome.count_s
            report.local_pairs += len(outcome.pairs)
            report.sim_seconds += outcome.wall_s
        return list(by_pid.values())


def _rebuild_partition(
    tuples: Sequence[SpatialTuple],
    partitioner: SpatialPartitioner,
    index: int,
) -> Tuple[list, dict]:
    """Re-derive one partition's key-pointers and tuple lookup from source.

    Uses the same pack/unpack rounding as the spill path
    (:func:`~repro.parallel.tasks.fid_keypointer`), so the degraded merge
    sees bit-identical MBRs to what the worker would have read — and the
    same f64-derived ``(tile, class)`` tags, so the rebuilt replica slots
    and the class-filtered sweep they feed are identical too.
    """
    kps = []
    lookup = {}
    for t in tuples:
        slots = [
            (tile, cls)
            for tile, cls in partitioner.tile_assignments(t.mbr)
            if partitioner.partition_of_tile(tile) == index
        ]
        if slots:
            for tile, cls in slots:
                kps.append(fid_keypointer(t, tile, cls))
            lookup[t.feature_id] = t
    return kps, lookup
