"""True multiprocess PBSM: partition once, schedule pairs across cores.

Where :class:`repro.parallel.engine.ParallelPBSM` *simulates* §5's
shared-nothing machine on virtual nodes (modelled seconds, one process),
this backend executes the join on real worker processes and is measured in
real wall-clock seconds:

1. **Partition** — the coordinator runs PBSM's tiled partitioning function
   over both inputs once, spilling each partition's key-pointers and
   tuples to files workers can read (:mod:`repro.parallel.tasks`).
2. **Schedule** — partition-pair merge tasks are submitted to a
   ``ProcessPoolExecutor`` in longest-processing-time-first order, seeded
   by per-pair key-pointer counts.  LPT places the big pairs first; the
   executor's single shared task queue then acts as the work-stealing
   fallback — when skew makes the estimate wrong, whichever worker frees
   up first simply pulls the next pair, so no worker idles while tasks
   remain.
3. **Merge** — exact per-pair results (feature-id pairs) are unioned and
   sorted; tile replication makes boundary duplicates, the sorted-set
   union removes them.  Each worker's spans and metrics come back in wire
   form and are adopted into the coordinator's tracer/registry, so one
   trace shows every process's work in its own lane.

The result pair set is identical to the serial and simulated backends for
every seed — the cross-backend equivalence tests assert exactly that.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.partition import SpatialPartitioner
from ..core.pbsm import PBSMConfig
from ..core.predicates import Predicate
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..storage.tuples import SpatialTuple
from .engine import NodeReport, ParallelJoinResult, TaskReport
from .tasks import PairTask, PairTaskResult, PartitionSpill, run_pair_task

DEFAULT_TASK_MEMORY = 8 * 1024 * 1024
"""Per-task merge memory budget (drives §3.5 recursion, when enabled)."""

DEFAULT_TASKS_PER_WORKER = 4
"""Partition count multiplier: more pairs than workers, so LPT ordering
and queue-based stealing have room to balance skewed pairs."""

START_METHOD_ENV = "REPRO_MP_START_METHOD"
"""Environment override for the multiprocessing start method (CI uses it
to force ``spawn`` on platforms that default to ``fork``)."""


class ProcessPBSM:
    """PBSM executed across real worker processes."""

    def __init__(
        self,
        workers: int = 4,
        *,
        num_partitions: Optional[int] = None,
        config: Optional[PBSMConfig] = None,
        memory_bytes: int = DEFAULT_TASK_MEMORY,
        start_method: Optional[str] = None,
        spill_dir: Optional[str] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self.config = config or PBSMConfig()
        if num_partitions is not None and num_partitions < 1:
            raise ValueError("need at least one partition")
        self.num_partitions = num_partitions or workers * DEFAULT_TASKS_PER_WORKER
        self.memory_bytes = memory_bytes
        self.start_method = start_method or os.environ.get(START_METHOD_ENV)
        self.spill_dir = spill_dir
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS

    # ------------------------------------------------------------------ #

    def run(
        self,
        tuples_r: Sequence[SpatialTuple],
        tuples_s: Sequence[SpatialTuple],
        predicate: Predicate,
    ) -> ParallelJoinResult:
        """Partition, schedule, execute, merge.  Pairs are feature ids."""
        started = time.perf_counter()
        if not tuples_r or not tuples_s:
            return ParallelJoinResult(
                [], backend="process", wall_s=time.perf_counter() - started
            )

        spill_root = tempfile.mkdtemp(prefix="repro-pbsm-", dir=self.spill_dir)
        try:
            partitioner = self._partitioner(tuples_r, tuples_s)
            with self.tracer.span("process.partition"):
                spills_r, placed_r = self._partition_side(
                    "r", tuples_r, partitioner, spill_root
                )
                spills_s, placed_s = self._partition_side(
                    "s", tuples_s, partitioner, spill_root
                )
            tasks = self._build_tasks(spills_r, spills_s, predicate)
            with self.tracer.span("process.execute", tasks=len(tasks)):
                outcomes = self._execute(tasks)
            merged = sorted(set().union(*(o.pairs for o in outcomes), set()))
        finally:
            shutil.rmtree(spill_root, ignore_errors=True)

        result = ParallelJoinResult(
            merged,
            nodes=self._node_reports(outcomes),
            storage_factor_r=placed_r / len(tuples_r),
            storage_factor_s=placed_s / len(tuples_s),
            backend="process",
            wall_s=time.perf_counter() - started,
            tasks=[
                TaskReport(
                    index=o.index,
                    cost_estimate=o.count_r + o.count_s,
                    candidates=o.candidates,
                    results=len(o.pairs),
                    wall_s=o.wall_s,
                    worker_pid=o.worker_pid,
                )
                for o in outcomes
            ],
        )
        self.metrics.gauge("parallel.process.partitions").set(self.num_partitions)
        self.metrics.gauge("parallel.process.workers").set(self.workers)
        self.metrics.counter("parallel.process.tasks").inc(len(outcomes))
        return result

    # ------------------------------------------------------------------ #
    # partitioning + spilling
    # ------------------------------------------------------------------ #

    def _partitioner(
        self,
        tuples_r: Sequence[SpatialTuple],
        tuples_s: Sequence[SpatialTuple],
    ) -> SpatialPartitioner:
        from ..geometry import Rect

        universe = Rect.union_all(t.mbr for t in tuples_r).union(
            Rect.union_all(t.mbr for t in tuples_s)
        )
        return SpatialPartitioner(
            universe,
            self.num_partitions,
            max(self.config.num_tiles, self.num_partitions),
            self.config.scheme,
        )

    def _partition_side(
        self,
        side: str,
        tuples: Sequence[SpatialTuple],
        partitioner: SpatialPartitioner,
        spill_root: str,
    ) -> Tuple[List[PartitionSpill], int]:
        """Spill one input, replicated across the partitions it overlaps."""
        spills = [
            PartitionSpill(spill_root, side, p)
            for p in range(self.num_partitions)
        ]
        placed = 0
        for t in tuples:
            for p in sorted(partitioner.partitions_for_rect(t.mbr)):
                spills[p].add(t)
                placed += 1
        for spill in spills:
            spill.close()
        skew = self.metrics.histogram(f"parallel.partition.keypointers_{side}")
        for spill in spills:
            skew.observe(spill.count)
        return spills, placed

    def _build_tasks(
        self,
        spills_r: List[PartitionSpill],
        spills_s: List[PartitionSpill],
        predicate: Predicate,
    ) -> List[PairTask]:
        """One task per non-empty partition pair, in LPT order."""
        observe = self.tracer.enabled or self.metrics.enabled
        tasks = [
            PairTask(
                index=p,
                kp_r_path=spill_r.kp_path,
                kp_s_path=spill_s.kp_path,
                tuples_r_path=spill_r.tuple_path,
                tuples_s_path=spill_s.tuple_path,
                count_r=spill_r.count,
                count_s=spill_s.count,
                memory_bytes=self.memory_bytes,
                config=self.config,
                predicate=predicate,
                observe=observe,
            )
            for p, (spill_r, spill_s) in enumerate(zip(spills_r, spills_s))
            if spill_r.count and spill_s.count
        ]
        # Longest processing time first, seeded by key-pointer counts; ties
        # broken by partition index so the submission order is reproducible.
        tasks.sort(key=lambda t: (-t.cost_estimate, t.index))
        cost = self.metrics.histogram("parallel.task.cost_estimate")
        for task in tasks:
            cost.observe(task.cost_estimate)
        return tasks

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def _execute(self, tasks: List[PairTask]) -> List[PairTaskResult]:
        """Run the tasks on the pool; adopt worker observability as results
        arrive (the shared submission queue is what rebalances skew)."""
        if not tasks:
            return []
        context = multiprocessing.get_context(self.start_method)
        outcomes: List[PairTaskResult] = []
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(tasks)), mp_context=context
        ) as pool:
            futures = [pool.submit(run_pair_task, task) for task in tasks]
            for future in as_completed(futures):
                outcome = future.result()
                outcomes.append(outcome)
                if outcome.spans:
                    self.tracer.adopt_wire(
                        outcome.spans, worker=outcome.worker_pid
                    )
                if outcome.metrics:
                    self.metrics.merge_snapshot(outcome.metrics)
        outcomes.sort(key=lambda o: o.index)
        return outcomes

    def _node_reports(self, outcomes: List[PairTaskResult]) -> List[NodeReport]:
        """Per-worker rollups: which process did how much, for how long."""
        by_pid: Dict[int, NodeReport] = {}
        for outcome in outcomes:
            report = by_pid.get(outcome.worker_pid)
            if report is None:
                report = NodeReport(node_id=len(by_pid))
                by_pid[outcome.worker_pid] = report
            report.tuples_r += outcome.count_r
            report.tuples_s += outcome.count_s
            report.local_pairs += len(outcome.pairs)
            report.sim_seconds += outcome.wall_s
        return list(by_pid.values())
