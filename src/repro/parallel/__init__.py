"""Simulated shared-nothing parallel PBSM (the paper's §5 future work)."""

from .engine import (
    REMOTE_FETCH_SECONDS,
    REPLICATE_MBRS,
    REPLICATE_OBJECTS,
    SCHEMES,
    NodeReport,
    ParallelJoinResult,
    ParallelPBSM,
    serial_feature_pairs,
)

__all__ = [
    "REMOTE_FETCH_SECONDS",
    "REPLICATE_MBRS",
    "REPLICATE_OBJECTS",
    "SCHEMES",
    "NodeReport",
    "ParallelJoinResult",
    "ParallelPBSM",
    "serial_feature_pairs",
]
