"""Parallel PBSM (the paper's §5): simulated nodes and real processes.

* :mod:`repro.parallel.engine` — the virtual shared-nothing machine
  (``backend="simulated"``): §5's storage/remote-fetch declustering
  trade-off in modelled seconds.
* :mod:`repro.parallel.process` + :mod:`repro.parallel.tasks` — the true
  multiprocess backend (``backend="process"``): partition-pair merge
  tasks scheduled LPT-first over a worker pool, measured in wall-clock
  seconds.
* :mod:`repro.parallel.api` — :func:`parallel_join`, the one front door.
"""

from .api import (
    BACKEND_PROCESS,
    BACKEND_SERIAL,
    BACKEND_SIMULATED,
    BACKENDS,
    parallel_join,
)
from .engine import (
    REMOTE_FETCH_SECONDS,
    REPLICATE_MBRS,
    REPLICATE_OBJECTS,
    SCHEMES,
    NodeReport,
    ParallelJoinResult,
    ParallelPBSM,
    TaskReport,
    serial_feature_pairs,
)
from .process import DeadlineExceededError, ProcessPBSM, RunPoolProvider
from .tasks import (
    PairTask,
    PairTaskResult,
    PartitionSpill,
    SpillHandle,
    WorkerTaskError,
    run_pair_task,
)

__all__ = [
    "BACKENDS",
    "BACKEND_PROCESS",
    "BACKEND_SERIAL",
    "BACKEND_SIMULATED",
    "DeadlineExceededError",
    "NodeReport",
    "PairTask",
    "PairTaskResult",
    "ParallelJoinResult",
    "ParallelPBSM",
    "PartitionSpill",
    "ProcessPBSM",
    "RunPoolProvider",
    "SpillHandle",
    "REMOTE_FETCH_SECONDS",
    "REPLICATE_MBRS",
    "REPLICATE_OBJECTS",
    "SCHEMES",
    "TaskReport",
    "WorkerTaskError",
    "parallel_join",
    "run_pair_task",
    "serial_feature_pairs",
]
