"""Parallel PBSM on a simulated shared-nothing machine — the paper's §5.

The paper closes with a concrete design sketch: PBSM's tiled spatial
partitioning function doubles as a *declustering* strategy for a
shared-nothing parallel database, and the open question is how to handle
objects that span node boundaries:

    "one could either replicate such objects entirely, or replicate just
    the spatial approximation (like the minimum bounding rectangle).  If
    the object is not replicated in its entirety (as in [TY95]), then
    remote fetches might be required, whereas if the object is fully
    replicated, remote fetches can be avoided at the expense of an
    increase in the amount of storage."

This module implements both choices over *virtual nodes* — each node owns
its own simulated disk and buffer pool — and measures exactly the
quantities that trade off: per-node simulated time (the critical path),
storage blow-up from replication, and remote-fetch counts/costs.

Execution model per node: local fragments are joined with the regular
single-node PBSM; under MBR-only declustering the refinement step's
fetches of non-resident tuples are charged a network round trip plus the
owning node's page read.  Each node keeps only the pairs it *owns* under
two-layer partitioning — the pairs whose reference tile hashes to it —
so node outputs are disjoint and the coordinator k-way merges them with
no dedup barrier (``merge.duplicates_dropped`` must read 0); the final
result must equal the serial join exactly (tested).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.partition import SCHEME_HASH, SpatialPartitioner
from ..core.pbsm import PBSMConfig, PBSMJoin
from ..core.predicates import Predicate
from ..core.refine import dedup_sorted_pairs, merge_sorted_unique
from ..geometry import Rect
from ..obs.journal import (
    EVENT_NODE_FINISHED,
    EVENT_PARTITION_SEALED,
    EVENT_RUN_FINISHED,
    EVENT_RUN_STARTED,
    NULL_JOURNAL,
)
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..storage.database import Database
from ..storage.relation import OID, Relation
from ..storage.tuples import SpatialTuple

REPLICATE_OBJECTS = "replicate_objects"
"""Full replication: every overlapping node stores the whole tuple."""

REPLICATE_MBRS = "replicate_mbrs"
"""[TY95]-style: one home node stores the tuple; other overlapping nodes
hold only its approximation and must fetch the object remotely."""

SCHEMES = (REPLICATE_OBJECTS, REPLICATE_MBRS)

REMOTE_FETCH_SECONDS = 0.002
"""Charge per remote tuple fetch (a small-message network round trip)."""


@dataclass
class NodeReport:
    """What one virtual node did and what it cost."""

    node_id: int
    tuples_r: int = 0
    tuples_s: int = 0
    local_pairs: int = 0
    remote_fetches: int = 0
    sim_seconds: float = 0.0


@dataclass
class TaskReport:
    """One partition-pair task of the process backend, as scheduled."""

    index: int
    cost_estimate: int
    """The LPT seed: key-pointers in the pair, known before execution."""
    candidates: int = 0
    results: int = 0
    wall_s: float = 0.0
    worker_pid: int = 0
    attempts: int = 1
    """Dispatches this pair took (1 = first try succeeded)."""
    degraded: bool = False
    """True when the coordinator rebuilt this pair serially after the
    process path exhausted its retries or quarantined its spill."""
    resumed: bool = False
    """True when this pair's result was replayed from a checkpoint's
    result log instead of being merged by this run."""


@dataclass
class ParallelJoinResult:
    """Merged result plus the §5 trade-off metrics.

    ``nodes`` are virtual nodes for the simulated backend and real worker
    processes for the process backend; ``sim_seconds`` holds modelled
    seconds for the former and measured wall seconds for the latter, so
    ``critical_path_s``/``speedup`` read the same way for both.
    """

    pairs: List[Tuple[int, int]]  # (r feature_id, s feature_id)
    nodes: List[NodeReport] = field(default_factory=list)
    scheme: str = REPLICATE_OBJECTS
    storage_factor_r: float = 1.0
    storage_factor_s: float = 1.0
    backend: str = "simulated"
    wall_s: float = 0.0
    """Measured coordinator wall-clock for the whole run (partition +
    schedule + merge); the number real-hardware speedups are quoted in."""
    tasks: List[TaskReport] = field(default_factory=list)
    """Process backend only: the partition-pair tasks as scheduled, with
    their LPT cost seeds — enough to replay the schedule deterministically."""
    degraded_pairs: List[int] = field(default_factory=list)
    """Partition pairs the coordinator rebuilt serially after the process
    path gave up on them (empty on a clean run)."""
    fault_summary: Dict[str, int] = field(default_factory=dict)
    """Fault/recovery event tallies (injected_*, retries, timeouts,
    quarantined, degraded, pool_respawns); empty on a clean run."""
    resumed_pairs: List[int] = field(default_factory=list)
    """Partition pairs whose results were adopted from a checkpoint's
    result log rather than merged by this run (empty unless resuming)."""
    checkpoint_run_id: str = ""
    """The checkpoint run directory this run wrote (or resumed), when
    checkpointing was enabled."""
    duplicates_dropped: int = 0
    """Duplicate pairs the final merge had to drop.  Two-layer
    partitioning makes per-task/per-node outputs disjoint by construction,
    so this must read 0 on every backend; CI gates on it."""
    coordinator_merge_s: float = 0.0
    """Measured coordinator time spent merging the per-task (or per-node)
    result streams into the final pair list — the cost the two-layer
    refactor shrinks from a sorted-set dedup to a k-way interleave."""

    def __len__(self) -> int:
        return len(self.pairs)

    @property
    def critical_path_s(self) -> float:
        return max((n.sim_seconds for n in self.nodes), default=0.0)

    @property
    def total_work_s(self) -> float:
        return sum(n.sim_seconds for n in self.nodes)

    @property
    def speedup(self) -> float:
        cp = self.critical_path_s
        return self.total_work_s / cp if cp > 0 else 1.0

    @property
    def remote_fetches(self) -> int:
        return sum(n.remote_fetches for n in self.nodes)


class ParallelPBSM:
    """Declustered PBSM over virtual shared-nothing nodes."""

    def __init__(
        self,
        num_nodes: int,
        scheme: str = REPLICATE_OBJECTS,
        buffer_mb_per_node: float = 2.0,
        num_tiles: int = 1024,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        journal=NULL_JOURNAL,
        charge_candidate_fetches: bool = False,
    ):
        if num_nodes < 1:
            raise ValueError("need at least one node")
        if scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}; expected one of {SCHEMES}")
        self.num_nodes = num_nodes
        self.scheme = scheme
        self.buffer_mb_per_node = buffer_mb_per_node
        self.num_tiles = num_tiles
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.journal = journal
        self.charge_candidate_fetches = charge_candidate_fetches
        """Under ``REPLICATE_MBRS``, charge a remote fetch for every
        distinct foreign tuple among the *candidates* — false positives
        included, as a real [TY95] node would pay — instead of only those
        surviving into the result (the historical, undercounting charge)."""

    # ------------------------------------------------------------------ #

    def run(
        self,
        tuples_r: Sequence[SpatialTuple],
        tuples_s: Sequence[SpatialTuple],
        predicate: Predicate,
    ) -> ParallelJoinResult:
        """Decluster, join per node, merge.  Result pairs are identified by
        ``feature_id`` (node-local OIDs are meaningless globally)."""
        wall_start = time.perf_counter()
        self.journal.emit(
            EVENT_RUN_STARTED,
            backend="simulated",
            workers=self.num_nodes,
            scheme=self.scheme,
            tuples_r=len(tuples_r),
            tuples_s=len(tuples_s),
            resuming=False,
        )
        if not tuples_r or not tuples_s:
            self.journal.emit(EVENT_RUN_FINISHED, results=0, degraded_pairs=[])
            return ParallelJoinResult([], scheme=self.scheme)

        universe = Rect.union_all(t.mbr for t in tuples_r).union(
            Rect.union_all(t.mbr for t in tuples_s)
        )
        partitioner = SpatialPartitioner(
            universe, self.num_nodes, max(self.num_tiles, self.num_nodes),
            SCHEME_HASH,
        )

        frag_r = self._decluster(tuples_r, partitioner)
        frag_s = self._decluster(tuples_s, partitioner)
        placed_r = sum(len(frag) for frag in frag_r)
        placed_s = sum(len(frag) for frag in frag_s)

        skew_r = self.metrics.histogram("parallel.fragment.tuples_r")
        skew_s = self.metrics.histogram("parallel.fragment.tuples_s")
        for node_id in range(self.num_nodes):
            skew_r.observe(len(frag_r[node_id]))
            skew_s.observe(len(frag_s[node_id]))
        self.journal.emit(
            EVENT_PARTITION_SEALED, side="r", placed=placed_r,
            counts=[len(f) for f in frag_r], adopted=False,
        )
        self.journal.emit(
            EVENT_PARTITION_SEALED, side="s", placed=placed_s,
            counts=[len(f) for f in frag_s], adopted=False,
        )

        reports: List[NodeReport] = []
        node_pairs: List[List[Tuple[int, int]]] = []
        for node_id in range(self.num_nodes):
            with self.tracer.span("node", worker=node_id, scheme=self.scheme) as span:
                report, pairs = self._run_node(
                    node_id, frag_r[node_id], frag_s[node_id], predicate,
                    partitioner,
                )
                span.tag("local_pairs", report.local_pairs)
                span.tag("remote_fetches", report.remote_fetches)
                span.tag("sim_seconds", round(report.sim_seconds, 6))
            reports.append(report)
            node_pairs.append(pairs)
            self.metrics.counter("parallel.remote_fetches").inc(report.remote_fetches)
            self.journal.emit(
                EVENT_NODE_FINISHED,
                node=node_id,
                tuples_r=report.tuples_r,
                tuples_s=report.tuples_s,
                local_pairs=report.local_pairs,
                remote_fetches=report.remote_fetches,
                sim_seconds=round(report.sim_seconds, 6),
            )

        # Each node kept only the pairs whose reference tile it owns, so
        # the per-node sorted lists are disjoint: a k-way merge replaces
        # the old sort + dedup barrier.  The drop counter must stay 0.
        merge_started = time.perf_counter()
        merged, duplicates_dropped = merge_sorted_unique(node_pairs)
        coordinator_merge_s = time.perf_counter() - merge_started
        self.metrics.counter("merge.duplicates_dropped").inc(duplicates_dropped)
        self.journal.emit(
            EVENT_RUN_FINISHED, results=len(merged), degraded_pairs=[]
        )
        return ParallelJoinResult(
            merged,
            nodes=reports,
            scheme=self.scheme,
            storage_factor_r=placed_r / len(tuples_r),
            storage_factor_s=placed_s / len(tuples_s),
            backend="simulated",
            wall_s=time.perf_counter() - wall_start,
            duplicates_dropped=duplicates_dropped,
            coordinator_merge_s=coordinator_merge_s,
        )

    # ------------------------------------------------------------------ #

    def _decluster(
        self,
        tuples: Sequence[SpatialTuple],
        partitioner: SpatialPartitioner,
    ) -> List[List[Tuple[SpatialTuple, bool]]]:
        """Assign tuples to nodes.  Each fragment entry is ``(tuple,
        is_home)``: under MBR-only replication, only the home copy counts
        as locally stored; foreign copies trigger remote fetches in the
        refinement."""
        fragments: List[List[Tuple[SpatialTuple, bool]]] = [
            [] for _ in range(self.num_nodes)
        ]
        for t in tuples:
            nodes = sorted(partitioner.partitions_for_rect(t.mbr))
            home = nodes[0]
            for node in nodes:
                fragments[node].append((t, node == home))
        return fragments

    def _run_node(
        self,
        node_id: int,
        frag_r: List[Tuple[SpatialTuple, bool]],
        frag_s: List[Tuple[SpatialTuple, bool]],
        predicate: Predicate,
        partitioner: SpatialPartitioner,
    ) -> Tuple[NodeReport, List[Tuple[int, int]]]:
        report = NodeReport(node_id, tuples_r=len(frag_r), tuples_s=len(frag_s))
        if not frag_r or not frag_s:
            return report, []

        db = Database(buffer_mb=self.buffer_mb_per_node)
        rel_r = db.create_relation(f"r@{node_id}")
        rel_s = db.create_relation(f"s@{node_id}")
        foreign: set[Tuple[str, int]] = set()
        for t, is_home in frag_r:
            rel_r.insert(t)
            if not is_home:
                foreign.add(("r", t.feature_id))
        for t, is_home in frag_s:
            rel_s.insert(t)
            if not is_home:
                foreign.add(("s", t.feature_id))
        db.pool.clear()

        # Per-worker tracing: the node joins against its own disk and pool,
        # so it gets its own tracer; the coordinator adopts the finished
        # spans (tagged with the worker id) under the open "node" span.
        node_tracer = (
            Tracer(disk=db.disk, pool=db.pool) if self.tracer.enabled else None
        )
        needs_candidates = (
            self.scheme == REPLICATE_MBRS and self.charge_candidate_fetches
        )
        wall_start = time.perf_counter()
        io_snapshot = db.disk.snapshot()
        result = PBSMJoin(
            db.pool,
            PBSMConfig(
                num_tiles=self.num_tiles, collect_candidates=needs_candidates
            ),
            tracer=node_tracer,
            metrics=self.metrics,
        ).run(rel_r, rel_s, predicate)
        cpu_s = time.perf_counter() - wall_start
        io_s = db.disk.io_time_since(io_snapshot)
        if node_tracer is not None:
            self.tracer.adopt(node_tracer, worker=node_id)

        # Each result tuple is fetched exactly once; the feature ids and
        # exact MBRs feed the output pairs, the two-layer ownership filter,
        # and the remote-fetch accounting below.
        fids_r: Dict[OID, Tuple[int, Rect]] = {}
        fids_s: Dict[OID, Tuple[int, Rect]] = {}

        def fid_of(
            rel: Relation, cache: Dict[OID, Tuple[int, Rect]], oid
        ) -> Tuple[int, Rect]:
            entry = cache.get(oid)
            if entry is None:
                t = rel.fetch(oid)
                entry = (t.feature_id, t.mbr)
                cache[oid] = entry
            return entry

        # The node's local join finds every pair both of whose members
        # overlap one of its tiles — including pairs other nodes also
        # find.  Keep only the pairs this node *owns* (their reference
        # tile hashes here): node outputs become disjoint and the global
        # merge needs no dedup.  Remote-fetch accounting stays over every
        # pair the node's refinement materialised, owned or not — the
        # fetches happen either way.
        pairs: List[Tuple[int, int]] = []
        touched: set[Tuple[str, int]] = set()
        remote = 0
        for oid_r, oid_s in result.pairs:
            fid_r, mbr_r = fid_of(rel_r, fids_r, oid_r)
            fid_s, mbr_s = fid_of(rel_s, fids_s, oid_s)
            if partitioner.owner_of_pair(mbr_r, mbr_s) == node_id:
                pairs.append((fid_r, fid_s))
            if self.scheme == REPLICATE_MBRS:
                touched.add(("r", fid_r))
                touched.add(("s", fid_s))
        if self.scheme == REPLICATE_MBRS:
            # Under MBR-only declustering the refinement must fetch foreign
            # tuples from their home nodes.  By default the charge covers
            # each distinct foreign tuple appearing in a *result* pair — a
            # slight undercount, since false-positive candidates fetch too.
            # ``charge_candidate_fetches`` extends it to every distinct
            # foreign tuple the refinement actually examined.
            if self.charge_candidate_fetches and result.candidate_pairs is not None:
                for oid_r, oid_s in dedup_sorted_pairs(
                    sorted(result.candidate_pairs)
                ):
                    touched.add(("r", fid_of(rel_r, fids_r, oid_r)[0]))
                    touched.add(("s", fid_of(rel_s, fids_s, oid_s)[0]))
            remote = len(touched & foreign)

        pairs.sort()
        report.local_pairs = len(pairs)
        report.remote_fetches = remote
        report.sim_seconds = cpu_s + io_s + remote * REMOTE_FETCH_SECONDS
        return report, pairs


def serial_feature_pairs(
    tuples_r: Iterable[SpatialTuple],
    tuples_s: Iterable[SpatialTuple],
    predicate: Predicate,
    buffer_mb: float = 8.0,
) -> Tuple[List[Tuple[int, int]], float]:
    """Single-node PBSM reference: (feature-id pairs, simulated seconds)."""
    db = Database(buffer_mb=buffer_mb)
    rel_r = db.create_relation("serial_r")
    rel_r.bulk_load(tuples_r)
    rel_s = db.create_relation("serial_s")
    rel_s.bulk_load(tuples_s)
    db.pool.clear()
    result = PBSMJoin(db.pool).run(rel_r, rel_s, predicate)
    pairs = sorted(
        (rel_r.fetch(a).feature_id, rel_s.fetch(b).feature_id)
        for a, b in result.pairs
    )
    return pairs, result.report.total_s
