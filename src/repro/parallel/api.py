"""One front door for every parallel-PBSM execution backend.

Three backends, one result type, byte-identical pair sets:

* ``"serial"`` — the single-node reference join (one process, simulated
  disk).  The baseline every speedup is quoted against.
* ``"simulated"`` — §5's shared-nothing machine on virtual nodes
  (:class:`~repro.parallel.engine.ParallelPBSM`): modelled seconds,
  storage blow-up, and remote-fetch charges for the paper's declustering
  trade-off experiments.
* ``"process"`` — real worker processes with LPT partition-pair
  scheduling (:class:`~repro.parallel.process.ProcessPBSM`): measured
  wall-clock seconds on actual hardware.

``parallel_join`` normalises them behind one signature so the CLI, the
benchmarks, and the cross-backend equivalence tests can sweep backends
with a string.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from ..core.pbsm import PBSMConfig
from ..core.predicates import Predicate
from ..faults.plan import FaultPlan
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from ..storage.tuples import SpatialTuple
from .engine import (
    REPLICATE_OBJECTS,
    NodeReport,
    ParallelJoinResult,
    ParallelPBSM,
    serial_feature_pairs,
)
from .process import ProcessPBSM

BACKEND_SERIAL = "serial"
BACKEND_SIMULATED = "simulated"
BACKEND_PROCESS = "process"
BACKENDS = (BACKEND_SERIAL, BACKEND_SIMULATED, BACKEND_PROCESS)


def parallel_join(
    tuples_r: Sequence[SpatialTuple],
    tuples_s: Sequence[SpatialTuple],
    predicate: Predicate,
    *,
    backend: str = BACKEND_PROCESS,
    workers: int = 4,
    scheme: str = REPLICATE_OBJECTS,
    num_partitions: Optional[int] = None,
    config: Optional[PBSMConfig] = None,
    start_method: Optional[str] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    journal=None,
    fault_plan: Optional[FaultPlan] = None,
    task_timeout_s: Optional[float] = None,
    max_task_retries: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    disk_budget=None,
) -> ParallelJoinResult:
    """Run the join on the chosen backend; pairs are feature-id pairs.

    ``workers`` is worker processes for ``"process"``, virtual nodes for
    ``"simulated"``, and ignored for ``"serial"``.  ``scheme`` (the §5
    replication choice) only applies to the simulated backend; the process
    backend always ships full tuples to the partitions that need them —
    there is no remote node to fetch from inside one machine.
    ``fault_plan``/``task_timeout_s``/``max_task_retries`` configure the
    process backend's chaos + recovery machinery (see :mod:`repro.faults`)
    and are rejected for backends that have no real processes to hurt.
    ``checkpoint_dir`` makes the process coordinator's state durable
    (:mod:`repro.checkpoint`); ``resume=True`` continues a checkpointed
    run instead of starting over.  Both are process-backend-only: the
    other backends have no coordinator that can die mid-join.
    ``journal`` attaches a flight recorder
    (:class:`~repro.obs.journal.RunJournal`) to the simulated and process
    backends; the serial reference has no scheduler to record.
    ``disk_budget`` (a :class:`~repro.storage.pressure.DiskBudget`)
    governs the process backend's spill and checkpoint footprint; the
    other backends write no real bytes to govern.
    """
    if backend != BACKEND_PROCESS and fault_plan is not None:
        raise ValueError(
            f"fault injection requires the process backend, not {backend!r}"
        )
    if backend != BACKEND_PROCESS and disk_budget is not None:
        raise ValueError(
            f"a disk budget requires the process backend, not {backend!r}"
        )
    if backend != BACKEND_PROCESS and (checkpoint_dir is not None or resume):
        raise ValueError(
            f"checkpoint/resume requires the process backend, not {backend!r}"
        )
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires checkpoint_dir")
    if backend == BACKEND_SERIAL:
        wall_start = time.perf_counter()
        pairs, sim_seconds = serial_feature_pairs(tuples_r, tuples_s, predicate)
        return ParallelJoinResult(
            pairs,
            nodes=[NodeReport(node_id=0, tuples_r=len(tuples_r),
                              tuples_s=len(tuples_s), local_pairs=len(pairs),
                              sim_seconds=sim_seconds)],
            backend=BACKEND_SERIAL,
            wall_s=time.perf_counter() - wall_start,
        )
    if backend == BACKEND_SIMULATED:
        num_tiles = config.num_tiles if config is not None else 1024
        extra = {}
        if journal is not None:
            extra["journal"] = journal
        engine = ParallelPBSM(
            workers, scheme=scheme, num_tiles=num_tiles,
            tracer=tracer, metrics=metrics,
            **extra,
        )
        return engine.run(tuples_r, tuples_s, predicate)
    if backend == BACKEND_PROCESS:
        extra = {}
        if max_task_retries is not None:
            extra["max_task_retries"] = max_task_retries
        if journal is not None:
            extra["journal"] = journal
        engine = ProcessPBSM(
            workers, num_partitions=num_partitions, config=config,
            start_method=start_method, tracer=tracer, metrics=metrics,
            fault_plan=fault_plan, task_timeout_s=task_timeout_s,
            checkpoint_dir=checkpoint_dir, disk_budget=disk_budget,
            **extra,
        )
        if resume:
            return engine.resume(tuples_r, tuples_s, predicate)
        return engine.run(tuples_r, tuples_s, predicate)
    raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
