"""repro — Partition Based Spatial-Merge join (Patel & DeWitt, SIGMOD 1996).

A full reproduction of the PBSM spatial join and the system around it: a
computational-geometry kernel, a paged storage manager with a simulated
disk and LRU buffer pool, a page-based R*-tree with Paradise-style bulk
loading, the indexed-nested-loops and BKS93 R-tree join baselines, the LR96
spatial hash join, and synthetic TIGER/Sequoia workload generators.

Quickstart::

    from repro import Database, PBSMJoin, intersects
    from repro.data import make_tiger_datasets

    db = Database(buffer_mb=8.0)
    rels = make_tiger_datasets(db, scale=0.002)
    result = PBSMJoin(db.pool).run(rels["road"], rels["hydro"], intersects)
    print(len(result), "intersecting pairs")
    print(result.report.format_table())
"""

from .core import (
    JoinReport,
    JoinResult,
    PBSMConfig,
    PBSMJoin,
    contains,
    intersects,
    pbsm_join,
)
from .geometry import Polygon, Polyline, Rect
from .index import RStarTree, bulk_load_rstar
from .joins import (
    IndexedNestedLoopsJoin,
    NaiveNestedLoopsJoin,
    RTreeJoin,
    SpatialHashJoin,
)
from .obs import MetricsRegistry, Tracer
from .storage import Database, Relation, SpatialTuple

__version__ = "1.0.0"

__all__ = [
    "Database",
    "IndexedNestedLoopsJoin",
    "JoinReport",
    "JoinResult",
    "MetricsRegistry",
    "NaiveNestedLoopsJoin",
    "PBSMConfig",
    "PBSMJoin",
    "Polygon",
    "Polyline",
    "RStarTree",
    "RTreeJoin",
    "Rect",
    "Relation",
    "SpatialHashJoin",
    "SpatialTuple",
    "Tracer",
    "bulk_load_rstar",
    "contains",
    "intersects",
    "pbsm_join",
    "__version__",
]
