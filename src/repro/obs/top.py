"""Frame renderer for ``python -m repro top`` — the live serve dashboard.

The CLI polls a running server's ``telemetry`` wire op and draws one
frame per poll; everything about what a frame *looks like* lives here as
a pure function of the telemetry payload, so tests exercise the layout
without a socket or a terminal in the loop.
"""

from __future__ import annotations

from typing import List, Mapping, Optional


def _num(value, digits: int = 3) -> str:
    if value is None:
        return "-"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return f"{number:.{digits}f}"


def _seconds(value) -> str:
    return "-" if value is None else f"{float(value):.3f}s"


def _bytes(value) -> str:
    if value is None:
        return "-"
    number = float(value)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(number) < 1024.0 or unit == "GiB":
            return f"{number:.1f}{unit}" if unit != "B" else f"{int(number)}B"
        number /= 1024.0
    return f"{number:.1f}GiB"


def render_top(
    telemetry: Mapping[str, object],
    *,
    slow_rows: int = 5,
    series_rows: int = 12,
) -> str:
    """One dashboard frame from a ``telemetry`` op payload."""
    stats: Mapping = telemetry.get("stats") or {}
    outcomes_block: Mapping = telemetry.get("outcomes") or {}
    sampling: Mapping = telemetry.get("sampling") or {}
    series: Mapping = telemetry.get("series") or {}
    slow_log = telemetry.get("slow_log") or []

    lines: List[str] = []
    breaker = outcomes_block.get("breaker_state", "?")
    lines.append(
        "repro serve"
        f" · up {_num(stats.get('uptime_s'), 1)}s"
        f" · workers {stats.get('workers', '?')}"
        f" · queue {stats.get('queued', 0)}/{stats.get('max_queue', '?')}"
        f" · inflight {stats.get('inflight', 0)}/{stats.get('max_inflight', '?')}"
        f" · breaker {breaker}"
        + (" · DRAINING" if stats.get("draining") else "")
    )

    outcomes: Mapping = outcomes_block.get("outcomes") or {}
    lines.append(
        "outcomes   "
        + " ".join(f"{key}={outcomes[key]}" for key in sorted(outcomes))
    )

    hits = stats.get("hits", 0)
    misses = stats.get("misses", 0)
    lookups = hits + misses
    ratio = f"{hits / lookups:.2f}" if lookups else "-"
    lines.append(
        f"cache      hits={hits} misses={misses} "
        f"coalesced={stats.get('coalesced', 0)} hit_ratio={ratio}"
    )

    latency: Mapping = stats.get("latency") or {}
    lines.append(
        f"latency    count={latency.get('count', 0)}"
        f" p50={_seconds(latency.get('p50_s'))}"
        f" p95={_seconds(latency.get('p95_s'))}"
        f" p99={_seconds(latency.get('p99_s'))}"
    )

    disk: Optional[Mapping] = stats.get("disk")
    if disk:
        lines.append(
            f"disk       used={_bytes(disk.get('used_bytes'))}"
            f" budget={_bytes(disk.get('max_bytes'))}"
            f" hwm={_bytes(disk.get('high_watermark_bytes'))}"
            f" denials={disk.get('denials', 0)}"
        )

    lines.append(
        f"dedup      duplicates_dropped={outcomes_block.get('duplicates_dropped', 0)}"
        f" pool_generation={outcomes_block.get('pool_generation', 0)}"
        f" breaker_trips={outcomes_block.get('breaker_trips', 0)}"
        f" scrub_passes={outcomes_block.get('scrub_passes', 0)}"
    )

    lines.append("")
    ticks = sampling.get("ticks", 0)
    interval = sampling.get("interval_s")
    lines.append(
        f"series     ticks={ticks}"
        + (f" interval={_num(interval)}s" if interval is not None else "")
    )
    shown = 0
    for name in sorted(series):
        if shown >= series_rows:
            lines.append(f"  … {len(series) - shown} more series")
            break
        window: Mapping = series[name]
        lines.append(
            f"  {name:<28} last={_num(window.get('last'))}"
            f" mean={_num(window.get('mean'))}"
            f" max={_num(window.get('max'))}"
            f" p95={_num(window.get('p95'))}"
        )
        shown += 1
    if not series:
        lines.append("  (no samples yet)")

    lines.append("")
    lines.append("slow log   (top by latency)")
    for entry in list(slow_log)[:slow_rows]:
        phases: Mapping = entry.get("phases") or {}
        phase_text = " ".join(
            f"{key}={_seconds(phases[key])}" for key in sorted(phases)
        )
        lines.append(
            f"  {entry.get('query', '?'):<12}"
            f" {_seconds(entry.get('latency_s'))}"
            f" {entry.get('source', '?'):<9}"
            f" {phase_text}"
        )
    if not slow_log:
        lines.append("  (no completed queries yet)")
    return "\n".join(lines) + "\n"
