"""The ``BENCH_*.json`` schema and a dependency-free validator.

Every benchmark writes one ``BENCH_<name>.json`` file next to its ``.txt``
table: a machine-readable perf-trajectory record that CI and tooling can
diff across commits.  The file holds one record per (algorithm, buffer
size) cell of the benchmark's sweep, each with the per-phase cpu/io
breakdown the paper's Table 4 is built from.

The schema is expressed as a standard JSON-Schema document
(:data:`BENCH_FILE_SCHEMA`), so external tools can validate the files with
any off-the-shelf validator.  Because this repository must not grow
dependencies, :func:`validate` implements the subset of JSON Schema the
document actually uses (type / required / properties / items / enum /
minimum) — enough to reject malformed records at write time.
"""

from __future__ import annotations

from typing import Any, List

SCHEMA_VERSION = 1

BENCH_PHASE_SCHEMA = {
    "type": "object",
    "required": ["name", "cpu_s", "io_s", "page_reads", "page_writes", "seeks"],
    "properties": {
        "name": {"type": "string"},
        "cpu_s": {"type": "number", "minimum": 0},
        "io_s": {"type": "number", "minimum": 0},
        "page_reads": {"type": "integer", "minimum": 0},
        "page_writes": {"type": "integer", "minimum": 0},
        "seeks": {"type": "integer", "minimum": 0},
    },
}

BENCH_FAULTS_SCHEMA = {
    "type": "object",
    "required": ["injected", "retries", "quarantined", "degraded", "survived"],
    "properties": {
        "injected": {"type": "integer", "minimum": 0},
        "retries": {"type": "integer", "minimum": 0},
        "timeouts": {"type": "integer", "minimum": 0},
        "quarantined": {"type": "integer", "minimum": 0},
        "degraded": {"type": "integer", "minimum": 0},
        "pool_respawns": {"type": "integer", "minimum": 0},
        "survived": {"type": "boolean"},
        "plan": {"type": "object"},
    },
}
"""The chaos block: what a run injected and what it cost to survive.
Optional on every record — absent means the run was fault-free by
construction, present means a fault plan was active."""

BENCH_DISK_SCHEMA = {
    "type": "object",
    "required": ["spill_bytes"],
    "properties": {
        "spill_bytes": {"type": "integer", "minimum": 0},
        "budget_bytes": {"type": "integer", "minimum": 0},
        "high_watermark_bytes": {"type": "integer", "minimum": 0},
        "denials": {"type": "integer", "minimum": 0},
        "pressure_events": {"type": "integer", "minimum": 0},
        "degraded_pairs": {"type": "integer", "minimum": 0},
        "by_category": {"type": "object"},
    },
}
"""The storage-pressure block: the run's on-disk footprint and how the
disk budget behaved.  Optional on every record — absent means the run
predates storage governance or wrote nothing worth metering;
``spill_bytes`` alone records an unconstrained run's footprint."""

BENCH_TELEMETRY_SCHEMA = {
    "type": "object",
    "required": ["ticks"],
    "properties": {
        "ticks": {"type": "integer", "minimum": 0},
        "interval_s": {"type": "number", "minimum": 0},
        "sampled_series": {"type": "integer", "minimum": 0},
        "slow_log_entries": {"type": "integer", "minimum": 0},
        "queue_depth_max": {"type": "integer", "minimum": 0},
        "inflight_max": {"type": "integer", "minimum": 0},
    },
}
"""The live-telemetry block: what the sampler saw while the benchmark
ran.  Optional on every record — absent means the run was sampled never
(telemetry off); the series themselves stay on the wire op, only the
sampling footprint and load peaks are recorded."""

BENCH_RECORD_SCHEMA = {
    "type": "object",
    "required": [
        "algorithm",
        "scale",
        "buffer_mb",
        "total_s",
        "cpu_s",
        "io_s",
        "candidates",
        "result_count",
        "phases",
        "counters",
    ],
    "properties": {
        "algorithm": {"type": "string"},
        "scale": {"type": "number", "minimum": 0},
        "buffer_mb": {"type": "number", "minimum": 0},
        "buffer_mb_scaled": {"type": "number", "minimum": 0},
        "total_s": {"type": "number", "minimum": 0},
        "cpu_s": {"type": "number", "minimum": 0},
        "io_s": {"type": "number", "minimum": 0},
        "candidates": {"type": "integer", "minimum": 0},
        "result_count": {"type": "integer", "minimum": 0},
        "phases": {"type": "array", "items": BENCH_PHASE_SCHEMA},
        "counters": {
            "type": "object",
            "required": ["page_reads", "page_writes", "seeks"],
            "properties": {
                "page_reads": {"type": "integer", "minimum": 0},
                "page_writes": {"type": "integer", "minimum": 0},
                "seeks": {"type": "integer", "minimum": 0},
            },
        },
        "notes": {"type": "object"},
        "faults": BENCH_FAULTS_SCHEMA,
        "disk": BENCH_DISK_SCHEMA,
        "telemetry": BENCH_TELEMETRY_SCHEMA,
    },
}

BENCH_FILE_SCHEMA = {
    "type": "object",
    "required": ["schema_version", "benchmark", "records"],
    "properties": {
        "schema_version": {"type": "integer", "enum": [SCHEMA_VERSION]},
        "benchmark": {"type": "string"},
        "records": {"type": "array", "items": BENCH_RECORD_SCHEMA},
    },
}


class SchemaError(ValueError):
    """A document does not conform to its schema."""


_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}


def validate(document: Any, schema: dict, path: str = "$") -> None:
    """Check ``document`` against the JSON-Schema subset used above.

    Raises :class:`SchemaError` naming the offending path; returns None on
    success.  Unknown properties are allowed (records may carry extra
    context), matching JSON Schema's default behaviour.
    """
    expected = schema.get("type")
    if expected is not None:
        py_type = _TYPES[expected]
        if not isinstance(document, py_type) or (
            expected in ("integer", "number") and isinstance(document, bool)
        ):
            raise SchemaError(f"{path}: expected {expected}, got {type(document).__name__}")
    if "enum" in schema and document not in schema["enum"]:
        raise SchemaError(f"{path}: {document!r} not in {schema['enum']}")
    if "minimum" in schema and document < schema["minimum"]:
        raise SchemaError(f"{path}: {document} below minimum {schema['minimum']}")
    if isinstance(document, dict):
        for key in schema.get("required", ()):
            if key not in document:
                raise SchemaError(f"{path}: missing required property {key!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in document:
                validate(document[key], subschema, f"{path}.{key}")
    if isinstance(document, list) and "items" in schema:
        for i, item in enumerate(document):
            validate(item, schema["items"], f"{path}[{i}]")


def validate_bench_record(record: dict) -> None:
    validate(record, BENCH_RECORD_SCHEMA)


def validate_bench_file(document: dict) -> None:
    validate(document, BENCH_FILE_SCHEMA)


def schema_errors(document: Any, schema: dict) -> List[str]:
    """Validate, returning error strings instead of raising (CI-friendly)."""
    try:
        validate(document, schema)
    except SchemaError as exc:
        return [str(exc)]
    return []
