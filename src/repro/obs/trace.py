"""Tracing core: nested spans over the simulated disk and buffer pool.

A :class:`Span` is one timed region of a join execution — a phase, a
partition-pair merge, a refinement batch.  Opening a span snapshots the
:class:`~repro.storage.disk.DiskStats` and buffer-pool counters it can see;
closing it stores the deltas, so every span knows exactly which page
traffic, cache hits/misses, evictions and dirty flushes happened inside it.
Spans nest (a child's I/O is included in its ancestors' deltas, mirroring
how Table 4's phase costs contain their sub-steps) and carry free-form
tags for dimensions such as partition index or worker id.

A :class:`Tracer` owns the open-span stack and the finished roots.  For
``repro.parallel.engine`` — where every virtual node runs against its own
disk and pool — :meth:`Tracer.adopt` grafts a per-worker tracer's finished
spans into the coordinating tracer, tagging them with the worker id.

:data:`NULL_TRACER` is a shared no-op tracer: ``span()`` costs one method
call and no snapshots, so instrumented hot paths stay cheap when tracing
is off.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..storage.buffer import BufferPool, PoolCounters
from ..storage.disk import DiskStats, IOCostModel, SimulatedDisk


@dataclass
class Span:
    """One closed (or still-open) timed region with its resource deltas."""

    name: str
    tags: Dict[str, object] = field(default_factory=dict)
    start: float = 0.0
    end: float = 0.0
    disk: DiskStats = field(default_factory=DiskStats)
    pool: PoolCounters = field(default_factory=PoolCounters)
    children: List["Span"] = field(default_factory=list)

    @property
    def cpu_s(self) -> float:
        """Wall-clock seconds spent inside the span (the metered CPU time)."""
        return self.end - self.start

    def io_s(self, disk: Optional[SimulatedDisk] = None) -> float:
        """Simulated I/O seconds of the span's disk delta.

        Charged with the given disk's cost model; without one (e.g. a
        coordinator tracer that adopted per-worker spans from other disks)
        the default :class:`IOCostModel` applies.
        """
        cost = disk.cost_model if disk is not None else IOCostModel()
        return self.disk.io_time(cost)

    def tag(self, key: str, value: object) -> None:
        self.tags[key] = value

    def walk(self) -> Iterator["Span"]:
        """Yield the span and all descendants, depth-first, parents first."""
        yield self
        for child in self.children:
            yield from child.walk()

    # ------------------------------------------------------------------ #
    # cross-process wire format
    # ------------------------------------------------------------------ #

    def to_wire(self, epoch: float) -> dict:
        """Serialize the subtree for shipping to another process.

        ``time.perf_counter`` values are process-local, so timestamps go on
        the wire *relative to the producing tracer's epoch*; the adopting
        tracer re-anchors them (see :meth:`Tracer.adopt_wire`).
        """
        return {
            "name": self.name,
            "tags": dict(self.tags),
            "start": self.start - epoch,
            "end": self.end - epoch,
            "disk": dataclasses.asdict(self.disk),
            "pool": dataclasses.asdict(self.pool),
            "children": [child.to_wire(epoch) for child in self.children],
        }

    @staticmethod
    def from_wire(payload: dict, shift: float = 0.0) -> "Span":
        """Rebuild a subtree serialized by :meth:`to_wire`.

        ``shift`` is added to every timestamp, mapping the producer's
        epoch-relative times onto the consumer's ``perf_counter`` timeline.
        """
        return Span(
            name=payload["name"],
            tags=dict(payload["tags"]),
            start=payload["start"] + shift,
            end=payload["end"] + shift,
            disk=DiskStats(**payload["disk"]),
            pool=PoolCounters(**payload["pool"]),
            children=[
                Span.from_wire(child, shift) for child in payload["children"]
            ],
        )


class Tracer:
    """Collects nested spans against one disk and (optionally) one pool."""

    enabled = True

    def __init__(
        self,
        disk: Optional[SimulatedDisk] = None,
        pool: Optional[BufferPool] = None,
    ):
        self.disk = disk
        self.pool = pool
        self.epoch = time.perf_counter()
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._disk_marks: List[DiskStats] = []
        self._pool_marks: List[PoolCounters] = []

    # ------------------------------------------------------------------ #
    # span lifecycle
    # ------------------------------------------------------------------ #

    def start_span(self, name: str, **tags: object) -> Span:
        span = Span(name, tags=dict(tags))
        self._disk_marks.append(
            self.disk.snapshot() if self.disk is not None else DiskStats()
        )
        self._pool_marks.append(
            self.pool.counters() if self.pool is not None else PoolCounters()
        )
        self._stack.append(span)
        span.start = time.perf_counter()
        return span

    def end_span(self, span: Span) -> Span:
        span.end = time.perf_counter()
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} is not the innermost open span"
            )
        self._stack.pop()
        disk_mark = self._disk_marks.pop()
        pool_mark = self._pool_marks.pop()
        if self.disk is not None:
            span.disk = self.disk.stats.minus(disk_mark)
        if self.pool is not None:
            span.pool = self.pool.counters().minus(pool_mark)
        self._attach(span)
        return span

    def span(self, name: str, **tags: object) -> "_SpanContext":
        """``with tracer.span("Merge", pair=3) as s: ...``"""
        return _SpanContext(self, name, tags)

    def _attach(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    # ------------------------------------------------------------------ #
    # merging and inspection
    # ------------------------------------------------------------------ #

    def adopt(self, other: "Tracer", **tags: object) -> None:
        """Graft another tracer's finished root spans into this tracer.

        Used by the parallel engine: each virtual node traces against its
        own disk/pool, then the coordinator adopts the node tracer with
        ``worker=<node_id>``.  Tags are applied to every adopted span's
        subtree root; spans land under the currently open span, if any.
        Span timestamps are absolute (``time.perf_counter``) so adopted
        spans stay correctly ordered on this tracer's timeline.
        """
        for root in other.roots:
            root.tags.update(tags)
            self._attach(root)
        other.roots = []

    def export_wire(self) -> List[dict]:
        """This tracer's finished roots as process-portable dicts.

        The counterpart of :meth:`adopt_wire`: a worker process exports its
        spans (timestamps relative to its own epoch), ships the payload back
        with its task result, and the coordinator adopts it.
        """
        return [root.to_wire(self.epoch) for root in self.roots]

    def adopt_wire(
        self,
        payload: List[dict],
        at: Optional[float] = None,
        **tags: object,
    ) -> List[Span]:
        """Graft spans exported by another process's :meth:`export_wire`.

        Worker and coordinator ``perf_counter`` clocks are not comparable,
        so the subtree is re-anchored: the latest wire timestamp is mapped
        to ``at`` (default: now, i.e. the moment the result arrived) and
        every span keeps its duration and relative offsets.  Tags are
        applied to each adopted root, mirroring :meth:`adopt`.
        """
        if not payload:
            return []
        if at is None:
            at = time.perf_counter()
        shift = at - max(root["end"] for root in payload)
        adopted = []
        for root_payload in payload:
            root = Span.from_wire(root_payload, shift)
            root.tags.update(tags)
            self._attach(root)
            adopted.append(root)
        return adopted

    def all_spans(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    @property
    def span_count(self) -> int:
        return sum(1 for _ in self.all_spans())

    def find(self, name: str) -> List[Span]:
        return [s for s in self.all_spans() if s.name == name]


class _SpanContext:
    """Context manager handed out by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_tags", "_span")

    def __init__(self, tracer: Tracer, name: str, tags: Dict[str, object]):
        self._tracer = tracer
        self._name = name
        self._tags = tags

    def __enter__(self) -> Span:
        self._span = self._tracer.start_span(self._name, **self._tags)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.end_span(self._span)


class _NullSpan:
    """Inert span: accepts tags, reports zero cost, has no children."""

    __slots__ = ()
    name = ""
    tags: Dict[str, object] = {}
    children: List[Span] = []
    cpu_s = 0.0
    disk = DiskStats()
    pool = PoolCounters()

    def tag(self, key: str, value: object) -> None:
        pass

    def io_s(self, disk: Optional[SimulatedDisk] = None) -> float:
        return 0.0


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


class NullTracer:
    """Disabled tracer: every operation is a cheap no-op."""

    enabled = False
    disk = None
    pool = None
    roots: List[Span] = []
    span_count = 0

    def start_span(self, name: str, **tags: object) -> _NullSpan:
        return _NULL_SPAN

    def end_span(self, span) -> _NullSpan:
        return _NULL_SPAN

    def span(self, name: str, **tags: object) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def adopt(self, other, **tags: object) -> None:
        pass

    def export_wire(self) -> List[dict]:
        return []

    def adopt_wire(self, payload, at=None, **tags: object) -> List[Span]:
        return []

    def all_spans(self) -> Iterator[Span]:
        return iter(())

    def find(self, name: str) -> List[Span]:
        return []


_NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()

NULL_TRACER = NullTracer()
"""Shared disabled tracer — the default for every instrumented code path."""
