"""Exporters: JSONL traces, JSON metrics snapshots, chrome trace timelines.

Three machine-readable views of one execution:

* :func:`write_trace_jsonl` — every span as one JSON object per line, with
  ``id``/``parent_id`` links, resource deltas, and tags.  Greppable,
  streamable, diffable.
* :func:`write_metrics_json` — a :class:`~repro.obs.metrics.MetricsRegistry`
  snapshot plus caller-supplied context, as one JSON document.
* :func:`write_chrome_trace` — the span tree in Chrome's Trace Event
  format; load it in ``chrome://tracing`` / Perfetto to see the paper's
  phase structure as a flame chart, with per-worker lanes for the
  parallel engine.

:func:`report_to_dict` converts a ``JoinReport`` (duck-typed, so this
module stays import-light) into the JSON shape shared by ``demo --json``
and the ``BENCH_*.json`` records.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from .journal import FAULT_TIMELINE_TYPES, SERVE_TIMELINE_TYPES
from .metrics import MetricsRegistry
from .trace import Span, Tracer


def span_to_dict(span: Span, tracer: Tracer, span_id: int, parent_id: Optional[int]) -> dict:
    disk = span.disk
    pool = span.pool
    return {
        "id": span_id,
        "parent_id": parent_id,
        "name": span.name,
        "start_s": round(span.start - tracer.epoch, 9),
        "cpu_s": round(span.cpu_s, 9),
        "io_s": round(span.io_s(tracer.disk), 9),
        "tags": span.tags,
        "disk": {
            "page_reads": disk.page_reads,
            "page_writes": disk.page_writes,
            "random_reads": disk.random_reads,
            "random_writes": disk.random_writes,
            "pages_allocated": disk.pages_allocated,
            "seeks": disk.seeks,
        },
        "pool": {
            "hits": pool.hits,
            "misses": pool.misses,
            "evictions": pool.evictions,
            "dirty_flushes": pool.dirty_flushes,
        },
    }


def trace_to_dicts(tracer: Tracer) -> List[dict]:
    """Flatten the span forest to dicts, parents before children."""
    out: List[dict] = []
    next_id = [0]

    def emit(span: Span, parent_id: Optional[int]) -> None:
        span_id = next_id[0]
        next_id[0] += 1
        out.append(span_to_dict(span, tracer, span_id, parent_id))
        for child in span.children:
            emit(child, span_id)

    for root in tracer.roots:
        emit(root, None)
    return out


def write_trace_jsonl(tracer: Tracer, path: "Path | str") -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for record in trace_to_dicts(tracer):
            fh.write(json.dumps(record) + "\n")
    return path


def write_metrics_json(
    registry: MetricsRegistry,
    path: "Path | str",
    extra: Optional[Dict[str, object]] = None,
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {"metrics": registry.snapshot()}
    if extra:
        document.update(extra)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def chrome_trace_events(tracer: Tracer) -> List[dict]:
    """Complete ("ph": "X") events; worker tags become thread lanes.

    A span without its own ``worker`` tag inherits the nearest ancestor's,
    so a parallel node's whole subtree renders in that worker's lane.
    """
    events: List[dict] = []

    def emit(span: Span, worker: int) -> None:
        worker = span.tags.get("worker", worker)
        events.append(
            {
                "name": span.name,
                "cat": "join",
                "ph": "X",
                "ts": (span.start - tracer.epoch) * 1e6,
                "dur": span.cpu_s * 1e6,
                "pid": 0,
                "tid": worker,
                "args": {
                    **span.tags,
                    "io_s": round(span.io_s(tracer.disk), 9),
                    "page_reads": span.disk.page_reads,
                    "page_writes": span.disk.page_writes,
                    "seeks": span.disk.seeks,
                    "pool_hits": span.pool.hits,
                    "pool_misses": span.pool.misses,
                    "evictions": span.pool.evictions,
                    "dirty_flushes": span.pool.dirty_flushes,
                },
            }
        )
        for child in span.children:
            emit(child, worker)

    for root in tracer.roots:
        emit(root, 0)
    return events


def chrome_instant_events(journal_events: List[dict]) -> List[dict]:
    """Instant ("ph": "i") markers for the run's notable moments.

    Renders the journal's fault timeline —
    :data:`~repro.obs.journal.FAULT_TIMELINE_TYPES` plus checkpoint
    commits — as global-scope instants, so fault injections, retries, and
    respawns appear as vertical ticks across the span flame chart.  Serve
    and per-query journals render their lifecycle moments too
    (:data:`~repro.obs.journal.SERVE_TIMELINE_TYPES`: query arrivals,
    cache hits, breaker transitions) under the ``"serve"`` category.
    Other journal event types are skipped: the engine lifecycle ones
    already exist as spans, and heartbeats/samples would drown the
    timeline.
    """
    fault_marked = FAULT_TIMELINE_TYPES | {"checkpoint_commit"}
    events: List[dict] = []
    for record in journal_events:
        kind = record.get("type")
        if kind in fault_marked:
            category = "fault"
        elif kind in SERVE_TIMELINE_TYPES:
            category = "serve"
        else:
            continue
        args = {
            k: v
            for k, v in record.items()
            if k not in ("type", "t", "seq")
        }
        events.append(
            {
                "name": record["type"],
                "cat": category,
                "ph": "i",
                "s": "g",
                "ts": float(record.get("t", 0.0)) * 1e6,
                "pid": 0,
                "tid": 0,
                "args": args,
            }
        )
    return events


def write_chrome_trace(
    tracer: Tracer,
    path: "Path | str",
    journal_events: Optional[List[dict]] = None,
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    events = chrome_trace_events(tracer)
    if journal_events:
        events.extend(chrome_instant_events(journal_events))
    path.write_text(json.dumps({"traceEvents": events}))
    return path


def report_to_dict(report) -> dict:
    """A ``JoinReport`` as the JSON shape used by CLI and bench output."""
    return {
        "algorithm": report.algorithm,
        "total_s": report.total_s,
        "cpu_s": report.cpu_s,
        "io_s": report.io_s,
        "io_fraction": report.io_fraction,
        "candidates": report.candidates,
        "result_count": report.result_count,
        "notes": dict(report.notes),
        "phases": [
            {
                "name": p.name,
                "cpu_s": p.cpu_s,
                "io_s": p.io_s,
                "page_reads": p.page_reads,
                "page_writes": p.page_writes,
                "seeks": p.seeks,
            }
            for p in report.phases
        ],
    }
