"""Prometheus-style plaintext exposition of a metrics snapshot.

:func:`render_exposition` turns a :meth:`MetricsRegistry.snapshot` into
the text format scrapers speak: a ``# TYPE`` line per metric, cumulative
``_bucket{le="..."}`` series plus ``_sum``/``_count`` for histograms,
bare ``name value`` lines for counters and gauges.  Names are sanitized
(dots become underscores) and prefixed so ``serve.latency_s`` scrapes as
``repro_serve_latency_s``.  Output is byte-deterministic: metrics sort
by name and every number renders through one canonical formatter.

:func:`parse_exposition` is the inverse — enough of a parser for CI to
scrape the ``metrics`` wire op and assert the counters it sees match the
``stats`` op, without a Prometheus binary in the loop.
"""

from __future__ import annotations

import re
from typing import Dict, Mapping

EXPOSITION_PREFIX = "repro_"

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)


def metric_name(name: str, prefix: str = EXPOSITION_PREFIX) -> str:
    """Sanitized exposition name for a registry instrument name."""
    return prefix + _NAME_SANITIZE.sub("_", name)


def format_value(value) -> str:
    """One canonical number rendering: integral values print as
    integers, everything else as Python's shortest round-trip float.
    ``inf`` prints as ``+Inf`` (the exposition spelling)."""
    if value is None:
        return "NaN"
    number = float(value)
    if number == float("inf"):
        return "+Inf"
    if number == float("-inf"):
        return "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_exposition(
    snapshot: Mapping[str, dict], *, prefix: str = EXPOSITION_PREFIX
) -> str:
    """Render a registry snapshot as Prometheus plaintext exposition.

    Histogram buckets are converted from the registry's per-bucket
    counts to the format's cumulative counts, with the trailing
    ``+Inf`` bucket equal to ``_count``.
    """
    lines = []
    for name in sorted(snapshot):
        data = snapshot[name]
        kind = data.get("type")
        exposed = metric_name(name, prefix)
        if kind == "counter":
            lines.append(f"# TYPE {exposed} counter")
            lines.append(f"{exposed} {format_value(data['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {exposed} gauge")
            lines.append(f"{exposed} {format_value(data['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {exposed} histogram")
            cumulative = 0
            for bucket in data["buckets"]:
                cumulative += bucket["count"]
                le = (
                    "+Inf"
                    if bucket["le"] == "inf"
                    else format_value(bucket["le"])
                )
                lines.append(
                    f'{exposed}_bucket{{le="{le}"}} {cumulative}'
                )
            lines.append(f"{exposed}_sum {format_value(data['sum'])}")
            lines.append(f"{exposed}_count {format_value(data['count'])}")
        # unknown/empty instrument snapshots are skipped, not invented
    return "\n".join(lines) + ("\n" if lines else "")


def parse_exposition(text: str) -> Dict[str, dict]:
    """Parse exposition text back into ``{name: {...}}``.

    Counters and gauges come back as ``{"type", "value"}``; histograms
    as ``{"type", "buckets": {le_label: cumulative_count}, "sum",
    "count"}``.  Raises :class:`ValueError` on any line it cannot
    understand — CI uses this as the "exposition parses" assertion.
    """
    types: Dict[str, str] = {}
    metrics: Dict[str, dict] = {}

    def base_name(sample: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = sample[: -len(suffix)] if sample.endswith(suffix) else None
            if trimmed and types.get(trimmed) == "histogram":
                return trimmed
        return sample

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
                continue
            if parts[0] == "#" and len(parts) >= 2 and parts[1] in ("HELP",):
                continue
            raise ValueError(f"line {lineno}: unrecognized comment {raw!r}")
        match = _LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample {raw!r}")
        sample = match.group("name")
        labels = match.group("labels")
        try:
            value = float(match.group("value").replace("Inf", "inf"))
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: bad value {match.group('value')!r}"
            ) from exc
        name = base_name(sample)
        kind = types.get(name)
        if kind is None:
            raise ValueError(f"line {lineno}: sample {sample!r} has no TYPE")
        if kind == "histogram":
            entry = metrics.setdefault(
                name, {"type": "histogram", "buckets": {}, "sum": 0.0, "count": 0}
            )
            if sample.endswith("_bucket"):
                if not labels or not labels.startswith('le="'):
                    raise ValueError(
                        f"line {lineno}: histogram bucket without le label"
                    )
                le = labels[len('le="'):].rstrip('"')
                entry["buckets"][le] = value
            elif sample.endswith("_sum"):
                entry["sum"] = value
            elif sample.endswith("_count"):
                entry["count"] = value
            else:
                raise ValueError(
                    f"line {lineno}: unexpected histogram sample {sample!r}"
                )
        else:
            metrics[name] = {"type": kind, "value": value}
    return metrics
