"""Run journal: the flight recorder under every parallel execution.

Spans (:mod:`repro.obs.trace`) answer *how long* things took; the journal
answers *what happened, in what order*.  A :class:`RunJournal` is an
append-only JSONL event stream with a **typed event vocabulary** — task
dispatch/start/finish, worker heartbeats, retries, fault injections,
corruption quarantines, degraded rebuilds, checkpoint commits, pool
respawns, sampler ticks — emitted by the parallel coordinator
(:mod:`repro.parallel.process`), the simulated engine, the fault
injectors, and the checkpoint store as the run unfolds.  Every chaos or
benchmark run that carries a journal becomes a self-describing artifact:
``python -m repro report`` replays it into a skew/straggler/fault
diagnosis (:mod:`repro.obs.analyze`), and ``--live`` renders it as
in-flight progress.

Event shape: one JSON object per line, ``{"seq": N, "t": seconds since
the journal's epoch, "type": <vocabulary>, ...fields}``.  ``seq`` is a
monotonic arrival order; ``t`` is wall-clock-relative and therefore *not*
deterministic across runs — consumers that need byte-stable output (the
default ``repro report`` body) must key on the deterministic fields
(pair indices, attempt numbers, fault kinds, checkpoint ordinals) and
never on ``seq``/``t``.

Worker processes cannot append to the coordinator's file; their
task-lifecycle events ride back on the result wire (see
``PairTaskResult.events``) and are re-emitted by the coordinator with the
producer's relative clock preserved as ``worker_t``.  Liveness heartbeats
take a real side channel instead (a multiprocessing queue drained by the
coordinator's scheduling loop), because a crashed worker's result wire
never arrives — which is exactly when you want its last heartbeat.

:data:`NULL_JOURNAL` is the shared disabled journal: ``emit`` is one
``if`` and no I/O, so instrumented paths stay free when nobody records.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

JOURNAL_FILENAME = "journal.jsonl"
"""The journal's file name inside a run directory."""

# --------------------------------------------------------------------- #
# the event vocabulary
# --------------------------------------------------------------------- #

EVENT_RUN_STARTED = "run_started"
"""First event of a run: backend, workers, partitions, resuming flag."""
EVENT_RUN_FINISHED = "run_finished"
"""Last event of a run: result count, wall seconds, degraded pairs."""
EVENT_PARTITION_SEALED = "partition_sealed"
"""One side's spill pass finished: per-partition tuple counts (the raw
material of the Figure 4 skew statistics), plus whether the side was
freshly written or adopted from a checkpoint."""
EVENT_SCHEDULE = "schedule"
"""The LPT task order as submitted: ``[{"pair", "cost"}, ...]``."""
EVENT_TASK_DISPATCHED = "task_dispatched"
"""A pair task entered the pool's queue (pair, attempt)."""
EVENT_TASK_STARTED = "task_started"
"""Worker-side: a pair task began executing (shipped on the wire)."""
EVENT_TASK_FINISHED = "task_finished"
"""Coordinator-side: a pair's result was harvested, with its stats."""
EVENT_TASK_REPLAYED = "task_replayed"
"""A resumed run adopted this pair's committed result instead of
re-merging it; its spans are tagged ``replayed`` and excluded from
straggler/critical-path analysis."""
EVENT_WORKER_HEARTBEAT = "worker_heartbeat"
"""A worker's liveness ping (pid, pair, phase) from the side channel."""
EVENT_RETRY = "retry"
"""A failed pair was requeued (pair, attempt, backoff_s, cause)."""
EVENT_FAULT_INJECTED = "fault_injected"
"""A planned fault fired (kind, plus pair/side/ordinal as applicable)."""
EVENT_QUARANTINED = "corruption_quarantined"
"""A pair's spill failed its CRC; retries are pointless, rebuild it."""
EVENT_DEGRADED = "degraded_rebuild"
"""The coordinator rebuilt a pair serially from the base relations."""
EVENT_CHECKPOINT_COMMIT = "checkpoint_commit"
"""One durable checkpoint operation completed (ordinal, kind, file)."""
EVENT_POOL_RESPAWN = "pool_respawn"
"""The process pool was abandoned and will be respawned."""
EVENT_TIMEOUT = "task_timeout"
"""A pair task blew its deadline; the pool will be abandoned."""
EVENT_SAMPLE = "sample"
"""A coordinator sampler tick: queue depth, inflight pairs, progress,
and (when the tracer has them) simulated-disk / buffer-pool counters —
the run's utilization timeseries."""
EVENT_NODE_FINISHED = "node_finished"
"""Simulated backend: one virtual node's work summary."""

EVENT_QUERY_RECEIVED = "query_received"
"""Serving tier: a join query was admitted (query ordinal, run id, spec)."""
EVENT_CACHE_HIT = "cache_hit"
"""Serving tier: a query was answered by replaying its cached result log
(or by adopting a warm run's spills) instead of a cold run."""
EVENT_CACHE_EVICT = "cache_evict"
"""Serving tier: the artifact cache evicted a run directory to fit its
byte budget (run id, bytes freed)."""
EVENT_QUERY_DONE = "query_done"
"""Serving tier: a query finished (query ordinal, cache disposition,
result count, wall seconds)."""
EVENT_DEADLINE_EXCEEDED = "deadline_exceeded"
"""A run blew its query deadline: dispatch stopped, in-flight pairs
abandoned (queued/inflight counts, the configured deadline)."""
EVENT_BREAKER = "breaker_transition"
"""Serving tier: the shared-pool circuit breaker changed state
(from/to, failures in window)."""
EVENT_CACHE_CORRUPT = "cache_corrupt"
"""Serving tier: a cache entry failed replay verification (truncated or
corrupt result log) and was downgraded to a miss (run id, reason)."""
EVENT_CACHE_SCRUB = "cache_scrub"
"""Serving tier: one scrubber pass finished (entries scanned, repaired,
quarantined)."""
EVENT_CACHE_QUARANTINE = "cache_quarantine"
"""Serving tier: the scrubber moved a corrupt cache entry out of the
serving root — it becomes a cold miss, never a crash (run id, reason)."""

EVENT_DISK_PRESSURE = "disk_pressure"
"""A disk-budget charge was denied and a recovery path engaged (category,
plus the denied layer's locus — side/partition for spills, store root for
checkpoints, query for serve admission).  Emitted once per recovery
episode, not per denial, so a tightly constrained run cannot flood the
journal."""
EVENT_DISK_FULL_RECOVERED = "disk_full_recovered"
"""A disk-pressure episode ended with the write succeeding (action:
``sweep_retry`` for spill reclamation, ``sibling_gc`` for checkpoint run
collection, ``cache_evict`` for serve-tier eviction)."""

EVENT_TYPES = frozenset(
    {
        EVENT_RUN_STARTED,
        EVENT_RUN_FINISHED,
        EVENT_PARTITION_SEALED,
        EVENT_SCHEDULE,
        EVENT_TASK_DISPATCHED,
        EVENT_TASK_STARTED,
        EVENT_TASK_FINISHED,
        EVENT_TASK_REPLAYED,
        EVENT_WORKER_HEARTBEAT,
        EVENT_RETRY,
        EVENT_FAULT_INJECTED,
        EVENT_QUARANTINED,
        EVENT_DEGRADED,
        EVENT_CHECKPOINT_COMMIT,
        EVENT_POOL_RESPAWN,
        EVENT_TIMEOUT,
        EVENT_SAMPLE,
        EVENT_NODE_FINISHED,
        EVENT_QUERY_RECEIVED,
        EVENT_CACHE_HIT,
        EVENT_CACHE_EVICT,
        EVENT_QUERY_DONE,
        EVENT_DEADLINE_EXCEEDED,
        EVENT_BREAKER,
        EVENT_CACHE_CORRUPT,
        EVENT_CACHE_SCRUB,
        EVENT_CACHE_QUARANTINE,
        EVENT_DISK_PRESSURE,
        EVENT_DISK_FULL_RECOVERED,
    }
)
"""Every type :meth:`RunJournal.emit` accepts; a typo'd type is a bug in
the emitter, so it raises instead of polluting the stream."""

FAULT_TIMELINE_TYPES = frozenset(
    {
        EVENT_FAULT_INJECTED,
        EVENT_RETRY,
        EVENT_QUARANTINED,
        EVENT_DEGRADED,
        EVENT_POOL_RESPAWN,
        EVENT_TIMEOUT,
        EVENT_DEADLINE_EXCEEDED,
        EVENT_CACHE_QUARANTINE,
        EVENT_DISK_PRESSURE,
        EVENT_DISK_FULL_RECOVERED,
    }
)
"""The subset that belongs on a "when did things go wrong" timeline —
what the chrome-trace exporter renders as instant events."""

SERVE_TIMELINE_TYPES = frozenset(
    {
        EVENT_QUERY_RECEIVED,
        EVENT_CACHE_HIT,
        EVENT_BREAKER,
    }
)
"""The serving-tier lifecycle moments worth a timeline marker: a serve
(or per-query) journal rendered through the chrome-trace exporter shows
when each query arrived, which ones the cache answered, and every
breaker transition in between."""

OnJournalEvent = Callable[[Dict[str, object]], None]
"""Observer invoked with each emitted record (the ``--live`` renderer)."""


class RunJournal:
    """Append-only JSONL event stream for one run.

    ``path=None`` keeps the journal in memory only (events still reach
    ``on_event`` and ``records`` — what a pure ``--live`` session uses);
    with a path every event is written and flushed immediately, so a
    crashed coordinator leaves a readable journal up to its last moment.
    """

    enabled = True

    def __init__(
        self,
        path: "Path | str | None" = None,
        *,
        on_event: Optional[OnJournalEvent] = None,
    ):
        self.path: Optional[Path] = Path(path) if path is not None else None
        self.on_event = on_event
        self.epoch = time.perf_counter()
        self.records: List[dict] = []
        self._seq = 0
        self._fh = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w")

    def emit(self, event_type: str, **fields: object) -> dict:
        """Append one event; returns the full record as written."""
        if event_type not in EVENT_TYPES:
            raise ValueError(
                f"unknown journal event type {event_type!r}; add it to the "
                f"vocabulary in repro.obs.journal before emitting it"
            )
        self._seq += 1
        record: Dict[str, object] = {
            "seq": self._seq,
            "t": round(time.perf_counter() - self.epoch, 6),
            "type": event_type,
        }
        record.update(fields)
        self.records.append(record)
        if self._fh is not None:
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()
        if self.on_event is not None:
            self.on_event(record)
        return record

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class NullJournal:
    """Disabled journal: ``emit`` costs a method call and returns ``{}``."""

    enabled = False
    path = None
    records: List[dict] = []

    def emit(self, event_type: str, **fields: object) -> dict:
        return {}

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


class ThreadSafeJournal:
    """Lock-wrapped journal for multi-threaded emitters.

    A :class:`RunJournal` assumes one writer — the coordinator's
    scheduling loop.  The serving tier has many (every query thread plus
    the cache), so it wraps its service-level journal in this: same
    interface, one mutex around ``emit``/``close``.  Per-query journals
    stay unwrapped; each belongs to exactly one thread.
    """

    def __init__(self, journal: RunJournal):
        self._journal = journal
        self._lock = threading.Lock()
        self.enabled = journal.enabled

    @property
    def path(self) -> Optional[Path]:
        return self._journal.path

    @property
    def records(self) -> List[dict]:
        return self._journal.records

    def emit(self, event_type: str, **fields: object) -> dict:
        with self._lock:
            return self._journal.emit(event_type, **fields)

    def close(self) -> None:
        with self._lock:
            self._journal.close()

    def __enter__(self) -> "ThreadSafeJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


NULL_JOURNAL = NullJournal()
"""Shared disabled journal — the default for every instrumented path."""


def read_journal(path: "Path | str") -> List[dict]:
    """Parse a journal file back into its event records, in order.

    Tolerates a torn final line (a crashed coordinator's last write may
    be partial); anything parseable before it is returned.
    """
    records: List[dict] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                break  # torn tail: keep the intact prefix
    return records


def journal_path(run_dir: "Path | str") -> Path:
    return Path(run_dir) / JOURNAL_FILENAME
