"""``BENCH_*.json`` emission: the repo's machine-readable perf trajectory.

A bench file is one JSON document per benchmark (see
:mod:`repro.obs.schema` for the exact schema):

.. code-block:: json

    {"schema_version": 1,
     "benchmark": "fig7_road_hydro",
     "records": [
        {"algorithm": "PBSM", "scale": 0.05, "buffer_mb": 2.0,
         "total_s": 41.2, "cpu_s": 12.1, "io_s": 29.1,
         "candidates": 5123, "result_count": 4710,
         "phases": [{"name": "Partition road", "...": "..."}],
         "counters": {"page_reads": 913, "page_writes": 402, "seeks": 131}},
        "..."
     ]}

Every record is validated against the schema *at write time*, so a
malformed emitter fails the benchmark run instead of poisoning the
trajectory.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional

from .export import report_to_dict
from .schema import SCHEMA_VERSION, validate_bench_file


def bench_record(
    report,
    *,
    scale: float,
    buffer_mb: float,
    buffer_mb_scaled: Optional[float] = None,
    algorithm: Optional[str] = None,
    faults: Optional[dict] = None,
    disk: Optional[dict] = None,
) -> dict:
    """Build one schema-conforming record from a ``JoinReport``.

    ``buffer_mb`` is the *paper* buffer size the cell models (2/8/24);
    ``buffer_mb_scaled`` the actual pool the scaled run used.  ``faults``
    attaches a chaos block (see ``BENCH_FAULTS_SCHEMA``) when the run
    executed under a fault plan; ``disk`` a storage-pressure block (see
    ``BENCH_DISK_SCHEMA``).  Leave both ``None`` for runs without them so
    baselines stay byte-comparable.
    """
    base = report_to_dict(report)
    record = {
        "algorithm": algorithm or base["algorithm"],
        "scale": scale,
        "buffer_mb": buffer_mb,
        "total_s": base["total_s"],
        "cpu_s": base["cpu_s"],
        "io_s": base["io_s"],
        "candidates": base["candidates"],
        "result_count": base["result_count"],
        "phases": base["phases"],
        "counters": {
            "page_reads": sum(p["page_reads"] for p in base["phases"]),
            "page_writes": sum(p["page_writes"] for p in base["phases"]),
            "seeks": sum(p["seeks"] for p in base["phases"]),
        },
    }
    if buffer_mb_scaled is not None:
        record["buffer_mb_scaled"] = buffer_mb_scaled
    if base["notes"]:
        record["notes"] = base["notes"]
    if faults is not None:
        record["faults"] = faults
    if disk is not None:
        record["disk"] = disk
    return record


def bench_file_name(benchmark: str) -> str:
    return f"BENCH_{benchmark}.json"


def write_bench_file(
    benchmark: str,
    records: Iterable[dict],
    results_dir: "Path | str",
) -> Path:
    """Assemble, validate, and write ``BENCH_<benchmark>.json``."""
    document = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": benchmark,
        "records": list(records),
    }
    validate_bench_file(document)
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / bench_file_name(benchmark)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_bench_file(path: "Path | str") -> dict:
    """Read and re-validate a bench file (used by CI's schema check)."""
    document = json.loads(Path(path).read_text())
    validate_bench_file(document)
    return document


def validate_results_dir(results_dir: "Path | str") -> List[Path]:
    """Validate every ``BENCH_*.json`` under a directory; returns them."""
    paths = sorted(Path(results_dir).glob("BENCH_*.json"))
    for path in paths:
        load_bench_file(path)
    return paths
