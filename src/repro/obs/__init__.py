"""``repro.obs`` — tracing, metrics, and machine-readable benchmark output.

The observability layer under every cost number this repository reports:

* :mod:`repro.obs.trace` — nested :class:`Span`\\ s with per-span deltas of
  disk and buffer-pool counters, collected by a :class:`Tracer` (with
  per-worker merging for the parallel engine);
* :mod:`repro.obs.metrics` — named counters / gauges / fixed-bucket
  histograms behind a :class:`MetricsRegistry`, free when disabled;
* :mod:`repro.obs.export` — JSONL trace dump, JSON metrics snapshot,
  chrome-trace timeline, and ``JoinReport`` serialization;
* :mod:`repro.obs.bench` + :mod:`repro.obs.schema` — schema-validated
  ``BENCH_*.json`` perf-trajectory records for the benchmarks;
* :mod:`repro.obs.journal` — the flight recorder: an append-only JSONL
  run journal with a typed event vocabulary, fed by the parallel
  coordinator, the fault injectors, and the checkpoint store;
* :mod:`repro.obs.analyze` — the post-run analyzer behind
  ``python -m repro report``: skew, stragglers, critical path, and the
  fault/retry timeline, rendered as deterministic markdown.

``repro.core.stats.PhaseMeter`` is a thin adapter over :class:`Tracer`, so
every existing join driver already produces spans; pass an enabled tracer
and metrics registry to a driver (or use ``python -m repro trace``) to get
the full picture.
"""

from .analyze import (
    LaneReplay,
    PairStats,
    RunAnalysis,
    SkewStats,
    analyze_events,
    analyze_run,
    lpt_replay,
    render_report,
)
from .bench import (
    bench_file_name,
    bench_record,
    load_bench_file,
    validate_results_dir,
    write_bench_file,
)
from .export import (
    chrome_instant_events,
    chrome_trace_events,
    report_to_dict,
    trace_to_dicts,
    write_chrome_trace,
    write_metrics_json,
    write_trace_jsonl,
)
from .corpus import (
    RunRecord,
    check_gates,
    compare_runs,
    fit_trend,
    index_bench_file,
    index_engine_run,
    index_path,
    index_serve_run,
    render_compare,
    render_list,
    render_show,
    render_trend,
    scan_corpus,
)
from .expo import (
    EXPOSITION_PREFIX,
    format_value,
    metric_name,
    parse_exposition,
    render_exposition,
)
from .journal import (
    EVENT_TYPES,
    FAULT_TIMELINE_TYPES,
    JOURNAL_FILENAME,
    NULL_JOURNAL,
    SERVE_TIMELINE_TYPES,
    NullJournal,
    RunJournal,
    journal_path,
    read_journal,
)
from .metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_delta,
    snapshot_delta,
)
from .timeseries import (
    RingBufferSeries,
    SlowLog,
    TelemetrySampler,
    quantile,
)
from .top import render_top
from .schema import (
    BENCH_FILE_SCHEMA,
    BENCH_RECORD_SCHEMA,
    SCHEMA_VERSION,
    SchemaError,
    validate,
    validate_bench_file,
    validate_bench_record,
)
from .trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "BENCH_FILE_SCHEMA",
    "BENCH_RECORD_SCHEMA",
    "Counter",
    "DEFAULT_BUCKETS",
    "EVENT_TYPES",
    "EXPOSITION_PREFIX",
    "FAULT_TIMELINE_TYPES",
    "Gauge",
    "Histogram",
    "JOURNAL_FILENAME",
    "LaneReplay",
    "MetricsRegistry",
    "NULL_JOURNAL",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullJournal",
    "NullTracer",
    "PairStats",
    "RingBufferSeries",
    "RunAnalysis",
    "RunJournal",
    "RunRecord",
    "SCHEMA_VERSION",
    "SERVE_TIMELINE_TYPES",
    "SchemaError",
    "SkewStats",
    "SlowLog",
    "Span",
    "TelemetrySampler",
    "Tracer",
    "analyze_events",
    "analyze_run",
    "bench_file_name",
    "bench_record",
    "check_gates",
    "chrome_instant_events",
    "chrome_trace_events",
    "compare_runs",
    "fit_trend",
    "format_value",
    "histogram_delta",
    "index_bench_file",
    "index_engine_run",
    "index_path",
    "index_serve_run",
    "journal_path",
    "load_bench_file",
    "lpt_replay",
    "metric_name",
    "parse_exposition",
    "quantile",
    "read_journal",
    "render_compare",
    "render_exposition",
    "render_list",
    "render_report",
    "render_show",
    "render_top",
    "render_trend",
    "report_to_dict",
    "scan_corpus",
    "snapshot_delta",
    "trace_to_dicts",
    "validate",
    "validate_bench_file",
    "validate_bench_record",
    "validate_results_dir",
    "write_bench_file",
    "write_chrome_trace",
    "write_metrics_json",
    "write_trace_jsonl",
]
