"""``repro.obs`` — tracing, metrics, and machine-readable benchmark output.

The observability layer under every cost number this repository reports:

* :mod:`repro.obs.trace` — nested :class:`Span`\\ s with per-span deltas of
  disk and buffer-pool counters, collected by a :class:`Tracer` (with
  per-worker merging for the parallel engine);
* :mod:`repro.obs.metrics` — named counters / gauges / fixed-bucket
  histograms behind a :class:`MetricsRegistry`, free when disabled;
* :mod:`repro.obs.export` — JSONL trace dump, JSON metrics snapshot,
  chrome-trace timeline, and ``JoinReport`` serialization;
* :mod:`repro.obs.bench` + :mod:`repro.obs.schema` — schema-validated
  ``BENCH_*.json`` perf-trajectory records for the benchmarks.

``repro.core.stats.PhaseMeter`` is a thin adapter over :class:`Tracer`, so
every existing join driver already produces spans; pass an enabled tracer
and metrics registry to a driver (or use ``python -m repro trace``) to get
the full picture.
"""

from .bench import (
    bench_file_name,
    bench_record,
    load_bench_file,
    validate_results_dir,
    write_bench_file,
)
from .export import (
    chrome_trace_events,
    report_to_dict,
    trace_to_dicts,
    write_chrome_trace,
    write_metrics_json,
    write_trace_jsonl,
)
from .metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .schema import (
    BENCH_FILE_SCHEMA,
    BENCH_RECORD_SCHEMA,
    SCHEMA_VERSION,
    SchemaError,
    validate,
    validate_bench_file,
    validate_bench_record,
)
from .trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "BENCH_FILE_SCHEMA",
    "BENCH_RECORD_SCHEMA",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullTracer",
    "SCHEMA_VERSION",
    "SchemaError",
    "Span",
    "Tracer",
    "bench_file_name",
    "bench_record",
    "chrome_trace_events",
    "load_bench_file",
    "report_to_dict",
    "trace_to_dicts",
    "validate",
    "validate_bench_file",
    "validate_bench_record",
    "validate_results_dir",
    "write_bench_file",
    "write_chrome_trace",
    "write_metrics_json",
    "write_trace_jsonl",
]
