"""Post-run analysis: turn a run directory into a diagnosis.

``python -m repro report <run-dir>`` lands here.  The input is the flight
recorder's artifacts — ``journal.jsonl`` (required) and ``trace.jsonl``
(optional, adds measured timings) — and the output is a
:class:`RunAnalysis` plus a markdown rendering with:

* **partition skew** — per-side coefficient of variation over the sealed
  per-partition tuple counts (the statistic behind the paper's Figure 4),
  plus candidate/result skew across executed pairs;
* **critical path** — a deterministic replay of the LPT schedule over the
  recorded cost seeds: tasks are assigned, in submission order, to the
  earliest-free worker lane; the lane with the largest total cost is the
  schedule's critical path;
* **straggler ranking** — pairs ranked by deterministic weight (cost
  seed, then candidates), with measured wall-clock ranking available
  behind ``timings=True``;
* **fault & retry timeline** — the planned-fault ledger (every
  ``fault_injected`` event, deduplicated and sorted), quarantines,
  degraded rebuilds, and checkpoint commit accounting.

**Determinism contract.**  ``render_report`` with ``timings=False`` (the
default) prints *only* quantities that are pure functions of the inputs,
the seed, and the fault plan: pair indices, cost seeds, tuple/candidate/
result counts, CoV statistics, fault kinds and attempt numbers,
checkpoint commit counts.  Two runs of the same seeded workload produce
byte-identical report bodies — the chaos acceptance test asserts exactly
that.  Wall-clock seconds, retry/respawn tallies (collateral retries hit
whatever happened to be in flight when a pool died), heartbeat and
sampler counts are all *measured*, so they live in the ``--timings``
sections only.

Replayed pairs (a resume adopting committed results) are excluded from
skew, straggler, and critical-path analysis: their work happened in a
previous run, and the journal marks them with ``task_replayed`` rather
than ``task_finished`` (their spans are likewise tagged ``replayed``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .journal import (
    EVENT_CHECKPOINT_COMMIT,
    EVENT_DEGRADED,
    EVENT_DISK_FULL_RECOVERED,
    EVENT_DISK_PRESSURE,
    EVENT_FAULT_INJECTED,
    EVENT_PARTITION_SEALED,
    EVENT_QUARANTINED,
    EVENT_RUN_STARTED,
    EVENT_SCHEDULE,
    EVENT_TASK_FINISHED,
    EVENT_TASK_REPLAYED,
    JOURNAL_FILENAME,
    journal_path,
    read_journal,
)
from .metrics import Histogram

TRACE_FILENAME = "trace.jsonl"

STRAGGLER_TOP_N = 8
"""Rows shown in each straggler table."""


# --------------------------------------------------------------------- #
# building blocks
# --------------------------------------------------------------------- #


@dataclass
class SkewStats:
    """Distribution summary of one per-partition quantity.

    ``cov`` is the coefficient of variation (population stddev / mean) —
    the skew statistic the paper's Figure 4 discussion turns on: 0 means
    perfectly even partitions, values near or above 1 mean a few
    partitions dominate.
    """

    count: int = 0
    total: float = 0.0
    mean: float = 0.0
    minimum: float = 0.0
    maximum: float = 0.0
    cov: float = 0.0

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "SkewStats":
        if not values:
            return cls()
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        cov = math.sqrt(variance) / mean if mean else 0.0
        return cls(
            count=len(values),
            total=float(sum(values)),
            mean=mean,
            minimum=float(min(values)),
            maximum=float(max(values)),
            cov=cov,
        )


@dataclass
class PairStats:
    """One executed partition pair, as the journal recorded it."""

    pair: int
    cost: int = 0
    """The LPT seed (key-pointers in the pair) — known pre-execution,
    deterministic, and the default straggler-ranking weight."""
    candidates: int = 0
    results: int = 0
    wall_s: Optional[float] = None
    """Measured seconds of the successful attempt (timings sections only)."""
    replayed: bool = False
    degraded: bool = False


@dataclass
class LaneReplay:
    """The deterministic LPT schedule replay over cost seeds."""

    workers: int = 1
    lanes: List[List[int]] = field(default_factory=list)
    lane_costs: List[int] = field(default_factory=list)
    critical_lane: int = 0
    makespan_cost: int = 0
    total_cost: int = 0

    @property
    def critical_pairs(self) -> List[int]:
        if not self.lanes:
            return []
        return self.lanes[self.critical_lane]

    @property
    def balance(self) -> float:
        """total/(workers*makespan): 1.0 is a perfectly packed schedule."""
        denominator = self.workers * self.makespan_cost
        return self.total_cost / denominator if denominator else 1.0


@dataclass
class RunAnalysis:
    """Everything ``repro report`` knows about one run."""

    run_dir: str = ""
    backend: str = ""
    workers: int = 0
    partitions: int = 0
    tuples_r: int = 0
    tuples_s: int = 0
    resuming: bool = False
    results: int = 0
    partition_skew: Dict[str, SkewStats] = field(default_factory=dict)
    pairs: Dict[int, PairStats] = field(default_factory=dict)
    schedule: List[dict] = field(default_factory=list)
    replay: LaneReplay = field(default_factory=LaneReplay)
    fault_ledger: List[dict] = field(default_factory=list)
    quarantined_pairs: List[int] = field(default_factory=list)
    degraded_pairs: List[int] = field(default_factory=list)
    replayed_pairs: List[int] = field(default_factory=list)
    checkpoint_commits: Dict[str, int] = field(default_factory=dict)
    disk_budget: Optional[int] = None
    """The run's disk-budget ceiling (``run_started``); None when the run
    was unconstrained or predates storage governance."""
    disk_pressure: List[dict] = field(default_factory=list)
    """``disk_pressure`` episodes, deterministic fields only (category,
    side, partition, kind, query) — byte counts stay out of the report
    body because directory sizes carry measured wall_s frames."""
    disk_recoveries: List[dict] = field(default_factory=list)
    """``disk_full_recovered`` events: the recovery action that worked."""
    serve: Dict[str, object] = field(default_factory=dict)
    """Serving-tier context when the journal came from a served query
    (``repro serve``): query id, cache disposition, coalescing."""
    phase_breakdown: List[dict] = field(default_factory=list)
    """Per-phase cpu/io sums from ``trace.jsonl`` (measured; timings only)."""
    event_counts: Dict[str, int] = field(default_factory=dict)
    """Raw journal tallies (measured multiplicities; timings only)."""
    cost_hist: Histogram = field(
        default_factory=lambda: Histogram("analyze.cost")
    )
    candidate_hist: Histogram = field(
        default_factory=lambda: Histogram("analyze.candidates")
    )
    backoff_hist: Histogram = field(
        default_factory=lambda: Histogram(
            "analyze.backoff_s",
            (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0),
        )
    )

    @property
    def executed_pairs(self) -> List[PairStats]:
        """Pairs this run actually merged, replayed adoptions excluded."""
        return [
            stats
            for _, stats in sorted(self.pairs.items())
            if not stats.replayed
        ]

    def stragglers_by_cost(self, top: int = STRAGGLER_TOP_N) -> List[PairStats]:
        """Deterministic ranking: heaviest cost seed first, ties by pair."""
        ranked = sorted(
            self.executed_pairs, key=lambda p: (-p.cost, p.pair)
        )
        return ranked[:top]

    def stragglers_by_wall(self, top: int = STRAGGLER_TOP_N) -> List[PairStats]:
        """Measured ranking (timings sections only)."""
        timed = [p for p in self.executed_pairs if p.wall_s is not None]
        ranked = sorted(timed, key=lambda p: (-(p.wall_s or 0.0), p.pair))
        return ranked[:top]

    def to_dict(self) -> dict:
        """JSON shape behind ``repro report --json``.

        Carries everything the markdown shows (including the measured
        quantities); the byte-determinism contract applies to the rendered
        report body only, not to this dump.
        """

        def skew(s: SkewStats) -> dict:
            return {
                "count": s.count,
                "total": s.total,
                "mean": s.mean,
                "min": s.minimum,
                "max": s.maximum,
                "cov": s.cov,
            }

        return {
            "run_dir": self.run_dir,
            "backend": self.backend,
            "workers": self.workers,
            "partitions": self.partitions,
            "tuples_r": self.tuples_r,
            "tuples_s": self.tuples_s,
            "resuming": self.resuming,
            "results": self.results,
            "partition_skew": {
                side: skew(s) for side, s in sorted(self.partition_skew.items())
            },
            "pairs": [
                {
                    "pair": p.pair,
                    "cost": p.cost,
                    "candidates": p.candidates,
                    "results": p.results,
                    "wall_s": p.wall_s,
                    "replayed": p.replayed,
                    "degraded": p.degraded,
                }
                for _, p in sorted(self.pairs.items())
            ],
            "critical_path": {
                "workers": self.replay.workers,
                "makespan_cost": self.replay.makespan_cost,
                "total_cost": self.replay.total_cost,
                "balance": self.replay.balance,
                "critical_lane": self.replay.critical_lane,
                "critical_pairs": self.replay.critical_pairs,
                "lane_costs": self.replay.lane_costs,
            },
            "fault_ledger": self.fault_ledger,
            "quarantined_pairs": self.quarantined_pairs,
            "degraded_pairs": self.degraded_pairs,
            "replayed_pairs": self.replayed_pairs,
            "checkpoint_commits": self.checkpoint_commits,
            "disk_budget": self.disk_budget,
            "disk_pressure": self.disk_pressure,
            "disk_recoveries": self.disk_recoveries,
            "serve": self.serve,
            "phase_breakdown": self.phase_breakdown,
            "event_counts": self.event_counts,
        }


# --------------------------------------------------------------------- #
# analysis
# --------------------------------------------------------------------- #


def lpt_replay(order: Sequence[dict], workers: int) -> LaneReplay:
    """Replay the recorded LPT submission order onto ``workers`` lanes.

    Each task goes to the lane with the smallest accumulated cost (ties:
    lowest lane index), mirroring what the executor's shared queue does
    when every task costs exactly its seed.  The heaviest lane is the
    schedule's deterministic critical path; its total is the cost-model
    makespan a perfectly cost-proportional run would achieve.
    """
    workers = max(1, workers)
    lane_costs = [0] * workers
    lanes: List[List[int]] = [[] for _ in range(workers)]
    for item in order:
        lane = min(range(workers), key=lambda i: lane_costs[i])
        lane_costs[lane] += int(item["cost"])
        lanes[lane].append(int(item["pair"]))
    critical = max(range(workers), key=lambda i: lane_costs[i])
    return LaneReplay(
        workers=workers,
        lanes=lanes,
        lane_costs=lane_costs,
        critical_lane=critical,
        makespan_cost=lane_costs[critical],
        total_cost=sum(lane_costs),
    )


def _fault_key(record: dict) -> Tuple:
    return (
        record.get("pair", -1) if record.get("pair") is not None else -1,
        str(record.get("kind", "")),
        record.get("attempt", -1) if record.get("attempt") is not None else -1,
        str(record.get("side", "")),
        record.get("ordinal", -1) if record.get("ordinal") is not None else -1,
    )


def analyze_events(
    records: Sequence[dict], run_dir: str = ""
) -> RunAnalysis:
    """Build a :class:`RunAnalysis` from journal records already in memory."""
    analysis = RunAnalysis(run_dir=run_dir)
    ledger: Dict[Tuple, dict] = {}
    for record in records:
        kind = record.get("type")
        analysis.event_counts[kind] = analysis.event_counts.get(kind, 0) + 1
        if kind == EVENT_RUN_STARTED:
            analysis.backend = str(record.get("backend", ""))
            analysis.workers = int(record.get("workers", 0))
            analysis.partitions = int(record.get("partitions", 0))
            analysis.tuples_r = int(record.get("tuples_r", 0))
            analysis.tuples_s = int(record.get("tuples_s", 0))
            analysis.resuming = bool(record.get("resuming", False))
            if record.get("disk_budget") is not None:
                analysis.disk_budget = int(record["disk_budget"])
        elif kind == "run_finished":
            analysis.results = int(record.get("results", 0))
        elif kind == EVENT_PARTITION_SEALED:
            side = str(record.get("side", "?"))
            counts = [int(c) for c in record.get("counts", [])]
            analysis.partition_skew[side] = SkewStats.from_values(counts)
        elif kind == EVENT_SCHEDULE:
            analysis.schedule = list(record.get("order", []))
            for item in analysis.schedule:
                pair = int(item["pair"])
                stats = analysis.pairs.setdefault(pair, PairStats(pair))
                stats.cost = int(item["cost"])
                analysis.cost_hist.observe(stats.cost)
        elif kind == EVENT_TASK_FINISHED:
            pair = int(record["pair"])
            stats = analysis.pairs.setdefault(pair, PairStats(pair))
            stats.candidates = int(record.get("candidates", 0))
            stats.results = int(record.get("results", 0))
            if record.get("wall_s") is not None:
                stats.wall_s = float(record["wall_s"])
        elif kind == EVENT_TASK_REPLAYED:
            pair = int(record["pair"])
            stats = analysis.pairs.setdefault(pair, PairStats(pair))
            stats.candidates = int(record.get("candidates", 0))
            stats.results = int(record.get("results", 0))
            stats.replayed = True
            analysis.replayed_pairs.append(pair)
        elif kind == EVENT_FAULT_INJECTED:
            # Deduplicate: an uncharged redispatch can re-fire a planned
            # (pair, attempt) injection, but the ledger records the planned
            # point once — multiplicity is scheduling noise, identity is not.
            ledger.setdefault(_fault_key(record), record)
        elif kind == EVENT_QUARANTINED:
            analysis.quarantined_pairs.append(int(record["pair"]))
        elif kind == EVENT_DEGRADED:
            pair = int(record["pair"])
            analysis.degraded_pairs.append(pair)
            stats = analysis.pairs.setdefault(pair, PairStats(pair))
            stats.degraded = True
        elif kind == EVENT_CHECKPOINT_COMMIT:
            commit_kind = str(record.get("kind", "?"))
            analysis.checkpoint_commits[commit_kind] = (
                analysis.checkpoint_commits.get(commit_kind, 0) + 1
            )
        elif kind == EVENT_DISK_PRESSURE:
            analysis.disk_pressure.append(
                {
                    key: record[key]
                    for key in (
                        "category", "side", "partition", "kind", "query",
                    )
                    if record.get(key) is not None
                }
            )
        elif kind == EVENT_DISK_FULL_RECOVERED:
            analysis.disk_recoveries.append(
                {
                    key: record[key]
                    for key in (
                        "category", "side", "partition", "kind", "action",
                    )
                    if record.get(key) is not None
                }
            )
        elif kind == "retry":
            if record.get("backoff_s") is not None:
                analysis.backoff_hist.observe(float(record["backoff_s"]))
        elif kind == "query_received":
            # A serving-tier journal (repro serve): the query's identity
            # frames everything below it, cache hits included.
            analysis.serve["query"] = record.get("query")
            for key in ("dataset", "scale", "seed", "predicate"):
                if key in record:
                    analysis.serve[key] = record[key]
        elif kind == "cache_hit":
            analysis.serve["cache_hit"] = True
            analysis.serve["coalesced"] = bool(record.get("coalesced", False))
        elif kind == "query_done":
            analysis.serve["source"] = record.get("source")
            analysis.serve["run_id"] = record.get("run_id")
            if not analysis.results:
                # A pure cache hit never emits run_finished; the served
                # result count is the only total there is.
                analysis.results = int(record.get("result_count", 0) or 0)
        elif kind == "deadline_exceeded":
            analysis.serve["deadline_exceeded"] = {
                "deadline_s": record.get("deadline_s"),
                "queued": record.get("queued"),
                "completed": record.get("completed"),
            }
        elif kind == "breaker_transition":
            analysis.serve.setdefault("breaker_transitions", []).append(
                f"{record.get('from_state')}->{record.get('to_state')}"
            )
        elif kind == "cache_corrupt":
            analysis.serve.setdefault("cache_corrupt", []).append(
                {
                    "run_id": record.get("run_id"),
                    "reason": record.get("reason"),
                }
            )
        elif kind == "cache_quarantine":
            analysis.serve.setdefault("quarantined_entries", []).append(
                {
                    "run_id": record.get("run_id"),
                    "reason": record.get("reason"),
                }
            )
        elif kind == "cache_scrub":
            totals = analysis.serve.setdefault(
                "scrub", {"passes": 0, "scanned": 0, "repaired": 0,
                          "quarantined": 0, "evicted": 0}
            )
            totals["passes"] += 1
            for key in ("scanned", "repaired", "quarantined", "evicted"):
                totals[key] += int(record.get(key, 0) or 0)
        elif kind == "sample" and record.get("kind") == "telemetry":
            # The serve tier's telemetry sampler: summarize the run's
            # live load shape (the per-tick series live on the wire op,
            # not in the journal — only the load peaks are recorded).
            telemetry = analysis.serve.setdefault(
                "telemetry",
                {"ticks": 0, "queue_depth_max": 0, "inflight_max": 0},
            )
            telemetry["ticks"] += 1
            telemetry["queue_depth_max"] = max(
                telemetry["queue_depth_max"],
                int(record.get("queued", 0) or 0),
            )
            telemetry["inflight_max"] = max(
                telemetry["inflight_max"],
                int(record.get("inflight", 0) or 0),
            )
    analysis.fault_ledger = [ledger[key] for key in sorted(ledger)]
    analysis.quarantined_pairs = sorted(set(analysis.quarantined_pairs))
    analysis.degraded_pairs = sorted(set(analysis.degraded_pairs))
    analysis.replayed_pairs = sorted(set(analysis.replayed_pairs))
    for stats in analysis.executed_pairs:
        analysis.candidate_hist.observe(stats.candidates)
    analysis.replay = lpt_replay(
        analysis.schedule, analysis.workers or 1
    )
    return analysis


def _load_phase_breakdown(trace_file: Path) -> List[dict]:
    """Sum cpu/io by top-level span name from ``trace.jsonl``.

    Spans tagged ``replayed`` (and their subtrees — children of an
    excluded root are excluded via the parent chain) carry a *previous*
    run's work and are left out.
    """
    import json

    phases: Dict[str, dict] = {}
    excluded_ids: set = set()
    with trace_file.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            span = json.loads(line)
            if (
                span.get("tags", {}).get("replayed")
                or span.get("parent_id") in excluded_ids
            ):
                excluded_ids.add(span["id"])
                continue
            if span.get("parent_id") is not None:
                continue
            entry = phases.setdefault(
                span["name"],
                {"name": span["name"], "cpu_s": 0.0, "io_s": 0.0, "spans": 0},
            )
            entry["cpu_s"] += float(span.get("cpu_s", 0.0))
            entry["io_s"] += float(span.get("io_s", 0.0))
            entry["spans"] += 1
    return [phases[name] for name in sorted(phases)]


def analyze_run(run_dir: "Path | str") -> RunAnalysis:
    """Analyze one run directory (``journal.jsonl`` required)."""
    run_dir = Path(run_dir)
    journal_file = journal_path(run_dir)
    if not journal_file.exists():
        raise FileNotFoundError(
            f"no {JOURNAL_FILENAME} under {run_dir}: run the join with a "
            f"journal (e.g. `python -m repro chaos --out {run_dir}`) first"
        )
    analysis = analyze_events(read_journal(journal_file), run_dir=str(run_dir))
    trace_file = run_dir / TRACE_FILENAME
    if trace_file.exists():
        analysis.phase_breakdown = _load_phase_breakdown(trace_file)
    return analysis


# --------------------------------------------------------------------- #
# rendering
# --------------------------------------------------------------------- #


def _fmt(value: Optional[float], digits: int = 3) -> str:
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def _describe_fault(record: dict) -> str:
    kind = record.get("kind", "?")
    where: List[str] = []
    if record.get("pair") is not None:
        where.append(f"pair {record['pair']}")
    if record.get("category"):
        where.append(f"category {record['category']}")
    if record.get("side"):
        where.append(f"side {record['side']}")
    if record.get("attempt") is not None:
        where.append(f"attempt {record['attempt']}")
    if record.get("ordinal") is not None:
        where.append(f"ordinal {record['ordinal']}")
    suffix = f" ({', '.join(where)})" if where else ""
    return f"`{kind}`{suffix}"


def render_report(analysis: RunAnalysis, *, timings: bool = False) -> str:
    """Render the analysis as markdown.

    With ``timings=False`` the output is byte-deterministic for a given
    seeded workload (see the module docstring's determinism contract);
    ``timings=True`` appends the measured sections.
    """
    lines: List[str] = []
    out = lines.append

    out("# Run report")
    out("")
    out(f"- backend: `{analysis.backend or 'unknown'}`")
    out(f"- workers: {analysis.workers}")
    if analysis.partitions:
        out(f"- partitions: {analysis.partitions}")
    out(f"- input tuples: {analysis.tuples_r} (R) x {analysis.tuples_s} (S)")
    out(f"- resumed run: {'yes' if analysis.resuming else 'no'}")
    if analysis.serve:
        query = analysis.serve.get("query") or "?"
        source = analysis.serve.get("source") or "?"
        run_id = analysis.serve.get("run_id") or "?"
        out(f"- served query: {query} — source `{source}`, cache entry "
            f"`{run_id}`")
        deadline = analysis.serve.get("deadline_exceeded")
        if deadline:
            out(
                f"- deadline exceeded: budget {deadline.get('deadline_s')}s, "
                f"{deadline.get('completed')} pairs committed, "
                f"{deadline.get('queued')} still queued"
            )
        transitions = analysis.serve.get("breaker_transitions")
        if transitions:
            out(f"- breaker transitions: {', '.join(transitions)}")
        telemetry = analysis.serve.get("telemetry")
        if telemetry:
            out(
                f"- telemetry: {telemetry['ticks']} sampler ticks, "
                f"peak queue {telemetry['queue_depth_max']}, "
                f"peak inflight {telemetry['inflight_max']}"
            )
        scrub = analysis.serve.get("scrub")
        if scrub:
            out(
                f"- cache scrub: {scrub['passes']} passes, "
                f"{scrub['scanned']} scanned, {scrub['repaired']} repaired, "
                f"{scrub['quarantined']} quarantined, "
                f"{scrub.get('evicted', 0)} evicted"
            )
        for corrupt in analysis.serve.get("cache_corrupt", []):
            out(
                f"- cache entry distrusted: `{corrupt.get('run_id')}` "
                f"({corrupt.get('reason')})"
            )
        for quarantined in analysis.serve.get("quarantined_entries", []):
            out(
                f"- cache entry quarantined: `{quarantined.get('run_id')}` "
                f"({quarantined.get('reason')})"
            )
    out(f"- result pairs: {analysis.results}")
    out("")

    out("## Partition skew (Figure 4 statistic)")
    out("")
    if analysis.partition_skew:
        out("| side | partitions | tuples | mean | min | max | CoV |")
        out("|---|---|---|---|---|---|---|")
        for side in sorted(analysis.partition_skew):
            s = analysis.partition_skew[side]
            out(
                f"| {side} | {s.count} | {int(s.total)} | {_fmt(s.mean, 1)} "
                f"| {int(s.minimum)} | {int(s.maximum)} | {_fmt(s.cov)} |"
            )
    else:
        out("(no partition_sealed events in journal)")
    executed = analysis.executed_pairs
    if executed:
        candidate_skew = SkewStats.from_values(
            [p.candidates for p in executed]
        )
        result_skew = SkewStats.from_values([p.results for p in executed])
        cost_skew = SkewStats.from_values([p.cost for p in executed])
        out("")
        out("| per-pair quantity | pairs | mean | CoV | p50 | p90 |")
        out("|---|---|---|---|---|---|")
        cost_summary = analysis.cost_hist.summary()
        cand_summary = analysis.candidate_hist.summary()
        out(
            f"| cost seed | {cost_skew.count} | {_fmt(cost_skew.mean, 1)} "
            f"| {_fmt(cost_skew.cov)} | {_fmt(cost_summary.get('p50'), 1)} "
            f"| {_fmt(cost_summary.get('p90'), 1)} |"
        )
        out(
            f"| candidates | {candidate_skew.count} "
            f"| {_fmt(candidate_skew.mean, 1)} | {_fmt(candidate_skew.cov)} "
            f"| {_fmt(cand_summary.get('p50'), 1)} "
            f"| {_fmt(cand_summary.get('p90'), 1)} |"
        )
        out(
            f"| results | {result_skew.count} | {_fmt(result_skew.mean, 1)} "
            f"| {_fmt(result_skew.cov)} | - | - |"
        )
    out("")

    out("## Schedule & critical path (LPT replay over cost seeds)")
    out("")
    replay = analysis.replay
    if analysis.schedule:
        out(f"- tasks scheduled: {len(analysis.schedule)}")
        out(f"- cost-model makespan: {replay.makespan_cost}")
        out(
            f"- schedule balance: {_fmt(replay.balance)} "
            f"(1.0 = perfectly packed lanes)"
        )
        critical = ", ".join(str(p) for p in replay.critical_pairs)
        out(
            f"- critical path: lane {replay.critical_lane} -> "
            f"pairs [{critical}]"
        )
    else:
        out("(no schedule event — nothing was executed by this run)")
    out("")

    out("## Stragglers (deterministic, by cost seed)")
    out("")
    stragglers = analysis.stragglers_by_cost()
    if stragglers:
        out("| rank | pair | cost | candidates | results | degraded |")
        out("|---|---|---|---|---|---|")
        for rank, p in enumerate(stragglers, 1):
            out(
                f"| {rank} | {p.pair} | {p.cost} | {p.candidates} "
                f"| {p.results} | {'yes' if p.degraded else ''} |"
            )
    else:
        out("(no executed pairs)")
    out("")

    out("## Fault & recovery timeline")
    out("")
    if analysis.fault_ledger:
        out("Planned faults injected (deduplicated, sorted):")
        out("")
        for record in analysis.fault_ledger:
            out(f"- {_describe_fault(record)}")
    else:
        out("No planned faults were injected.")
    if analysis.quarantined_pairs:
        out(
            "- quarantined pairs (corrupt spill, rebuilt): "
            f"{analysis.quarantined_pairs}"
        )
    if analysis.degraded_pairs:
        out(f"- degraded rebuilds: {analysis.degraded_pairs}")
    out("")

    if (
        analysis.disk_budget is not None
        or analysis.disk_pressure
        or analysis.disk_recoveries
    ):
        out("## Storage pressure")
        out("")
        if analysis.disk_budget is not None:
            out(f"- disk budget: {analysis.disk_budget} bytes")
        else:
            out("- disk budget: unconstrained (metering only)")
        if analysis.disk_pressure:
            out(f"- pressure episodes: {len(analysis.disk_pressure)}")
            for episode in analysis.disk_pressure:
                parts = ", ".join(
                    f"{key} {episode[key]}"
                    for key in ("side", "partition", "kind", "query")
                    if key in episode
                )
                suffix = f" ({parts})" if parts else ""
                out(f"  - `{episode.get('category', '?')}`{suffix}")
        else:
            out("- pressure episodes: none")
        if analysis.disk_recoveries:
            out(f"- recoveries: {len(analysis.disk_recoveries)}")
            for recovery in analysis.disk_recoveries:
                parts = ", ".join(
                    f"{key} {recovery[key]}"
                    for key in ("side", "partition", "kind")
                    if key in recovery
                )
                suffix = f" ({parts})" if parts else ""
                out(
                    f"  - `{recovery.get('category', '?')}` via "
                    f"`{recovery.get('action', '?')}`{suffix}"
                )
        out("")

    if analysis.checkpoint_commits:
        out("## Checkpoints")
        out("")
        total = sum(analysis.checkpoint_commits.values())
        by_kind = ", ".join(
            f"{kind}: {count}"
            for kind, count in sorted(analysis.checkpoint_commits.items())
        )
        out(f"- durable commits: {total} ({by_kind})")
        out("")

    if analysis.replayed_pairs:
        out("## Resumed work")
        out("")
        out(
            f"- pairs replayed from the checkpoint result log "
            f"(excluded from skew/straggler/critical-path analysis): "
            f"{analysis.replayed_pairs}"
        )
        out("")

    if timings:
        out("## Measured timings (not deterministic)")
        out("")
        by_wall = analysis.stragglers_by_wall()
        if by_wall:
            out("| rank | pair | wall_s | cost | candidates |")
            out("|---|---|---|---|---|")
            for rank, p in enumerate(by_wall, 1):
                out(
                    f"| {rank} | {p.pair} | {_fmt(p.wall_s, 4)} | {p.cost} "
                    f"| {p.candidates} |"
                )
            out("")
        backoff = analysis.backoff_hist.summary()
        if backoff.get("count"):
            out(
                f"- retry backoff: count {backoff['count']}, "
                f"total {_fmt(backoff['sum'], 3)}s, "
                f"p50 {_fmt(backoff['p50'], 3)}s, "
                f"p90 {_fmt(backoff['p90'], 3)}s"
            )
        if analysis.phase_breakdown:
            out("")
            out("| phase | spans | cpu_s | io_s |")
            out("|---|---|---|---|")
            for phase in analysis.phase_breakdown:
                out(
                    f"| {phase['name']} | {phase['spans']} "
                    f"| {_fmt(phase['cpu_s'], 4)} | {_fmt(phase['io_s'], 4)} |"
                )
        out("")
        out("Journal event counts:")
        out("")
        for kind in sorted(analysis.event_counts):
            out(f"- {kind}: {analysis.event_counts[kind]}")
        out("")

    return "\n".join(lines).rstrip() + "\n"
