"""Fixed-capacity time series and the serve tier's telemetry sampler.

Post-hoc observability (journal, metrics snapshot, ``repro report``)
answers "what happened"; a resident server needs "what is happening".
This module is the live layer's storage: a :class:`RingBufferSeries`
keeps the last *N* ``(t, value)`` samples of one signal in constant
memory and answers windowed min/max/mean/quantile queries over exactly
the retained suffix; a :class:`TelemetrySampler` ticks a source callable
on an interval and fans its readings out into one series per signal; a
:class:`SlowLog` keeps the recent slowest queries with their phase
breakdown for the ``telemetry`` wire op and ``repro top``.

Everything here is deterministic under an injectable clock: the sampler
never calls ``time`` directly, quantiles are exact order statistics over
the retained values (sorted + linear interpolation, no bucketing), and
snapshots are plain sorted dicts — two samplers fed the same clock and
source readings produce byte-identical snapshots.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Dict, List, Mapping, Optional, Tuple

DEFAULT_CAPACITY = 240
"""Retained samples per series: four minutes of history at the default
one-second interval — enough for a dashboard, constant in memory."""

QUANTILES = (0.5, 0.9, 0.95, 0.99)
"""The window quantiles every stats dict reports, as ``p50``..``p99``."""


def quantile(values: List[float], q: float) -> Optional[float]:
    """Exact ``q``-quantile of ``values`` by linear interpolation.

    The rank is ``q * (n - 1)`` over the sorted values with the
    fractional part interpolated between neighbours (numpy's default,
    "linear" method).  Returns ``None`` for an empty list — the median
    of nothing is not 0.0.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not values:
        return None
    ordered = sorted(values)
    rank = q * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    fraction = rank - lo
    return ordered[lo] + (ordered[hi] - ordered[lo]) * fraction


class RingBufferSeries:
    """Last-``capacity`` ``(t, value)`` samples of one named signal.

    Append is O(1) into a preallocated slot; reads reconstruct the
    retained suffix oldest-first.  ``count_total`` keeps the lifetime
    append count so callers can tell "empty" from "wrapped past
    everything".
    """

    __slots__ = ("name", "capacity", "count_total", "_slots")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("series capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.count_total = 0
        self._slots: List[Optional[Tuple[float, float]]] = [None] * capacity

    def __len__(self) -> int:
        return min(self.count_total, self.capacity)

    def append(self, t: float, value: float) -> None:
        self._slots[self.count_total % self.capacity] = (t, float(value))
        self.count_total += 1

    def samples(self) -> List[Tuple[float, float]]:
        """Retained samples, oldest first."""
        n = len(self)
        if n < self.capacity:
            retained = self._slots[:n]
        else:
            start = self.count_total % self.capacity
            retained = self._slots[start:] + self._slots[:start]
        return [s for s in retained if s is not None]

    def values(
        self,
        window_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """Retained values oldest-first, optionally only those within
        ``window_s`` of ``now`` (default: the newest sample's time)."""
        samples = self.samples()
        if window_s is None or not samples:
            return [v for _t, v in samples]
        if now is None:
            now = samples[-1][0]
        horizon = now - window_s
        return [v for t, v in samples if t >= horizon]

    def last(self) -> Optional[float]:
        samples = self.samples()
        return samples[-1][1] if samples else None

    def window(
        self,
        window_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> dict:
        """Stats over the (windowed) retained suffix, one sorted dict."""
        values = self.values(window_s, now)
        stats: dict = {
            "count": len(values),
            "last": values[-1] if values else None,
            "min": min(values) if values else None,
            "max": max(values) if values else None,
            "mean": sum(values) / len(values) if values else None,
        }
        for q in QUANTILES:
            stats[f"p{int(q * 100)}"] = quantile(values, q)
        return stats


class SlowLog:
    """Ring-buffered record of completed queries, ranked by latency.

    :meth:`record` keeps the most recent ``capacity`` entries (a bounded
    window, so one pathological hour cannot pin the log forever);
    :meth:`top` ranks that window by latency descending.  Entries are
    plain dicts — the server records ``query``/``source``/``latency_s``
    plus a ``phases`` breakdown (queue wait, materialise, execute).
    """

    def __init__(self, top_k: int = 8, capacity: int = 128):
        if top_k < 1:
            raise ValueError("slow log needs top_k >= 1")
        if capacity < top_k:
            raise ValueError("slow log capacity must be >= top_k")
        self.top_k = top_k
        self.capacity = capacity
        self.count_total = 0
        self._entries: List[Optional[dict]] = [None] * capacity
        self._lock = threading.Lock()

    def record(self, entry: Mapping[str, object]) -> None:
        with self._lock:
            slot = self.count_total % self.capacity
            self._entries[slot] = dict(entry)
            self.count_total += 1

    def top(self, k: Optional[int] = None) -> List[dict]:
        """The ``k`` slowest retained entries, slowest first.  Ties break
        on recency (newer first) so the ordering is deterministic."""
        if k is None:
            k = self.top_k
        with self._lock:
            retained = [
                (i, dict(e))
                for i, e in enumerate(self._entries)
                if e is not None
            ]
        retained.sort(
            key=lambda pair: (-float(pair[1].get("latency_s", 0.0)), -pair[0])
        )
        return [entry for _i, entry in retained[:k]]


class TelemetrySampler:
    """Ticks a source callable and fans readings into per-signal series.

    ``source()`` returns one flat ``{name: value}`` mapping per tick;
    each name gets its own :class:`RingBufferSeries` (created on first
    appearance, so sources may report sparse signals — e.g. latency
    quantiles only on ticks that completed queries).  Sample times come
    from the injectable ``clock`` relative to the sampler's construction
    instant, so a scripted clock makes every snapshot byte-deterministic.

    :meth:`sample` is the manual tick tests and drills drive directly;
    :meth:`start` runs the same tick on ``interval_s`` in a daemon
    thread for the resident server.
    """

    def __init__(
        self,
        source: Callable[[], Mapping[str, float]],
        *,
        interval_s: float = 1.0,
        capacity: int = DEFAULT_CAPACITY,
        clock: Callable[[], float] = time.monotonic,
    ):
        if interval_s <= 0:
            raise ValueError("sample interval must be positive")
        self.source = source
        self.interval_s = interval_s
        self.capacity = capacity
        self.clock = clock
        self.epoch = clock()
        self.ticks = 0
        self._series: Dict[str, RingBufferSeries] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def series(self, name: str) -> RingBufferSeries:
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = RingBufferSeries(name, self.capacity)
                self._series[name] = series
            return series

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._series)

    def sample(self) -> Dict[str, float]:
        """One tick: read the source, append every signal, return the
        readings.  Signals the source omits this tick simply get no
        sample — their series keep their last values."""
        t = round(self.clock() - self.epoch, 6)
        readings = dict(self.source())
        for name in sorted(readings):
            value = readings[name]
            if value is None:
                continue
            self.series(name).append(t, float(value))
        self.ticks += 1
        return readings

    def snapshot(
        self,
        window_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Dict[str, dict]:
        """Window stats for every series, sorted by name."""
        return {
            name: self.series(name).window(window_s, now)
            for name in self.names()
        }

    # ------------------------------------------------------------------ #
    # background sampling (the resident server's mode)
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="telemetry-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.sample()
            except Exception:  # noqa: BLE001 — a bad tick must not kill sampling
                continue
