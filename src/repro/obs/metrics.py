"""Metrics registry: named counters, gauges and fixed-bucket histograms.

The quantities the paper's analysis keys on — candidates per partition
pair, key-pointers per partition (skew), refinement batch sizes — are
*distributions*, not single numbers, so the workhorse here is a
fixed-bucket :class:`Histogram`.  Counters and gauges cover the scalar
cases (total probes, chosen partition count).

Instrumented code asks the registry for instruments by name; asking twice
returns the same instrument, so call sites never coordinate.  A registry
built with ``enabled=False`` hands out shared no-op instruments — the hot
path pays one dict lookup and nothing else.  :data:`NULL_METRICS` is the
canonical disabled registry every driver defaults to.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence

DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536)
"""Power-of-two-ish upper bounds; wide enough for tuple and page counts."""

LATENCY_BUCKETS_S = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)
"""Seconds-scale bounds for latency histograms (retry backoff, task wall
times) — ``DEFAULT_BUCKETS`` starts at 1, which would fold every
sub-second observation into a single bucket."""


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram of observed values.

    ``buckets`` are inclusive upper bounds; observations above the last
    bound land in a final overflow bucket.  Tracks count/sum/min/max so
    means and extremes survive the bucketing.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        if list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be ascending")
        self.name = name
        self.bounds: List[float] = list(buckets)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (0 <= q <= 1) of the observations.

        Prometheus-style: find the bucket holding the target rank, then
        interpolate linearly inside it.  The estimate is clamped into
        ``[min, max]``, so the extremes are exact (and a single-sample
        histogram returns its one value for every q).  Returns ``None``
        for an empty histogram — there is no such thing as the median of
        nothing, and 0.0 would silently read as a real observation.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        assert self.min is not None and self.max is not None
        target = q * self.count
        cumulative = 0
        lower = self.min
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            upper = self.bounds[i] if i < len(self.bounds) else self.max
            if cumulative + n >= target:
                fraction = (target - cumulative) / n
                value = lower + (upper - lower) * max(0.0, fraction)
                return min(max(value, self.min), self.max)
            cumulative += n
            lower = upper
        return self.max

    def summary(self) -> dict:
        """Count/sum/mean/extremes plus the working quantiles, one dict.

        The shape the analyzer's straggler ranking and backoff reporting
        print from; ``None`` quantiles mean the histogram is empty.
        """
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": [
                {"le": bound, "count": n}
                for bound, n in zip([*self.bounds, "inf"], self.counts)
            ],
        }

    def delta(self, prev: Optional[dict]) -> dict:
        """This histogram's change since ``prev`` (a prior :meth:`snapshot`).

        Returns a snapshot-shaped dict describing only the observations
        made *after* ``prev`` was taken, so samplers can compute windowed
        rates and quantiles without re-reading cumulative totals.  An
        empty or ``None`` ``prev`` yields the full current snapshot; a
        ``prev`` with more observations than the present state (any
        regressed bucket) means the instrument restarted, and the whole
        current state is the delta — counter-reset semantics.
        """
        return histogram_delta(self.snapshot(), prev)

    @classmethod
    def from_snapshot(cls, data: dict, name: str = "") -> "Histogram":
        """Rebuild a histogram (quantiles and all) from a snapshot dict.

        The inverse of :meth:`snapshot`, used to take quantiles of a
        :meth:`delta` window.  Deltas carry bucket-edge min/max estimates
        rather than exact extremes, so quantiles of a rebuilt delta are
        bucket-resolution — the same resolution Prometheus offers.
        """
        bounds = [b["le"] for b in data["buckets"] if b["le"] != "inf"]
        hist = cls(name, bounds)
        hist.counts = [b["count"] for b in data["buckets"]]
        hist.count = data["count"]
        hist.total = data["sum"]
        hist.min = data["min"]
        hist.max = data["max"]
        return hist


def histogram_delta(cur: dict, prev: Optional[dict]) -> dict:
    """Difference of two histogram snapshots, as a snapshot-shaped dict.

    ``cur`` and ``prev`` must come from the same instrument (identical
    bucket bounds).  Min/max of the window are unknowable from bucket
    counts alone, so they are estimated from the edges of the first and
    last buckets the window touched (exact when ``prev`` is empty, since
    the window then spans the instrument's whole life).
    """
    if not prev or prev.get("type") != "histogram":
        return dict(cur)
    cur_bounds = [b["le"] for b in cur["buckets"]]
    prev_bounds = [b["le"] for b in prev["buckets"]]
    if cur_bounds != prev_bounds:
        raise ValueError(
            f"histogram delta: bucket bounds differ "
            f"({cur_bounds} vs {prev_bounds})"
        )
    cur_counts = [b["count"] for b in cur["buckets"]]
    prev_counts = [b["count"] for b in prev["buckets"]]
    regressed = prev["count"] > cur["count"] or any(
        p > c for p, c in zip(prev_counts, cur_counts)
    )
    if regressed:
        return dict(cur)
    counts = [c - p for c, p in zip(cur_counts, prev_counts)]
    count = cur["count"] - prev["count"]
    total = cur["sum"] - prev["sum"] if count else 0.0
    if count == 0:
        d_min: Optional[float] = None
        d_max: Optional[float] = None
    elif prev["count"] == 0:
        d_min, d_max = cur["min"], cur["max"]
    else:
        bounds = [b for b in cur_bounds if b != "inf"]
        nonzero = [i for i, n in enumerate(counts) if n]
        lo, hi = nonzero[0], nonzero[-1]
        d_min = bounds[lo - 1] if lo > 0 else cur["min"]
        d_max = bounds[hi] if hi < len(bounds) else cur["max"]
    return {
        "type": "histogram",
        "count": count,
        "sum": total,
        "min": d_min,
        "max": d_max,
        "mean": total / count if count else 0.0,
        "buckets": [
            {"le": bound, "count": n} for bound, n in zip(cur_bounds, counts)
        ],
    }


def snapshot_delta(
    cur: Dict[str, dict], prev: Optional[Dict[str, dict]]
) -> Dict[str, dict]:
    """Registry-level difference of two :meth:`MetricsRegistry.snapshot` s.

    Counters subtract (clamped to the current value on reset), gauges
    pass through their current reading (a gauge has no rate), histograms
    go through :func:`histogram_delta`.  Instruments absent from ``prev``
    contribute their full current state; instruments that vanished from
    ``cur`` are dropped — registries only grow in practice.
    """
    prev = prev or {}
    out: Dict[str, dict] = {}
    for name in sorted(cur):
        data = cur[name]
        kind = data.get("type")
        before = prev.get(name)
        if kind == "counter":
            prior = before["value"] if before and before.get("type") == "counter" else 0
            value = data["value"] - prior
            if value < 0:  # instrument restarted
                value = data["value"]
            out[name] = {"type": "counter", "value": value}
        elif kind == "gauge":
            out[name] = dict(data)
        elif kind == "histogram":
            before = before if before and before.get("type") == "histogram" else None
            out[name] = histogram_delta(data, before)
        else:
            out[name] = dict(data)
    return out


class _NullInstrument:
    """Answers every instrument API with a no-op / zero."""

    __slots__ = ()
    name = ""
    value = 0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> None:
        return None

    def summary(self) -> dict:
        return {}

    def snapshot(self) -> dict:
        return {}

    def delta(self, prev: Optional[dict]) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named instruments, created on first use; snapshot-able as one dict."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: Dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # instrument factories
    # ------------------------------------------------------------------ #

    def _get(self, name: str, factory):
        if not self.enabled:
            return _NULL_INSTRUMENT
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(name, lambda: Histogram(name, buckets))

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def snapshot(self) -> Dict[str, dict]:
        """All instruments as one JSON-ready mapping, sorted by name."""
        return {
            name: self._instruments[name].snapshot() for name in self.names()
        }

    def delta(self, prev: Optional[Dict[str, dict]]) -> Dict[str, dict]:
        """Change since ``prev`` (a prior :meth:`snapshot`) — see
        :func:`snapshot_delta`.  A disabled registry answers ``{}``."""
        if not self.enabled:
            return {}
        return snapshot_delta(self.snapshot(), prev)

    # ------------------------------------------------------------------ #
    # cross-process merging
    # ------------------------------------------------------------------ #

    def merge_snapshot(self, snapshot: Dict[str, dict]) -> None:
        """Fold another registry's :meth:`snapshot` into this registry.

        The serialized twin of the tracer's cross-process adoption: each
        worker process runs its own registry, ships ``snapshot()`` back with
        its task result, and the coordinator merges.  Counters add, gauges
        keep the last-merged value, histograms add bucket-by-bucket (bucket
        bounds must match, which they do for same-named instruments created
        by the same code).  Merging into a disabled registry is a no-op.
        """
        if not self.enabled:
            return
        for name, data in snapshot.items():
            kind = data.get("type")
            if kind == "counter":
                self.counter(name).inc(data["value"])
            elif kind == "gauge":
                self.gauge(name).set(data["value"])
            elif kind == "histogram":
                bounds = [b["le"] for b in data["buckets"] if b["le"] != "inf"]
                hist = self.histogram(name, bounds)
                if hist.bounds != bounds:
                    raise ValueError(
                        f"histogram {name!r}: bucket bounds differ "
                        f"({hist.bounds} vs {bounds})"
                    )
                for i, bucket in enumerate(data["buckets"]):
                    hist.counts[i] += bucket["count"]
                hist.count += data["count"]
                hist.total += data["sum"]
                for bound_name, better in (("min", min), ("max", max)):
                    incoming = data[bound_name]
                    if incoming is None:
                        continue
                    current = getattr(hist, bound_name)
                    setattr(
                        hist,
                        bound_name,
                        incoming if current is None else better(current, incoming),
                    )
            elif kind is None:
                continue  # a disabled worker registry snapshots to {}
            else:
                raise ValueError(f"unknown instrument type {kind!r} for {name!r}")


NULL_METRICS = MetricsRegistry(enabled=False)
"""Shared disabled registry — the default for every instrumented code path."""
