"""Cross-run observability warehouse: index, diff, and trend run artifacts.

Every run leaves durable evidence behind — engine run dirs with a
``journal.jsonl`` (and optional ``metrics.json``), serve roots with a
``serve.jsonl`` service journal, benchmarks with ``BENCH_*.json``
trajectory records.  Each artifact is self-describing but single-run;
regressions only show up when runs are compared *across* history.

:func:`scan_corpus` walks a directory tree and turns every artifact it
recognizes into a :class:`RunRecord`: a flat, deterministic
``identity`` (what the run was — dataset, seed, backend, layout) plus a
flat numeric ``metrics`` mapping (what it measured — phase timings,
fault/degrade/dedup counters, disk peaks, latency quantiles).  The
index is a pure function of file contents: same tree, same bytes out.

:func:`compare_runs` diffs two records metric-by-metric and
:func:`fit_trend` fits a least-squares slope over a metric's trajectory
across N runs — the ``repro runs compare`` CLI turns either into a
non-zero exit past a regression threshold, giving CI a trajectory gate
instead of a single committed baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .analyze import analyze_events
from .journal import read_journal
from .timeseries import quantile

ENGINE_JOURNAL_FILENAME = "journal.jsonl"
SERVE_JOURNAL_FILENAME = "serve.jsonl"
METRICS_FILENAME = "metrics.json"
BENCH_GLOB_PREFIX = "BENCH_"

KIND_ENGINE = "engine"
KIND_SERVE = "serve"
KIND_BENCH = "bench"

DEFAULT_GATE_THRESHOLD = 0.10
"""A gated metric regresses when ``b > a * (1 + threshold)``."""

_COUNTER_METRICS = {
    "merge.duplicates_dropped": "duplicates_dropped",
    "disk.budget.denials": "disk_denials",
    "disk.budget.charged_bytes": "disk_charged_bytes",
}
_GAUGE_METRICS = {
    "disk.budget.hwm_bytes": "disk_hwm_bytes",
    "disk.budget.used_bytes": "disk_used_bytes",
}


@dataclass
class RunRecord:
    """One indexed artifact: identity (what ran) + metrics (what it cost)."""

    run_id: str
    path: str
    kind: str
    identity: Dict[str, object] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "path": self.path,
            "kind": self.kind,
            "identity": {k: self.identity[k] for k in sorted(self.identity)},
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
        }


class CorpusError(Exception):
    """An artifact the indexer was pointed at directly is unusable."""


# --------------------------------------------------------------------- #
# per-artifact indexers
# --------------------------------------------------------------------- #


def index_engine_run(run_dir: "Path | str", run_id: Optional[str] = None) -> RunRecord:
    """Index one engine run directory (``journal.jsonl`` required)."""
    run_dir = Path(run_dir)
    journal_path = run_dir / ENGINE_JOURNAL_FILENAME
    if not journal_path.exists():
        raise CorpusError(f"no {ENGINE_JOURNAL_FILENAME} under {run_dir}")
    records = read_journal(journal_path)
    analysis = analyze_events(records, run_dir=str(run_dir))
    identity: Dict[str, object] = {
        "backend": analysis.backend,
        "workers": analysis.workers,
        "partitions": analysis.partitions,
        "tuples_r": analysis.tuples_r,
        "tuples_s": analysis.tuples_s,
        "resuming": analysis.resuming,
    }
    if analysis.disk_budget is not None:
        identity["disk_budget"] = analysis.disk_budget
    for key in ("dataset", "scale", "seed", "predicate", "query",
                "run_id", "source"):
        value = analysis.serve.get(key)
        if value is not None:
            identity[key] = value
    metrics: Dict[str, float] = {
        "results": analysis.results,
        "tasks": len(analysis.schedule),
        "makespan_cost": analysis.replay.makespan_cost,
        "total_cost": analysis.replay.total_cost,
        "faults_injected": len(analysis.fault_ledger),
        "retries": analysis.event_counts.get("retry", 0),
        "quarantined": len(analysis.quarantined_pairs),
        "degraded": len(analysis.degraded_pairs),
        "replayed": len(analysis.replayed_pairs),
        "checkpoint_commits": sum(analysis.checkpoint_commits.values()),
        "disk_pressure_events": len(analysis.disk_pressure),
        "disk_recoveries": len(analysis.disk_recoveries),
    }
    for record in records:
        if record.get("type") == "query_done" and record.get("latency_s") is not None:
            metrics["latency_s"] = float(record["latency_s"])
    metrics.update(_metrics_file_extract(run_dir))
    return RunRecord(
        run_id=run_id or run_dir.name,
        path=str(run_dir),
        kind=KIND_ENGINE,
        identity=identity,
        metrics=metrics,
    )


def index_serve_run(out_dir: "Path | str", run_id: Optional[str] = None) -> RunRecord:
    """Index one serve root (``serve.jsonl`` required): query tallies,
    per-source counts, latency quantiles over ``query_done`` events."""
    out_dir = Path(out_dir)
    journal_path = out_dir / SERVE_JOURNAL_FILENAME
    if not journal_path.exists():
        raise CorpusError(f"no {SERVE_JOURNAL_FILENAME} under {out_dir}")
    records = read_journal(journal_path)
    datasets: set = set()
    seeds: set = set()
    tallies: Dict[str, int] = {}
    sources: Dict[str, int] = {}
    latencies: List[float] = []
    scrub: Dict[str, int] = {}
    telemetry = {"ticks": 0, "queue_depth_max": 0, "inflight_max": 0}
    for record in records:
        kind = record.get("type")
        tallies[kind] = tallies.get(kind, 0) + 1
        if kind == "sample" and record.get("kind") == "telemetry":
            telemetry["ticks"] += 1
            telemetry["queue_depth_max"] = max(
                telemetry["queue_depth_max"], int(record.get("queued", 0) or 0)
            )
            telemetry["inflight_max"] = max(
                telemetry["inflight_max"], int(record.get("inflight", 0) or 0)
            )
        elif kind == "query_received":
            if record.get("dataset") is not None:
                datasets.add(str(record["dataset"]))
            if record.get("seed") is not None:
                seeds.add(int(record["seed"]))
        elif kind == "query_done":
            source = str(record.get("source", "?"))
            sources[source] = sources.get(source, 0) + 1
            if record.get("latency_s") is not None:
                latencies.append(float(record["latency_s"]))
        elif kind == "cache_scrub":
            scrub["passes"] = scrub.get("passes", 0) + 1
            for key in ("scanned", "repaired", "quarantined", "evicted"):
                scrub[key] = scrub.get(key, 0) + int(record.get(key, 0) or 0)
    identity: Dict[str, object] = {
        "datasets": sorted(datasets),
        "seeds": sorted(seeds),
    }
    metrics: Dict[str, float] = {
        "queries_received": tallies.get("query_received", 0),
        "queries_done": tallies.get("query_done", 0),
        "cache_hits": tallies.get("cache_hit", 0),
        "cache_evicts": tallies.get("cache_evict", 0),
        "deadline_exceeded": tallies.get("deadline_exceeded", 0),
        "breaker_transitions": tallies.get("breaker_transition", 0),
        "disk_pressure_events": tallies.get("disk_pressure", 0),
    }
    for source in sorted(sources):
        metrics[f"source.{source}"] = sources[source]
    for key in sorted(scrub):
        metrics[f"scrub.{key}"] = scrub[key]
    if telemetry["ticks"]:
        metrics["telemetry_ticks"] = telemetry["ticks"]
        metrics["queue_depth_max"] = telemetry["queue_depth_max"]
        metrics["inflight_max"] = telemetry["inflight_max"]
    if latencies:
        metrics["latency_count"] = len(latencies)
        metrics["latency_mean_s"] = round(sum(latencies) / len(latencies), 6)
        for q, label in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
            value = quantile(latencies, q)
            assert value is not None
            metrics[f"latency_{label}_s"] = round(value, 6)
        metrics["latency_max_s"] = round(max(latencies), 6)
    return RunRecord(
        run_id=run_id or out_dir.name,
        path=str(out_dir),
        kind=KIND_SERVE,
        identity=identity,
        metrics=metrics,
    )


def index_bench_file(path: "Path | str", run_id: Optional[str] = None) -> List[RunRecord]:
    """Index one ``BENCH_*.json`` file: one record per benchmark cell,
    phase timings flattened to ``phase.<name>.cpu_s`` / ``.io_s`` so
    Table 4-style breakdowns become comparable trajectories."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise CorpusError(f"{path}: not JSON ({exc})") from exc
    if not isinstance(data, dict) or not isinstance(data.get("records"), list):
        raise CorpusError(f"{path}: not a BENCH file (no records list)")
    base = run_id or path.stem
    out: List[RunRecord] = []
    for i, record in enumerate(data["records"]):
        identity: Dict[str, object] = {
            "benchmark": data.get("benchmark"),
            "schema_version": data.get("schema_version"),
        }
        for key in ("algorithm", "scale", "buffer_mb", "buffer_mb_scaled"):
            if record.get(key) is not None:
                identity[key] = record[key]
        metrics: Dict[str, float] = {}
        for key in ("total_s", "cpu_s", "io_s", "candidates", "result_count"):
            if record.get(key) is not None:
                metrics[key] = record[key]
        for key, value in sorted((record.get("counters") or {}).items()):
            if isinstance(value, (int, float)):
                metrics[f"counter.{key}"] = value
        for phase in record.get("phases") or []:
            name = phase.get("name", "?")
            for key in ("cpu_s", "io_s", "page_reads", "page_writes", "seeks"):
                if phase.get(key) is not None:
                    metrics[f"phase.{name}.{key}"] = phase[key]
        for block in ("faults", "disk"):
            for key, value in sorted((record.get(block) or {}).items()):
                if isinstance(value, bool):
                    metrics[f"{block}.{key}"] = int(value)
                elif isinstance(value, (int, float)):
                    metrics[f"{block}.{key}"] = value
        out.append(
            RunRecord(
                run_id=f"{base}#{i}",
                path=str(path),
                kind=KIND_BENCH,
                identity=identity,
                metrics=metrics,
            )
        )
    return out


def _metrics_file_extract(run_dir: Path) -> Dict[str, float]:
    """Headline counters/gauges from a run dir's ``metrics.json`` (the
    dedup pin and the disk peaks), if the run recorded one."""
    path = run_dir / METRICS_FILENAME
    if not path.exists():
        return {}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except ValueError:
        return {}
    snapshot = data.get("metrics", data) if isinstance(data, dict) else {}
    if not isinstance(snapshot, dict):
        return {}
    out: Dict[str, float] = {}
    for source, target in sorted(_COUNTER_METRICS.items()):
        entry = snapshot.get(source)
        if isinstance(entry, dict) and isinstance(entry.get("value"), (int, float)):
            out[target] = entry["value"]
    for source, target in sorted(_GAUGE_METRICS.items()):
        entry = snapshot.get(source)
        if isinstance(entry, dict) and isinstance(entry.get("value"), (int, float)):
            out[target] = entry["value"]
    return out


# --------------------------------------------------------------------- #
# the corpus scan
# --------------------------------------------------------------------- #


def index_path(path: "Path | str") -> RunRecord:
    """Index a single artifact the user pointed at directly.

    A directory with a ``serve.jsonl`` is a serve root; with a
    ``journal.jsonl``, an engine run; a ``*.json`` file, a BENCH file
    (multi-record files merge with ``<algorithm>.``-prefixed metrics so
    one comparable record comes back).
    """
    given = str(path)
    path = Path(path)
    if path.is_dir():
        if (path / SERVE_JOURNAL_FILENAME).exists():
            return index_serve_run(path, run_id=given)
        if (path / ENGINE_JOURNAL_FILENAME).exists():
            return index_engine_run(path, run_id=given)
        raise CorpusError(
            f"{path}: neither {SERVE_JOURNAL_FILENAME} nor "
            f"{ENGINE_JOURNAL_FILENAME} found"
        )
    if path.is_file():
        records = index_bench_file(path)
        if not records:
            raise CorpusError(f"{path}: BENCH file with no records")
        if len(records) == 1:
            record = records[0]
            record.run_id = path.stem
            return record
        merged = RunRecord(
            run_id=path.stem,
            path=str(path),
            kind=KIND_BENCH,
            identity={"benchmark": records[0].identity.get("benchmark"),
                      "cells": len(records)},
        )
        for i, record in enumerate(records):
            prefix = str(record.identity.get("algorithm", i))
            for key in sorted(record.metrics):
                merged.metrics[f"{prefix}.{key}"] = record.metrics[key]
        return merged
    raise CorpusError(f"{path}: no such run artifact")


def scan_corpus(root: "Path | str") -> List[RunRecord]:
    """Index every recognizable artifact under ``root``, sorted by
    ``(kind, path, run_id)``.  Artifacts that fail to parse are skipped —
    a half-written journal must not poison the whole warehouse."""
    root = Path(root)
    records: List[RunRecord] = []
    if not root.exists():
        return records
    candidates = [root] + sorted(
        (p for p in root.rglob("*") if p.is_dir()), key=lambda p: str(p)
    )
    for directory in candidates:
        rel = directory.relative_to(root).as_posix() or "."
        if (directory / SERVE_JOURNAL_FILENAME).exists():
            try:
                record = index_serve_run(directory, run_id=rel)
            except (CorpusError, OSError, ValueError):
                continue
            record.path = rel
            records.append(record)
        if (directory / ENGINE_JOURNAL_FILENAME).exists():
            try:
                record = index_engine_run(directory, run_id=rel)
            except (CorpusError, OSError, ValueError):
                continue
            record.path = rel
            records.append(record)
    bench_files = sorted(
        (p for p in root.rglob(f"{BENCH_GLOB_PREFIX}*.json") if p.is_file()),
        key=lambda p: str(p),
    )
    for path in bench_files:
        rel = path.relative_to(root).as_posix()
        try:
            cells = index_bench_file(path, run_id=rel)
        except (CorpusError, OSError, ValueError):
            continue
        for record in cells:
            record.path = rel
            records.append(record)
    records.sort(key=lambda r: (r.kind, r.path, r.run_id))
    return records


def find_record(records: Sequence[RunRecord], run_id: str) -> Optional[RunRecord]:
    for record in records:
        if record.run_id == run_id:
            return record
    return None


# --------------------------------------------------------------------- #
# diffing and trending
# --------------------------------------------------------------------- #


def compare_runs(
    a: RunRecord,
    b: RunRecord,
    metrics: Optional[Sequence[str]] = None,
) -> List[dict]:
    """Metric-by-metric diff rows over the union of both records' keys.

    Each row carries both readings plus ``delta`` (b - a) and ``ratio``
    (b / a) when they are computable.  ``metrics`` restricts the rows to
    the named keys, in the given order.
    """
    keys: List[str] = (
        list(metrics)
        if metrics
        else sorted(set(a.metrics) | set(b.metrics))
    )
    rows: List[dict] = []
    for key in keys:
        va = a.metrics.get(key)
        vb = b.metrics.get(key)
        row: dict = {"metric": key, "a": va, "b": vb}
        if va is not None and vb is not None:
            row["delta"] = round(vb - va, 9)
            if va:
                row["ratio"] = round(vb / va, 6)
        rows.append(row)
    return rows


def check_gates(
    rows: Sequence[dict],
    gates: Sequence[str],
    threshold: float = DEFAULT_GATE_THRESHOLD,
) -> List[str]:
    """Regression messages for each gated metric; empty means pass.

    A gate fires when ``b > a * (1 + threshold)`` — higher is worse for
    everything worth gating (latency, wall time, retries, disk peaks).
    A gated metric missing from either side fires too: a gate that
    cannot read its metric must fail loudly, not pass silently.
    """
    by_metric = {row["metric"]: row for row in rows}
    failures: List[str] = []
    for gate in gates:
        row = by_metric.get(gate)
        if row is None or row.get("a") is None or row.get("b") is None:
            failures.append(f"gate {gate}: metric missing from one side")
            continue
        limit = row["a"] * (1.0 + threshold)
        if row["b"] > limit:
            failures.append(
                f"gate {gate}: {_fmt_num(row['b'])} exceeds "
                f"{_fmt_num(row['a'])} by more than {threshold:.0%}"
            )
    return failures


def fit_trend(values: Sequence[float]) -> dict:
    """Least-squares line over ``values`` at x = 0..n-1.

    ``slope_frac`` normalizes the slope by the mean magnitude, so "this
    metric grows 3% per run" reads directly against a threshold.
    """
    n = len(values)
    if n < 2:
        return {
            "n": n,
            "slope": 0.0,
            "intercept": values[0] if values else 0.0,
            "mean": values[0] if values else 0.0,
            "slope_frac": 0.0,
        }
    mean_x = (n - 1) / 2.0
    mean_y = sum(values) / n
    sxx = sum((i - mean_x) ** 2 for i in range(n))
    sxy = sum((i - mean_x) * (v - mean_y) for i, v in enumerate(values))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    magnitude = sum(abs(v) for v in values) / n
    return {
        "n": n,
        "slope": round(slope, 9),
        "intercept": round(intercept, 9),
        "mean": round(mean_y, 9),
        "slope_frac": round(slope / magnitude, 9) if magnitude else 0.0,
    }


# --------------------------------------------------------------------- #
# deterministic text rendering
# --------------------------------------------------------------------- #


def _fmt_num(value) -> str:
    if value is None:
        return "-"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    text = f"{number:.6f}".rstrip("0").rstrip(".")
    return text if text not in ("", "-") else "0"


def render_list(records: Sequence[RunRecord]) -> str:
    lines = ["# runs"]
    if not records:
        lines.append("(no runs found)")
        return "\n".join(lines) + "\n"
    for record in records:
        headline = ""
        for key in ("latency_p50_s", "total_s", "results", "queries_done"):
            if key in record.metrics:
                headline = f"  {key}={_fmt_num(record.metrics[key])}"
                break
        lines.append(
            f"{record.kind:<6} {record.run_id}  "
            f"[{len(record.metrics)} metrics]{headline}"
        )
    return "\n".join(lines) + "\n"


def render_show(record: RunRecord) -> str:
    lines = [
        f"# run {record.run_id}",
        f"kind: {record.kind}",
        f"path: {record.path}",
        "",
        "## identity",
    ]
    for key in sorted(record.identity):
        lines.append(f"- {key}: {json.dumps(record.identity[key], sort_keys=True)}")
    lines.append("")
    lines.append("## metrics")
    for key in sorted(record.metrics):
        lines.append(f"- {key}: {_fmt_num(record.metrics[key])}")
    return "\n".join(lines) + "\n"


def render_compare(a: RunRecord, b: RunRecord, rows: Sequence[dict]) -> str:
    lines = [
        "# runs compare",
        f"a: {a.run_id} ({a.kind})",
        f"b: {b.run_id} ({b.kind})",
        "",
        f"{'metric':<32} {'a':>14} {'b':>14} {'delta':>14} {'ratio':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row['metric']:<32} {_fmt_num(row.get('a')):>14} "
            f"{_fmt_num(row.get('b')):>14} {_fmt_num(row.get('delta')):>14} "
            f"{_fmt_num(row.get('ratio')):>8}"
        )
    return "\n".join(lines) + "\n"


def render_trend(metric: str, run_ids: Sequence[str], values: Sequence[float],
                 trend: dict) -> str:
    lines = [
        "# runs trend",
        f"metric: {metric}",
        f"n: {trend['n']}",
        f"mean: {_fmt_num(trend['mean'])}",
        f"slope: {_fmt_num(trend['slope'])} per run "
        f"({trend['slope_frac'] * 100:+.2f}% of mean)",
        "",
    ]
    for run_id, value in zip(run_ids, values):
        lines.append(f"{run_id:<40} {_fmt_num(value):>14}")
    return "\n".join(lines) + "\n"
