"""The join manifest: one run's durable identity and artifact lifecycle.

A :class:`JoinManifest` is an append-only event log with a header:

* **frame 0 — the header**: the manifest format version plus the run's
  :class:`RunFingerprint` — everything that determines the join's answer
  (input cardinalities and content CRCs, the predicate, the partitioning
  grid, the full PBSM config).  Two runs with the same fingerprint are
  the same join, so their partition spills and committed pair results are
  interchangeable; a resume against a different fingerprint must refuse.
* **frames 1..n — events**: ``spills_sealed`` (one side's partition spill
  files hit disk, with per-file sizes and record counts), ``phase`` (the
  coordinator advanced its state machine), ``complete`` (the join
  finished, with its result count).

On disk every frame uses the spill format's ``<len><crc32>payload``
framing, and the whole file is only ever replaced through the atomic
write-ahead protocol (:func:`repro.storage.disk.atomic_write_bytes`), so
a crash leaves either the previous manifest or the new one — and if
something *does* tear the bytes (a fault injector, a dying disk), the
loader's contract is strict: it returns a manifest built from an intact
**prefix** of the event log, or raises
:class:`~repro.storage.errors.ManifestCorruptionError`.  It never returns
wrong state — the Hypothesis corruption suite flips every byte to hold it
to that.

The derived state machine (``created → partitioned → merging →
complete``) is never stored; it is recomputed from the events, so there
is no second copy to disagree with the log.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import zlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.pbsm import PBSMConfig
from ..core.predicates import Predicate
from ..storage.errors import ManifestCorruptionError, SpillCorruptionError
from ..storage.spill import TORN_TAIL_TRUNCATE, pack_frame, read_frames_bytes
from ..storage.tuples import SpatialTuple, serialize_tuple

MANIFEST_VERSION = 1

HEADER_TYPE = "pbsm-join-manifest"

EVENT_TYPES = ("spills_sealed", "phase", "complete")
"""Every event kind the loader will accept; anything else is corruption."""

STATE_CREATED = "created"
STATE_PARTITIONED = "partitioned"
STATE_MERGING = "merging"
STATE_COMPLETE = "complete"

STATES = (STATE_CREATED, STATE_PARTITIONED, STATE_MERGING, STATE_COMPLETE)

PARTITION_LAYOUT = "two-layer-v1"
"""The current partition/spill layout generation, part of the fingerprint.

``two-layer-v1``: one tagged ``(tile, class)`` key-pointer per overlapped
tile, duplicate-free merge.  Artifacts written under an older layout
(``replicate-dedup-v0``: one untagged key-pointer per overlapped
*partition*, sorted-set dedup at the coordinator) describe different
spill bytes and per-pair result logs, so they must never be adopted by a
resume or served from the artifact cache — a layout bump changes the
fingerprint digest, turning every stale artifact into a cache miss."""


@dataclass(frozen=True)
class RunFingerprint:
    """Everything that determines a join's answer, hashed for identity.

    Worker count, retry budgets, and timeouts are deliberately *excluded*:
    they change how fast the answer arrives, never what it is, so a run
    checkpointed with 2 workers can resume with 8.  The partition
    ``layout`` *is* included: per-pair artifacts only replay cleanly
    against the layout that wrote them.
    """

    count_r: int
    count_s: int
    crc_r: int
    crc_s: int
    predicate: str
    num_partitions: int
    config: Dict[str, object]
    layout: str = PARTITION_LAYOUT

    @classmethod
    def compute(
        cls,
        tuples_r: Sequence[SpatialTuple],
        tuples_s: Sequence[SpatialTuple],
        predicate: Predicate,
        num_partitions: int,
        config: PBSMConfig,
    ) -> "RunFingerprint":
        return cls(
            count_r=len(tuples_r),
            count_s=len(tuples_s),
            crc_r=_crc_side(tuples_r),
            crc_s=_crc_side(tuples_s),
            predicate=getattr(predicate, "__name__", repr(predicate)),
            num_partitions=num_partitions,
            config=dataclasses.asdict(config),
            layout=PARTITION_LAYOUT,
        )

    def to_dict(self) -> dict:
        return {
            "count_r": self.count_r,
            "count_s": self.count_s,
            "crc_r": self.crc_r,
            "crc_s": self.crc_s,
            "predicate": self.predicate,
            "num_partitions": self.num_partitions,
            "config": dict(self.config),
            "layout": self.layout,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunFingerprint":
        return cls(
            count_r=int(data["count_r"]),
            count_s=int(data["count_s"]),
            crc_r=int(data["crc_r"]),
            crc_s=int(data["crc_s"]),
            predicate=str(data["predicate"]),
            num_partitions=int(data["num_partitions"]),
            config=dict(data["config"]),
            # Pre-two-layer manifests carry no layout field; name their
            # layout explicitly so they load for inspection/GC but can
            # never fingerprint-match (and thus never be adopted by) a
            # current run.
            layout=str(data.get("layout", "replicate-dedup-v0")),
        )

    @property
    def digest(self) -> str:
        payload = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()

    @property
    def run_id(self) -> str:
        """The checkpoint directory name: stable, collision-resistant."""
        return f"run-{self.digest[:12]}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RunFingerprint) and self.to_dict() == other.to_dict()
        )


def _crc_side(tuples: Sequence[SpatialTuple]) -> int:
    """Order-sensitive CRC32 over one input's serialized tuples."""
    crc = 0
    for t in tuples:
        crc = zlib.crc32(serialize_tuple(t), crc)
    return crc


class JoinManifest:
    """Header + event log; all state is derived from the events."""

    def __init__(
        self,
        fingerprint: RunFingerprint,
        events: Optional[Sequence[dict]] = None,
    ):
        self.fingerprint = fingerprint
        self.events: List[dict] = [dict(e) for e in (events or [])]
        self.recovered_torn_tail = False
        """Set by the loader when a torn tail was truncated away."""

    # ------------------------------------------------------------------ #
    # derived state
    # ------------------------------------------------------------------ #

    @property
    def state(self) -> str:
        state = STATE_CREATED
        sealed = set()
        for event in self.events:
            kind = event["type"]
            if kind == "complete":
                return STATE_COMPLETE
            if kind == "phase":
                state = event["state"]
            elif kind == "spills_sealed":
                sealed.add(event["side"])
                if sealed >= {"r", "s"} and state == STATE_CREATED:
                    state = STATE_PARTITIONED
        return state

    def sealed(self, side: str) -> Optional[dict]:
        """The latest seal event for one side (a re-partition supersedes)."""
        found = None
        for event in self.events:
            if event["type"] == "spills_sealed" and event["side"] == side:
                found = event
        return found

    @property
    def pairs_total(self) -> Optional[int]:
        """Partition-pair task count, known once merging began."""
        for event in reversed(self.events):
            if event["type"] == "phase" and event["state"] == STATE_MERGING:
                return event.get("pairs_total")
        return None

    @property
    def result_count(self) -> Optional[int]:
        for event in reversed(self.events):
            if event["type"] == "complete":
                return event.get("result_count")
        return None

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def apply(self, event: dict) -> dict:
        if event.get("type") not in EVENT_TYPES:
            raise ValueError(f"unknown manifest event type {event.get('type')!r}")
        self.events.append(dict(event))
        return event

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #

    def to_bytes(self) -> bytes:
        header = {
            "type": HEADER_TYPE,
            "version": MANIFEST_VERSION,
            "fingerprint": self.fingerprint.to_dict(),
        }
        frames = [pack_frame(_encode(header))]
        frames.extend(pack_frame(_encode(event)) for event in self.events)
        return b"".join(frames)

    @classmethod
    def from_bytes(cls, data: bytes, *, label: str = "manifest") -> "JoinManifest":
        """Load a manifest: an intact event-log prefix, or a typed error.

        A framing violation whose damage reaches the end of the bytes is a
        torn tail (the atomic protocol was interrupted by something that
        bypassed it): the events before it are the manifest.  A violation
        mid-log, a damaged header, or a CRC-valid frame that is not a
        well-formed event mean the bytes cannot be trusted at all —
        :class:`ManifestCorruptionError`.
        """
        torn: List[SpillCorruptionError] = []
        try:
            records = list(
                read_frames_bytes(
                    data,
                    label=label,
                    torn_tail=TORN_TAIL_TRUNCATE,
                    on_torn_tail=torn.append,
                )
            )
        except SpillCorruptionError as exc:
            raise ManifestCorruptionError(
                f"manifest framing corrupt mid-log: {exc}",
                path=label, frame_index=exc.frame_index,
            ) from exc
        if not records:
            raise ManifestCorruptionError(
                "manifest has no intact header frame", path=label, frame_index=0
            )
        header = _decode(records[0], label, 0)
        if (
            header.get("type") != HEADER_TYPE
            or header.get("version") != MANIFEST_VERSION
            or not isinstance(header.get("fingerprint"), dict)
        ):
            raise ManifestCorruptionError(
                f"manifest header is not a version-{MANIFEST_VERSION} "
                f"{HEADER_TYPE} record",
                path=label, frame_index=0,
            )
        try:
            fingerprint = RunFingerprint.from_dict(header["fingerprint"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestCorruptionError(
                f"manifest fingerprint is malformed: {exc}",
                path=label, frame_index=0,
            ) from exc
        events = []
        for index, record in enumerate(records[1:], start=1):
            event = _decode(record, label, index)
            if event.get("type") not in EVENT_TYPES:
                raise ManifestCorruptionError(
                    f"manifest frame {index} has unknown event type "
                    f"{event.get('type')!r}",
                    path=label, frame_index=index,
                )
            events.append(event)
        manifest = cls(fingerprint, events)
        manifest.recovered_torn_tail = bool(torn)
        return manifest


def _encode(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def _decode(record: bytes, label: str, frame_index: int) -> dict:
    """A CRC-valid frame must still be a JSON object to be believed."""
    try:
        payload = json.loads(record.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ManifestCorruptionError(
            f"manifest frame {frame_index} is not JSON: {exc}",
            path=label, frame_index=frame_index,
        ) from exc
    if not isinstance(payload, dict):
        raise ManifestCorruptionError(
            f"manifest frame {frame_index} is not an object",
            path=label, frame_index=frame_index,
        )
    return payload
