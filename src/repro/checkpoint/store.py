"""The checkpoint store: one run's durable files, and the ordinal clock.

A :class:`CheckpointStore` owns the on-disk layout of one fingerprinted
run under the user's checkpoint directory::

    <checkpoint_dir>/
      run-<sha256[:12]>/          one directory per distinct join
        manifest.bin              framed event log, atomically rewritten
        results.log               framed pair results, append + fsync
        spills/                   partition spill files (adoptable)

Every **durable operation** — a manifest rewrite or a result-log append —
ticks the store's *checkpoint ordinal*.  That clock is what makes crash
testing deterministic: the fault layer's coordinator-kill and torn-manifest
injection points are keyed by ordinal ("die after durable op 4"), so a
test can kill the coordinator at every distinct recovery state the
protocol can be in, not at whatever wall-clock moment a signal lands.

The store deliberately knows nothing about fault plans; it only reports
each durable op to an ``on_durable(ordinal, path, kind)`` callback, which
the coordinator wires to the fault gate (and could equally wire to a
progress bar).  It also charges an optional :class:`SimulatedDisk` for
each durable write, so checkpointed experiments see durability in their
modeled I/O time.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..obs.journal import (
    EVENT_CHECKPOINT_COMMIT,
    EVENT_DISK_FULL_RECOVERED,
    EVENT_DISK_PRESSURE,
    NULL_JOURNAL,
)
from ..storage.disk import SimulatedDisk, atomic_write_bytes
from ..storage.errors import (
    DiskFullError,
    ManifestCorruptionError,
    SpillCorruptionError,
)
from ..storage.spill import sweep_orphan_spills

from .manifest import STATE_COMPLETE, JoinManifest, RunFingerprint
from .resultlog import ResultLog, replay_result_log

if TYPE_CHECKING:  # imported only for typing to avoid a package cycle
    from ..parallel.tasks import PairTaskResult

MANIFEST_FILENAME = "manifest.bin"
RESULTS_FILENAME = "results.log"
SPILL_DIRNAME = "spills"

RUN_DIR_PREFIX = "run-"

DURABLE_MANIFEST = "manifest"
DURABLE_RESULT = "result"

OnDurable = Callable[[int, str, str], None]
"""(checkpoint ordinal, path written, kind) — observed *after* the op."""


class CheckpointMismatchError(RuntimeError):
    """``--resume`` pointed at checkpoints for a *different* join.

    Raised when the checkpoint directory holds run state but none of it
    matches the current inputs/config fingerprint.  Resuming anyway would
    silently join the wrong data, so this is an error, not a fresh start —
    the caller must either fix their inputs or pick a new directory.
    """

    def __init__(self, run_id: str, found: List[str]):
        super().__init__(
            f"checkpoint directory has no state for {run_id} "
            f"(found: {', '.join(found) or 'nothing'}); refusing to resume a "
            f"different join's checkpoints"
        )
        self.run_id = run_id
        self.found = found


class CheckpointStore:
    """Durable file manager for one fingerprinted run."""

    def __init__(
        self,
        root: "Path | str",
        fingerprint: RunFingerprint,
        *,
        disk: Optional[SimulatedDisk] = None,
        on_durable: Optional[OnDurable] = None,
        journal=NULL_JOURNAL,
        budget=None,
    ):
        self.root = Path(root)
        self.fingerprint = fingerprint
        self.disk = disk
        self.on_durable = on_durable
        self.journal = journal
        self.budget = budget
        """Optional :class:`~repro.storage.pressure.DiskBudget` every
        durable write charges under ``checkpoint`` before touching disk.
        A denied write triggers one round of sibling-run garbage
        collection (completed runs in the same directory are finished
        with) and one retry before the denial propagates."""
        self._manifest_charged = 0
        """Flight recorder for ``checkpoint_commit`` events; the journal
        entry lands *before* ``on_durable`` runs, so a fault gate that
        kills the coordinator at this ordinal leaves the commit on
        record — the post-mortem sees exactly how far durability got."""
        self.run_dir = self.root / fingerprint.run_id
        self.manifest_path = self.run_dir / MANIFEST_FILENAME
        self.results_path = self.run_dir / RESULTS_FILENAME
        self.spill_dir = self.run_dir / SPILL_DIRNAME
        self.manifest: Optional[JoinManifest] = None
        self.ordinal = 0
        """Durable operations completed by *this* coordinator process."""
        self._results: Optional[ResultLog] = None

    # ------------------------------------------------------------------ #
    # the ordinal clock
    # ------------------------------------------------------------------ #

    def _durable(self, path: Path, kind: str, nbytes: int) -> int:
        self.ordinal += 1
        if self.disk is not None:
            self.disk.charge_durable_write(nbytes)
        self.journal.emit(
            EVENT_CHECKPOINT_COMMIT,
            ordinal=self.ordinal, kind=kind, file=path.name, bytes=nbytes,
        )
        if self.on_durable is not None:
            self.on_durable(self.ordinal, str(path), kind)
        return self.ordinal

    # ------------------------------------------------------------------ #
    # manifest
    # ------------------------------------------------------------------ #

    def load(self) -> Optional[JoinManifest]:
        """Read the manifest back, or ``None`` when this run has none.

        Propagates :class:`ManifestCorruptionError`; a torn tail is
        recovered silently (``manifest.recovered_torn_tail`` reports it).
        """
        if not self.manifest_path.exists():
            return None
        data = self.manifest_path.read_bytes()
        manifest = JoinManifest.from_bytes(data, label=str(self.manifest_path))
        self.manifest = manifest
        return manifest

    def begin(self, manifest: JoinManifest) -> None:
        """Adopt ``manifest`` as this run's state and persist it (durable)."""
        self.manifest = manifest
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        self._rewrite_manifest()

    def append_event(self, event: dict) -> dict:
        """Apply one event to the manifest and atomically persist (durable)."""
        assert self.manifest is not None, "store has no manifest; call begin()"
        applied = self.manifest.apply(event)
        self._rewrite_manifest()
        return applied

    def _rewrite_manifest(self) -> None:
        assert self.manifest is not None
        data = self.manifest.to_bytes()
        # The disk charge is folded into _durable; atomic_write_bytes only
        # performs the real-filesystem protocol here.
        self._write_durable(
            lambda: atomic_write_bytes(
                self.manifest_path, data, budget=self.budget
            ),
            DURABLE_MANIFEST,
        )
        if self.budget is not None:
            # The rename replaced the previous manifest; its bytes left
            # the disk, so return them to the budget.
            self.budget.release(self._manifest_charged, "checkpoint")
            self._manifest_charged = len(data)
        self._durable(self.manifest_path, DURABLE_MANIFEST, len(data))

    # ------------------------------------------------------------------ #
    # result log
    # ------------------------------------------------------------------ #

    def append_result(self, result: "PairTaskResult") -> None:
        """Durably commit one pair result (append + fsync; durable)."""
        if self._results is None:
            self._results = ResultLog(self.results_path, budget=self.budget)
        nbytes = self._write_durable(
            lambda: self._results.append(result), DURABLE_RESULT
        )
        self._durable(self.results_path, DURABLE_RESULT, nbytes)

    # ------------------------------------------------------------------ #
    # storage-pressure recovery
    # ------------------------------------------------------------------ #

    def _write_durable(self, write, kind: str):
        """Run a budget-charged write, recovering once from a denial.

        A :class:`DiskFullError` triggers garbage collection of completed
        sibling runs (a finished run's checkpoints exist only to be
        adopted; under pressure, finishing *this* run wins) and one
        retry.  A second denial propagates — there is nothing left to
        free at this layer.
        """
        try:
            return write()
        except DiskFullError:
            self.journal.emit(
                EVENT_DISK_PRESSURE, category="checkpoint", kind=kind
            )
            freed = self.reclaim_completed_siblings()
            result = write()
            self.journal.emit(
                EVENT_DISK_FULL_RECOVERED,
                category="checkpoint", kind=kind,
                action="sibling_gc", bytes_freed=freed,
            )
            return result

    def reclaim_completed_siblings(self) -> int:
        """Delete completed sibling run directories; returns bytes freed."""
        freed = 0
        for info in inspect_checkpoint_dir(self.root):
            if info.run_id == self.fingerprint.run_id or not info.complete:
                continue
            shutil.rmtree(info.path, ignore_errors=True)
            freed += info.bytes_total
            if self.budget is not None:
                self.budget.release(info.bytes_total, "checkpoint")
        return freed

    def replay_results(
        self,
        *,
        on_torn_tail: Optional[Callable[[SpillCorruptionError], None]] = None,
    ) -> Tuple[Dict[int, "PairTaskResult"], bool]:
        """Committed results keyed by pair index (see
        :func:`~repro.checkpoint.resultlog.replay_result_log`)."""
        return replay_result_log(self.results_path, on_torn_tail=on_torn_tail)

    def discard_results(self) -> None:
        """Drop an untrustworthy result log: every pair gets requeued."""
        if self._results is not None:
            self._results.close()
            self._results = None
        try:
            self.results_path.unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------ #
    # housekeeping
    # ------------------------------------------------------------------ #

    def sweep_orphans(self) -> List[str]:
        """Collect unsealed ``*.tmp`` files a dead writer left in this run."""
        return sweep_orphan_spills(self.run_dir)

    def sibling_run_ids(self) -> List[str]:
        """Other runs' ids present in the same checkpoint directory."""
        return [
            p.name
            for p in sorted(self.root.glob(f"{RUN_DIR_PREFIX}*"))
            if p.is_dir() and p.name != self.fingerprint.run_id
        ]

    def close(self) -> None:
        if self._results is not None:
            self._results.close()
            self._results = None

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# directory-level inspection (the `repro checkpoints` subcommand)
# ---------------------------------------------------------------------- #


@dataclass
class CheckpointInfo:
    """One run directory's summary, as listed by ``repro checkpoints``."""

    run_id: str
    path: str
    state: str
    pairs_done: int
    pairs_total: Optional[int]
    result_count: Optional[int]
    bytes_total: int
    mtime: float
    error: str = ""
    """Non-empty when the manifest (or result log) could not be trusted."""

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "path": self.path,
            "state": self.state,
            "pairs_done": self.pairs_done,
            "pairs_total": self.pairs_total,
            "result_count": self.result_count,
            "bytes_total": self.bytes_total,
            "mtime": self.mtime,
            "error": self.error,
        }

    @property
    def complete(self) -> bool:
        return self.state == STATE_COMPLETE


@dataclass
class GCReport:
    removed: List[str] = field(default_factory=list)
    kept: List[str] = field(default_factory=list)
    bytes_freed: int = 0


def select_lru_victims(
    infos: List[CheckpointInfo],
    max_bytes: int,
    *,
    pinned: "frozenset[str] | set[str]" = frozenset(),
    recency: Optional[Dict[str, int]] = None,
) -> List[CheckpointInfo]:
    """The one LRU-by-bytes eviction policy for run directories.

    Both ``repro checkpoints gc --max-bytes`` and the serving tier's
    artifact cache (:mod:`repro.serve.cache`) call this, so CLI pruning
    and service eviction can never disagree about who dies first.

    Victims are chosen least-recently-used first until the total size of
    the surviving runs fits ``max_bytes``.  ``recency`` maps run ids to a
    logical use clock (the serve cache's touch counter); runs absent from
    it fall back to manifest mtime and always evict before any touched
    run.  Runs named in ``pinned`` are never selected — an in-use entry
    must survive even if the budget stays blown.
    """
    if max_bytes < 0:
        raise ValueError("max_bytes cannot be negative")
    total = sum(info.bytes_total for info in infos)

    def age_key(info: CheckpointInfo):
        if recency is not None and info.run_id in recency:
            return (1, recency[info.run_id], info.run_id)
        return (0, info.mtime, info.run_id)

    victims: List[CheckpointInfo] = []
    for info in sorted(infos, key=age_key):
        if total <= max_bytes:
            break
        if info.run_id in pinned:
            continue
        victims.append(info)
        total -= info.bytes_total
    return victims


def _dir_bytes(path: Path) -> int:
    total = 0
    for child in path.rglob("*"):
        if child.is_file():
            try:
                total += child.stat().st_size
            except OSError:
                continue
    return total


def inspect_checkpoint_dir(root: "Path | str") -> List[CheckpointInfo]:
    """Summarise every run directory under ``root`` (corrupt ones included)."""
    root = Path(root)
    infos: List[CheckpointInfo] = []
    for run_dir in sorted(root.glob(f"{RUN_DIR_PREFIX}*")):
        if not run_dir.is_dir():
            continue
        manifest_path = run_dir / MANIFEST_FILENAME
        state = "unknown"
        pairs_total: Optional[int] = None
        result_count: Optional[int] = None
        error = ""
        try:
            mtime = manifest_path.stat().st_mtime
        except OSError:
            mtime = run_dir.stat().st_mtime
        if manifest_path.exists():
            try:
                manifest = JoinManifest.from_bytes(
                    manifest_path.read_bytes(), label=str(manifest_path)
                )
                state = manifest.state
                pairs_total = manifest.pairs_total
                result_count = manifest.result_count
            except ManifestCorruptionError as exc:
                state = "corrupt"
                error = str(exc)
        else:
            state = "missing-manifest"
            error = "no manifest.bin in run directory"
        pairs_done = 0
        try:
            committed, _torn = replay_result_log(run_dir / RESULTS_FILENAME)
            pairs_done = len(committed)
        except ManifestCorruptionError as exc:
            error = error or f"result log untrustworthy: {exc}"
        infos.append(
            CheckpointInfo(
                run_id=run_dir.name,
                path=str(run_dir),
                state=state,
                pairs_done=pairs_done,
                pairs_total=pairs_total,
                result_count=result_count,
                bytes_total=_dir_bytes(run_dir),
                mtime=mtime,
                error=error,
            )
        )
    return infos


def gc_checkpoint_dir(
    root: "Path | str",
    *,
    run_id: Optional[str] = None,
    all_runs: bool = False,
    max_bytes: Optional[int] = None,
    dry_run: bool = False,
) -> GCReport:
    """Delete run directories that are finished with (or named explicitly).

    By default only ``complete`` runs are collected — an interrupted run's
    checkpoints are exactly what a resume needs, so they are kept unless
    the caller names the run or passes ``all_runs=True``.

    ``max_bytes`` switches to size-based pruning instead: runs are evicted
    least-recently-used first (by manifest mtime) until the directory fits
    the budget, complete or not — the same policy, via the same
    :func:`select_lru_victims`, that the serving tier's artifact cache
    applies between queries.

    ``dry_run`` runs the identical selection — same inspection, same
    victim policy — but deletes nothing: the report's ``removed`` lists
    what *would* be collected, so an operator can preview a gc with the
    exact code that will later perform it.
    """
    report = GCReport()
    infos = inspect_checkpoint_dir(root)
    if max_bytes is not None:
        if run_id is not None or all_runs:
            raise ValueError(
                "--max-bytes is its own policy; combine it with neither a "
                "run id nor --all"
            )
        victims = {v.run_id for v in select_lru_victims(infos, max_bytes)}
    else:
        victims = None
    for info in infos:
        if victims is not None:
            collect = info.run_id in victims
        elif run_id is not None:
            collect = info.run_id == run_id
        elif all_runs:
            collect = True
        else:
            collect = info.complete
        if collect:
            if not dry_run:
                shutil.rmtree(info.path, ignore_errors=True)
            report.removed.append(info.run_id)
            report.bytes_freed += info.bytes_total
        else:
            report.kept.append(info.run_id)
    return report
