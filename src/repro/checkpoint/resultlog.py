"""The per-pair result log: committed merge work, append-only and framed.

The manifest records *lifecycle*; this log records *output*.  Every time a
partition-pair merge+refine completes at the coordinator — whether a
worker returned it, a retry salvaged it, or the degraded path rebuilt it —
its :class:`~repro.parallel.tasks.PairTaskResult` is appended here as one
framed, checksummed JSON record and fsynced before the coordinator
considers the pair *committed*.  A resume replays the log to learn which
pairs never need merging again, and re-adopts their spans and metrics so
the observability story of a resumed run covers the whole join.

Unlike the manifest, this file is never rewritten: appends are cheap and a
torn final frame (the coordinator died mid-append) is exactly the torn-tail
case the spill framing already recovers — the pair whose append tore was
never committed, so dropping it is correct, not lossy.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING, BinaryIO, Callable, Dict, List, Optional, Tuple

from ..storage.errors import ManifestCorruptionError, SpillCorruptionError
from ..storage.spill import TORN_TAIL_TRUNCATE, pack_frame, read_spill

from .manifest import _decode, _encode

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from ..parallel.tasks import PairTaskResult

RESULT_RECORD_TYPE = "pair_result"


def result_to_wire(result: "PairTaskResult") -> dict:
    """A committed pair result as one JSON-safe log record."""
    return {
        "type": RESULT_RECORD_TYPE,
        "index": result.index,
        "worker_pid": result.worker_pid,
        "pairs": [list(p) for p in result.pairs],
        "candidates": result.candidates,
        "count_r": result.count_r,
        "count_s": result.count_s,
        "wall_s": result.wall_s,
        "attempt": result.attempt,
        "degraded": result.degraded,
        "degraded_reason": result.degraded_reason,
        "duplicates_dropped": result.duplicates_dropped,
        "spans": result.spans,
        "metrics": result.metrics,
    }


def result_from_wire(payload: dict) -> "PairTaskResult":
    from ..parallel.tasks import PairTaskResult

    if payload.get("type") != RESULT_RECORD_TYPE:
        raise ValueError(
            f"result-log record has type {payload.get('type')!r}, "
            f"expected {RESULT_RECORD_TYPE!r}"
        )
    return PairTaskResult(
        index=int(payload["index"]),
        worker_pid=int(payload["worker_pid"]),
        pairs=[(int(a), int(b)) for a, b in payload["pairs"]],
        candidates=int(payload["candidates"]),
        count_r=int(payload["count_r"]),
        count_s=int(payload["count_s"]),
        wall_s=float(payload["wall_s"]),
        attempt=int(payload["attempt"]),
        degraded=bool(payload["degraded"]),
        degraded_reason=str(payload["degraded_reason"]),
        duplicates_dropped=int(payload.get("duplicates_dropped", 0)),
        spans=list(payload.get("spans", [])),
        metrics=dict(payload.get("metrics", {})),
    )


class ResultLog:
    """Append-only writer for the result log; one fsync per commit.

    With a ``budget`` (:class:`~repro.storage.pressure.DiskBudget`) every
    frame is charged under ``checkpoint`` *before* it is written, so a
    denied commit raises :class:`~repro.storage.errors.DiskFullError`
    with the log unchanged — the pair simply was never committed.
    """

    def __init__(self, path: "Path | str", *, budget=None):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.budget = budget
        self._fh: Optional[BinaryIO] = self.path.open("ab")

    def append(self, result: "PairTaskResult", *, fsync: bool = True) -> int:
        """Durably commit one pair result; returns the bytes appended."""
        assert self._fh is not None, "result log is closed"
        frame = pack_frame(_encode(result_to_wire(result)))
        if self.budget is not None:
            self.budget.charge(len(frame), "checkpoint")
        self._fh.write(frame)
        self._fh.flush()
        if fsync:
            os.fsync(self._fh.fileno())
        return len(frame)

    def close(self) -> None:
        if self._fh is not None:
            fh, self._fh = self._fh, None
            fh.close()

    def __enter__(self) -> "ResultLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def replay_result_log(
    path: "Path | str",
    *,
    on_torn_tail: Optional[Callable[[SpillCorruptionError], None]] = None,
) -> Tuple[Dict[int, "PairTaskResult"], bool]:
    """Read back the committed pair results, keyed by pair index.

    A torn final frame is a clean end of log (the interrupted append never
    committed); ``on_torn_tail`` observes it and the second return value
    reports it.  Mid-log damage or a CRC-valid record that is not a
    well-formed result means the log cannot be trusted and raises
    :class:`ManifestCorruptionError` — the caller discards the log and
    requeues every pair, trading redone work for a guaranteed-correct
    answer.  Duplicate indexes keep the first occurrence: the first append
    is the one whose commit the coordinator acted on.
    """
    path = Path(path)
    committed: Dict[int, PairTaskResult] = {}
    torn: List[SpillCorruptionError] = []
    if not path.exists():
        return committed, False
    label = str(path)
    try:
        records = list(
            read_spill(path, torn_tail=TORN_TAIL_TRUNCATE, on_torn_tail=torn.append)
        )
    except SpillCorruptionError as exc:
        raise ManifestCorruptionError(
            f"result log corrupt mid-file: {exc}",
            path=label, frame_index=exc.frame_index,
        ) from exc
    for index, record in enumerate(records):
        payload = _decode(record, label, index)
        try:
            result = result_from_wire(payload)
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestCorruptionError(
                f"result log frame {index} is not a pair result: {exc}",
                path=label, frame_index=index,
            ) from exc
        committed.setdefault(result.index, result)
    if torn and on_torn_tail is not None:
        for error in torn:
            on_torn_tail(error)
    return committed, bool(torn)
