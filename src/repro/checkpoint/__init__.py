"""Durable checkpoint/resume: crash-safe coordinator state for PBSM joins.

The multiprocess backend's coordinator can die — a crashed host, an OOM
kill, an operator's ctrl-C — and before this package existed, everything
it had already paid for (partitioning both inputs, every merged partition
pair) died with it.  ``repro.checkpoint`` makes that work durable:

* :class:`~repro.checkpoint.manifest.RunFingerprint` — the join's identity
  (input CRCs, predicate, grid, config), so state can never be resumed
  into a *different* join;
* :class:`~repro.checkpoint.manifest.JoinManifest` — a framed,
  checksummed event log recording the lifecycle of every artifact, only
  ever replaced via the atomic temp-write/fsync/rename protocol;
* :class:`~repro.checkpoint.resultlog.ResultLog` — append-only committed
  pair results, fsynced per commit;
* :class:`~repro.checkpoint.store.CheckpointStore` — the run directory
  and the *checkpoint ordinal* clock that the fault layer keys
  coordinator-kill and torn-manifest injections to.

The invariant the whole package serves: for any kill point and any fault
plan within budget, **kill + resume produces byte-identical join results
to an uninterrupted run** — the resumed coordinator re-merges only the
pairs that never committed.
"""

from .manifest import (
    EVENT_TYPES,
    MANIFEST_VERSION,
    STATE_COMPLETE,
    STATE_CREATED,
    STATE_MERGING,
    STATE_PARTITIONED,
    STATES,
    JoinManifest,
    RunFingerprint,
)
from .resultlog import ResultLog, replay_result_log, result_from_wire, result_to_wire
from .store import (
    MANIFEST_FILENAME,
    RESULTS_FILENAME,
    RUN_DIR_PREFIX,
    SPILL_DIRNAME,
    CheckpointInfo,
    CheckpointMismatchError,
    CheckpointStore,
    GCReport,
    gc_checkpoint_dir,
    inspect_checkpoint_dir,
    select_lru_victims,
)

__all__ = [
    "EVENT_TYPES",
    "MANIFEST_FILENAME",
    "MANIFEST_VERSION",
    "RESULTS_FILENAME",
    "RUN_DIR_PREFIX",
    "SPILL_DIRNAME",
    "STATES",
    "STATE_COMPLETE",
    "STATE_CREATED",
    "STATE_MERGING",
    "STATE_PARTITIONED",
    "CheckpointInfo",
    "CheckpointMismatchError",
    "CheckpointStore",
    "GCReport",
    "JoinManifest",
    "ResultLog",
    "RunFingerprint",
    "gc_checkpoint_dir",
    "inspect_checkpoint_dir",
    "replay_result_log",
    "result_from_wire",
    "result_to_wire",
    "select_lru_victims",
]
