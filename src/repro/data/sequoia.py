"""Synthetic Sequoia-2000-style polygon and island data (§4.3, Table 3).

The Sequoia polygon set holds 58,115 regions of homogeneous land use in
California/Nevada (avg 46 points per polygon); the island set holds holes in
those polygons — e.g. a lake in a park — averaging 35 points.  The paper's
query joins them with a *containment* predicate, producing 25,260 result
tuples, and its refinement step dominates total cost (79% for PBSM).

The generator tessellates a California-like universe with star-convex
land-use blobs on a jittered grid, gives a fraction of them a hole
("swiss-cheese" polygons), and drops islands inside most polygons (plus a
fraction of stray, uncontained islands), preserving the workload's
character: a containment join with heavy per-candidate geometry.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Tuple

import numpy as np

from ..geometry import Polygon, Rect
from ..storage.tuples import SpatialTuple

CALIFORNIA = Rect(-124.4, 32.5, -114.1, 42.0)
"""Rough lon/lat bounding box of California — the generator's universe."""

FULL_POLYGON_COUNT = 58_115
FULL_ISLAND_COUNT = 21_000

POLYGON_AVG_POINTS = 46
ISLAND_AVG_POINTS = 35

HOLE_FRACTION = 0.10
"""Fraction of land-use polygons that carry one hole."""

STRAY_ISLAND_FRACTION = 0.15
"""Fraction of islands deliberately placed outside any intended parent."""

CATEGORY_LANDUSE = 10
CATEGORY_ISLAND = 11

_LAYOUT_SEED = 1996_06
"""Seed of the centre layout, shared by the polygon and island generators."""


def _radial_polygon(
    cx: float,
    cy: float,
    radius: float,
    npoints: int,
    rng: np.random.Generator,
    min_frac: float = 0.55,
) -> List[Tuple[float, float]]:
    """A star-convex simple polygon around a centre."""
    npoints = max(3, npoints)
    angles = np.sort(rng.uniform(0.0, 2.0 * math.pi, npoints))
    # Enforce distinct angles so consecutive vertices never coincide.
    angles = angles + np.arange(npoints) * 1e-9
    radii = rng.uniform(min_frac * radius, radius, npoints)
    return [
        (cx + r * math.cos(a), cy + r * math.sin(a))
        for a, r in zip(angles, radii)
    ]


def _grid_layout(count: int, universe: Rect) -> Tuple[int, int, float, float]:
    """Cells arranged to roughly match the universe aspect ratio."""
    aspect = universe.width / universe.height
    rows = max(1, int(math.sqrt(count / aspect)))
    cols = max(1, math.ceil(count / rows))
    return rows, cols, universe.width / cols, universe.height / rows


def _landuse_centres(
    count: int, universe: Rect
) -> Tuple[List[Tuple[float, float]], float, Tuple[int, int, float, float]]:
    """Jittered-grid polygon centres, deterministic in the layout seed.

    Computed identically by both generators so islands can target their
    parent polygons without regenerating the polygons themselves.
    """
    rng = np.random.default_rng(_LAYOUT_SEED)
    rows, cols, cw, ch = _grid_layout(count, universe)
    cell_radius = 0.62 * min(cw, ch)
    centres = []
    for i in range(count):
        row, col = divmod(i, cols)
        cx = universe.xl + (col + 0.5) * cw + rng.normal(0.0, 0.08 * cw)
        cy = universe.yl + (row + 0.5) * ch + rng.normal(0.0, 0.08 * ch)
        centres.append((cx, cy))
    return centres, cell_radius, (rows, cols, cw, ch)


def generate_landuse_polygons(
    scale: float = 0.01,
    seed: int = 404,
    universe: Rect = CALIFORNIA,
) -> Iterator[SpatialTuple]:
    """Yield the land-use polygons (the paper's "polygon" data set)."""
    count = max(1, round(FULL_POLYGON_COUNT * scale))
    centres, cell_radius, _layout = _landuse_centres(count, universe)
    rng = np.random.default_rng(seed)
    for i, (cx, cy) in enumerate(centres):
        npoints = max(8, int(rng.poisson(POLYGON_AVG_POINTS)))
        shell = _radial_polygon(cx, cy, cell_radius, npoints, rng)
        holes: List[List[Tuple[float, float]]] = []
        if rng.random() < HOLE_FRACTION:
            # A small hole offset from the centre, safely inside the shell.
            hx = cx + rng.uniform(-0.15, 0.15) * cell_radius
            hy = cy + rng.uniform(-0.15, 0.15) * cell_radius
            holes.append(
                _radial_polygon(hx, hy, 0.12 * cell_radius, 12, rng, min_frac=0.7)
            )
        yield SpatialTuple(
            feature_id=i,
            category=CATEGORY_LANDUSE,
            name=f"landuse-{i}",
            geom=Polygon(shell, holes),
        )


def generate_islands(
    scale: float = 0.01,
    seed: int = 505,
    universe: Rect = CALIFORNIA,
) -> Iterator[SpatialTuple]:
    """Yield the island polygons, most contained in some land-use polygon.

    Containment is arranged constructively: an island is a small star-convex
    polygon centred near a land-use polygon's centre with radius well under
    that polygon's minimum shell radius.  A :data:`STRAY_ISLAND_FRACTION` of
    islands is placed at cell corners instead, where they usually cross
    polygon boundaries and fail the exact containment test — giving the
    filter step genuine false positives to weed out.  Islands whose intended
    parent carries a hole near its centre may also fail containment; the
    refinement step is the arbiter either way.
    """
    poly_count = max(1, round(FULL_POLYGON_COUNT * scale))
    count = max(1, round(FULL_ISLAND_COUNT * scale))
    centres, cell_radius, (rows, cols, cw, ch) = _landuse_centres(
        poly_count, universe
    )
    rng = np.random.default_rng(seed)
    for i in range(count):
        npoints = max(6, int(rng.poisson(ISLAND_AVG_POINTS)))
        if rng.random() < STRAY_ISLAND_FRACTION:
            # Straddle a cell corner: rarely contained in anything.
            col = int(rng.integers(0, cols))
            row = int(rng.integers(0, rows))
            cx = universe.xl + col * cw
            cy = universe.yl + row * ch
            radius = 0.25 * cell_radius
        else:
            parent = int(rng.integers(0, poly_count))
            px, py = centres[parent]
            cx = px + rng.uniform(-0.08, 0.08) * cell_radius
            cy = py + rng.uniform(-0.08, 0.08) * cell_radius
            # Min shell radius is 0.55 * cell_radius; stay clearly inside.
            radius = rng.uniform(0.10, 0.30) * cell_radius
        shell = _radial_polygon(cx, cy, radius, npoints, rng, min_frac=0.6)
        yield SpatialTuple(
            feature_id=i,
            category=CATEGORY_ISLAND,
            name=f"island-{i}",
            geom=Polygon(shell),
        )
