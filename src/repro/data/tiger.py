"""Synthetic TIGER/Line-style Wisconsin data (§4.3, Table 2).

The paper extracts three polyline data sets from the 1992 TIGER/Line files
for Wisconsin:

======  ========  ========  ===========  ==========
set     tuples    size      avg points   R*-tree
======  ========  ========  ===========  ==========
Road    456,613   62.4 MB   8            24.0 MB
Hydro   122,149   25.2 MB   19           6.5 MB
Rail     16,844    2.4 MB   7            1.0 MB
======  ========  ========  ===========  ==========

The generator reproduces the cardinality *ratios*, average point counts and
skewed spatial distribution at a configurable ``scale`` (scale 1.0 is the
full paper-sized data; the default benchmarks run at a few percent of that,
which is what a pure-Python engine sustains).  Everything is deterministic
in the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from ..geometry import Polyline, Rect
from ..storage.tuples import SpatialTuple
from .distributions import ClusteredDistribution

WISCONSIN = Rect(-92.9, 42.49, -86.80, 47.08)
"""Rough lon/lat bounding box of Wisconsin — the generator's universe."""

FULL_ROAD_COUNT = 456_613
FULL_HYDRO_COUNT = 122_149
FULL_RAIL_COUNT = 16_844

ROAD_AVG_POINTS = 8
HYDRO_AVG_POINTS = 19
RAIL_AVG_POINTS = 7

_NUM_CLUSTERS = 20

REFERENCE_SCALE = 0.02
"""Scale at which the feature step sizes below are calibrated.

At other scales the step is multiplied by ``sqrt(REFERENCE_SCALE / scale)``
so that the expected number of road/hydro intersections per road stays
constant — the property that keeps the join selectivity paper-like (result
cardinality ~7-12% of the road count) at every scale.
"""

CATEGORY_ROAD = 1
CATEGORY_HYDRO = 2
CATEGORY_RAIL = 3


@dataclass(frozen=True)
class PolylineSpec:
    """Shape parameters for one TIGER feature class."""

    category: int
    name_prefix: str
    avg_points: int
    min_points: int
    step: float          # typical segment length, in degrees
    wander: float        # direction jitter per step, radians


ROAD_SPEC = PolylineSpec(CATEGORY_ROAD, "road", ROAD_AVG_POINTS, 2, 0.0010, 0.5)
HYDRO_SPEC = PolylineSpec(CATEGORY_HYDRO, "hydro", HYDRO_AVG_POINTS, 4, 0.0030, 0.9)
RAIL_SPEC = PolylineSpec(CATEGORY_RAIL, "rail", RAIL_AVG_POINTS, 2, 0.0020, 0.2)


def _distribution(seed: int) -> ClusteredDistribution:
    rng = np.random.default_rng(seed)
    return ClusteredDistribution.synthesize(
        WISCONSIN, _NUM_CLUSTERS, rng, background_weight=0.15
    )


def _clip(value: float, lo: float, hi: float) -> float:
    return lo if value < lo else hi if value > hi else value


def generate_polylines(
    spec: PolylineSpec,
    count: int,
    seed: int,
    universe: Rect = WISCONSIN,
    step_scale: float = 1.0,
) -> Iterator[SpatialTuple]:
    """Yield ``count`` random-walk polylines of the given feature class.

    All classes share the same cluster layout (same base seed) so roads,
    rivers and rails concentrate in the same metro areas and actually
    intersect — the property the join selectivities depend on.
    """
    dist = _distribution(seed=7_1996)  # shared cluster layout
    rng = np.random.default_rng(seed)
    step_base = spec.step * step_scale
    for i in range(count):
        npoints = max(spec.min_points, int(rng.poisson(spec.avg_points)))
        x, y = dist.sample_point(rng)
        heading = rng.uniform(0.0, 2.0 * np.pi)
        points: List[Tuple[float, float]] = [(x, y)]
        for _ in range(npoints - 1):
            heading += rng.normal(0.0, spec.wander)
            step = step_base * rng.uniform(0.4, 1.6)
            x = _clip(x + step * np.cos(heading), universe.xl, universe.xu)
            y = _clip(y + step * np.sin(heading), universe.yl, universe.yu)
            points.append((x, y))
        if len(points) < 2 or _degenerate(points):
            points = [(x, y), (x + step_base, y + step_base)]
            points = [
                (_clip(px, universe.xl, universe.xu), _clip(py, universe.yl, universe.yu))
                for px, py in points
            ]
            if points[0] == points[1]:
                points[1] = (points[0][0] - step_base, points[0][1])
        yield SpatialTuple(
            feature_id=i,
            category=spec.category,
            name=f"{spec.name_prefix}-{i}",
            geom=Polyline(points),
        )


def _degenerate(points: List[Tuple[float, float]]) -> bool:
    first = points[0]
    return all(p == first for p in points)


def scaled_counts(scale: float) -> Tuple[int, int, int]:
    """(roads, hydro, rail) cardinalities at the given scale factor."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    return (
        max(1, round(FULL_ROAD_COUNT * scale)),
        max(1, round(FULL_HYDRO_COUNT * scale)),
        max(1, round(FULL_RAIL_COUNT * scale)),
    )


def _step_scale(scale: float) -> float:
    return (REFERENCE_SCALE / scale) ** 0.5


def generate_roads(scale: float = 0.01, seed: int = 101) -> Iterator[SpatialTuple]:
    count, _, _ = scaled_counts(scale)
    return generate_polylines(ROAD_SPEC, count, seed, step_scale=_step_scale(scale))


def generate_hydrography(scale: float = 0.01, seed: int = 202) -> Iterator[SpatialTuple]:
    _, count, _ = scaled_counts(scale)
    return generate_polylines(HYDRO_SPEC, count, seed, step_scale=_step_scale(scale))


def generate_rail(scale: float = 0.01, seed: int = 303) -> Iterator[SpatialTuple]:
    _, _, count = scaled_counts(scale)
    return generate_polylines(RAIL_SPEC, count, seed, step_scale=_step_scale(scale))
