"""Spatial point distributions for the synthetic data generators.

The TIGER data is heavily skewed — most features cluster around population
centres (the paper's Figure 2 motivation: "most of the tuples are in the top
left corner").  We model that with a Gaussian-mixture-over-centres plus a
uniform background, all driven by a seeded ``numpy`` generator so datasets
are fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..geometry import Rect


@dataclass(frozen=True)
class Cluster:
    cx: float
    cy: float
    sigma: float
    weight: float


class ClusteredDistribution:
    """Mixture of Gaussian clusters with a uniform background component."""

    def __init__(
        self,
        universe: Rect,
        clusters: List[Cluster],
        background_weight: float = 0.1,
    ):
        if not clusters:
            raise ValueError("need at least one cluster")
        if not 0.0 <= background_weight < 1.0:
            raise ValueError("background weight must be in [0, 1)")
        self.universe = universe
        self.clusters = clusters
        self.background_weight = background_weight
        total = sum(c.weight for c in clusters)
        self._probs = np.array([c.weight / total for c in clusters])

    @staticmethod
    def synthesize(
        universe: Rect,
        num_clusters: int,
        rng: np.random.Generator,
        background_weight: float = 0.1,
    ) -> "ClusteredDistribution":
        """Random centres with Zipf-ish weights (one dominant metro area)."""
        clusters = []
        for rank in range(num_clusters):
            cx = rng.uniform(universe.xl, universe.xu)
            cy = rng.uniform(universe.yl, universe.yu)
            sigma = rng.uniform(0.02, 0.06) * min(universe.width, universe.height)
            weight = 1.0 / (rank + 1)
            clusters.append(Cluster(cx, cy, sigma, weight))
        return ClusteredDistribution(universe, clusters, background_weight)

    def sample_point(self, rng: np.random.Generator) -> Tuple[float, float]:
        u = self.universe
        if rng.random() < self.background_weight:
            return (rng.uniform(u.xl, u.xu), rng.uniform(u.yl, u.yu))
        idx = rng.choice(len(self.clusters), p=self._probs)
        c = self.clusters[idx]
        x = float(np.clip(rng.normal(c.cx, c.sigma), u.xl, u.xu))
        y = float(np.clip(rng.normal(c.cy, c.sigma), u.yl, u.yu))
        return (x, y)

    def sample_points(self, n: int, rng: np.random.Generator) -> List[Tuple[float, float]]:
        return [self.sample_point(rng) for _ in range(n)]


def uniform_point(universe: Rect, rng: np.random.Generator) -> Tuple[float, float]:
    return (
        rng.uniform(universe.xl, universe.xu),
        rng.uniform(universe.yl, universe.yu),
    )
