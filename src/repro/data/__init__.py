"""Deterministic synthetic data: TIGER-style polylines, Sequoia-style polygons."""

from .distributions import Cluster, ClusteredDistribution, uniform_point
from .loader import load_relation, make_sequoia_datasets, make_tiger_datasets
from .sequoia import (
    CALIFORNIA,
    generate_islands,
    generate_landuse_polygons,
)
from .tiger import (
    WISCONSIN,
    generate_hydrography,
    generate_polylines,
    generate_rail,
    generate_roads,
    scaled_counts,
)

__all__ = [
    "CALIFORNIA",
    "WISCONSIN",
    "Cluster",
    "ClusteredDistribution",
    "generate_hydrography",
    "generate_islands",
    "generate_landuse_polygons",
    "generate_polylines",
    "generate_rail",
    "generate_roads",
    "load_relation",
    "make_sequoia_datasets",
    "make_tiger_datasets",
    "scaled_counts",
    "uniform_point",
]
