"""Loading generated tuples into relations, clustered or not.

§4.3: "to study the effect of clustering on the join inputs, the second
collection was formed by spatially sorting the objects in the first
collection."  :func:`load_relation` with ``clustered=True`` does exactly
that — tuples are Hilbert-sorted on their MBR centres before being appended,
so physical page order matches spatial order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..geometry import CurveMapper, Rect
from ..storage.database import Database
from ..storage.relation import Relation
from ..storage.tuples import SpatialTuple
from . import sequoia, tiger


def load_relation(
    db: Database,
    name: str,
    tuples: Iterable[SpatialTuple],
    clustered: bool = False,
) -> Relation:
    """Create a relation and load it, optionally spatially sorted."""
    items: List[SpatialTuple] = list(tuples)
    if clustered and items:
        universe = Rect.union_all(t.mbr for t in items)
        mapper = CurveMapper(universe)
        items.sort(key=lambda t: mapper.hilbert_of_rect(t.mbr))
    rel = db.create_relation(name)
    rel.bulk_load(items)
    return rel


def make_tiger_datasets(
    db: Database,
    scale: float = 0.01,
    clustered: bool = False,
    include: Iterable[str] = ("road", "hydro", "rail"),
    seed: Optional[int] = None,
) -> Dict[str, Relation]:
    """Load the Wisconsin TIGER-style collection into a database.

    With ``seed`` each feature class draws from ``seed + <class offset>``
    instead of its built-in default, so whole alternative-but-reproducible
    worlds are one integer away (``python -m repro demo --seed 7``).
    """
    generators = {
        "road": tiger.generate_roads,
        "hydro": tiger.generate_hydrography,
        "rail": tiger.generate_rail,
    }
    offsets = {"road": 0, "hydro": 1, "rail": 2}
    out: Dict[str, Relation] = {}
    for key in include:
        tuples = (
            generators[key](scale)
            if seed is None
            else generators[key](scale, seed=seed + offsets[key])
        )
        out[key] = load_relation(db, key, tuples, clustered)
    return out


def make_sequoia_datasets(
    db: Database,
    scale: float = 0.01,
    clustered: bool = False,
    seed: Optional[int] = None,
) -> Dict[str, Relation]:
    """Load the Sequoia-style polygon and island sets into a database."""
    polygons = (
        sequoia.generate_landuse_polygons(scale)
        if seed is None
        else sequoia.generate_landuse_polygons(scale, seed=seed)
    )
    islands = (
        sequoia.generate_islands(scale)
        if seed is None
        else sequoia.generate_islands(scale, seed=seed + 1)
    )
    return {
        "polygon": load_relation(db, "polygon", polygons, clustered),
        "island": load_relation(db, "island", islands, clustered),
    }
