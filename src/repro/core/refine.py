"""The refinement step (§3.2), shared by PBSM and the R-tree join.

Input: candidate ``<OID_R, OID_S>`` pairs from a filter step (possibly with
duplicates from tile replication).  The step:

1. sorts the pairs on ``OID_R`` (primary) / ``OID_S`` (secondary) —
   eliminating duplicates during the sort.  When the pair set exceeds the
   memory budget the sort runs externally (sorted runs spilled through the
   buffer pool, k-way merged);
2. reads as many distinct R tuples as fit in the memory budget, in physical
   order (sequential I/O);
3. "swizzles" the pair array to point at the in-memory R tuples and re-sorts
   the batch on ``OID_S``, making the S accesses sequential too;
4. fetches the S tuples and evaluates the exact join predicate.

This is the [Val87]-style strategy the paper uses to avoid random seeks.
"""

from __future__ import annotations

import heapq
import struct
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, TypeVar

from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..storage.extsort import ExternalSorter
from ..storage.relation import OID, Relation
from ..storage.tuples import SpatialTuple, tuple_size_bytes
from .predicates import Predicate

# Big-endian packing makes lexicographic byte order equal pair order, so
# packed records sort correctly without unpacking in the sorter's key.
_PAIR = struct.Struct(">IIIIII")

CandidatePair = Tuple[OID, OID]

T = TypeVar("T")


def merge_sorted_unique(lists: Sequence[Sequence[T]]) -> Tuple[List[T], int]:
    """K-way merge of sorted lists into one sorted list, counting dups.

    Returns ``(merged, dropped)`` where ``dropped`` is the number of
    duplicate entries removed.  Under two-layer partitioning every result
    pair is emitted by exactly one partition pair, so the streams are
    disjoint and ``dropped`` must read 0 — the coordinator surfaces it as
    ``merge.duplicates_dropped`` instead of silently paying a sorted-set
    union, and CI gates on it staying zero.
    """
    merged: List[T] = []
    dropped = 0
    for item in heapq.merge(*lists):
        if merged and merged[-1] == item:
            dropped += 1
            continue
        merged.append(item)
    return merged, dropped


def dedup_sorted_pairs(pairs: List[CandidatePair]) -> List[CandidatePair]:
    """Drop adjacent duplicates from a sorted pair list."""
    out: List[CandidatePair] = []
    prev: Optional[CandidatePair] = None
    for pair in pairs:
        if pair != prev:
            out.append(pair)
            prev = pair
    return out


def _dedup_stream(pairs: Iterator[CandidatePair]) -> Iterator[CandidatePair]:
    prev: Optional[CandidatePair] = None
    for pair in pairs:
        if pair != prev:
            yield pair
            prev = pair


def _sorted_unique_pairs(
    rel_r: Relation,
    candidates: Sequence[CandidatePair],
    memory_bytes: int,
) -> Iterator[CandidatePair]:
    """Candidates in (OID_R, OID_S) order with duplicates removed.

    Small sets sort in memory; sets larger than the memory budget go
    through the external sorter using the relation's buffer pool.
    """
    if len(candidates) * _PAIR.size <= memory_bytes:
        return iter(dedup_sorted_pairs(sorted(candidates)))
    sorter = ExternalSorter(
        rel_r.heap.pool, key=lambda record: record, memory_bytes=memory_bytes
    )
    for oid_r, oid_s in candidates:
        sorter.add(_PAIR.pack(*oid_r, *oid_s))
    unpacked = (
        (OID(a, b, c), OID(d, e, f))
        for a, b, c, d, e, f in (
            _PAIR.unpack(record) for record in sorter.sorted_records()
        )
    )
    return _dedup_stream(unpacked)


def refine(
    rel_r: Relation,
    rel_s: Relation,
    candidates: Sequence[CandidatePair],
    predicate: Predicate,
    memory_bytes: int,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> List[CandidatePair]:
    """Run the full refinement step; returns the exact join result pairs."""
    if memory_bytes <= 0:
        raise ValueError("memory budget must be positive")
    tracer = tracer if tracer is not None else NULL_TRACER
    metrics = metrics if metrics is not None else NULL_METRICS

    with tracer.span("refine.sort_dedup", candidates=len(candidates)):
        stream = _sorted_unique_pairs(rel_r, candidates, memory_bytes)
        # The in-memory path sorts eagerly here; the external path has
        # already built sorted runs, but merges lazily inside the batches.
        pending: Optional[CandidatePair] = next(stream, None)

    results: List[CandidatePair] = []
    # Reserve part of the budget for the S side (one tuple at a time plus
    # buffer-pool residency); the R batch gets the rest.
    r_budget = max(memory_bytes // 2, 1)
    batch_no = 0
    batch_size_hist = metrics.histogram("refine.pairs_per_batch")

    while pending is not None:
        with tracer.span("refine.batch", batch=batch_no) as span:
            # ---- load a memory-full batch of distinct R tuples ---- #
            batch: Dict[OID, SpatialTuple] = {}
            swizzled: List[Tuple[OID, SpatialTuple, OID]] = []
            used = 0
            while pending is not None:
                oid_r, oid_s = pending
                tuple_r = batch.get(oid_r)
                if tuple_r is None:
                    tuple_r = rel_r.fetch(oid_r)
                    size = tuple_size_bytes(tuple_r)
                    if batch and used + size > r_budget:
                        break  # batch full; ``pending`` starts the next one
                    batch[oid_r] = tuple_r
                    used += size
                swizzled.append((oid_s, tuple_r, oid_r))
                pending = next(stream, None)

            # ---- swizzled pairs sorted on OID_S: S accesses sequential ---- #
            swizzled.sort(key=lambda item: item[0])
            s_fetches = 0
            last_oid_s: Optional[OID] = None
            last_tuple_s: Optional[SpatialTuple] = None
            for oid_s, tuple_r, oid_r in swizzled:
                if oid_s != last_oid_s:
                    last_tuple_s = rel_s.fetch(oid_s)
                    last_oid_s = oid_s
                    s_fetches += 1
                assert last_tuple_s is not None
                if predicate(tuple_r, last_tuple_s):
                    results.append((oid_r, oid_s))

            span.tag("pairs", len(swizzled))
            span.tag("r_tuples", len(batch))
            span.tag("s_fetches", s_fetches)
            batch_size_hist.observe(len(swizzled))
            metrics.counter("refine.r_tuples_fetched").inc(len(batch))
            metrics.counter("refine.s_tuples_fetched").inc(s_fetches)
            metrics.counter("refine.pairs_checked").inc(len(swizzled))
            batch_no += 1

    metrics.counter("refine.batches").inc(batch_no)
    metrics.counter("refine.results").inc(len(results))
    results.sort()
    return results
