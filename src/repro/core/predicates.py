"""Exact join predicates evaluated by the refinement step.

A predicate takes the two fetched tuples ``(r, s)`` and decides whether the
pair belongs in the join result.  The paper's two queries are:

* *intersects* — TIGER road x hydrography / road x rail overlay;
* *contains*  — Sequoia: is the island (inner, S side) contained in the
  land-use polygon (outer, R side)?

Variants exist for the ablations of §4.4: the naive all-pairs polyline test
(62% more expensive in the paper) and the [BKSS94] MBR/MER-filtered
containment.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..geometry import (
    Polygon,
    Polyline,
    Rect,
    maximal_enclosed_rect,
    polygon_contains_filtered,
    polylines_intersect_naive,
    polylines_intersect_sweep,
    segments_intersect,
)
from ..storage.relation import OID
from ..storage.tuples import SpatialTuple

Predicate = Callable[[SpatialTuple, SpatialTuple], bool]


def _geoms_intersect(a, b, polyline_test) -> bool:
    if not a.mbr.intersects(b.mbr):
        return False
    if isinstance(a, Polyline) and isinstance(b, Polyline):
        return polyline_test(a, b)
    if isinstance(a, Polygon) and isinstance(b, Polygon):
        return a.intersects(b)
    # Mixed polyline/polygon: boundary crossing, or the line lies inside.
    line, poly = (a, b) if isinstance(a, Polyline) else (b, a)
    for p1, p2 in zip(line.points, line.points[1:]):
        for p3, p4 in poly.segments():
            if segments_intersect(p1, p2, p3, p4):
                return True
    return poly.contains_point(*line.points[0])


def intersects(r: SpatialTuple, s: SpatialTuple) -> bool:
    """Exact spatial intersection (plane-sweep polyline test)."""
    return _geoms_intersect(r.geom, s.geom, polylines_intersect_sweep)


def intersects_naive(r: SpatialTuple, s: SpatialTuple) -> bool:
    """Intersection with the naive O(n*m) polyline test (§4.4 ablation)."""
    return _geoms_intersect(r.geom, s.geom, polylines_intersect_naive)


def contains(r: SpatialTuple, s: SpatialTuple) -> bool:
    """True when the R polygon contains the S polygon (paper's naive check)."""
    if not isinstance(r.geom, Polygon) or not isinstance(s.geom, Polygon):
        raise TypeError("containment predicate requires polygon inputs")
    return r.geom.contains(s.geom)


class ContainsWithFilters:
    """[BKSS94] containment with MBR/MER pre-filters (§4.4).

    Caches a maximal enclosed rectangle per outer polygon so repeated
    candidates against the same land-use polygon often skip the O(n^2)
    geometry entirely.  Stateful, therefore a class rather than a function.
    """

    def __init__(self) -> None:
        self._mer_cache: Dict[OID, Optional[Rect]] = {}
        self.filter_hits = 0
        self.exact_tests = 0

    def mer_for(self, oid: OID, polygon: Polygon) -> Optional[Rect]:
        if oid not in self._mer_cache:
            self._mer_cache[oid] = maximal_enclosed_rect(polygon)
        return self._mer_cache[oid]

    def precompute(self, relation) -> int:
        """Compute and cache the MER of every tuple in a relation.

        The paper's §4.4 assumes the MER "is precomputed and stored along
        with each spatial feature"; call this at load time so the join
        itself only pays for cache lookups.  Returns the number of MERs
        computed.
        """
        n = 0
        for _oid, t in relation.scan():
            if isinstance(t.geom, Polygon):
                self.mer_for(OID(0, t.feature_id, 0), t.geom)
                n += 1
        return n

    def __call__(self, r: SpatialTuple, s: SpatialTuple) -> bool:
        if not isinstance(r.geom, Polygon) or not isinstance(s.geom, Polygon):
            raise TypeError("containment predicate requires polygon inputs")
        mer = self.mer_for(
            OID(0, r.feature_id, 0), r.geom
        )  # keyed by feature id: stable across fetches
        if not r.geom.mbr.contains(s.geom.mbr):
            self.filter_hits += 1
            return False
        if mer is not None and mer.contains(s.geom.mbr) and not r.geom.holes:
            self.filter_hits += 1
            return True
        self.exact_tests += 1
        return polygon_contains_filtered(r.geom, s.geom, None)
