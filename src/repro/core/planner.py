"""A spatial-join planner encoding the paper's conclusions (§4.4-§5).

The performance study's summary is effectively a decision procedure:

* no pre-existing indices                    → **PBSM**;
* index only on the *smaller* input          → **PBSM** ("the PBSM
  algorithm still performs better than the other algorithms");
* index only on the *larger* input           → **R-tree join** (building
  the small index is cheap);
* indices on both inputs                     → **R-tree join**;
* exception: when one input is so small that it and its index fit in the
  buffer pool, **INL** probing that input wins (Figure 8 / Figure 15).

:func:`choose_algorithm` applies those rules to catalog statistics, and
:func:`plan_join` returns a ready-to-run driver.  This is the piece a
query optimiser would call when a spatial join appears in a plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..index.rstar import NODE_CAPACITY, RStarTree
from ..joins.inl import IndexedNestedLoopsJoin
from ..joins.rtree import RTreeJoin
from ..storage.buffer import BufferPool
from ..storage.relation import Relation
from .pbsm import PBSMJoin
from .predicates import Predicate
from .stats import JoinResult

ALGO_PBSM = "pbsm"
ALGO_RTREE = "rtree"
ALGO_INL = "inl"

SMALL_INNER_FRACTION = 0.5
"""An input counts as "fits in the pool" when its data plus estimated index
occupy at most this fraction of the buffer pool."""


@dataclass(frozen=True)
class JoinPlan:
    """The planner's verdict plus its reasoning."""

    algorithm: str
    reason: str
    index_r: Optional[RStarTree] = None
    index_s: Optional[RStarTree] = None


def estimate_index_pages(cardinality: int) -> int:
    """Pages of a bulk-loaded R*-tree over ``cardinality`` entries."""
    leaves = max(1, -(-cardinality // int(NODE_CAPACITY * 0.8)))
    internals = max(1, -(-leaves // int(NODE_CAPACITY * 0.8)))
    return leaves + internals + 1  # + meta page


def _fits_in_pool(relation: Relation, pool_pages: int) -> bool:
    total = relation.num_pages + estimate_index_pages(len(relation))
    return total <= SMALL_INNER_FRACTION * pool_pages


def choose_algorithm(
    rel_r: Relation,
    rel_s: Relation,
    pool_pages: int,
    index_r: Optional[RStarTree] = None,
    index_s: Optional[RStarTree] = None,
) -> JoinPlan:
    """Apply the paper's decision rules to pick a join algorithm."""
    smaller, larger = (
        (rel_r, rel_s) if len(rel_r) <= len(rel_s) else (rel_s, rel_r)
    )

    # Figure 8 / Figure 15 exception: a memory-resident small input makes
    # INL unbeatable, with or without a pre-built index on it.
    if _fits_in_pool(smaller, pool_pages):
        return JoinPlan(
            ALGO_INL,
            f"{smaller.name} (+ index) fits in the buffer pool; probe it "
            "with the larger input (Figures 8/15)",
            index_r,
            index_s,
        )

    have_r = index_r is not None
    have_s = index_s is not None
    if have_r and have_s:
        return JoinPlan(
            ALGO_RTREE,
            "indices pre-exist on both inputs (Figure 14: Rtree-2-Indices "
            "is best)",
            index_r,
            index_s,
        )
    if have_r or have_s:
        indexed = rel_r if have_r else rel_s
        if indexed is larger:
            return JoinPlan(
                ALGO_RTREE,
                f"index pre-exists on the larger input {larger.name}; "
                "building the small index is cheap (Figure 14: "
                "Rtree-1-LargeIdx)",
                index_r,
                index_s,
            )
        return JoinPlan(
            ALGO_PBSM,
            f"index only on the smaller input {smaller.name}: PBSM beats "
            "probing or extending it (§4.5 summary)",
        )
    return JoinPlan(
        ALGO_PBSM,
        "no pre-existing indices: PBSM avoids index construction entirely "
        "(Figure 7)",
    )


def plan_join(
    pool: BufferPool,
    rel_r: Relation,
    rel_s: Relation,
    predicate: Predicate,
    index_r: Optional[RStarTree] = None,
    index_s: Optional[RStarTree] = None,
) -> tuple[JoinPlan, JoinResult]:
    """Choose per the paper's rules, execute, and return plan + result."""
    plan = choose_algorithm(rel_r, rel_s, pool.capacity, index_r, index_s)
    if plan.algorithm == ALGO_PBSM:
        result = PBSMJoin(pool).run(rel_r, rel_s, predicate)
    elif plan.algorithm == ALGO_RTREE:
        result = RTreeJoin(pool).run(
            rel_r, rel_s, predicate, index_r=plan.index_r, index_s=plan.index_s
        )
    else:
        result = IndexedNestedLoopsJoin(pool).run(
            rel_r, rel_s, predicate, index_r=plan.index_r, index_s=plan.index_s
        )
    result.report.notes["plan"] = plan.algorithm
    result.report.notes["plan_reason"] = plan.reason
    return plan, result
