"""Key-pointer elements and their temporary on-disk files.

A key-pointer element is the ``<MBR, OID>`` pair PBSM's filter step works
with (§3.1), extended with the two-layer partitioning tags: the tile the
copy belongs to and its A/B/C/D border class
(:mod:`repro.core.partition`).  One record is written per ``(tile,
class)`` replica slot, so the merge can group a partition by tile and
apply the duplicate-free mini-join class filter without recomputing any
geometry.  Candidate files hold the filter step's ``<OID_R, OID_S>``
output pairs.  Both live in temporary files charged to the simulated
disk, so the partitioning and merging I/O the paper measures is
accounted for.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Tuple

import numpy as np

from ..geometry import Rect
from ..storage.buffer import BufferPool
from ..storage.heapfile import HeapFile
from ..storage.relation import OID

_KEYPTR = struct.Struct("<ffffIIIIB")
KEYPTR_SIZE = _KEYPTR.size
"""Size of one key-pointer element (the paper's ``size_keyptr``; 33 bytes
here: f32 MBR + 12-byte OID + u32 tile + u8 two-layer class).

Key-pointer MBRs are stored in single precision, like Paradise's: the MBR
is only a filter-step approximation, so the smaller footprint halves the
partition files and keeps Equation 1's partition counts in the paper's
regime.  Rounding is *conservative* (lower bounds rounded down, upper
bounds up), so a stored MBR always contains the exact one and the filter
output remains a superset of the true result.  The tile and class tags
are computed from the *exact* (f64) MBR at partition time and persisted,
never re-derived from the rounded rect — the dedup-free merge depends on
every copy of an object agreeing on its tile span.
"""

_F32 = struct.Struct("<f")

_OIDPAIR = struct.Struct("<IIIIII")
OIDPAIR_SIZE = _OIDPAIR.size

KeyPointer = Tuple[Rect, OID, int, int]
"""``(rect, oid, tile, class)`` — one two-layer replica slot."""
CandidatePair = Tuple[OID, OID]


def _f32_down(value: float) -> float:
    # Compare in float64 explicitly: NumPy 2's weak promotion would
    # otherwise cast ``value`` down to float32 and hide the rounding error.
    f = np.float32(value)
    if float(f) > value:
        f = np.nextafter(f, np.float32(-np.inf))
    return float(f)


def _f32_up(value: float) -> float:
    f = np.float32(value)
    if float(f) < value:
        f = np.nextafter(f, np.float32(np.inf))
    return float(f)


def pack_keypointer(rect: Rect, oid: OID, tile: int = 0, cls: int = 0) -> bytes:
    return _KEYPTR.pack(
        _f32_down(rect.xl), _f32_down(rect.yl),
        _f32_up(rect.xu), _f32_up(rect.yu),
        *oid,
        tile, cls,
    )


def unpack_keypointer(data: bytes) -> KeyPointer:
    xl, yl, xu, yu, a, b, c, tile, cls = _KEYPTR.unpack(data)
    return Rect(xl, yl, xu, yu), OID(a, b, c), tile, cls


class KeyPointerFile:
    """A temporary heap file of key-pointer elements (one PBSM partition)."""

    def __init__(self, pool: BufferPool):
        self.heap = HeapFile(pool)
        self.count = 0

    def append(self, rect: Rect, oid: OID, tile: int = 0, cls: int = 0) -> None:
        self.heap.append(pack_keypointer(rect, oid, tile, cls))
        self.count += 1

    def read_all(self) -> List[KeyPointer]:
        """Read the whole partition into memory (it is sized to fit)."""
        return [unpack_keypointer(record) for _rid, record in self.heap.scan()]

    def scan(self) -> Iterator[KeyPointer]:
        for _rid, record in self.heap.scan():
            yield unpack_keypointer(record)

    def size_bytes(self) -> int:
        return self.count * KEYPTR_SIZE

    @property
    def num_pages(self) -> int:
        return self.heap.num_pages

    def drop(self) -> None:
        self.heap.drop()


class CandidateFile:
    """The filter step's output: a temp file of ``<OID_R, OID_S>`` pairs."""

    def __init__(self, pool: BufferPool):
        self.heap = HeapFile(pool)
        self.count = 0

    def append(self, oid_r: OID, oid_s: OID) -> None:
        self.heap.append(_OIDPAIR.pack(*oid_r, *oid_s))
        self.count += 1

    def read_all(self) -> List[CandidatePair]:
        out: List[CandidatePair] = []
        for _rid, record in self.heap.scan():
            a, b, c, d, e, f = _OIDPAIR.unpack(record)
            out.append((OID(a, b, c), OID(d, e, f)))
        return out

    def drop(self) -> None:
        self.heap.drop()
