"""The paper's contribution: the PBSM join and its building blocks."""

from .keypointer import (
    KEYPTR_SIZE,
    CandidateFile,
    KeyPointerFile,
    pack_keypointer,
    unpack_keypointer,
)
from .partition import (
    SCHEME_HASH,
    SCHEME_ROUND_ROBIN,
    SCHEMES,
    PartitioningProfile,
    SpatialPartitioner,
    TileGrid,
    coefficient_of_variation,
    estimate_num_partitions,
    profile_partitioning,
)
from .pbsm import (
    DEFAULT_NUM_TILES,
    PBSMConfig,
    PBSMJoin,
    merge_partition_pair,
    pbsm_join,
)
from .planner import JoinPlan, choose_algorithm, plan_join
from .predicates import (
    ContainsWithFilters,
    Predicate,
    contains,
    intersects,
    intersects_naive,
)
from .refine import dedup_sorted_pairs, refine
from .stats import JoinReport, JoinResult, PhaseCost, PhaseMeter

__all__ = [
    "DEFAULT_NUM_TILES",
    "KEYPTR_SIZE",
    "SCHEMES",
    "SCHEME_HASH",
    "SCHEME_ROUND_ROBIN",
    "CandidateFile",
    "ContainsWithFilters",
    "JoinPlan",
    "JoinReport",
    "JoinResult",
    "KeyPointerFile",
    "PBSMConfig",
    "PBSMJoin",
    "PartitioningProfile",
    "PhaseCost",
    "PhaseMeter",
    "Predicate",
    "SpatialPartitioner",
    "TileGrid",
    "choose_algorithm",
    "coefficient_of_variation",
    "contains",
    "dedup_sorted_pairs",
    "estimate_num_partitions",
    "intersects",
    "intersects_naive",
    "pack_keypointer",
    "merge_partition_pair",
    "pbsm_join",
    "plan_join",
    "profile_partitioning",
    "refine",
    "unpack_keypointer",
]
