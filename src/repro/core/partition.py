"""The tiled spatial partitioning function of §3.4, plus Equation 1.

The universe is regularly decomposed into ``NT >= P`` tiles, numbered
row-major from the upper-left corner; each tile is mapped to one of the
``P`` partitions by round robin or by hashing the tile number.  A key-pointer
element is inserted into *every* partition whose tiles its MBR overlaps.

Replication is **two-layer** (Tsitsigkos et al., "Parallel In-Memory
Evaluation of Spatial Joins"): each copy carries a class tag relative to
the MBR's *first* tile — the tile containing its bottom-left corner:

* class **A** — the first tile itself (holds the MBR's ``(xl, yl)``);
* class **B** — same bottom tile row, further right: the MBR enters the
  tile across its *left* border;
* class **C** — same left tile column, further up: enters across the
  *bottom* border;
* class **D** — up and right of the first tile: enters across the corner
  (both borders).

A candidate pair is emitted only inside the tile that holds the pair's
*reference point* ``(max(xl_r, xl_s), max(yl_r, yl_s))`` — equivalently,
only for the class combinations in :data:`ALLOWED_CLASS_COMBOS` — so the
merge output is duplicate-free by construction and no sorted-set dedup
barrier is needed downstream.

This is the spatial analog of virtual-processor round-robin partitioning
for skew handling in parallel relational joins [DNSS92]; Figure 4 (partition
balance), Figures 5/6 (replication overhead) and the round-robin "spikes"
all come from this module's behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set, Tuple

from ..geometry import Rect
from .keypointer import KEYPTR_SIZE

SCHEME_ROUND_ROBIN = "round_robin"
SCHEME_HASH = "hash"
SCHEMES = (SCHEME_ROUND_ROBIN, SCHEME_HASH)

CLASS_A = 0
"""The copy in the MBR's first tile (contains its bottom-left corner)."""
CLASS_B = 1
"""Crosses only the tile's left border (same bottom row, right of A)."""
CLASS_C = 2
"""Crosses only the tile's bottom border (same column, above A)."""
CLASS_D = 3
"""Crosses both borders (up and right of the first tile)."""

CLASS_NAMES = "ABCD"

ALLOWED_CLASS_COMBOS = frozenset({
    (CLASS_A, CLASS_A), (CLASS_A, CLASS_B), (CLASS_A, CLASS_C),
    (CLASS_A, CLASS_D),
    (CLASS_B, CLASS_A), (CLASS_B, CLASS_C),
    (CLASS_C, CLASS_A), (CLASS_C, CLASS_B),
    (CLASS_D, CLASS_A),
})
"""The mini-join table: the 9 (class_r, class_s) combinations a tile may
join without ever producing a duplicate.  A combination is allowed in tile
T iff T holds the pair's reference point, i.e. the tile column is the
first column of r *or* of s (``class in {A, C}``) and the tile row is the
bottom row of r *or* of s (``class in {A, B}``)."""

ALLOWED_COMBO_TABLE: Tuple[Tuple[bool, bool, bool, bool], ...] = tuple(
    tuple((cr, cs) in ALLOWED_CLASS_COMBOS for cs in range(4))
    for cr in range(4)
)
""":data:`ALLOWED_CLASS_COMBOS` as a 4x4 lookup (``table[cls_r][cls_s]``)
for the merge's emit filter hot path."""

TileAssignment = Tuple[int, int]
"""One replica slot: ``(tile id, class)``."""


def estimate_num_partitions(
    card_r: int,
    card_s: int,
    memory_bytes: int,
    keyptr_size: int = KEYPTR_SIZE,
) -> int:
    """Equation 1: ``P = ceil((||R|| + ||S||) * size_keyptr / M)``."""
    if memory_bytes <= 0:
        raise ValueError("memory budget must be positive")
    return max(1, math.ceil((card_r + card_s) * keyptr_size / memory_bytes))


def _hash_tile(tile: int) -> int:
    """A deterministic integer hash (Fibonacci multiply + xor-fold).

    The xor-fold matters: a bare multiplicative hash keeps its low bits
    equal to ``tile``'s low bits, which would make ``hash % P`` collapse to
    round robin whenever P divides a power of two.
    """
    h = (tile * 0x9E3779B1) & 0xFFFFFFFF
    h ^= h >> 16
    return h


@dataclass(frozen=True)
class TileGrid:
    """A regular rows x cols decomposition of a universe rectangle."""

    universe: Rect
    rows: int
    cols: int

    @staticmethod
    def for_tiles(universe: Rect, num_tiles: int) -> "TileGrid":
        """Near-square grid with at least ``num_tiles`` tiles."""
        if num_tiles < 1:
            raise ValueError("need at least one tile")
        cols = max(1, round(math.sqrt(num_tiles)))
        rows = max(1, math.ceil(num_tiles / cols))
        return TileGrid(universe, rows, cols)

    @property
    def num_tiles(self) -> int:
        return self.rows * self.cols

    def tile_id(self, row: int, col: int) -> int:
        """Row-major numbering from the upper-left corner (§3.4)."""
        return row * self.cols + col

    def tile_span(self, rect: Rect) -> Tuple[int, int, int, int]:
        """The rectangle's tile range ``(r0, r1, c0, c1)``, clamped.

        ``r1`` is the *bottom* row (row 0 is the upper row, per the
        paper's figure) and ``c0`` the left column, so the first tile —
        the one holding the MBR's bottom-left corner — is ``(r1, c0)``.
        """
        u = self.universe
        width = u.width or 1.0
        height = u.height or 1.0
        c0 = int((rect.xl - u.xl) / width * self.cols)
        c1 = int((rect.xu - u.xl) / width * self.cols)
        r0 = int((u.yu - rect.yu) / height * self.rows)
        r1 = int((u.yu - rect.yl) / height * self.rows)
        c0 = min(max(c0, 0), self.cols - 1)
        c1 = min(max(c1, 0), self.cols - 1)
        r0 = min(max(r0, 0), self.rows - 1)
        r1 = min(max(r1, 0), self.rows - 1)
        return r0, r1, c0, c1

    def tiles_for_rect(self, rect: Rect) -> List[int]:
        """All tiles the rectangle overlaps (clamped to the universe)."""
        r0, r1, c0, c1 = self.tile_span(rect)
        return [
            self.tile_id(r, c)
            for r in range(r0, r1 + 1)
            for c in range(c0, c1 + 1)
        ]

    def tile_assignments(self, rect: Rect) -> List[TileAssignment]:
        """Every overlapped tile with its two-layer class tag.

        Exactly one assignment per overlapped tile, and exactly one of
        them is class A (the first tile, ``(r1, c0)``); the split into
        B/C/D records which of that tile's borders the MBR crossed to
        reach each other tile.
        """
        r0, r1, c0, c1 = self.tile_span(rect)
        out: List[TileAssignment] = []
        for r in range(r0, r1 + 1):
            for c in range(c0, c1 + 1):
                if r == r1:
                    cls = CLASS_A if c == c0 else CLASS_B
                else:
                    cls = CLASS_C if c == c0 else CLASS_D
                out.append((self.tile_id(r, c), cls))
        return out

    def reference_tile(self, rect_r: Rect, rect_s: Rect) -> int:
        """The one tile allowed to emit the pair ``(rect_r, rect_s)``.

        The tile holding the pair's reference point ``(max(xl), max(yl))``:
        column ``max(c0_r, c0_s)``, row ``min(r1_r, r1_s)``.  For rects
        that overlap, this is the unique tile both MBRs are assigned to
        whose class combination :data:`ALLOWED_CLASS_COMBOS` admits.
        """
        _r0r, r1r, c0r, _c1r = self.tile_span(rect_r)
        _r0s, r1s, c0s, _c1s = self.tile_span(rect_s)
        return self.tile_id(min(r1r, r1s), max(c0r, c0s))

    def tile_rect(self, tile: int) -> Rect:
        """The geometric extent of a tile (for visualisation/tests)."""
        row, col = divmod(tile, self.cols)
        u = self.universe
        tw = u.width / self.cols
        th = u.height / self.rows
        return Rect(
            u.xl + col * tw,
            u.yu - (row + 1) * th,
            u.xl + (col + 1) * tw,
            u.yu - row * th,
        )


class SpatialPartitioner:
    """Maps MBRs to the PBSM partitions their tiles belong to."""

    def __init__(
        self,
        universe: Rect,
        num_partitions: int,
        num_tiles: int | None = None,
        scheme: str = SCHEME_HASH,
    ):
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        if scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}; expected one of {SCHEMES}")
        if num_tiles is None:
            num_tiles = num_partitions
        if num_tiles < num_partitions:
            raise ValueError(
                f"num_tiles ({num_tiles}) must be >= num_partitions "
                f"({num_partitions})"
            )
        self.grid = TileGrid.for_tiles(universe, num_tiles)
        self.num_partitions = num_partitions
        self.scheme = scheme

    @property
    def num_tiles(self) -> int:
        return self.grid.num_tiles

    def partition_of_tile(self, tile: int) -> int:
        if self.scheme == SCHEME_ROUND_ROBIN:
            return tile % self.num_partitions
        return _hash_tile(tile) % self.num_partitions

    def partitions_for_rect(self, rect: Rect) -> Set[int]:
        """Every partition that receives this MBR's key-pointer element."""
        return {
            self.partition_of_tile(t) for t in self.grid.tiles_for_rect(rect)
        }

    def tile_assignments(self, rect: Rect) -> List[TileAssignment]:
        """The MBR's two-layer ``(tile, class)`` replica slots."""
        return self.grid.tile_assignments(rect)

    def owner_of_pair(self, rect_r: Rect, rect_s: Rect) -> int:
        """The partition whose merge emits this pair (its reference tile's
        partition) — the global uniqueness anchor for dedup-free merging."""
        return self.partition_of_tile(self.grid.reference_tile(rect_r, rect_s))


# ---------------------------------------------------------------------- #
# partition-quality metrics (Figures 4–6)
# ---------------------------------------------------------------------- #


def coefficient_of_variation(counts: Sequence[int]) -> float:
    """Std-dev / mean of a partition size distribution (Figure 4 metric)."""
    if not counts:
        raise ValueError("no partitions")
    mean = sum(counts) / len(counts)
    if mean == 0:
        return 0.0
    var = sum((c - mean) ** 2 for c in counts) / len(counts)
    return math.sqrt(var) / mean


@dataclass
class PartitioningProfile:
    """Outcome of test-partitioning a dataset (no I/O, statistics only)."""

    counts: List[int]
    input_tuples: int
    placed_tuples: int

    @property
    def replication_overhead(self) -> float:
        """Fractional increase in tuples due to replication (Figures 5/6)."""
        if self.input_tuples == 0:
            return 0.0
        return (self.placed_tuples - self.input_tuples) / self.input_tuples

    @property
    def cov(self) -> float:
        return coefficient_of_variation(self.counts)


def profile_partitioning(
    mbrs: Iterable[Rect],
    universe: Rect,
    num_partitions: int,
    num_tiles: int,
    scheme: str,
) -> PartitioningProfile:
    """Dry-run the partitioning function over a stream of MBRs."""
    partitioner = SpatialPartitioner(universe, num_partitions, num_tiles, scheme)
    counts = [0] * num_partitions
    n_in = 0
    n_placed = 0
    for mbr in mbrs:
        n_in += 1
        parts = partitioner.partitions_for_rect(mbr)
        n_placed += len(parts)
        for p in parts:
            counts[p] += 1
    return PartitioningProfile(counts, n_in, n_placed)
