"""The tiled spatial partitioning function of §3.4, plus Equation 1.

The universe is regularly decomposed into ``NT >= P`` tiles, numbered
row-major from the upper-left corner; each tile is mapped to one of the
``P`` partitions by round robin or by hashing the tile number.  A key-pointer
element is inserted into *every* partition whose tiles its MBR overlaps —
the replication that the refinement step's dedup later removes.

This is the spatial analog of virtual-processor round-robin partitioning
for skew handling in parallel relational joins [DNSS92]; Figure 4 (partition
balance), Figures 5/6 (replication overhead) and the round-robin "spikes"
all come from this module's behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set

from ..geometry import Rect
from .keypointer import KEYPTR_SIZE

SCHEME_ROUND_ROBIN = "round_robin"
SCHEME_HASH = "hash"
SCHEMES = (SCHEME_ROUND_ROBIN, SCHEME_HASH)


def estimate_num_partitions(
    card_r: int,
    card_s: int,
    memory_bytes: int,
    keyptr_size: int = KEYPTR_SIZE,
) -> int:
    """Equation 1: ``P = ceil((||R|| + ||S||) * size_keyptr / M)``."""
    if memory_bytes <= 0:
        raise ValueError("memory budget must be positive")
    return max(1, math.ceil((card_r + card_s) * keyptr_size / memory_bytes))


def _hash_tile(tile: int) -> int:
    """A deterministic integer hash (Fibonacci multiply + xor-fold).

    The xor-fold matters: a bare multiplicative hash keeps its low bits
    equal to ``tile``'s low bits, which would make ``hash % P`` collapse to
    round robin whenever P divides a power of two.
    """
    h = (tile * 0x9E3779B1) & 0xFFFFFFFF
    h ^= h >> 16
    return h


@dataclass(frozen=True)
class TileGrid:
    """A regular rows x cols decomposition of a universe rectangle."""

    universe: Rect
    rows: int
    cols: int

    @staticmethod
    def for_tiles(universe: Rect, num_tiles: int) -> "TileGrid":
        """Near-square grid with at least ``num_tiles`` tiles."""
        if num_tiles < 1:
            raise ValueError("need at least one tile")
        cols = max(1, round(math.sqrt(num_tiles)))
        rows = max(1, math.ceil(num_tiles / cols))
        return TileGrid(universe, rows, cols)

    @property
    def num_tiles(self) -> int:
        return self.rows * self.cols

    def tile_id(self, row: int, col: int) -> int:
        """Row-major numbering from the upper-left corner (§3.4)."""
        return row * self.cols + col

    def tiles_for_rect(self, rect: Rect) -> List[int]:
        """All tiles the rectangle overlaps (clamped to the universe)."""
        u = self.universe
        width = u.width or 1.0
        height = u.height or 1.0
        c0 = int((rect.xl - u.xl) / width * self.cols)
        c1 = int((rect.xu - u.xl) / width * self.cols)
        # Row 0 is the *upper* row, per the paper's figure.
        r0 = int((u.yu - rect.yu) / height * self.rows)
        r1 = int((u.yu - rect.yl) / height * self.rows)
        c0 = min(max(c0, 0), self.cols - 1)
        c1 = min(max(c1, 0), self.cols - 1)
        r0 = min(max(r0, 0), self.rows - 1)
        r1 = min(max(r1, 0), self.rows - 1)
        return [
            self.tile_id(r, c)
            for r in range(r0, r1 + 1)
            for c in range(c0, c1 + 1)
        ]

    def tile_rect(self, tile: int) -> Rect:
        """The geometric extent of a tile (for visualisation/tests)."""
        row, col = divmod(tile, self.cols)
        u = self.universe
        tw = u.width / self.cols
        th = u.height / self.rows
        return Rect(
            u.xl + col * tw,
            u.yu - (row + 1) * th,
            u.xl + (col + 1) * tw,
            u.yu - row * th,
        )


class SpatialPartitioner:
    """Maps MBRs to the PBSM partitions their tiles belong to."""

    def __init__(
        self,
        universe: Rect,
        num_partitions: int,
        num_tiles: int | None = None,
        scheme: str = SCHEME_HASH,
    ):
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        if scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}; expected one of {SCHEMES}")
        if num_tiles is None:
            num_tiles = num_partitions
        if num_tiles < num_partitions:
            raise ValueError(
                f"num_tiles ({num_tiles}) must be >= num_partitions "
                f"({num_partitions})"
            )
        self.grid = TileGrid.for_tiles(universe, num_tiles)
        self.num_partitions = num_partitions
        self.scheme = scheme

    @property
    def num_tiles(self) -> int:
        return self.grid.num_tiles

    def partition_of_tile(self, tile: int) -> int:
        if self.scheme == SCHEME_ROUND_ROBIN:
            return tile % self.num_partitions
        return _hash_tile(tile) % self.num_partitions

    def partitions_for_rect(self, rect: Rect) -> Set[int]:
        """Every partition that receives this MBR's key-pointer element."""
        return {
            self.partition_of_tile(t) for t in self.grid.tiles_for_rect(rect)
        }


# ---------------------------------------------------------------------- #
# partition-quality metrics (Figures 4–6)
# ---------------------------------------------------------------------- #


def coefficient_of_variation(counts: Sequence[int]) -> float:
    """Std-dev / mean of a partition size distribution (Figure 4 metric)."""
    if not counts:
        raise ValueError("no partitions")
    mean = sum(counts) / len(counts)
    if mean == 0:
        return 0.0
    var = sum((c - mean) ** 2 for c in counts) / len(counts)
    return math.sqrt(var) / mean


@dataclass
class PartitioningProfile:
    """Outcome of test-partitioning a dataset (no I/O, statistics only)."""

    counts: List[int]
    input_tuples: int
    placed_tuples: int

    @property
    def replication_overhead(self) -> float:
        """Fractional increase in tuples due to replication (Figures 5/6)."""
        if self.input_tuples == 0:
            return 0.0
        return (self.placed_tuples - self.input_tuples) / self.input_tuples

    @property
    def cov(self) -> float:
        return coefficient_of_variation(self.counts)


def profile_partitioning(
    mbrs: Iterable[Rect],
    universe: Rect,
    num_partitions: int,
    num_tiles: int,
    scheme: str,
) -> PartitioningProfile:
    """Dry-run the partitioning function over a stream of MBRs."""
    partitioner = SpatialPartitioner(universe, num_partitions, num_tiles, scheme)
    counts = [0] * num_partitions
    n_in = 0
    n_placed = 0
    for mbr in mbrs:
        n_in += 1
        parts = partitioner.partitions_for_rect(mbr)
        n_placed += len(parts)
        for p in parts:
            counts[p] += 1
    return PartitioningProfile(counts, n_in, n_placed)
