"""PBSM — Partition Based Spatial-Merge join (§3, the paper's contribution).

Execution plan::

    Partition R   scan R, append <MBR, OID> key-pointers to partition files
    Partition S   same for S (same partitioning function)
    Merge         per partition pair: read both sides into memory, sort on
                  MBR.xl, plane-sweep, emit candidate OID pairs
    Refinement    sort + dedup candidates, batched fetch, exact predicate

The number of partitions follows Equation 1; the partitioning function is
the tiled scheme of §3.4.  When a single partition pair fits in memory
(P = 1) the key-pointers are kept in memory and the merge runs directly, as
the paper describes for small inputs.

§3.5's partition-skew handling (dynamic repartitioning of an overflown
partition pair) is *not* in the paper's implementation; here it is available
behind ``PBSMConfig.handle_partition_skew`` as a documented extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from ..geometry import Rect, sweep_join, sweep_join_interval_tree
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..storage.buffer import BufferPool
from ..storage.disk import PAGE_SIZE
from ..storage.relation import Relation
from .keypointer import KEYPTR_SIZE, CandidateFile, KeyPointer, KeyPointerFile
from .partition import (
    SCHEME_HASH,
    SpatialPartitioner,
    estimate_num_partitions,
)
from .predicates import Predicate
from .refine import refine
from .stats import JoinReport, JoinResult, PhaseMeter

DEFAULT_NUM_TILES = 1024
"""The tile count the paper settled on for its experiments (§4.3)."""

K = TypeVar("K")
"""Key-pointer payload: an OID in the single-node join, a feature id in the
multiprocess backend.  The merge phase never looks inside it."""


@dataclass(frozen=True)
class PBSMConfig:
    """Tuning knobs for a PBSM execution.

    Frozen (and containing only plain values), so a config travels by
    pickle to the worker processes of the multiprocess backend unchanged.
    """

    num_tiles: int = DEFAULT_NUM_TILES
    scheme: str = SCHEME_HASH
    memory_bytes: Optional[int] = None
    """Memory budget M of Equation 1; defaults to the buffer pool size."""
    use_interval_tree: bool = False
    """Footnote-1 variant: interval tree for the y-overlap check."""
    handle_partition_skew: bool = False
    """§3.5 extension: recursively repartition overflowing partition pairs."""
    max_repartition_depth: int = 4
    collect_candidates: bool = False
    """Keep the filter step's candidate OID pairs on the ``JoinResult`` —
    needed by callers that account per-candidate costs (e.g. the parallel
    engine's remote-fetch charging)."""


def merge_partition_pair(
    kps_r: Sequence[Tuple[Rect, K]],
    kps_s: Sequence[Tuple[Rect, K]],
    emit: Callable[[K, K], None],
    memory: int,
    config: Optional[PBSMConfig] = None,
    *,
    depth: int = 0,
    label: str = "0",
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> int:
    """Plane-sweep one partition pair; the heart of PBSM's merge phase.

    A module-level function over plain ``(Rect, key)`` sequences so it is
    independently executable: :class:`PBSMJoin` drives it against key-pointer
    files and a candidate file, while the multiprocess backend pickles the
    surrounding task and calls it inside a worker process with feature-id
    payloads.  §3.5 skew handling (recursive repartitioning of a pair whose
    key-pointers exceed ``memory``) happens in here, behind
    ``config.handle_partition_skew``.  Returns the number of emitted pairs.
    """
    config = config or PBSMConfig()
    tracer = tracer if tracer is not None else NULL_TRACER
    metrics = metrics if metrics is not None else NULL_METRICS
    with tracer.span("merge_pair", pair=label, depth=depth) as span:
        span.tag("len_r", len(kps_r))
        span.tag("len_s", len(kps_s))
        if not kps_r or not kps_s:
            return 0

        oversized = (len(kps_r) + len(kps_s)) * KEYPTR_SIZE > memory
        can_recurse = (
            config.handle_partition_skew
            and oversized
            and depth < config.max_repartition_depth
        )
        if can_recurse:
            metrics.counter("pbsm.merge.repartitions").inc()
            span.tag("repartitioned", True)
            return _repartition_pair(
                kps_r, kps_s, emit, memory, config,
                depth=depth, label=label, tracer=tracer, metrics=metrics,
            )
        if config.handle_partition_skew and oversized:
            # §3.5 gave up: the depth budget is spent (or was declared spent
            # by the no-progress fast-path below) and the pair still exceeds
            # memory, so this sweep runs over-budget.  Count it — it is the
            # skew-handling failure mode operators need to see.
            metrics.counter("pbsm.merge.repartition_exhausted").inc()
            span.tag("repartition_exhausted", True)

        emitted = 0

        def counting_emit(key_r: K, key_s: K) -> None:
            nonlocal emitted
            emitted += 1
            emit(key_r, key_s)

        items_r = [(rect, key) for rect, key in kps_r]
        items_s = [(rect, key) for rect, key in kps_s]
        if config.use_interval_tree:
            sweep_join_interval_tree(items_r, items_s, counting_emit)
        else:
            sweep_join(items_r, items_s, counting_emit)
        span.tag("candidates", emitted)
        metrics.counter("pbsm.merge.pairs_swept").inc()
        metrics.histogram("pbsm.merge.inputs_per_pair").observe(
            len(kps_r) + len(kps_s)
        )
        metrics.histogram("pbsm.merge.candidates_per_pair").observe(emitted)
        return emitted


def _repartition_pair(
    kps_r: Sequence[Tuple[Rect, K]],
    kps_s: Sequence[Tuple[Rect, K]],
    emit: Callable[[K, K], None],
    memory: int,
    config: PBSMConfig,
    *,
    depth: int,
    label: str,
    tracer: Optional[Tracer],
    metrics: Optional[MetricsRegistry],
) -> int:
    """§3.5 extension: split an overflowing pair with a finer grid."""
    sub_universe = Rect.union_all(rect for rect, _ in kps_r).union(
        Rect.union_all(rect for rect, _ in kps_s)
    )
    sub_p = max(2, estimate_num_partitions(len(kps_r), len(kps_s), memory))
    sub = SpatialPartitioner(
        sub_universe, sub_p, max(config.num_tiles, sub_p), config.scheme
    )
    buckets_r: List[List[Tuple[Rect, K]]] = [[] for _ in range(sub_p)]
    buckets_s: List[List[Tuple[Rect, K]]] = [[] for _ in range(sub_p)]
    for rect, key in kps_r:
        for p in sub.partitions_for_rect(rect):
            buckets_r[p].append((rect, key))
    for rect, key in kps_s:
        for p in sub.partitions_for_rect(rect):
            buckets_s[p].append((rect, key))
    progress = all(
        len(br) < len(kps_r) or len(bs) < len(kps_s)
        for br, bs in zip(buckets_r, buckets_s)
    )
    if not progress and metrics is not None:
        # Every input landed in some single sub-bucket whole (e.g. identical
        # rectangles): a finer grid cannot split this pair, so recursing
        # further would only re-run the same partitioning.  Jump straight to
        # the depth cap so the children sweep instead of recursing.
        metrics.counter("pbsm.merge.repartition_no_progress").inc()
    next_depth = depth + 1 if progress else config.max_repartition_depth
    emitted = 0
    for sub_index, (br, bs) in enumerate(zip(buckets_r, buckets_s)):
        emitted += merge_partition_pair(
            br, bs, emit, memory, config,
            depth=next_depth, label=f"{label}.{sub_index}",
            tracer=tracer, metrics=metrics,
        )
    return emitted


class PBSMJoin:
    """Partition Based Spatial-Merge join over two relations.

    ``tracer``/``metrics`` opt the execution into ``repro.obs``: per-phase
    and per-partition-pair spans, partition-skew and candidates-per-pair
    histograms.  Both default to shared no-ops, so an uninstrumented join
    costs what it always did.
    """

    def __init__(
        self,
        pool: BufferPool,
        config: Optional[PBSMConfig] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.pool = pool
        self.config = config or PBSMConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS

    # ------------------------------------------------------------------ #

    def run(
        self,
        rel_r: Relation,
        rel_s: Relation,
        predicate: Predicate,
    ) -> JoinResult:
        """Execute the join; returns exact result pairs plus a cost report."""
        report = JoinReport(algorithm="PBSM")
        meter = PhaseMeter(self.pool.disk, report, tracer=self.tracer)
        if len(rel_r) == 0 or len(rel_s) == 0:
            return JoinResult([], report)

        cfg = self.config
        memory = cfg.memory_bytes or self.pool.capacity * PAGE_SIZE
        num_partitions = estimate_num_partitions(len(rel_r), len(rel_s), memory)
        universe = rel_r.universe.union(rel_s.universe)
        partitioner = SpatialPartitioner(
            universe,
            num_partitions,
            max(cfg.num_tiles, num_partitions),
            cfg.scheme,
        )
        report.notes["num_partitions"] = num_partitions
        report.notes["num_tiles"] = partitioner.num_tiles
        self.metrics.gauge("pbsm.num_partitions").set(num_partitions)
        self.metrics.gauge("pbsm.num_tiles").set(partitioner.num_tiles)

        in_memory = num_partitions == 1
        with meter.phase(f"Partition {rel_r.name}"):
            parts_r = self._partition_input(rel_r, partitioner, in_memory)
        with meter.phase(f"Partition {rel_s.name}"):
            parts_s = self._partition_input(rel_s, partitioner, in_memory)
        skew = self.metrics.histogram("pbsm.partition.keypointers")
        for part in (*parts_r, *parts_s):
            skew.observe(part.count if isinstance(part, KeyPointerFile) else len(part))

        candidate_file = CandidateFile(self.pool)
        with meter.phase("Merge Partitions"):
            for index, (part_r, part_s) in enumerate(zip(parts_r, parts_s)):
                self._merge_pair(
                    part_r, part_s, candidate_file, memory,
                    depth=0, label=str(index),
                )
            for part in (*parts_r, *parts_s):
                if isinstance(part, KeyPointerFile):
                    part.drop()
        report.candidates = candidate_file.count

        with meter.phase("Refinement"):
            candidates = candidate_file.read_all()
            candidate_file.drop()
            results = refine(
                rel_r, rel_s, candidates, predicate, memory,
                tracer=self.tracer, metrics=self.metrics,
            )
        report.result_count = len(results)
        result = JoinResult(results, report)
        if cfg.collect_candidates:
            result.candidate_pairs = candidates
        return result

    # ------------------------------------------------------------------ #
    # filter step internals
    # ------------------------------------------------------------------ #

    def _partition_input(
        self,
        relation: Relation,
        partitioner: SpatialPartitioner,
        in_memory: bool,
    ) -> List["KeyPointerFile | List[KeyPointer]"]:
        """Scan a relation, routing key-pointers to the partitions their
        MBRs' tiles map to (replicating across partitions as needed)."""
        if in_memory:
            bucket: List[KeyPointer] = []
            for oid, t in relation.scan():
                bucket.append((t.mbr, oid))
            return [bucket]
        files = [KeyPointerFile(self.pool) for _ in range(partitioner.num_partitions)]
        for oid, t in relation.scan():
            mbr = t.mbr
            for p in partitioner.partitions_for_rect(mbr):
                files[p].append(mbr, oid)
        return files

    def _merge_pair(
        self,
        part_r: "KeyPointerFile | List[KeyPointer]",
        part_s: "KeyPointerFile | List[KeyPointer]",
        out: CandidateFile,
        memory: int,
        depth: int,
        label: str = "0",
    ) -> None:
        """Plane-sweep one partition pair, spilling to recursion on skew."""
        kps_r = part_r if isinstance(part_r, list) else part_r.read_all()
        kps_s = part_s if isinstance(part_s, list) else part_s.read_all()
        merge_partition_pair(
            kps_r, kps_s, out.append, memory, self.config,
            depth=depth, label=label, tracer=self.tracer, metrics=self.metrics,
        )


def pbsm_join(
    pool: BufferPool,
    rel_r: Relation,
    rel_s: Relation,
    predicate: Predicate,
    config: Optional[PBSMConfig] = None,
) -> JoinResult:
    """Functional convenience wrapper around :class:`PBSMJoin`."""
    return PBSMJoin(pool, config).run(rel_r, rel_s, predicate)
