"""PBSM — Partition Based Spatial-Merge join (§3, the paper's contribution).

Execution plan::

    Partition R   scan R, append <MBR, OID> key-pointers to partition files
    Partition S   same for S (same partitioning function)
    Merge         per partition pair: read both sides into memory, sort on
                  MBR.xl, plane-sweep, emit candidate OID pairs
    Refinement    sort + dedup candidates, batched fetch, exact predicate

The number of partitions follows Equation 1; the partitioning function is
the tiled scheme of §3.4, replicated under the **two-layer** class scheme
of :mod:`repro.core.partition`: every key-pointer carries its ``(tile,
class)`` slot, the merge sweeps each tile's group separately, and the
emit filter admits only the class combinations of the mini-join table.
Each result pair therefore surfaces at exactly one tile — the one holding
its reference point — and the candidate stream is duplicate-free by
construction; no sorted-set dedup barrier is needed downstream.  When a
single partition pair fits in memory (P = 1) the key-pointers are kept in
memory and the merge runs directly, as the paper describes for small
inputs.

§3.5's partition-skew handling (dynamic repartitioning of an overflown
tile group) is *not* in the paper's implementation; here it is available
behind ``PBSMConfig.handle_partition_skew`` as a documented extension.
The recursion re-tiles the group with a finer grid and re-tags each copy,
folding the parent tile's class filter into the recursive emit — so the
output stays duplicate-free at every depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from ..geometry import Rect, sweep_join, sweep_join_interval_tree
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..storage.buffer import BufferPool
from ..storage.disk import PAGE_SIZE
from ..storage.relation import Relation
from .keypointer import KEYPTR_SIZE, CandidateFile, KeyPointer, KeyPointerFile
from .partition import (
    ALLOWED_COMBO_TABLE,
    CLASS_A,
    SCHEME_HASH,
    SpatialPartitioner,
    TileGrid,
    estimate_num_partitions,
)
from .predicates import Predicate
from .refine import refine
from .stats import JoinReport, JoinResult, PhaseMeter

DEFAULT_NUM_TILES = 1024
"""The tile count the paper settled on for its experiments (§4.3)."""

K = TypeVar("K")
"""Key-pointer payload: an OID in the single-node join, a feature id in the
multiprocess backend.  The merge phase never looks inside it."""

TaggedKeyPointer = Tuple[Rect, K, int, int]
"""One merge-phase input record: ``(rect, key, tile, class)`` — the MBR, an
opaque payload, and the copy's two-layer replica slot."""


@dataclass(frozen=True)
class PBSMConfig:
    """Tuning knobs for a PBSM execution.

    Frozen (and containing only plain values), so a config travels by
    pickle to the worker processes of the multiprocess backend unchanged.
    """

    num_tiles: int = DEFAULT_NUM_TILES
    scheme: str = SCHEME_HASH
    memory_bytes: Optional[int] = None
    """Memory budget M of Equation 1; defaults to the buffer pool size."""
    use_interval_tree: bool = False
    """Footnote-1 variant: interval tree for the y-overlap check."""
    handle_partition_skew: bool = False
    """§3.5 extension: recursively repartition overflowing partition pairs."""
    max_repartition_depth: int = 4
    collect_candidates: bool = False
    """Keep the filter step's candidate OID pairs on the ``JoinResult`` —
    needed by callers that account per-candidate costs (e.g. the parallel
    engine's remote-fetch charging)."""


def merge_partition_pair(
    kps_r: Sequence[Tuple[Rect, K, int, int]],
    kps_s: Sequence[Tuple[Rect, K, int, int]],
    emit: Callable[[K, K], None],
    memory: int,
    config: Optional[PBSMConfig] = None,
    *,
    depth: int = 0,
    label: str = "0",
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> int:
    """Plane-sweep one partition pair; the heart of PBSM's merge phase.

    A module-level function over plain ``(Rect, key, tile, class)``
    sequences so it is independently executable: :class:`PBSMJoin` drives
    it against key-pointer files and a candidate file, while the
    multiprocess backend pickles the surrounding task and calls it inside
    a worker process with feature-id payloads.

    The sweep runs per tile group: copies of both sides sharing a tile are
    swept together and a pair is emitted only when its class combination
    is in the mini-join table — i.e. only in the tile holding the pair's
    reference point — so every result pair is emitted *exactly once*
    across all tiles and partitions.  §3.5 skew handling (recursive
    repartitioning of a tile group whose key-pointers exceed ``memory``)
    happens in here, behind ``config.handle_partition_skew``.  Returns the
    number of emitted pairs.
    """
    config = config or PBSMConfig()
    tracer = tracer if tracer is not None else NULL_TRACER
    metrics = metrics if metrics is not None else NULL_METRICS
    with tracer.span("merge_pair", pair=label, depth=depth) as span:
        span.tag("len_r", len(kps_r))
        span.tag("len_s", len(kps_s))
        if not kps_r or not kps_s:
            return 0

        by_tile_r: Dict[int, List[Tuple[Rect, Tuple[K, int]]]] = {}
        for rect, key, tile, cls in kps_r:
            by_tile_r.setdefault(tile, []).append((rect, (key, cls)))
        by_tile_s: Dict[int, List[Tuple[Rect, Tuple[K, int]]]] = {}
        for rect, key, tile, cls in kps_s:
            by_tile_s.setdefault(tile, []).append((rect, (key, cls)))
        shared_tiles = sorted(by_tile_r.keys() & by_tile_s.keys())
        span.tag("tile_groups", len(shared_tiles))

        emitted = 0

        def filtered_emit(
            payload_r: Tuple[K, int], payload_s: Tuple[K, int]
        ) -> None:
            nonlocal emitted
            key_r, cls_r = payload_r
            key_s, cls_s = payload_s
            if ALLOWED_COMBO_TABLE[cls_r][cls_s]:
                emitted += 1
                emit(key_r, key_s)

        for tile in shared_tiles:
            group_r = by_tile_r[tile]
            group_s = by_tile_s[tile]
            oversized = (len(group_r) + len(group_s)) * KEYPTR_SIZE > memory
            can_recurse = (
                config.handle_partition_skew
                and oversized
                and depth < config.max_repartition_depth
            )
            if can_recurse:
                metrics.counter("pbsm.merge.repartitions").inc()
                emitted += _repartition_pair(
                    group_r, group_s, emit, memory, config,
                    depth=depth, label=f"{label}.t{tile}",
                    tracer=tracer, metrics=metrics,
                )
                continue
            if config.handle_partition_skew and oversized:
                # §3.5 gave up: the depth budget is spent (or was declared
                # spent by the no-progress fast-path in the recursion) and
                # the group still exceeds memory, so this sweep runs
                # over-budget.  Count it — it is the skew-handling failure
                # mode operators need to see.
                metrics.counter("pbsm.merge.repartition_exhausted").inc()
                span.tag("repartition_exhausted", True)
            if config.use_interval_tree:
                sweep_join_interval_tree(group_r, group_s, filtered_emit)
            else:
                sweep_join(group_r, group_s, filtered_emit)

        span.tag("candidates", emitted)
        metrics.counter("pbsm.merge.pairs_swept").inc()
        metrics.histogram("pbsm.merge.inputs_per_pair").observe(
            len(kps_r) + len(kps_s)
        )
        metrics.histogram("pbsm.merge.candidates_per_pair").observe(emitted)
        return emitted


def _repartition_pair(
    group_r: Sequence[Tuple[Rect, Tuple[K, int]]],
    group_s: Sequence[Tuple[Rect, Tuple[K, int]]],
    emit: Callable[[K, K], None],
    memory: int,
    config: PBSMConfig,
    *,
    depth: int,
    label: str,
    tracer: Optional[Tracer],
    metrics: Optional[MetricsRegistry],
) -> int:
    """§3.5 extension: split an overflowing tile group with a finer grid.

    The group's copies are re-tiled over a finer :class:`TileGrid` and
    re-tagged with their sub-tile classes; the parent tile's class filter
    is folded into the recursive emit (each payload carries its class in
    the parent grid), so a pair passes iff it passes the class filter at
    *every* level — exactly-once emission holds at any depth and no
    replicate-and-dedup fallback is ever needed.
    """
    sub_universe = Rect.union_all(rect for rect, _ in group_r).union(
        Rect.union_all(rect for rect, _ in group_s)
    )
    sub_p = max(2, estimate_num_partitions(len(group_r), len(group_s), memory))
    grid = TileGrid.for_tiles(sub_universe, sub_p)
    sub_r = [
        (rect, payload, tile, cls)
        for rect, payload in group_r
        for tile, cls in grid.tile_assignments(rect)
    ]
    sub_s = [
        (rect, payload, tile, cls)
        for rect, payload in group_s
        for tile, cls in grid.tile_assignments(rect)
    ]
    sizes_r: Dict[int, int] = {}
    for _rect, _payload, tile, _cls in sub_r:
        sizes_r[tile] = sizes_r.get(tile, 0) + 1
    sizes_s: Dict[int, int] = {}
    for _rect, _payload, tile, _cls in sub_s:
        sizes_s[tile] = sizes_s.get(tile, 0) + 1
    progress = all(
        sizes_r[tile] < len(group_r) or sizes_s[tile] < len(group_s)
        for tile in sizes_r.keys() & sizes_s.keys()
    )
    if not progress and metrics is not None:
        # Every input landed in some single sub-tile whole (e.g. identical
        # rectangles): a finer grid cannot split this group, so recursing
        # further would only re-run the same partitioning.  Jump straight to
        # the depth cap so the children sweep instead of recursing.
        metrics.counter("pbsm.merge.repartition_no_progress").inc()
    next_depth = depth + 1 if progress else config.max_repartition_depth

    delivered = 0

    def deliver(payload_r: Tuple[K, int], payload_s: Tuple[K, int]) -> None:
        nonlocal delivered
        key_r, cls_r = payload_r
        key_s, cls_s = payload_s
        if ALLOWED_COMBO_TABLE[cls_r][cls_s]:
            delivered += 1
            emit(key_r, key_s)

    merge_partition_pair(
        sub_r, sub_s, deliver, memory, config,
        depth=next_depth, label=f"{label}.r",
        tracer=tracer, metrics=metrics,
    )
    return delivered


class PBSMJoin:
    """Partition Based Spatial-Merge join over two relations.

    ``tracer``/``metrics`` opt the execution into ``repro.obs``: per-phase
    and per-partition-pair spans, partition-skew and candidates-per-pair
    histograms.  Both default to shared no-ops, so an uninstrumented join
    costs what it always did.
    """

    def __init__(
        self,
        pool: BufferPool,
        config: Optional[PBSMConfig] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.pool = pool
        self.config = config or PBSMConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS

    # ------------------------------------------------------------------ #

    def run(
        self,
        rel_r: Relation,
        rel_s: Relation,
        predicate: Predicate,
    ) -> JoinResult:
        """Execute the join; returns exact result pairs plus a cost report."""
        report = JoinReport(algorithm="PBSM")
        meter = PhaseMeter(self.pool.disk, report, tracer=self.tracer)
        if len(rel_r) == 0 or len(rel_s) == 0:
            return JoinResult([], report)

        cfg = self.config
        memory = cfg.memory_bytes or self.pool.capacity * PAGE_SIZE
        num_partitions = estimate_num_partitions(len(rel_r), len(rel_s), memory)
        universe = rel_r.universe.union(rel_s.universe)
        partitioner = SpatialPartitioner(
            universe,
            num_partitions,
            max(cfg.num_tiles, num_partitions),
            cfg.scheme,
        )
        report.notes["num_partitions"] = num_partitions
        report.notes["num_tiles"] = partitioner.num_tiles
        self.metrics.gauge("pbsm.num_partitions").set(num_partitions)
        self.metrics.gauge("pbsm.num_tiles").set(partitioner.num_tiles)

        in_memory = num_partitions == 1
        with meter.phase(f"Partition {rel_r.name}"):
            parts_r = self._partition_input(rel_r, partitioner, in_memory)
        with meter.phase(f"Partition {rel_s.name}"):
            parts_s = self._partition_input(rel_s, partitioner, in_memory)
        skew = self.metrics.histogram("pbsm.partition.keypointers")
        for part in (*parts_r, *parts_s):
            skew.observe(part.count if isinstance(part, KeyPointerFile) else len(part))

        candidate_file = CandidateFile(self.pool)
        with meter.phase("Merge Partitions"):
            for index, (part_r, part_s) in enumerate(zip(parts_r, parts_s)):
                self._merge_pair(
                    part_r, part_s, candidate_file, memory,
                    depth=0, label=str(index),
                )
            for part in (*parts_r, *parts_s):
                if isinstance(part, KeyPointerFile):
                    part.drop()
        report.candidates = candidate_file.count

        with meter.phase("Refinement"):
            candidates = candidate_file.read_all()
            candidate_file.drop()
            results = refine(
                rel_r, rel_s, candidates, predicate, memory,
                tracer=self.tracer, metrics=self.metrics,
            )
        report.result_count = len(results)
        result = JoinResult(results, report)
        if cfg.collect_candidates:
            result.candidate_pairs = candidates
        return result

    # ------------------------------------------------------------------ #
    # filter step internals
    # ------------------------------------------------------------------ #

    def _partition_input(
        self,
        relation: Relation,
        partitioner: SpatialPartitioner,
        in_memory: bool,
    ) -> List["KeyPointerFile | List[KeyPointer]"]:
        """Scan a relation, routing key-pointers to the partitions their
        MBRs' tiles map to — one tagged ``(tile, class)`` copy per
        overlapped tile, so the merge can group by tile and apply the
        duplicate-free class filter."""
        if in_memory:
            # P = 1: a single sweep over untiled input cannot produce
            # duplicates, so everything goes into one class-A group.
            bucket: List[KeyPointer] = []
            for oid, t in relation.scan():
                bucket.append((t.mbr, oid, 0, CLASS_A))
            return [bucket]
        files = [KeyPointerFile(self.pool) for _ in range(partitioner.num_partitions)]
        for oid, t in relation.scan():
            mbr = t.mbr
            for tile, cls in partitioner.tile_assignments(mbr):
                files[partitioner.partition_of_tile(tile)].append(
                    mbr, oid, tile, cls
                )
        return files

    def _merge_pair(
        self,
        part_r: "KeyPointerFile | List[KeyPointer]",
        part_s: "KeyPointerFile | List[KeyPointer]",
        out: CandidateFile,
        memory: int,
        depth: int,
        label: str = "0",
    ) -> None:
        """Plane-sweep one partition pair, spilling to recursion on skew."""
        kps_r = part_r if isinstance(part_r, list) else part_r.read_all()
        kps_s = part_s if isinstance(part_s, list) else part_s.read_all()
        merge_partition_pair(
            kps_r, kps_s, out.append, memory, self.config,
            depth=depth, label=label, tracer=self.tracer, metrics=self.metrics,
        )


def pbsm_join(
    pool: BufferPool,
    rel_r: Relation,
    rel_s: Relation,
    predicate: Predicate,
    config: Optional[PBSMConfig] = None,
) -> JoinResult:
    """Functional convenience wrapper around :class:`PBSMJoin`."""
    return PBSMJoin(pool, config).run(rel_r, rel_s, predicate)
