"""PBSM — Partition Based Spatial-Merge join (§3, the paper's contribution).

Execution plan::

    Partition R   scan R, append <MBR, OID> key-pointers to partition files
    Partition S   same for S (same partitioning function)
    Merge         per partition pair: read both sides into memory, sort on
                  MBR.xl, plane-sweep, emit candidate OID pairs
    Refinement    sort + dedup candidates, batched fetch, exact predicate

The number of partitions follows Equation 1; the partitioning function is
the tiled scheme of §3.4.  When a single partition pair fits in memory
(P = 1) the key-pointers are kept in memory and the merge runs directly, as
the paper describes for small inputs.

§3.5's partition-skew handling (dynamic repartitioning of an overflown
partition pair) is *not* in the paper's implementation; here it is available
behind ``PBSMConfig.handle_partition_skew`` as a documented extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..geometry import Rect, sweep_join, sweep_join_interval_tree
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..storage.buffer import BufferPool
from ..storage.disk import PAGE_SIZE
from ..storage.relation import OID, Relation
from .keypointer import KEYPTR_SIZE, CandidateFile, KeyPointer, KeyPointerFile
from .partition import (
    SCHEME_HASH,
    SpatialPartitioner,
    estimate_num_partitions,
)
from .predicates import Predicate
from .refine import refine
from .stats import JoinReport, JoinResult, PhaseMeter

DEFAULT_NUM_TILES = 1024
"""The tile count the paper settled on for its experiments (§4.3)."""


@dataclass
class PBSMConfig:
    """Tuning knobs for a PBSM execution."""

    num_tiles: int = DEFAULT_NUM_TILES
    scheme: str = SCHEME_HASH
    memory_bytes: Optional[int] = None
    """Memory budget M of Equation 1; defaults to the buffer pool size."""
    use_interval_tree: bool = False
    """Footnote-1 variant: interval tree for the y-overlap check."""
    handle_partition_skew: bool = False
    """§3.5 extension: recursively repartition overflowing partition pairs."""
    max_repartition_depth: int = 4


class PBSMJoin:
    """Partition Based Spatial-Merge join over two relations.

    ``tracer``/``metrics`` opt the execution into ``repro.obs``: per-phase
    and per-partition-pair spans, partition-skew and candidates-per-pair
    histograms.  Both default to shared no-ops, so an uninstrumented join
    costs what it always did.
    """

    def __init__(
        self,
        pool: BufferPool,
        config: Optional[PBSMConfig] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.pool = pool
        self.config = config or PBSMConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS

    # ------------------------------------------------------------------ #

    def run(
        self,
        rel_r: Relation,
        rel_s: Relation,
        predicate: Predicate,
    ) -> JoinResult:
        """Execute the join; returns exact result pairs plus a cost report."""
        report = JoinReport(algorithm="PBSM")
        meter = PhaseMeter(self.pool.disk, report, tracer=self.tracer)
        if len(rel_r) == 0 or len(rel_s) == 0:
            return JoinResult([], report)

        cfg = self.config
        memory = cfg.memory_bytes or self.pool.capacity * PAGE_SIZE
        num_partitions = estimate_num_partitions(len(rel_r), len(rel_s), memory)
        universe = rel_r.universe.union(rel_s.universe)
        partitioner = SpatialPartitioner(
            universe,
            num_partitions,
            max(cfg.num_tiles, num_partitions),
            cfg.scheme,
        )
        report.notes["num_partitions"] = num_partitions
        report.notes["num_tiles"] = partitioner.num_tiles
        self.metrics.gauge("pbsm.num_partitions").set(num_partitions)
        self.metrics.gauge("pbsm.num_tiles").set(partitioner.num_tiles)

        in_memory = num_partitions == 1
        with meter.phase(f"Partition {rel_r.name}"):
            parts_r = self._partition_input(rel_r, partitioner, in_memory)
        with meter.phase(f"Partition {rel_s.name}"):
            parts_s = self._partition_input(rel_s, partitioner, in_memory)
        skew = self.metrics.histogram("pbsm.partition.keypointers")
        for part in (*parts_r, *parts_s):
            skew.observe(part.count if isinstance(part, KeyPointerFile) else len(part))

        candidate_file = CandidateFile(self.pool)
        with meter.phase("Merge Partitions"):
            for index, (part_r, part_s) in enumerate(zip(parts_r, parts_s)):
                self._merge_pair(
                    part_r, part_s, candidate_file, memory,
                    depth=0, label=str(index),
                )
            for part in (*parts_r, *parts_s):
                if isinstance(part, KeyPointerFile):
                    part.drop()
        report.candidates = candidate_file.count

        with meter.phase("Refinement"):
            candidates = candidate_file.read_all()
            candidate_file.drop()
            results = refine(
                rel_r, rel_s, candidates, predicate, memory,
                tracer=self.tracer, metrics=self.metrics,
            )
        report.result_count = len(results)
        return JoinResult(results, report)

    # ------------------------------------------------------------------ #
    # filter step internals
    # ------------------------------------------------------------------ #

    def _partition_input(
        self,
        relation: Relation,
        partitioner: SpatialPartitioner,
        in_memory: bool,
    ) -> List["KeyPointerFile | List[KeyPointer]"]:
        """Scan a relation, routing key-pointers to the partitions their
        MBRs' tiles map to (replicating across partitions as needed)."""
        if in_memory:
            bucket: List[KeyPointer] = []
            for oid, t in relation.scan():
                bucket.append((t.mbr, oid))
            return [bucket]
        files = [KeyPointerFile(self.pool) for _ in range(partitioner.num_partitions)]
        for oid, t in relation.scan():
            mbr = t.mbr
            for p in partitioner.partitions_for_rect(mbr):
                files[p].append(mbr, oid)
        return files

    def _merge_pair(
        self,
        part_r: "KeyPointerFile | List[KeyPointer]",
        part_s: "KeyPointerFile | List[KeyPointer]",
        out: CandidateFile,
        memory: int,
        depth: int,
        label: str = "0",
    ) -> None:
        """Plane-sweep one partition pair, spilling to recursion on skew."""
        with self.tracer.span("merge_pair", pair=label, depth=depth) as span:
            kps_r = part_r if isinstance(part_r, list) else part_r.read_all()
            kps_s = part_s if isinstance(part_s, list) else part_s.read_all()
            span.tag("len_r", len(kps_r))
            span.tag("len_s", len(kps_s))
            if not kps_r or not kps_s:
                return

            oversized = (len(kps_r) + len(kps_s)) * KEYPTR_SIZE > memory
            can_recurse = (
                self.config.handle_partition_skew
                and oversized
                and depth < self.config.max_repartition_depth
            )
            if can_recurse:
                self.metrics.counter("pbsm.merge.repartitions").inc()
                span.tag("repartitioned", True)
                self._repartition_pair(kps_r, kps_s, out, memory, depth, label)
                return

            before = out.count
            items_r = [(rect, oid) for rect, oid in kps_r]
            items_s = [(rect, oid) for rect, oid in kps_s]
            if self.config.use_interval_tree:
                sweep_join_interval_tree(items_r, items_s, out.append)
            else:
                sweep_join(items_r, items_s, out.append)
            emitted = out.count - before
            span.tag("candidates", emitted)
            self.metrics.counter("pbsm.merge.pairs_swept").inc()
            self.metrics.histogram("pbsm.merge.inputs_per_pair").observe(
                len(kps_r) + len(kps_s)
            )
            self.metrics.histogram("pbsm.merge.candidates_per_pair").observe(emitted)

    def _repartition_pair(
        self,
        kps_r: List[KeyPointer],
        kps_s: List[KeyPointer],
        out: CandidateFile,
        memory: int,
        depth: int,
        label: str = "0",
    ) -> None:
        """§3.5 extension: split an overflowing pair with a finer grid."""
        sub_universe = Rect.union_all(rect for rect, _ in kps_r).union(
            Rect.union_all(rect for rect, _ in kps_s)
        )
        sub_p = max(
            2,
            estimate_num_partitions(len(kps_r), len(kps_s), memory),
        )
        sub = SpatialPartitioner(
            sub_universe, sub_p, max(self.config.num_tiles, sub_p), self.config.scheme
        )
        buckets_r: List[List[KeyPointer]] = [[] for _ in range(sub_p)]
        buckets_s: List[List[KeyPointer]] = [[] for _ in range(sub_p)]
        for rect, oid in kps_r:
            for p in sub.partitions_for_rect(rect):
                buckets_r[p].append((rect, oid))
        for rect, oid in kps_s:
            for p in sub.partitions_for_rect(rect):
                buckets_s[p].append((rect, oid))
        progress = all(
            len(br) < len(kps_r) or len(bs) < len(kps_s)
            for br, bs in zip(buckets_r, buckets_s)
        )
        next_depth = depth + 1 if progress else self.config.max_repartition_depth
        for sub_index, (br, bs) in enumerate(zip(buckets_r, buckets_s)):
            self._merge_pair(
                br, bs, out, memory, next_depth, label=f"{label}.{sub_index}"
            )


def pbsm_join(
    pool: BufferPool,
    rel_r: Relation,
    rel_s: Relation,
    predicate: Predicate,
    config: Optional[PBSMConfig] = None,
) -> JoinResult:
    """Functional convenience wrapper around :class:`PBSMJoin`."""
    return PBSMJoin(pool, config).run(rel_r, rel_s, predicate)
