"""Cost accounting for join executions.

Every join driver meters its phases ("Build Hyd. Index", "Partition Road",
"Refinement", ...) with a :class:`PhaseMeter`.  A phase records wall-clock
CPU seconds plus the simulated-disk I/O it generated; the paper's Table 4
("Total Cost / I/O Cost / I/O Contribution" per component) falls directly
out of these records.

Since the ``repro.obs`` subsystem landed, :class:`PhaseMeter` is a thin
adapter over :class:`repro.obs.trace.Tracer`: each phase is one span, and
the :class:`PhaseCost` is filled from the closed span's deltas.  Reports
are unchanged — byte-for-byte — but drivers handed an enabled tracer now
contribute their phases to the full trace for free.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from ..obs.trace import Tracer
from ..storage.disk import SimulatedDisk
from ..storage.relation import OID


@dataclass
class PhaseCost:
    """Measured cost of one named join phase."""

    name: str
    cpu_s: float = 0.0
    io_s: float = 0.0
    page_reads: int = 0
    page_writes: int = 0
    seeks: int = 0

    @property
    def total_s(self) -> float:
        return self.cpu_s + self.io_s

    @property
    def total_ios(self) -> int:
        return self.page_reads + self.page_writes

    @property
    def io_fraction(self) -> float:
        return self.io_s / self.total_s if self.total_s else 0.0

    def merge(self, other: "PhaseCost") -> None:
        self.cpu_s += other.cpu_s
        self.io_s += other.io_s
        self.page_reads += other.page_reads
        self.page_writes += other.page_writes
        self.seeks += other.seeks


@dataclass
class JoinReport:
    """Phase-by-phase cost record of one join execution."""

    algorithm: str
    phases: List[PhaseCost] = field(default_factory=list)
    candidates: int = 0
    result_count: int = 0
    notes: dict = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        return sum(p.total_s for p in self.phases)

    @property
    def cpu_s(self) -> float:
        return sum(p.cpu_s for p in self.phases)

    @property
    def io_s(self) -> float:
        return sum(p.io_s for p in self.phases)

    @property
    def io_fraction(self) -> float:
        return self.io_s / self.total_s if self.total_s else 0.0

    def phase(self, name: str) -> PhaseCost:
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(f"no phase named {name!r} in {self.algorithm}")

    def format_table(self) -> str:
        """Render the report like a row group of the paper's Table 4."""
        lines = [
            f"{self.algorithm}: total={self.total_s:.2f}s "
            f"(cpu={self.cpu_s:.2f}s io={self.io_s:.2f}s "
            f"io%={100 * self.io_fraction:.1f}) "
            f"candidates={self.candidates} results={self.result_count}"
        ]
        for p in self.phases:
            lines.append(
                f"  {p.name:<28} total={p.total_s:8.2f}s io={p.io_s:7.2f}s "
                f"io%={100 * p.io_fraction:5.1f} "
                f"r/w/seek={p.page_reads}/{p.page_writes}/{p.seeks}"
            )
        return "\n".join(lines)


@dataclass
class JoinResult:
    """A join's output pairs plus its cost report."""

    pairs: List[Tuple[OID, OID]]
    report: JoinReport
    candidate_pairs: Optional[List[Tuple[OID, OID]]] = None
    """The filter step's raw candidates (duplicates included); populated
    only when the driver was asked to keep them (``collect_candidates``)."""

    def __len__(self) -> int:
        return len(self.pairs)


class PhaseMeter:
    """Meters named phases against one simulated disk.

    Each phase opens a span on the meter's tracer.  Pass a driver-level
    tracer (built over the same disk) to nest per-phase spans into a wider
    trace; without one the meter keeps a private tracer, so metering works
    exactly as before observability existed.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        report: Optional[JoinReport] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.disk = disk
        self.report = report
        self.phases: List[PhaseCost] = report.phases if report is not None else []
        if tracer is not None and tracer.enabled and tracer.disk is disk:
            self.tracer = tracer
        else:
            # A disabled or foreign-disk tracer cannot meter this disk.
            self.tracer = Tracer(disk=disk)

    @contextmanager
    def phase(self, name: str) -> Iterator[PhaseCost]:
        """Meter a block; repeated names accumulate into one phase entry."""
        cost = PhaseCost(name)
        span = self.tracer.start_span(name, kind="phase")
        try:
            yield cost
        finally:
            self.tracer.end_span(span)
            cost.cpu_s += span.cpu_s
            cost.io_s += span.disk.io_time(self.disk.cost_model)
            cost.page_reads += span.disk.page_reads
            cost.page_writes += span.disk.page_writes
            cost.seeks += span.disk.seeks
            existing = next((p for p in self.phases if p.name == name), None)
            if existing is not None and existing is not cost:
                existing.merge(cost)
            else:
                self.phases.append(cost)
