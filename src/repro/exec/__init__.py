"""Volcano-style executor: spatial joins over intermediate results."""

from .operators import (
    Filter,
    Limit,
    Materialize,
    Operator,
    RelationScan,
    SpatialJoin,
    WindowFilter,
)

__all__ = [
    "Filter",
    "Limit",
    "Materialize",
    "Operator",
    "RelationScan",
    "SpatialJoin",
    "WindowFilter",
]
