"""A small Volcano-style query executor.

The paper's opening motivation for PBSM: "Such a situation could arise if
both inputs to the join are intermediate results in a complex query" —
intermediate results never have indices, so the optimiser must evaluate
their spatial join without one.  This module provides exactly that setting:
pull-based operators over spatial tuples, a :class:`Materialize` operator
that spools an intermediate result into a temporary relation, and a
:class:`SpatialJoin` operator that materialises both children and lets the
planner pick the algorithm (which, with no indices, is PBSM).

Rows flowing between operators are ``(OID, SpatialTuple)`` pairs; the OID
is the row's identity in whatever relation it was last materialised in.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator, List, Optional, Tuple

from ..core.planner import plan_join
from ..core.predicates import Predicate
from ..core.stats import JoinReport
from ..geometry import Rect
from ..storage.buffer import BufferPool
from ..storage.relation import OID, Relation
from ..storage.tuples import SpatialTuple

Row = Tuple[OID, SpatialTuple]

_temp_counter = itertools.count()


class Operator:
    """Base class: operators are restartable iterators of rows."""

    def rows(self) -> Iterator[Row]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Row]:
        return self.rows()


class RelationScan(Operator):
    """Leaf operator: sequential scan of a stored relation."""

    def __init__(self, relation: Relation):
        self.relation = relation

    def rows(self) -> Iterator[Row]:
        yield from self.relation.scan()


class Filter(Operator):
    """Row-level selection on attributes and/or geometry."""

    def __init__(self, child: Operator, predicate: Callable[[SpatialTuple], bool]):
        self.child = child
        self.predicate = predicate

    def rows(self) -> Iterator[Row]:
        for oid, t in self.child:
            if self.predicate(t):
                yield oid, t


class WindowFilter(Filter):
    """Selection by MBR overlap with a query window (a common GIS clause)."""

    def __init__(self, child: Operator, window: Rect):
        super().__init__(child, lambda t: t.mbr.intersects(window))
        self.window = window


class Limit(Operator):
    """Cap the row count (pagination / top-k style plumbing)."""

    def __init__(self, child: Operator, n: int):
        if n < 0:
            raise ValueError("limit must be non-negative")
        self.child = child
        self.n = n

    def rows(self) -> Iterator[Row]:
        yield from itertools.islice(self.child, self.n)


class Materialize(Operator):
    """Spool the child into a temporary relation (run once, cached).

    This is what makes a result "intermediate" in the paper's sense: it is
    a fresh relation on disk with fresh OIDs and, crucially, no index.
    """

    def __init__(self, pool: BufferPool, child: Operator, name: Optional[str] = None):
        self.pool = pool
        self.child = child
        self.name = name or f"__temp_{next(_temp_counter)}"
        self._relation: Optional[Relation] = None

    def relation(self) -> Relation:
        if self._relation is None:
            rel = Relation(self.pool, self.name)
            for _oid, t in self.child:
                rel.insert(t)
            self._relation = rel
        return self._relation

    def rows(self) -> Iterator[Row]:
        yield from self.relation().scan()

    def drop(self) -> None:
        if self._relation is not None:
            self._relation.heap.drop()
            self._relation = None


class SpatialJoin(Operator):
    """Spatial join of two sub-plans.

    Both children are materialised into temporary (index-less) relations,
    the planner chooses the algorithm — PBSM, per the paper, since no
    intermediate result carries an index — and the exact result rows are
    produced as ``(left_row, right_row)`` pairs via :meth:`pairs`, or as
    left rows via the default iterator (semi-join style).
    """

    def __init__(
        self,
        pool: BufferPool,
        left: Operator,
        right: Operator,
        predicate: Predicate,
    ):
        self.pool = pool
        self.left = Materialize(pool, left) if not isinstance(left, Materialize) else left
        self.right = (
            Materialize(pool, right) if not isinstance(right, Materialize) else right
        )
        self.predicate = predicate
        self.last_report: Optional[JoinReport] = None

    def pairs(self) -> List[Tuple[Row, Row]]:
        rel_l = self.left.relation()
        rel_r = self.right.relation()
        if len(rel_l) == 0 or len(rel_r) == 0:
            return []
        _plan, result = plan_join(
            self.pool, rel_l, rel_r, self.predicate
        )
        self.last_report = result.report
        return [
            ((oid_l, rel_l.fetch(oid_l)), (oid_r, rel_r.fetch(oid_r)))
            for oid_l, oid_r in result.pairs
        ]

    def rows(self) -> Iterator[Row]:
        seen = set()
        for (oid_l, t_l), _right in self.pairs():
            if oid_l not in seen:
                seen.add(oid_l)
                yield oid_l, t_l
