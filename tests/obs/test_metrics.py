"""Tests for the metrics registry: counters, gauges, histograms, no-ops."""

import pytest

from repro.obs.metrics import NULL_METRICS, Histogram, MetricsRegistry


class TestCounterGauge:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        assert reg.counter("c").value == 5

    def test_gauge_keeps_last(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(3.5)
        reg.gauge("g").set(1.25)
        assert reg.gauge("g").value == 1.25

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")


class TestHistogram:
    def test_bucketing_inclusive_upper_bound(self):
        h = Histogram("h", buckets=[1, 10, 100])
        for v in (0, 1, 5, 10, 99, 1000):
            h.observe(v)
        assert [b["count"] for b in h.snapshot()["buckets"]] == [2, 2, 1, 1]

    def test_stats(self):
        h = Histogram("h", buckets=[10])
        h.observe(2)
        h.observe(6)
        assert h.count == 2
        assert h.mean == 4
        assert h.min == 2 and h.max == 6

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=[10, 1])

    def test_empty_histogram_snapshot(self):
        snap = Histogram("h", buckets=[1]).snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None


class TestRegistry:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.gauge("b").set(7)
        reg.histogram("c", buckets=[1, 2]).observe(1)
        snap = reg.snapshot()
        assert snap["a"] == {"type": "counter", "value": 2}
        assert snap["b"] == {"type": "gauge", "value": 7}
        assert snap["c"]["type"] == "histogram"
        assert list(snap) == ["a", "b", "c"]

    def test_disabled_registry_is_noop(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.counter("x").inc(100)
        NULL_METRICS.gauge("y").set(1)
        NULL_METRICS.histogram("z").observe(5)
        assert NULL_METRICS.snapshot() == {}
        assert NULL_METRICS.names() == []

    def test_disabled_instruments_shared(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a") is reg.histogram("b")
