"""Tests for the metrics registry: counters, gauges, histograms, no-ops."""

import pytest

from repro.obs.metrics import (
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    histogram_delta,
    snapshot_delta,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        assert reg.counter("c").value == 5

    def test_gauge_keeps_last(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(3.5)
        reg.gauge("g").set(1.25)
        assert reg.gauge("g").value == 1.25

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")


class TestHistogram:
    def test_bucketing_inclusive_upper_bound(self):
        h = Histogram("h", buckets=[1, 10, 100])
        for v in (0, 1, 5, 10, 99, 1000):
            h.observe(v)
        assert [b["count"] for b in h.snapshot()["buckets"]] == [2, 2, 1, 1]

    def test_stats(self):
        h = Histogram("h", buckets=[10])
        h.observe(2)
        h.observe(6)
        assert h.count == 2
        assert h.mean == 4
        assert h.min == 2 and h.max == 6

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=[10, 1])

    def test_empty_histogram_snapshot(self):
        snap = Histogram("h", buckets=[1]).snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None


class TestHistogramQuantile:
    def test_empty_histogram_has_no_quantiles(self):
        h = Histogram("h", buckets=[1, 10])
        assert h.quantile(0.5) is None
        assert h.summary() == {
            "count": 0, "sum": 0.0, "mean": 0.0, "min": None, "max": None,
            "p50": None, "p90": None, "p99": None,
        }

    def test_single_sample_returns_it_for_every_q(self):
        h = Histogram("h", buckets=[1, 10, 100])
        h.observe(7)
        assert h.quantile(0.0) == 7
        assert h.quantile(0.5) == 7
        assert h.quantile(1.0) == 7

    def test_interpolates_inside_a_bucket(self):
        h = Histogram("h", buckets=[0, 100])
        for v in (10, 20, 30, 40, 50, 60, 70, 80, 90, 100):
            h.observe(v)
        # All ten samples land in the (0, 100] bucket; linear interpolation
        # over the bucket span puts the median near the middle of it.
        p50 = h.quantile(0.5)
        assert 40 <= p50 <= 60

    def test_clamped_to_observed_extremes(self):
        h = Histogram("h", buckets=[1000])
        h.observe(40)
        h.observe(60)
        # The bucket spans (min, 1000] but nothing above 60 was observed:
        # estimates must never leave [min, max].
        assert h.quantile(0.99) <= 60
        assert h.quantile(0.01) >= 40

    def test_quantile_ordering_is_monotone(self):
        h = Histogram("h", buckets=[1, 2, 4, 8, 16, 32])
        for v in range(1, 30):
            h.observe(v)
        qs = [h.quantile(q / 10) for q in range(11)]
        assert qs == sorted(qs)
        assert qs[0] == 1 and qs[-1] == 29

    def test_out_of_range_q_rejected(self):
        h = Histogram("h")
        h.observe(1)
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_summary_shape(self):
        h = Histogram("h", buckets=[1, 10, 100])
        for v in (1, 5, 50):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3 and s["sum"] == 56
        assert s["min"] == 1 and s["max"] == 50
        assert s["p50"] is not None and s["p90"] is not None

    def test_disabled_instrument_quantiles(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.histogram("h").quantile(0.5) is None
        assert reg.histogram("h").summary() == {}


class TestHistogramDelta:
    def make(self, *values):
        h = Histogram("h", buckets=[1, 10, 100])
        for v in values:
            h.observe(v)
        return h

    def test_empty_prev_yields_full_snapshot(self):
        h = self.make(5, 50)
        assert h.delta(None) == h.snapshot()
        assert h.delta({}) == h.snapshot()

    def test_identical_snapshots_yield_zero(self):
        h = self.make(5, 50)
        d = h.delta(h.snapshot())
        assert d["count"] == 0
        assert d["sum"] == 0.0
        assert d["min"] is None and d["max"] is None
        assert all(b["count"] == 0 for b in d["buckets"])

    def test_window_holds_only_new_observations(self):
        h = self.make(5)
        prev = h.snapshot()
        h.observe(50)
        h.observe(60)
        d = h.delta(prev)
        assert d["count"] == 2
        assert d["sum"] == 110.0
        assert [b["count"] for b in d["buckets"]] == [0, 0, 2, 0]
        # min/max are bucket-edge estimates: (10, 100] bounds the window.
        assert d["min"] == 10 and d["max"] == 100

    def test_exact_extremes_when_prev_was_empty(self):
        h = self.make()
        prev = h.snapshot()
        h.observe(5)
        h.observe(50)
        d = h.delta(prev)
        assert d["min"] == 5 and d["max"] == 50

    def test_regressed_bucket_means_restart(self):
        # prev claims more observations than the instrument now holds:
        # the instrument restarted, so the whole current state is the delta.
        prev = self.make(5, 50, 60).snapshot()
        h = self.make(7)
        assert h.delta(prev) == h.snapshot()

    def test_regressed_single_bucket_detected(self):
        # Same total count but one bucket moved backwards — still a restart.
        prev = self.make(5).snapshot()
        cur = self.make(50).snapshot()
        assert histogram_delta(cur, prev) == cur

    def test_mismatched_bounds_rejected(self):
        prev = Histogram("h", buckets=[1, 2]).snapshot()
        with pytest.raises(ValueError):
            self.make(5).delta(prev)

    def test_quantiles_of_a_rebuilt_delta(self):
        h = self.make(5)
        prev = h.snapshot()
        for v in (20, 30, 40):
            h.observe(v)
        window = Histogram.from_snapshot(h.delta(prev))
        assert window.count == 3
        # All three landed in (10, 100]; the estimate stays in-bucket.
        assert 10 <= window.quantile(0.5) <= 100


class TestSnapshotDelta:
    def test_counters_subtract_gauges_pass(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.gauge("g").set(10)
        prev = reg.snapshot()
        reg.counter("c").inc(3)
        reg.gauge("g").set(7)
        d = reg.delta(prev)
        assert d["c"] == {"type": "counter", "value": 3}
        assert d["g"] == {"type": "gauge", "value": 7}

    def test_counter_reset_clamps_to_current(self):
        cur = {"c": {"type": "counter", "value": 2}}
        prev = {"c": {"type": "counter", "value": 9}}
        assert snapshot_delta(cur, prev)["c"]["value"] == 2

    def test_new_instrument_contributes_fully(self):
        reg = MetricsRegistry()
        prev = reg.snapshot()
        reg.counter("born").inc(4)
        assert reg.delta(prev)["born"]["value"] == 4

    def test_histograms_delegate(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=[1, 10])
        h.observe(5)
        prev = reg.snapshot()
        h.observe(7)
        d = reg.delta(prev)
        assert d["h"]["count"] == 1

    def test_disabled_registry_answers_empty(self):
        assert MetricsRegistry(enabled=False).delta({}) == {}
        assert NULL_METRICS.counter("x").delta({}) == {}


class TestRegistry:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.gauge("b").set(7)
        reg.histogram("c", buckets=[1, 2]).observe(1)
        snap = reg.snapshot()
        assert snap["a"] == {"type": "counter", "value": 2}
        assert snap["b"] == {"type": "gauge", "value": 7}
        assert snap["c"]["type"] == "histogram"
        assert list(snap) == ["a", "b", "c"]

    def test_disabled_registry_is_noop(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.counter("x").inc(100)
        NULL_METRICS.gauge("y").set(1)
        NULL_METRICS.histogram("z").observe(5)
        assert NULL_METRICS.snapshot() == {}
        assert NULL_METRICS.names() == []

    def test_disabled_instruments_shared(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a") is reg.histogram("b")
