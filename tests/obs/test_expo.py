"""Prometheus-style text exposition: rendering, parsing, determinism."""

import pytest

from repro.obs.expo import (
    format_value,
    metric_name,
    parse_exposition,
    render_exposition,
)
from repro.obs.metrics import Histogram, MetricsRegistry


def sample_registry():
    reg = MetricsRegistry()
    reg.counter("serve.completed").inc(5)
    reg.gauge("disk.budget.used_bytes").set(4096)
    h = reg.histogram("serve.latency_s", buckets=[0.1, 1.0])
    for v in (0.05, 0.5, 2.0):
        h.observe(v)
    return reg


class TestMetricName:
    def test_dots_become_underscores(self):
        assert metric_name("serve.cache.hits") == "repro_serve_cache_hits"

    def test_hostile_characters_sanitised(self):
        assert metric_name("a-b c/d") == "repro_a_b_c_d"

    def test_custom_prefix(self):
        assert metric_name("x", prefix="") == "x"


class TestFormatValue:
    def test_integral_floats_render_as_ints(self):
        assert format_value(5.0) == "5"
        assert format_value(0) == "0"

    def test_fractions_keep_precision(self):
        assert format_value(0.25) == "0.25"

    def test_special_values(self):
        assert format_value(None) == "NaN"
        assert format_value(float("inf")) == "+Inf"


class TestRenderExposition:
    def test_golden_output(self):
        # The exact wire format — a golden test so the exposition cannot
        # silently drift and break scrapers.
        assert render_exposition(sample_registry().snapshot()) == (
            "# TYPE repro_disk_budget_used_bytes gauge\n"
            "repro_disk_budget_used_bytes 4096\n"
            "# TYPE repro_serve_completed counter\n"
            "repro_serve_completed 5\n"
            "# TYPE repro_serve_latency_s histogram\n"
            'repro_serve_latency_s_bucket{le="0.1"} 1\n'
            'repro_serve_latency_s_bucket{le="1"} 2\n'
            'repro_serve_latency_s_bucket{le="+Inf"} 3\n'
            "repro_serve_latency_s_sum 2.55\n"
            "repro_serve_latency_s_count 3\n"
        )

    def test_names_sorted_and_byte_identical(self):
        snap = sample_registry().snapshot()
        assert render_exposition(snap) == render_exposition(snap)
        reg2 = sample_registry()
        assert render_exposition(reg2.snapshot()) == render_exposition(snap)

    def test_buckets_are_cumulative(self):
        h = Histogram("h", buckets=[1, 10])
        for v in (0.5, 5, 5, 100):
            h.observe(v)
        text = render_exposition({"h": h.snapshot()})
        assert 'le="1"} 1\n' in text
        assert 'le="10"} 3\n' in text
        assert 'le="+Inf"} 4\n' in text

    def test_empty_snapshot(self):
        assert render_exposition({}) == ""


class TestParseExposition:
    def test_round_trip(self):
        snap = sample_registry().snapshot()
        parsed = parse_exposition(render_exposition(snap))
        assert parsed["repro_serve_completed"] == {
            "type": "counter", "value": 5.0,
        }
        assert parsed["repro_disk_budget_used_bytes"]["value"] == 4096.0
        hist = parsed["repro_serve_latency_s"]
        assert hist["type"] == "histogram"
        assert hist["count"] == 3.0
        assert hist["sum"] == 2.55
        assert hist["buckets"]["+Inf"] == 3.0
        assert hist["buckets"]["0.1"] == 1.0

    def test_unparseable_line_rejected(self):
        with pytest.raises(ValueError):
            parse_exposition("repro_x this is not a number\n")

    def test_sample_without_type_rejected(self):
        with pytest.raises(ValueError):
            parse_exposition("repro_orphan 3\n")
