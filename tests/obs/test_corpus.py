"""The cross-run warehouse: indexing, scanning, diffing, trending."""

import json

import pytest

from repro.obs.corpus import (
    CorpusError,
    check_gates,
    compare_runs,
    find_record,
    fit_trend,
    index_bench_file,
    index_engine_run,
    index_path,
    index_serve_run,
    render_compare,
    render_list,
    render_show,
    render_trend,
    scan_corpus,
)

ENGINE_EVENTS = [
    {"type": "run_started", "backend": "process", "workers": 2,
     "partitions": 4, "tuples_r": 100, "tuples_s": 50, "resuming": False,
     "dataset": "road_hydro", "seed": 7},
    {"type": "schedule", "order": [{"pair": 0, "cost": 30},
                                   {"pair": 1, "cost": 20}]},
    {"type": "task_finished", "pair": 0, "attempt": 0, "candidates": 9,
     "results": 4, "wall_s": 0.03},
    {"type": "task_finished", "pair": 1, "attempt": 0, "candidates": 5,
     "results": 2, "wall_s": 0.02},
    {"type": "run_finished", "results": 6, "degraded_pairs": []},
]

SERVE_EVENTS = [
    {"type": "query_received", "query": "query-0001", "dataset": "road_hydro",
     "seed": 7},
    {"type": "query_done", "query": "query-0001", "source": "miss",
     "latency_s": 0.4},
    {"type": "query_received", "query": "query-0002", "dataset": "road_hydro",
     "seed": 7},
    {"type": "cache_hit", "query": "query-0002"},
    {"type": "query_done", "query": "query-0002", "source": "hit",
     "latency_s": 0.1},
    {"type": "sample", "kind": "telemetry", "queued": 3, "inflight": 2,
     "completed": 2, "breaker_state": "closed"},
    {"type": "cache_scrub", "scanned": 4, "repaired": 1, "quarantined": 0,
     "evicted": 0},
]

BENCH_DOC = {
    "schema_version": 1,
    "benchmark": "serve_throughput",
    "records": [
        {"algorithm": "PBSM", "scale": 0.01, "buffer_mb": 4.0,
         "total_s": 1.5, "cpu_s": 1.0, "io_s": 0.5, "candidates": 10,
         "result_count": 4,
         "counters": {"page_reads": 30, "page_writes": 10, "seeks": 5},
         "phases": [{"name": "Partition", "cpu_s": 0.6, "io_s": 0.2,
                     "page_reads": 20, "page_writes": 10, "seeks": 3}],
         "faults": {"injected": 2, "retries": 1, "quarantined": 0,
                    "degraded": 0, "survived": True},
         "disk": {"spill_bytes": 2048, "denials": 1}},
    ],
}


def write_jsonl(path, records):
    with path.open("w") as fh:
        for i, record in enumerate(records):
            fh.write(json.dumps({"seq": i + 1, "t": 0.1 * i, **record}) + "\n")


@pytest.fixture
def corpus_root(tmp_path):
    """A tree with one engine run, one serve root, and one BENCH file."""
    engine = tmp_path / "runs" / "engine-a"
    engine.mkdir(parents=True)
    write_jsonl(engine / "journal.jsonl", ENGINE_EVENTS)
    (engine / "metrics.json").write_text(json.dumps({"metrics": {
        "merge.duplicates_dropped": {"type": "counter", "value": 3},
        "disk.budget.hwm_bytes": {"type": "gauge", "value": 8192},
    }}))
    serve = tmp_path / "serve-a" / "out"
    serve.mkdir(parents=True)
    write_jsonl(serve / "serve.jsonl", SERVE_EVENTS)
    (tmp_path / "BENCH_serve.json").write_text(json.dumps(BENCH_DOC))
    return tmp_path


class TestIndexers:
    def test_engine_identity_and_metrics(self, corpus_root):
        record = index_engine_run(corpus_root / "runs" / "engine-a")
        assert record.kind == "engine"
        assert record.identity["backend"] == "process"
        assert record.identity["workers"] == 2
        assert record.metrics["results"] == 6
        assert record.metrics["tasks"] == 2
        # metrics.json headline counters ride along.
        assert record.metrics["duplicates_dropped"] == 3
        assert record.metrics["disk_hwm_bytes"] == 8192

    def test_serve_tallies_and_latency_quantiles(self, corpus_root):
        record = index_serve_run(corpus_root / "serve-a" / "out")
        assert record.kind == "serve"
        assert record.identity == {"datasets": ["road_hydro"], "seeds": [7]}
        assert record.metrics["queries_done"] == 2
        assert record.metrics["cache_hits"] == 1
        assert record.metrics["source.hit"] == 1
        assert record.metrics["source.miss"] == 1
        assert record.metrics["latency_count"] == 2
        assert record.metrics["latency_p50_s"] == 0.25
        assert record.metrics["latency_max_s"] == 0.4
        assert record.metrics["telemetry_ticks"] == 1
        assert record.metrics["queue_depth_max"] == 3
        assert record.metrics["inflight_max"] == 2
        assert record.metrics["scrub.passes"] == 1
        assert record.metrics["scrub.repaired"] == 1

    def test_bench_cells_flattened(self, corpus_root):
        records = index_bench_file(corpus_root / "BENCH_serve.json")
        assert len(records) == 1
        record = records[0]
        assert record.identity["algorithm"] == "PBSM"
        assert record.metrics["total_s"] == 1.5
        assert record.metrics["counter.page_reads"] == 30
        assert record.metrics["phase.Partition.cpu_s"] == 0.6
        assert record.metrics["faults.injected"] == 2
        assert record.metrics["faults.survived"] == 1  # bool -> int
        assert record.metrics["disk.spill_bytes"] == 2048

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(CorpusError):
            index_engine_run(tmp_path)
        with pytest.raises(CorpusError):
            index_serve_run(tmp_path)

    def test_index_path_dispatches_by_artifact(self, corpus_root):
        serve = index_path(corpus_root / "serve-a" / "out")
        assert serve.kind == "serve"
        # run_id preserves the user-supplied path, not the dir basename.
        assert serve.run_id == str(corpus_root / "serve-a" / "out")
        engine = index_path(corpus_root / "runs" / "engine-a")
        assert engine.kind == "engine"
        bench = index_path(corpus_root / "BENCH_serve.json")
        assert bench.kind == "bench"
        assert bench.run_id == "BENCH_serve"
        with pytest.raises(CorpusError):
            index_path(corpus_root / "nowhere")


class TestScanCorpus:
    def test_finds_all_artifacts_sorted(self, corpus_root):
        records = scan_corpus(corpus_root)
        assert [(r.kind, r.run_id) for r in records] == [
            ("bench", "BENCH_serve.json#0"),
            ("engine", "runs/engine-a"),
            ("serve", "serve-a/out"),
        ]

    def test_scan_is_deterministic(self, corpus_root):
        first = [r.to_dict() for r in scan_corpus(corpus_root)]
        second = [r.to_dict() for r in scan_corpus(corpus_root)]
        assert first == second

    def test_torn_journal_tolerated_unreadable_skipped(self, corpus_root):
        # A torn journal keeps its intact prefix (read_journal contract) —
        # the run still indexes, just with what survived.
        torn = corpus_root / "torn"
        torn.mkdir()
        (torn / "serve.jsonl").write_text("{not json\n")
        # An unreadable artifact is skipped without poisoning the scan.
        bad = corpus_root / "broken"
        (bad / "serve.jsonl").mkdir(parents=True)
        ids = [r.run_id for r in scan_corpus(corpus_root)]
        assert "torn" in ids
        assert "broken" not in ids
        assert "serve-a/out" in ids

    def test_missing_root_is_empty(self, tmp_path):
        assert scan_corpus(tmp_path / "nope") == []

    def test_find_record(self, corpus_root):
        records = scan_corpus(corpus_root)
        assert find_record(records, "runs/engine-a").kind == "engine"
        assert find_record(records, "missing") is None


class TestCompareAndGates:
    def test_rows_over_union_with_delta_and_ratio(self, corpus_root):
        a = index_serve_run(corpus_root / "serve-a" / "out", run_id="a")
        b = index_serve_run(corpus_root / "serve-a" / "out", run_id="b")
        b.metrics["latency_p50_s"] = 0.5
        b.metrics["only_b"] = 1.0
        rows = {r["metric"]: r for r in compare_runs(a, b)}
        assert rows["latency_p50_s"]["delta"] == 0.25
        assert rows["latency_p50_s"]["ratio"] == 2.0
        assert rows["only_b"]["a"] is None and "delta" not in rows["only_b"]

    def test_metric_restriction_keeps_order(self, corpus_root):
        a = index_serve_run(corpus_root / "serve-a" / "out")
        rows = compare_runs(a, a, metrics=["latency_max_s", "cache_hits"])
        assert [r["metric"] for r in rows] == ["latency_max_s", "cache_hits"]

    def test_gate_fires_past_threshold(self):
        rows = [{"metric": "latency_p50_s", "a": 1.0, "b": 1.25}]
        assert check_gates(rows, ["latency_p50_s"], threshold=0.1)
        assert not check_gates(rows, ["latency_p50_s"], threshold=0.5)

    def test_identical_runs_pass(self, corpus_root):
        a = index_serve_run(corpus_root / "serve-a" / "out")
        rows = compare_runs(a, a)
        assert check_gates(rows, ["latency_p50_s", "latency_max_s"]) == []

    def test_missing_gated_metric_fails_loudly(self):
        failures = check_gates([], ["latency_p50_s"])
        assert failures == ["gate latency_p50_s: metric missing from one side"]


class TestFitTrend:
    def test_flat_series(self):
        trend = fit_trend([2.0, 2.0, 2.0])
        assert trend["slope"] == 0.0 and trend["slope_frac"] == 0.0
        assert trend["mean"] == 2.0

    def test_linear_growth(self):
        trend = fit_trend([1.0, 2.0, 3.0, 4.0])
        assert trend["slope"] == 1.0
        assert trend["intercept"] == 1.0
        assert trend["slope_frac"] == pytest.approx(0.4)

    def test_degenerate_inputs(self):
        assert fit_trend([])["n"] == 0
        assert fit_trend([5.0]) == {
            "n": 1, "slope": 0.0, "intercept": 5.0, "mean": 5.0,
            "slope_frac": 0.0,
        }


class TestRendering:
    def test_renders_are_byte_identical(self, corpus_root):
        records = scan_corpus(corpus_root)
        assert render_list(records) == render_list(scan_corpus(corpus_root))
        serve = find_record(records, "serve-a/out")
        assert render_show(serve) == render_show(serve)
        rows = compare_runs(serve, serve)
        once = render_compare(serve, serve, rows)
        assert once == render_compare(serve, serve, compare_runs(serve, serve))
        assert once.startswith("# runs compare\n")

    def test_list_includes_headline_metric(self, corpus_root):
        text = render_list(scan_corpus(corpus_root))
        assert "latency_p50_s=0.25" in text
        assert "(no runs found)" in render_list([])

    def test_trend_render(self):
        trend = fit_trend([1.0, 2.0])
        text = render_trend("latency_p50_s", ["r1", "r2"], [1.0, 2.0], trend)
        assert "metric: latency_p50_s" in text
        assert "slope: 1 per run" in text
