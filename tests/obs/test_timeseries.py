"""Ring-buffer time series, slow log, and the telemetry sampler.

The property tests pin the invariant the dashboard depends on: the ring
buffer's windowed statistics must equal the same statistics computed over
the retained suffix of the raw stream — wraparound included.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.timeseries import (
    QUANTILES,
    RingBufferSeries,
    SlowLog,
    TelemetrySampler,
    quantile,
)

import pytest

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestQuantile:
    def test_empty_is_none(self):
        assert quantile([], 0.5) is None

    def test_single_value_for_every_q(self):
        for q in (0.0, 0.5, 0.99, 1.0):
            assert quantile([7.0], q) == 7.0

    def test_linear_interpolation(self):
        # rank = q * (n - 1); the numpy "linear" method.
        assert quantile([10.0, 20.0], 0.5) == 15.0
        assert quantile([0.0, 10.0, 20.0, 30.0], 0.25) == 7.5

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)
        with pytest.raises(ValueError):
            quantile([1.0], -0.1)

    @given(st.lists(finite, min_size=1, max_size=40))
    def test_bounded_by_extremes_and_monotone(self, values):
        qs = [quantile(values, q / 10) for q in range(11)]
        assert qs[0] == min(values)
        assert qs[-1] == max(values)
        assert all(a <= b + 1e-9 for a, b in zip(qs, qs[1:]))


class TestRingBufferSeries:
    def test_append_and_samples_in_order(self):
        s = RingBufferSeries("x", capacity=4)
        for i in range(3):
            s.append(float(i), float(i * 10))
        assert s.samples() == [(0.0, 0.0), (1.0, 10.0), (2.0, 20.0)]
        assert s.last() == 20.0

    def test_wraparound_keeps_newest_capacity_samples(self):
        s = RingBufferSeries("x", capacity=3)
        for i in range(7):
            s.append(float(i), float(i))
        assert s.count_total == 7
        assert s.samples() == [(4.0, 4.0), (5.0, 5.0), (6.0, 6.0)]

    def test_window_filters_by_time(self):
        s = RingBufferSeries("x", capacity=8)
        for t in range(6):
            s.append(float(t), float(t))
        # now defaults to the newest sample's timestamp (5.0).
        w = s.window(window_s=2.0)
        assert w["count"] == 3  # t in {3, 4, 5}
        assert w["min"] == 3.0 and w["max"] == 5.0

    def test_empty_window(self):
        s = RingBufferSeries("x", capacity=4)
        w = s.window(window_s=10.0)
        assert w["count"] == 0
        assert w["min"] is None and w["p50"] is None

    @given(
        st.lists(finite, min_size=1, max_size=50),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=60)
    def test_ring_equals_suffix(self, values, capacity):
        """After any stream, the ring holds exactly the newest ``capacity``
        samples, and every windowed statistic equals the one computed
        directly over that suffix."""
        s = RingBufferSeries("x", capacity=capacity)
        for i, v in enumerate(values):
            s.append(float(i), v)
        suffix = values[-capacity:]
        assert [v for _, v in s.samples()] == suffix

        w = s.window(window_s=float(len(values)))  # covers the whole suffix
        assert w["count"] == len(suffix)
        assert w["min"] == min(suffix)
        assert w["max"] == max(suffix)
        assert math.isclose(w["mean"], sum(suffix) / len(suffix), abs_tol=1e-9)
        for q in QUANTILES:
            key = f"p{int(q * 100)}"
            assert math.isclose(w[key], quantile(suffix, q), abs_tol=1e-9)

    @given(
        st.lists(finite, min_size=1, max_size=50),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=60)
    def test_windowed_quantiles_equal_suffix_quantiles(
        self, values, capacity, window
    ):
        """Same invariant with an arbitrary time window: the window selects
        a suffix of the retained samples, and quantiles over the ring match
        quantiles over that suffix exactly."""
        s = RingBufferSeries("x", capacity=capacity)
        for i, v in enumerate(values):
            s.append(float(i), v)
        now = float(len(values) - 1)
        retained = list(enumerate(values))[-capacity:]
        suffix = [v for t, v in retained if t >= now - window]
        assert s.values(window_s=float(window), now=now) == suffix
        w = s.window(window_s=float(window), now=now)
        assert w["count"] == len(suffix)
        if suffix:
            for q in QUANTILES:
                key = f"p{int(q * 100)}"
                assert math.isclose(w[key], quantile(suffix, q), abs_tol=1e-9)


class TestSlowLog:
    def test_top_sorted_by_latency(self):
        log = SlowLog(top_k=2, capacity=8)
        for name, lat in (("a", 0.1), ("b", 0.5), ("c", 0.3)):
            log.record({"query": name, "latency_s": lat})
        assert [e["query"] for e in log.top()] == ["b", "c"]

    def test_ring_evicts_oldest(self):
        log = SlowLog(top_k=2, capacity=2)
        for name, lat in (("old", 9.0), ("x", 0.1), ("y", 0.2)):
            log.record({"query": name, "latency_s": lat})
        # "old" fell out of the ring despite being the slowest ever seen.
        assert [e["query"] for e in log.top()] == ["y", "x"]

    def test_ties_prefer_newer(self):
        log = SlowLog(top_k=2, capacity=8)
        log.record({"query": "first", "latency_s": 0.5})
        log.record({"query": "second", "latency_s": 0.5})
        assert [e["query"] for e in log.top()] == ["second", "first"]


class ScriptedClock:
    """A deterministic clock: each call returns the next scripted instant."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        t = self.now
        self.now += self.step
        return t


class TestTelemetrySampler:
    def test_sample_appends_sorted_readings(self):
        sampler = TelemetrySampler(
            lambda: {"b": 2.0, "a": 1.0}, clock=ScriptedClock()
        )
        sampler.sample()
        snap = sampler.snapshot()
        assert list(snap) == ["a", "b"]
        assert snap["a"]["last"] == 1.0

    def test_none_readings_skipped(self):
        sampler = TelemetrySampler(
            lambda: {"a": 1.0, "gone": None}, clock=ScriptedClock()
        )
        sampler.sample()
        assert list(sampler.snapshot()) == ["a"]

    def test_injectable_clock_determinism(self):
        """Two samplers over the same scripted clock and source stream
        produce byte-identical snapshots — the tentpole's determinism
        contract for the telemetry op."""
        stream = [{"q": float(i % 3), "lat": 0.01 * i} for i in range(25)]

        def run():
            it = iter(stream)
            sampler = TelemetrySampler(
                lambda: next(it), capacity=8, clock=ScriptedClock(step=0.5)
            )
            for _ in stream:
                sampler.sample()
            return sampler.snapshot(window_s=6.0)

        assert run() == run()

    def test_tick_counter(self):
        sampler = TelemetrySampler(lambda: {}, clock=ScriptedClock())
        for _ in range(3):
            sampler.sample()
        assert sampler.ticks == 3
