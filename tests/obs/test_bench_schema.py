"""Tests for the BENCH_*.json schema, validator, and emitters."""

import json

import pytest

from repro.core.stats import JoinReport, PhaseCost
from repro.obs import (
    SchemaError,
    bench_record,
    load_bench_file,
    validate_bench_file,
    validate_bench_record,
    validate_results_dir,
    write_bench_file,
)


def _report():
    report = JoinReport("PBSM", candidates=20, result_count=9)
    report.phases.append(
        PhaseCost("Partition", cpu_s=1.0, io_s=0.5, page_reads=7, page_writes=2, seeks=3)
    )
    report.phases.append(PhaseCost("Merge", cpu_s=0.5, io_s=0.25, page_reads=4))
    return report


class TestBenchRecord:
    def test_record_is_schema_valid(self):
        record = bench_record(
            _report(), scale=0.05, buffer_mb=2.0, buffer_mb_scaled=0.19
        )
        validate_bench_record(record)
        assert record["counters"] == {"page_reads": 11, "page_writes": 2, "seeks": 3}
        assert record["total_s"] == pytest.approx(2.25)

    def test_notes_carried_over(self):
        report = _report()
        report.notes["num_partitions"] = 4
        record = bench_record(report, scale=0.05, buffer_mb=2.0)
        assert record["notes"] == {"num_partitions": 4}
        validate_bench_record(record)


class TestValidator:
    def test_missing_required_key(self):
        record = bench_record(_report(), scale=0.05, buffer_mb=2.0)
        del record["phases"]
        with pytest.raises(SchemaError, match="phases"):
            validate_bench_record(record)

    def test_wrong_type(self):
        record = bench_record(_report(), scale=0.05, buffer_mb=2.0)
        record["candidates"] = "many"
        with pytest.raises(SchemaError, match="candidates"):
            validate_bench_record(record)

    def test_negative_counter(self):
        record = bench_record(_report(), scale=0.05, buffer_mb=2.0)
        record["counters"]["seeks"] = -1
        with pytest.raises(SchemaError, match="seeks"):
            validate_bench_record(record)

    def test_bad_phase_item_named_by_path(self):
        record = bench_record(_report(), scale=0.05, buffer_mb=2.0)
        del record["phases"][1]["io_s"]
        with pytest.raises(SchemaError, match=r"phases\[1\]"):
            validate_bench_record(record)

    def test_bool_is_not_a_number(self):
        record = bench_record(_report(), scale=0.05, buffer_mb=2.0)
        record["total_s"] = True
        with pytest.raises(SchemaError):
            validate_bench_record(record)

    def test_wrong_schema_version_rejected(self):
        with pytest.raises(SchemaError, match="schema_version"):
            validate_bench_file(
                {"schema_version": 99, "benchmark": "x", "records": []}
            )


class TestBenchFile:
    def test_write_validate_load_round_trip(self, tmp_path):
        records = [bench_record(_report(), scale=0.05, buffer_mb=mb)
                   for mb in (2.0, 8.0, 24.0)]
        path = write_bench_file("fig7_road_hydro", records, tmp_path)
        assert path.name == "BENCH_fig7_road_hydro.json"
        document = load_bench_file(path)
        assert document["benchmark"] == "fig7_road_hydro"
        assert len(document["records"]) == 3

    def test_invalid_record_refused_at_write(self, tmp_path):
        record = bench_record(_report(), scale=0.05, buffer_mb=2.0)
        record["io_s"] = None
        with pytest.raises(SchemaError):
            write_bench_file("bad", [record], tmp_path)
        assert not (tmp_path / "BENCH_bad.json").exists()

    def test_validate_results_dir(self, tmp_path):
        write_bench_file(
            "ok", [bench_record(_report(), scale=0.05, buffer_mb=2.0)], tmp_path
        )
        assert len(validate_results_dir(tmp_path)) == 1
        (tmp_path / "BENCH_corrupt.json").write_text(json.dumps({"nope": 1}))
        with pytest.raises(SchemaError):
            validate_results_dir(tmp_path)


class TestCheckedInResults:
    def test_repo_results_dir_is_schema_valid(self):
        from repro.bench.harness import RESULTS_DIR

        # Whatever trajectory files are committed must parse and validate.
        validate_results_dir(RESULTS_DIR)
