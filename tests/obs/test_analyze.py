"""Tests for the post-run analyzer: skew, LPT replay, ledger, rendering."""

import pytest

from repro.obs.analyze import (
    SkewStats,
    analyze_events,
    analyze_run,
    lpt_replay,
    render_report,
)


def _journal(*events):
    """Minimal journal records: (type, fields) tuples with fake seq/t."""
    return [
        {"seq": i + 1, "t": 0.001 * i, "type": event_type, **fields}
        for i, (event_type, fields) in enumerate(events)
    ]


BASE_RUN = _journal(
    ("run_started", {"backend": "process", "workers": 2, "partitions": 4,
                     "tuples_r": 100, "tuples_s": 50, "resuming": False}),
    ("partition_sealed", {"side": "r", "counts": [30, 20, 30, 20]}),
    ("partition_sealed", {"side": "s", "counts": [20, 10, 10, 10]}),
    ("schedule", {"order": [{"pair": 2, "cost": 40}, {"pair": 0, "cost": 30},
                            {"pair": 1, "cost": 20}, {"pair": 3, "cost": 10}]}),
    ("task_finished", {"pair": 2, "attempt": 0, "candidates": 12,
                       "results": 6, "wall_s": 0.04}),
    ("task_finished", {"pair": 0, "attempt": 0, "candidates": 9,
                       "results": 4, "wall_s": 0.03}),
    ("task_finished", {"pair": 1, "attempt": 0, "candidates": 5,
                       "results": 2, "wall_s": 0.02}),
    ("task_finished", {"pair": 3, "attempt": 0, "candidates": 2,
                       "results": 1, "wall_s": 0.01}),
    ("run_finished", {"results": 13, "degraded_pairs": []}),
)


class TestSkewStats:
    def test_empty(self):
        s = SkewStats.from_values([])
        assert s.count == 0 and s.cov == 0.0

    def test_uniform_values_have_zero_cov(self):
        s = SkewStats.from_values([5, 5, 5, 5])
        assert s.cov == 0.0
        assert s.mean == 5 and s.total == 20

    def test_skewed_values_raise_cov(self):
        even = SkewStats.from_values([10, 10, 10, 10]).cov
        skewed = SkewStats.from_values([37, 1, 1, 1]).cov
        assert skewed > even
        assert skewed > 1.0  # one partition holds nearly everything


class TestLptReplay:
    def test_round_robin_over_two_lanes(self):
        order = [{"pair": 0, "cost": 4}, {"pair": 1, "cost": 3},
                 {"pair": 2, "cost": 2}, {"pair": 3, "cost": 1}]
        replay = lpt_replay(order, workers=2)
        # earliest-free-lane: 0->lane0, 1->lane1, 2->lane1(3<4), 3->lane0(4<5)
        assert replay.lanes == [[0, 3], [1, 2]]
        assert replay.lane_costs == [5, 5]
        assert replay.makespan_cost == 5
        assert replay.balance == 1.0

    def test_critical_lane_is_the_heaviest(self):
        order = [{"pair": 0, "cost": 10}, {"pair": 1, "cost": 1},
                 {"pair": 2, "cost": 1}]
        replay = lpt_replay(order, workers=2)
        assert replay.critical_lane == 0
        assert replay.critical_pairs == [0]
        assert replay.makespan_cost == 10
        assert replay.balance == pytest.approx(12 / 20)

    def test_single_lane_degenerate(self):
        replay = lpt_replay([{"pair": 0, "cost": 7}], workers=1)
        assert replay.critical_pairs == [0]
        assert replay.balance == 1.0

    def test_empty_schedule(self):
        replay = lpt_replay([], workers=4)
        assert replay.makespan_cost == 0
        assert replay.critical_pairs == []


class TestAnalyzeEvents:
    def test_base_run_shape(self):
        analysis = analyze_events(BASE_RUN)
        assert analysis.backend == "process"
        assert analysis.workers == 2
        assert analysis.results == 13
        assert analysis.partition_skew["r"].total == 100
        assert [p.pair for p in analysis.executed_pairs] == [0, 1, 2, 3]
        assert analysis.pairs[2].wall_s == pytest.approx(0.04)

    def test_straggler_ranking_is_by_cost_seed(self):
        analysis = analyze_events(BASE_RUN)
        assert [p.pair for p in analysis.stragglers_by_cost()] == [2, 0, 1, 3]
        assert [p.pair for p in analysis.stragglers_by_wall()] == [2, 0, 1, 3]

    def test_fault_ledger_dedupes_refired_injections(self):
        # A pool break can redispatch an uncharged attempt, re-firing the
        # same planned injection: identity must be recorded exactly once.
        records = BASE_RUN + _journal(
            ("fault_injected", {"kind": "worker_crash", "pair": 3, "attempt": 0}),
            ("fault_injected", {"kind": "worker_crash", "pair": 3, "attempt": 0}),
            ("fault_injected", {"kind": "slow_task", "pair": 1, "attempt": 0}),
        )
        analysis = analyze_events(records)
        assert [(r["pair"], r["kind"]) for r in analysis.fault_ledger] == [
            (1, "slow_task"),
            (3, "worker_crash"),
        ]

    def test_replayed_pairs_excluded_from_analysis(self):
        records = BASE_RUN + _journal(
            ("task_replayed", {"pair": 9, "candidates": 99, "results": 40}),
        )
        analysis = analyze_events(records)
        assert analysis.replayed_pairs == [9]
        assert 9 not in [p.pair for p in analysis.executed_pairs]
        assert 9 not in [p.pair for p in analysis.stragglers_by_cost()]

    def test_quarantine_degrade_checkpoint_accounting(self):
        records = BASE_RUN + _journal(
            ("corruption_quarantined", {"pair": 1, "attempt": 0}),
            ("degraded_rebuild", {"pair": 1, "reason": "retries_exhausted"}),
            ("checkpoint_commit", {"ordinal": 1, "kind": "manifest", "file": "m"}),
            ("checkpoint_commit", {"ordinal": 2, "kind": "pair", "file": "p0"}),
            ("checkpoint_commit", {"ordinal": 3, "kind": "pair", "file": "p1"}),
        )
        analysis = analyze_events(records)
        assert analysis.quarantined_pairs == [1]
        assert analysis.degraded_pairs == [1]
        assert analysis.pairs[1].degraded is True
        assert analysis.checkpoint_commits == {"manifest": 1, "pair": 2}


class TestRenderReport:
    def test_default_body_has_no_measured_quantities(self):
        report = render_report(analyze_events(BASE_RUN))
        assert "# Run report" in report
        assert "wall_s" not in report
        assert "Measured timings" not in report
        # But the deterministic diagnosis is all there.
        assert "critical path" in report
        assert "Figure 4" in report

    def test_timings_section_is_opt_in(self):
        report = render_report(analyze_events(BASE_RUN), timings=True)
        assert "Measured timings (not deterministic)" in report
        assert "wall_s" in report

    def test_render_is_a_pure_function_of_deterministic_fields(self):
        # Same events with different seq/t noise -> identical report body.
        noisy = [dict(r, t=r["t"] * 7 + 0.123) for r in BASE_RUN]
        assert render_report(analyze_events(BASE_RUN)) == render_report(
            analyze_events(noisy)
        )

    def test_report_names_fault_pairs(self):
        records = BASE_RUN + _journal(
            ("fault_injected", {"kind": "disk_read_error", "pair": 0,
                                "attempt": 0}),
        )
        report = render_report(analyze_events(records))
        assert "`disk_read_error` (pair 0, attempt 0)" in report

    def test_to_dict_is_json_shaped(self):
        import json

        analysis = analyze_events(BASE_RUN)
        document = analysis.to_dict()
        json.dumps(document)
        assert document["backend"] == "process"
        assert document["critical_path"]["makespan_cost"] == 50


class TestAnalyzeRun:
    def test_missing_journal_raises_helpfully(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="journal.jsonl"):
            analyze_run(tmp_path)

    def test_reads_journal_from_run_dir(self, tmp_path):
        import json

        path = tmp_path / "journal.jsonl"
        with path.open("w") as fh:
            for record in BASE_RUN:
                fh.write(json.dumps(record) + "\n")
        analysis = analyze_run(tmp_path)
        assert analysis.results == 13
        assert analysis.run_dir == str(tmp_path)

    def test_trace_file_adds_phase_breakdown(self, tmp_path):
        import json

        path = tmp_path / "journal.jsonl"
        with path.open("w") as fh:
            for record in BASE_RUN:
                fh.write(json.dumps(record) + "\n")
        spans = [
            {"id": 0, "parent_id": None, "name": "pair", "cpu_s": 0.5,
             "io_s": 0.1, "tags": {}},
            {"id": 1, "parent_id": 0, "name": "merge", "cpu_s": 0.4,
             "io_s": 0.1, "tags": {}},
            # A replayed root and its child: both excluded.
            {"id": 2, "parent_id": None, "name": "pair", "cpu_s": 9.0,
             "io_s": 9.0, "tags": {"replayed": True}},
            {"id": 3, "parent_id": 2, "name": "merge", "cpu_s": 9.0,
             "io_s": 9.0, "tags": {}},
        ]
        with (tmp_path / "trace.jsonl").open("w") as fh:
            for span in spans:
                fh.write(json.dumps(span) + "\n")
        analysis = analyze_run(tmp_path)
        assert analysis.phase_breakdown == [
            {"name": "pair", "cpu_s": 0.5, "io_s": 0.1, "spans": 1}
        ]
