"""Tests for span nesting, resource deltas, and per-worker merging."""

import pytest

from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.storage import SimulatedDisk
from repro.storage.buffer import BufferPool


def _disk_with_pages(n=8):
    disk = SimulatedDisk()
    fid = disk.create_file()
    for _ in range(n):
        disk.allocate_page(fid)
    return disk, fid


class TestSpanNesting:
    def test_children_attach_to_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b"):
                pass
        assert [s.name for s in tracer.roots] == ["outer"]
        assert [s.name for s in tracer.roots[0].children] == ["inner_a", "inner_b"]

    def test_parent_delta_includes_child_io(self):
        disk, fid = _disk_with_pages()
        tracer = Tracer(disk=disk)
        with tracer.span("outer"):
            disk.read_page(fid, 0)
            with tracer.span("inner"):
                disk.read_page(fid, 1)
                disk.read_page(fid, 2)
        outer, inner = tracer.find("outer")[0], tracer.find("inner")[0]
        assert inner.disk.page_reads == 2
        assert outer.disk.page_reads == 3
        assert outer.io_s(disk) > inner.io_s(disk) > 0

    def test_sibling_deltas_are_disjoint(self):
        disk, fid = _disk_with_pages()
        tracer = Tracer(disk=disk)
        with tracer.span("a"):
            disk.read_page(fid, 0)
        with tracer.span("b"):
            disk.read_page(fid, 1)
            disk.read_page(fid, 2)
        assert tracer.find("a")[0].disk.page_reads == 1
        assert tracer.find("b")[0].disk.page_reads == 2

    def test_pool_counters_metered(self):
        disk, fid = _disk_with_pages()
        pool = BufferPool(disk, capacity_pages=2)
        tracer = Tracer(disk=disk, pool=pool)
        with tracer.span("work") as span:
            pool.get_page(fid, 0)
            pool.get_page(fid, 0)   # hit
            pool.get_page(fid, 1)
            pool.get_page(fid, 2)   # evicts
        assert span.pool.hits == 1
        assert span.pool.misses == 3
        assert span.pool.evictions == 1

    def test_dirty_flush_counted(self):
        disk, fid = _disk_with_pages()
        pool = BufferPool(disk, capacity_pages=4)
        tracer = Tracer(disk=disk, pool=pool)
        with tracer.span("flush") as span:
            pool.get_page(fid, 0)
            pool.mark_dirty(fid, 0)
            pool.flush_all()
        assert span.pool.dirty_flushes == 1
        assert span.disk.page_writes == 1

    def test_tags_and_walk(self):
        tracer = Tracer()
        with tracer.span("outer", phase="merge") as span:
            span.tag("pairs", 7)
            with tracer.span("inner"):
                pass
        assert tracer.roots[0].tags == {"phase": "merge", "pairs": 7}
        assert [s.name for s in tracer.roots[0].walk()] == ["outer", "inner"]
        assert tracer.span_count == 2

    def test_mismatched_end_raises(self):
        tracer = Tracer()
        a = tracer.start_span("a")
        tracer.start_span("b")
        with pytest.raises(RuntimeError):
            tracer.end_span(a)

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("boom")
        assert [s.name for s in tracer.roots] == ["boom"]
        assert tracer.roots[0].end >= tracer.roots[0].start


class TestAdopt:
    def test_adopt_grafts_roots_with_tags(self):
        worker = Tracer()
        with worker.span("Partition"):
            pass
        with worker.span("Merge"):
            with worker.span("merge_pair"):
                pass
        coordinator = Tracer()
        with coordinator.span("node"):
            coordinator.adopt(worker, worker=3)
        node = coordinator.roots[0]
        assert [s.name for s in node.children] == ["Partition", "Merge"]
        assert all(s.tags["worker"] == 3 for s in node.children)
        # Adopted spans were handed off, not copied.
        assert worker.roots == []

    def test_adopt_outside_open_span_appends_roots(self):
        worker = Tracer()
        with worker.span("x"):
            pass
        coordinator = Tracer()
        coordinator.adopt(worker, worker=0)
        assert [s.name for s in coordinator.roots] == ["x"]

    def test_adopted_deltas_survive(self):
        disk, fid = _disk_with_pages()
        worker = Tracer(disk=disk)
        with worker.span("io"):
            disk.read_page(fid, 0)
        coordinator = Tracer()  # no disk of its own
        coordinator.adopt(worker, worker=1)
        span = coordinator.roots[0]
        assert span.disk.page_reads == 1
        assert span.io_s() > 0  # default cost model applies


class TestNullTracer:
    def test_span_is_noop(self):
        with NULL_TRACER.span("anything", tag=1) as span:
            span.tag("more", 2)
        assert NULL_TRACER.span_count == 0
        assert NULL_TRACER.roots == []
        assert NULL_TRACER.find("anything") == []

    def test_disabled_flag(self):
        assert NullTracer.enabled is False
        assert Tracer.enabled is True
