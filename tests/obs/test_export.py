"""Tests for the JSONL / metrics / chrome-trace exporters."""

import json

from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_instant_events,
    chrome_trace_events,
    report_to_dict,
    trace_to_dicts,
    write_chrome_trace,
    write_metrics_json,
    write_trace_jsonl,
)
from repro.core.stats import JoinReport, PhaseCost
from repro.storage import SimulatedDisk


def _traced_workload():
    disk = SimulatedDisk()
    fid = disk.create_file()
    for _ in range(4):
        disk.allocate_page(fid)
    tracer = Tracer(disk=disk)
    with tracer.span("outer", phase="p"):
        disk.read_page(fid, 0)
        with tracer.span("inner"):
            disk.read_page(fid, 1)
    return tracer


class TestTraceJsonl:
    def test_parent_ids_link_the_tree(self):
        records = trace_to_dicts(_traced_workload())
        assert [(r["name"], r["parent_id"]) for r in records] == [
            ("outer", None),
            ("inner", 0),
        ]

    def test_records_carry_deltas_and_tags(self):
        outer = trace_to_dicts(_traced_workload())[0]
        assert outer["tags"] == {"phase": "p"}
        assert outer["disk"]["page_reads"] == 2
        assert outer["io_s"] > 0
        assert outer["cpu_s"] >= 0
        assert set(outer["pool"]) == {"hits", "misses", "evictions", "dirty_flushes"}

    def test_write_jsonl_one_object_per_line(self, tmp_path):
        path = write_trace_jsonl(_traced_workload(), tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["name"] for line in lines)


class TestChromeTrace:
    def test_events_shape(self):
        events = chrome_trace_events(_traced_workload())
        assert all(e["ph"] == "X" for e in events)
        assert events[0]["name"] == "outer"
        assert events[0]["dur"] >= events[1]["dur"]

    def test_worker_lane_inheritance(self):
        tracer = Tracer()
        with tracer.span("node", worker=2):
            with tracer.span("child"):
                pass
        events = chrome_trace_events(tracer)
        assert [e["tid"] for e in events] == [2, 2]

    def test_write_chrome_trace(self, tmp_path):
        path = write_chrome_trace(_traced_workload(), tmp_path / "c.json")
        document = json.loads(path.read_text())
        assert len(document["traceEvents"]) == 2


class TestChromeInstantEvents:
    JOURNAL = [
        {"seq": 1, "t": 0.0, "type": "run_started", "backend": "process",
         "workers": 2},
        {"seq": 2, "t": 0.25, "type": "fault_injected",
         "kind": "worker_crash", "pair": 7, "attempt": 0},
        {"seq": 3, "t": 0.5, "type": "retry", "pair": 7, "attempt": 0,
         "backoff_s": 0.05, "cause": "WorkerCrashError"},
        {"seq": 4, "t": 0.75, "type": "pool_respawn", "queued": 3},
        {"seq": 5, "t": 1.0, "type": "checkpoint_commit", "ordinal": 1,
         "kind": "pair", "file": "pair-7.json"},
        {"seq": 6, "t": 1.5, "type": "worker_heartbeat", "pid": 9,
         "pair": 7, "phase": "merge"},
        {"seq": 7, "t": 2.0, "type": "task_finished", "pair": 7,
         "attempt": 1, "results": 4},
    ]

    def test_golden_shape(self):
        # The exact event shape Perfetto consumes — a golden test so the
        # exporter cannot silently drift.
        assert chrome_instant_events(self.JOURNAL) == [
            {"name": "fault_injected", "cat": "fault", "ph": "i", "s": "g",
             "ts": 250000.0, "pid": 0, "tid": 0,
             "args": {"kind": "worker_crash", "pair": 7, "attempt": 0}},
            {"name": "retry", "cat": "fault", "ph": "i", "s": "g",
             "ts": 500000.0, "pid": 0, "tid": 0,
             "args": {"pair": 7, "attempt": 0, "backoff_s": 0.05,
                      "cause": "WorkerCrashError"}},
            {"name": "pool_respawn", "cat": "fault", "ph": "i", "s": "g",
             "ts": 750000.0, "pid": 0, "tid": 0, "args": {"queued": 3}},
            {"name": "checkpoint_commit", "cat": "fault", "ph": "i",
             "s": "g", "ts": 1000000.0, "pid": 0, "tid": 0,
             "args": {"ordinal": 1, "kind": "pair", "file": "pair-7.json"}},
        ]

    def test_lifecycle_and_heartbeat_events_are_skipped(self):
        names = {e["name"] for e in chrome_instant_events(self.JOURNAL)}
        assert "run_started" not in names
        assert "worker_heartbeat" not in names
        assert "task_finished" not in names

    def test_write_chrome_trace_appends_instants(self, tmp_path):
        path = write_chrome_trace(
            _traced_workload(), tmp_path / "c.json",
            journal_events=self.JOURNAL,
        )
        events = json.loads(path.read_text())["traceEvents"]
        assert [e["ph"] for e in events] == ["X", "X", "i", "i", "i", "i"]
        json.dumps(events)  # Perfetto-loadable as-is

    def test_no_journal_means_spans_only(self, tmp_path):
        path = write_chrome_trace(_traced_workload(), tmp_path / "c.json")
        events = json.loads(path.read_text())["traceEvents"]
        assert all(e["ph"] == "X" for e in events)


class TestServeInstantEvents:
    JOURNAL = [
        {"seq": 1, "t": 0.0, "type": "serve_started", "workers": 2},
        {"seq": 2, "t": 0.1, "type": "query_received",
         "query": "query-0001", "dataset": "road_hydro", "seed": 7},
        {"seq": 3, "t": 0.2, "type": "cache_hit", "query": "query-0001"},
        {"seq": 4, "t": 0.3, "type": "breaker_transition",
         "state": "open", "failures": 3},
        {"seq": 5, "t": 0.4, "type": "query_done", "query": "query-0001",
         "source": "hit", "latency_s": 0.3},
        {"seq": 6, "t": 0.5, "type": "sample", "kind": "telemetry",
         "queued": 0, "inflight": 1},
    ]

    def test_golden_shape(self):
        # The serve-side timeline events Perfetto consumes — golden, like
        # the fault timeline above, so the exporter cannot silently drift.
        assert chrome_instant_events(self.JOURNAL) == [
            {"name": "query_received", "cat": "serve", "ph": "i", "s": "g",
             "ts": 100000.0, "pid": 0, "tid": 0,
             "args": {"query": "query-0001", "dataset": "road_hydro",
                      "seed": 7}},
            {"name": "cache_hit", "cat": "serve", "ph": "i", "s": "g",
             "ts": 200000.0, "pid": 0, "tid": 0,
             "args": {"query": "query-0001"}},
            {"name": "breaker_transition", "cat": "serve", "ph": "i",
             "s": "g", "ts": 300000.0, "pid": 0, "tid": 0,
             "args": {"state": "open", "failures": 3}},
        ]

    def test_lifecycle_and_sampler_events_are_skipped(self):
        names = {e["name"] for e in chrome_instant_events(self.JOURNAL)}
        assert "serve_started" not in names
        assert "query_done" not in names
        assert "sample" not in names

    def test_fault_and_serve_categories_coexist(self):
        mixed = self.JOURNAL + [
            {"seq": 7, "t": 0.6, "type": "fault_injected",
             "kind": "worker_crash", "pair": 1, "attempt": 0},
        ]
        cats = [e["cat"] for e in chrome_instant_events(mixed)]
        assert cats == ["serve", "serve", "serve", "fault"]


class TestMetricsJson:
    def test_write_snapshot_with_extra(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("pairs").inc(3)
        path = write_metrics_json(reg, tmp_path / "m.json", extra={"scale": 0.01})
        document = json.loads(path.read_text())
        assert document["metrics"]["pairs"]["value"] == 3
        assert document["scale"] == 0.01


class TestReportToDict:
    def test_round_trips_phases(self):
        report = JoinReport("PBSM", candidates=10, result_count=4)
        report.phases.append(
            PhaseCost("Partition", cpu_s=1.0, io_s=0.5, page_reads=3, seeks=1)
        )
        d = report_to_dict(report)
        assert d["algorithm"] == "PBSM"
        assert d["total_s"] == 1.5
        assert d["phases"][0] == {
            "name": "Partition",
            "cpu_s": 1.0,
            "io_s": 0.5,
            "page_reads": 3,
            "page_writes": 0,
            "seeks": 1,
        }
        json.dumps(d)  # must be JSON-serializable as-is
