"""Tests for the run journal: vocabulary, persistence, torn tails."""

import json

import pytest

from repro.obs.journal import (
    EVENT_TYPES,
    FAULT_TIMELINE_TYPES,
    NULL_JOURNAL,
    RunJournal,
    journal_path,
    read_journal,
)


class TestVocabulary:
    def test_unknown_event_type_raises(self):
        journal = RunJournal()
        with pytest.raises(ValueError, match="unknown journal event type"):
            journal.emit("task_exploded", pair=3)
        assert journal.records == []

    def test_every_vocabulary_type_is_emittable(self):
        journal = RunJournal()
        for event_type in sorted(EVENT_TYPES):
            journal.emit(event_type)
        assert len(journal.records) == len(EVENT_TYPES)

    def test_fault_timeline_is_a_subset_of_the_vocabulary(self):
        assert FAULT_TIMELINE_TYPES <= EVENT_TYPES

    def test_records_carry_seq_t_type_and_fields(self):
        journal = RunJournal()
        record = journal.emit("retry", pair=2, attempt=1, backoff_s=0.05)
        assert record["seq"] == 1
        assert record["type"] == "retry"
        assert record["pair"] == 2 and record["backoff_s"] == 0.05
        assert isinstance(record["t"], float) and record["t"] >= 0

    def test_seq_is_monotonic(self):
        journal = RunJournal()
        seqs = [journal.emit("sample", queued=i)["seq"] for i in range(5)]
        assert seqs == [1, 2, 3, 4, 5]


class TestPersistence:
    def test_writes_jsonl_and_reads_back(self, tmp_path):
        path = journal_path(tmp_path)
        with RunJournal(path) as journal:
            journal.emit("run_started", backend="process", workers=2)
            journal.emit("task_dispatched", pair=0, attempt=0)
        records = read_journal(path)
        assert [r["type"] for r in records] == ["run_started", "task_dispatched"]
        assert records[0]["backend"] == "process"

    def test_each_line_is_flushed_immediately(self, tmp_path):
        # A crashed coordinator must leave everything emitted so far on
        # disk — the journal may be the only evidence of what happened.
        path = tmp_path / "journal.jsonl"
        journal = RunJournal(path)
        journal.emit("run_started", backend="process", workers=1)
        on_disk = read_journal(path)  # journal deliberately NOT closed
        assert len(on_disk) == 1
        journal.close()

    def test_torn_tail_keeps_intact_prefix(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as journal:
            journal.emit("run_started", backend="process", workers=1)
            journal.emit("task_dispatched", pair=0, attempt=0)
        with path.open("a") as fh:
            fh.write('{"seq": 3, "t": 0.5, "type": "task_fin')  # torn write
        records = read_journal(path)
        assert [r["type"] for r in records] == ["run_started", "task_dispatched"]

    def test_memory_only_journal_keeps_records(self):
        journal = RunJournal()
        journal.emit("run_started", backend="simulated", workers=4)
        assert journal.path is None
        assert journal.records[0]["backend"] == "simulated"

    def test_on_event_observer_sees_every_record(self, tmp_path):
        seen = []
        journal = RunJournal(on_event=seen.append)
        journal.emit("task_started", pair=1, attempt=0)
        journal.emit("task_finished", pair=1, attempt=0, results=9)
        assert [r["type"] for r in seen] == ["task_started", "task_finished"]
        assert seen[1]["results"] == 9


class TestNullJournal:
    def test_disabled_and_free(self):
        assert NULL_JOURNAL.enabled is False
        assert NULL_JOURNAL.emit("run_started", backend="x") == {}
        assert NULL_JOURNAL.records == []
        NULL_JOURNAL.close()  # must be harmless

    def test_null_journal_accepts_any_type(self):
        # The disabled path must cost nothing — not even validation.
        assert NULL_JOURNAL.emit("not_in_the_vocabulary") == {}

    def test_sorted_keys_on_disk(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as journal:
            journal.emit("retry", pair=1, attempt=0, backoff_s=0.1, cause="X")
        line = path.read_text().strip()
        keys = list(json.loads(line))
        assert keys == sorted(keys)
