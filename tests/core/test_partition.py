"""Tests for Equation 1 and the tiled spatial partitioning function."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    KEYPTR_SIZE,
    SCHEME_HASH,
    SCHEME_ROUND_ROBIN,
    SpatialPartitioner,
    TileGrid,
    coefficient_of_variation,
    estimate_num_partitions,
    profile_partitioning,
)
from repro.geometry import Rect

UNIVERSE = Rect(0.0, 0.0, 100.0, 100.0)


@st.composite
def universe_rects(draw, max_size=30.0):
    x = draw(st.floats(min_value=0, max_value=99))
    y = draw(st.floats(min_value=0, max_value=99))
    w = draw(st.floats(min_value=0, max_value=max_size))
    h = draw(st.floats(min_value=0, max_value=max_size))
    return Rect(x, y, min(x + w, 100.0), min(y + h, 100.0))


class TestEquationOne:
    def test_fits_in_memory_is_one_partition(self):
        assert estimate_num_partitions(100, 100, 10**6) == 1

    def test_formula(self):
        # P = ceil((||R|| + ||S||) * size_keyptr / M)
        mem = 10_000
        assert estimate_num_partitions(500, 500, mem) == -(
            -(1000 * KEYPTR_SIZE) // mem
        )

    def test_exact_boundary(self):
        mem = 100 * KEYPTR_SIZE
        assert estimate_num_partitions(50, 50, mem) == 1
        assert estimate_num_partitions(50, 51, mem) == 2

    def test_zero_memory_raises(self):
        with pytest.raises(ValueError):
            estimate_num_partitions(1, 1, 0)


class TestTileGrid:
    def test_for_tiles_near_square(self):
        grid = TileGrid.for_tiles(UNIVERSE, 12)
        assert grid.num_tiles >= 12
        assert abs(grid.rows - grid.cols) <= 1

    def test_numbering_row_major_from_upper_left(self):
        grid = TileGrid(UNIVERSE, rows=2, cols=3)
        # Tile 0 is the upper-left: high y, low x.
        r0 = grid.tile_rect(0)
        assert r0.xl == 0.0 and r0.yu == 100.0
        r5 = grid.tile_rect(5)
        assert r5.xu == 100.0 and r5.yl == 0.0

    def test_tiles_for_rect_single(self):
        grid = TileGrid(UNIVERSE, rows=2, cols=2)
        assert grid.tiles_for_rect(Rect(10, 60, 20, 70)) == [0]
        assert grid.tiles_for_rect(Rect(60, 60, 70, 70)) == [1]
        assert grid.tiles_for_rect(Rect(10, 10, 20, 20)) == [2]
        assert grid.tiles_for_rect(Rect(60, 10, 70, 20)) == [3]

    def test_tiles_for_rect_spanning(self):
        grid = TileGrid(UNIVERSE, rows=2, cols=2)
        got = set(grid.tiles_for_rect(Rect(40, 40, 60, 60)))
        assert got == {0, 1, 2, 3}

    def test_rect_outside_universe_clamped(self):
        grid = TileGrid(UNIVERSE, rows=2, cols=2)
        assert grid.tiles_for_rect(Rect(-50, -50, -10, -10)) == [2]

    def test_bad_tile_count(self):
        with pytest.raises(ValueError):
            TileGrid.for_tiles(UNIVERSE, 0)

    @given(universe_rects())
    @settings(max_examples=100)
    def test_every_rect_lands_in_some_tile(self, rect):
        grid = TileGrid.for_tiles(UNIVERSE, 64)
        tiles = grid.tiles_for_rect(rect)
        assert tiles
        # Every reported tile really overlaps the rect.
        for t in tiles:
            assert grid.tile_rect(t).intersects(rect)


class TestPartitioner:
    def test_schemes_validated(self):
        with pytest.raises(ValueError):
            SpatialPartitioner(UNIVERSE, 4, 16, scheme="bogus")

    def test_tiles_ge_partitions_enforced(self):
        with pytest.raises(ValueError):
            SpatialPartitioner(UNIVERSE, 8, 4)

    def test_round_robin_mapping(self):
        p = SpatialPartitioner(UNIVERSE, 3, 12, scheme=SCHEME_ROUND_ROBIN)
        assert [p.partition_of_tile(t) for t in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_hash_mapping_in_range(self):
        p = SpatialPartitioner(UNIVERSE, 5, 100, scheme=SCHEME_HASH)
        for t in range(p.num_tiles):
            assert 0 <= p.partition_of_tile(t) < 5

    def test_spanning_rect_goes_to_multiple_partitions(self):
        p = SpatialPartitioner(UNIVERSE, 4, 4, scheme=SCHEME_ROUND_ROBIN)
        assert len(p.partitions_for_rect(Rect(40, 40, 60, 60))) > 1

    @given(universe_rects(), universe_rects())
    @settings(max_examples=200)
    def test_overlapping_rects_share_a_partition(self, a, b):
        """The PBSM correctness invariant: if two MBRs overlap, the tiled
        partitioning must route them to at least one common partition."""
        if not a.intersects(b):
            return
        for scheme in (SCHEME_HASH, SCHEME_ROUND_ROBIN):
            p = SpatialPartitioner(UNIVERSE, 7, 64, scheme=scheme)
            assert p.partitions_for_rect(a) & p.partitions_for_rect(b)

    @given(universe_rects())
    @settings(max_examples=100)
    def test_more_tiles_never_lose_rects(self, rect):
        for tiles in (8, 64, 256):
            p = SpatialPartitioner(UNIVERSE, 8, tiles)
            assert p.partitions_for_rect(rect)


class TestMetrics:
    def test_cov_of_uniform_is_zero(self):
        assert coefficient_of_variation([5, 5, 5, 5]) == 0.0

    def test_cov_of_skewed_positive(self):
        assert coefficient_of_variation([100, 0, 0, 0]) > 1.0

    def test_cov_empty_raises(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([])

    def test_cov_all_zero(self):
        assert coefficient_of_variation([0, 0]) == 0.0

    def test_profile_replication_overhead(self):
        # One big rect spanning everything is replicated to all partitions.
        mbrs = [Rect(0, 0, 100, 100), Rect(1, 1, 2, 2)]
        profile = profile_partitioning(mbrs, UNIVERSE, 4, 16, SCHEME_HASH)
        assert profile.input_tuples == 2
        assert profile.placed_tuples >= 5  # 4 copies + 1
        assert profile.replication_overhead >= 1.5

    def test_profile_no_replication_for_tiny_rects(self):
        # Points strictly inside distinct tiles are never replicated.
        grid = TileGrid.for_tiles(UNIVERSE, 16)
        mbrs = []
        for t in range(grid.num_tiles):
            tr = grid.tile_rect(t)
            cx, cy = tr.center
            mbrs.append(Rect(cx, cy, cx, cy))
        profile = profile_partitioning(mbrs, UNIVERSE, 4, 16, SCHEME_ROUND_ROBIN)
        assert profile.replication_overhead == 0.0

    def test_finer_tiles_improve_balance_on_skew(self):
        # All data in one corner: with tiles == partitions everything maps
        # to one partition; with many hashed tiles the load spreads.
        mbrs = [
            Rect(x / 10, y / 10, x / 10 + 0.05, y / 10 + 0.05)
            for x in range(100)
            for y in range(100)
        ]  # all inside [0, 10) x [0, 10) — one corner of the universe
        coarse = profile_partitioning(mbrs, UNIVERSE, 4, 4, SCHEME_HASH)
        fine = profile_partitioning(mbrs, UNIVERSE, 4, 1600, SCHEME_HASH)
        assert fine.cov < coarse.cov
