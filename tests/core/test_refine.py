"""Tests for the shared refinement step."""

import numpy as np

from repro.core import dedup_sorted_pairs, intersects, refine
from repro.geometry import Polyline
from repro.storage import OID, SpatialTuple


def load_lines(db, name, lines):
    rel = db.create_relation(name)
    oids = [
        rel.insert(SpatialTuple(i, 1, f"{name}-{i}", Polyline(pts)))
        for i, pts in enumerate(lines)
    ]
    return rel, oids


class TestDedup:
    def test_removes_adjacent_duplicates(self):
        a, b = OID(0, 0, 0), OID(0, 1, 0)
        pairs = [(a, b), (a, b), (a, b)]
        assert dedup_sorted_pairs(pairs) == [(a, b)]

    def test_keeps_distinct(self):
        a, b, c = OID(0, 0, 0), OID(0, 1, 0), OID(0, 2, 0)
        pairs = sorted([(a, b), (a, c), (b, c)])
        assert dedup_sorted_pairs(pairs) == pairs

    def test_empty(self):
        assert dedup_sorted_pairs([]) == []


class TestRefine:
    def test_filters_false_positives(self, db):
        # Two crossing lines and two MBR-overlapping-but-disjoint chains.
        rel_r, r_oids = load_lines(
            db, "r", [[(0, 0), (2, 2)], [(0, 0), (10, 0), (10, 10)]]
        )
        rel_s, s_oids = load_lines(
            db, "s", [[(0, 2), (2, 0)], [(2, 2), (8, 2), (8, 8)]]
        )
        candidates = [
            (r_oids[0], s_oids[0]),  # true hit
            (r_oids[1], s_oids[1]),  # MBRs overlap, geometry disjoint
        ]
        got = refine(rel_r, rel_s, candidates, intersects, 10**6)
        assert got == [(r_oids[0], s_oids[0])]

    def test_duplicates_collapsed(self, db):
        rel_r, r_oids = load_lines(db, "r", [[(0, 0), (2, 2)]])
        rel_s, s_oids = load_lines(db, "s", [[(0, 2), (2, 0)]])
        candidates = [(r_oids[0], s_oids[0])] * 5
        got = refine(rel_r, rel_s, candidates, intersects, 10**6)
        assert got == [(r_oids[0], s_oids[0])]

    def test_tiny_memory_budget_still_correct(self, db):
        rng = np.random.default_rng(0)
        lines_r, lines_s = [], []
        for _ in range(40):
            x, y = rng.uniform(0, 10, 2)
            lines_r.append([(x, y), (x + 1, y + 1)])
            x, y = rng.uniform(0, 10, 2)
            lines_s.append([(x, y + 1), (x + 1, y)])
        rel_r, r_oids = load_lines(db, "r", lines_r)
        rel_s, s_oids = load_lines(db, "s", lines_s)
        candidates = [
            (ro, so)
            for ro, rt in zip(r_oids, (t for _o, t in rel_r.scan()))
            for so, st in zip(s_oids, (t for _o, t in rel_s.scan()))
        ]
        # Budget of ~3 tuples forces many batches; result must not change.
        small = refine(rel_r, rel_s, list(candidates), intersects, 400)
        large = refine(rel_r, rel_s, list(candidates), intersects, 10**7)
        assert small == large

    def test_predicate_receives_r_then_s(self, db):
        rel_r, r_oids = load_lines(db, "r", [[(0, 0), (2, 2)]])
        rel_s, s_oids = load_lines(db, "s", [[(0, 2), (2, 0)]])
        seen = []

        def spy(r, s):
            seen.append((r.name, s.name))
            return True

        refine(rel_r, rel_s, [(r_oids[0], s_oids[0])], spy, 10**6)
        assert seen == [("r-0", "s-0")]

    def test_results_sorted(self, db):
        rel_r, r_oids = load_lines(
            db, "r", [[(0, 0), (2, 2)], [(0, 0), (2, 2)], [(0, 0), (2, 2)]]
        )
        rel_s, s_oids = load_lines(db, "s", [[(0, 2), (2, 0)]])
        candidates = [(r_oids[2], s_oids[0]), (r_oids[0], s_oids[0]),
                      (r_oids[1], s_oids[0])]
        got = refine(rel_r, rel_s, candidates, intersects, 10**6)
        assert got == sorted(got)

    def test_empty_candidates(self, db):
        rel_r, _ = load_lines(db, "r", [[(0, 0), (1, 1)]])
        rel_s, _ = load_lines(db, "s", [[(0, 0), (1, 1)]])
        assert refine(rel_r, rel_s, [], intersects, 10**6) == []

    def test_bad_memory_raises(self, db):
        import pytest

        rel_r, _ = load_lines(db, "r", [[(0, 0), (1, 1)]])
        rel_s, _ = load_lines(db, "s", [[(0, 0), (1, 1)]])
        with pytest.raises(ValueError):
            refine(rel_r, rel_s, [], intersects, 0)


class TestExternalSortPath:
    def test_external_candidate_sort_matches_in_memory(self, db):
        import numpy as np

        rng = np.random.default_rng(1)
        lines_r, lines_s = [], []
        for _ in range(30):
            x, y = rng.uniform(0, 10, 2)
            lines_r.append([(x, y), (x + 2, y + 2)])
            x, y = rng.uniform(0, 10, 2)
            lines_s.append([(x, y + 2), (x + 2, y)])
        rel_r, r_oids = load_lines(db, "xr", lines_r)
        rel_s, s_oids = load_lines(db, "xs", lines_s)
        candidates = [(ro, so) for ro in r_oids for so in s_oids]
        # Duplicate heavily so dedup-in-external-sort is exercised too.
        candidates = candidates * 3
        # 2700 pairs * 24 bytes ~ 65 KB >> the 2 KB budget -> external path.
        small = refine(rel_r, rel_s, list(candidates), intersects, 2048)
        large = refine(rel_r, rel_s, list(candidates), intersects, 10**7)
        assert small == large
        assert small == dedup_sorted_pairs(sorted(small))
