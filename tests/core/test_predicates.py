"""Tests for the exact join predicates."""

import pytest

from repro.core import ContainsWithFilters, contains, intersects, intersects_naive
from repro.geometry import Polygon, Polyline
from repro.storage import SpatialTuple


def line(pts, i=0):
    return SpatialTuple(i, 1, f"line-{i}", Polyline(pts))


def poly(shell, holes=(), i=0):
    return SpatialTuple(i, 10, f"poly-{i}", Polygon(shell, holes))


SQUARE = [(0, 0), (10, 0), (10, 10), (0, 10)]
INNER = [(3, 3), (5, 3), (5, 5), (3, 5)]


class TestIntersects:
    def test_crossing_lines(self):
        assert intersects(line([(0, 0), (2, 2)]), line([(0, 2), (2, 0)], 1))

    def test_disjoint_lines(self):
        assert not intersects(line([(0, 0), (1, 0)]), line([(0, 3), (1, 3)], 1))

    def test_naive_agrees(self):
        cases = [
            (line([(0, 0), (2, 2)]), line([(0, 2), (2, 0)], 1)),
            (line([(0, 0), (1, 0)]), line([(0, 3), (1, 3)], 1)),
            (line([(0, 0), (5, 0), (5, 5)]), line([(1, -1), (1, 1)], 1)),
        ]
        for a, b in cases:
            assert intersects(a, b) == intersects_naive(a, b)

    def test_polygon_polygon(self):
        a = poly(SQUARE)
        b = poly([(5, 5), (15, 5), (15, 15), (5, 15)], i=1)
        assert intersects(a, b)

    def test_line_crossing_polygon_boundary(self):
        assert intersects(poly(SQUARE), line([(-5, 5), (5, 5)], 1))

    def test_line_inside_polygon(self):
        assert intersects(poly(SQUARE), line([(2, 2), (4, 4)], 1))
        assert intersects(line([(2, 2), (4, 4)], 1), poly(SQUARE))

    def test_line_outside_polygon(self):
        assert not intersects(poly(SQUARE), line([(20, 20), (30, 30)], 1))


class TestContains:
    def test_contained(self):
        assert contains(poly(SQUARE), poly(INNER, i=1))

    def test_not_contained(self):
        assert not contains(poly(INNER, i=1), poly(SQUARE))

    def test_requires_polygons(self):
        with pytest.raises(TypeError):
            contains(poly(SQUARE), line([(0, 0), (1, 1)], 1))


class TestContainsWithFilters:
    def test_matches_exact_predicate(self):
        filtered = ContainsWithFilters()
        outer = poly(SQUARE)
        cases = [
            poly(INNER, i=1),
            poly([(8, 8), (12, 8), (12, 12), (8, 12)], i=2),  # pokes out
            poly([(20, 20), (22, 20), (22, 22), (20, 22)], i=3),  # disjoint
        ]
        for inner in cases:
            assert filtered(outer, inner) == contains(outer, inner)

    def test_filters_are_used(self):
        filtered = ContainsWithFilters()
        outer = poly(SQUARE)
        # A tiny centred island should be resolved by the MER filter alone.
        tiny = poly([(4.9, 4.9), (5.1, 4.9), (5.1, 5.1), (4.9, 5.1)], i=1)
        assert filtered(outer, tiny)
        assert filtered.filter_hits >= 1

    def test_holes_force_exact_test(self):
        filtered = ContainsWithFilters()
        cheese = poly(SQUARE, holes=[INNER])
        island_in_hole = poly([(3.5, 3.5), (4.5, 3.5), (4.5, 4.5), (3.5, 4.5)], i=1)
        assert not filtered(cheese, island_in_hole)
        assert filtered(cheese, poly([(7, 7), (8, 7), (8, 8), (7, 8)], i=2))

    def test_type_check(self):
        with pytest.raises(TypeError):
            ContainsWithFilters()(poly(SQUARE), line([(0, 0), (1, 1)], 1))
