"""Two-layer partitioning, property-checked.

Three invariants carry the whole duplicate-free design:

* **assignment** — every object lands in exactly one ``(tile, class)``
  slot per tile its MBR overlaps, with exactly one class-A slot (the
  tile holding the MBR's bottom-left corner, after clamping);
* **uniqueness** — for any intersecting pair, exactly *one* shared tile
  carries a class combination the mini-join table enables, and it is the
  pair's reference tile;
* **end-to-end** — partitioning both inputs and merging every partition
  emits each intersecting pair exactly once, with no coordinator dedup.

These hold for arbitrary rectangles (degenerate, clamped, spanning),
which is what Hypothesis is for.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    ALLOWED_CLASS_COMBOS,
    ALLOWED_COMBO_TABLE,
    CLASS_A,
    CLASS_B,
    CLASS_C,
    CLASS_D,
    SCHEME_HASH,
    SCHEME_ROUND_ROBIN,
    SpatialPartitioner,
    TileGrid,
)
from repro.core.pbsm import merge_partition_pair
from repro.geometry import Rect

UNIVERSE = Rect(0.0, 0.0, 100.0, 100.0)


@st.composite
def universe_rects(draw, max_size=40.0):
    # Deliberately allowed to poke outside the universe: clamping is part
    # of the contract under test.
    x = draw(st.floats(min_value=-10, max_value=105))
    y = draw(st.floats(min_value=-10, max_value=105))
    w = draw(st.floats(min_value=0, max_value=max_size))
    h = draw(st.floats(min_value=0, max_value=max_size))
    return Rect(x, y, x + w, y + h)


@st.composite
def grids(draw):
    rows = draw(st.integers(min_value=1, max_value=9))
    cols = draw(st.integers(min_value=1, max_value=9))
    return TileGrid(UNIVERSE, rows=rows, cols=cols)


class TestAssignment:
    @given(grids(), universe_rects())
    @settings(max_examples=300, deadline=None)
    def test_exactly_one_slot_per_overlapped_tile(self, grid, rect):
        assignments = grid.tile_assignments(rect)
        tiles = [tile for tile, _cls in assignments]
        # One slot per overlapped tile, no tile twice, nothing invented.
        assert tiles == grid.tiles_for_rect(rect)
        assert len(tiles) == len(set(tiles))

    @given(grids(), universe_rects())
    @settings(max_examples=300, deadline=None)
    def test_classes_encode_position_relative_to_the_first_tile(
        self, grid, rect
    ):
        r0, r1, c0, c1 = grid.tile_span(rect)
        expected_class = {
            (r, c): (
                CLASS_A if (r == r1 and c == c0)
                else CLASS_B if r == r1
                else CLASS_C if c == c0
                else CLASS_D
            )
            for r in range(r0, r1 + 1)
            for c in range(c0, c1 + 1)
        }
        by_class = Counter()
        for tile, cls in grid.tile_assignments(rect):
            r, c = divmod(tile, grid.cols)
            assert cls == expected_class[(r, c)]
            by_class[cls] += 1
        # Exactly one class-A copy: the tile holding the clamped
        # bottom-left corner — the object's "first" tile.
        assert by_class[CLASS_A] == 1


class TestUniqueness:
    @given(grids(), universe_rects(), universe_rects())
    @settings(max_examples=300, deadline=None)
    def test_enabled_combo_appears_in_exactly_one_shared_tile(
        self, grid, a, b
    ):
        if not a.intersects(b):
            return
        cls_a = dict(grid.tile_assignments(a))
        cls_b = dict(grid.tile_assignments(b))
        enabled = [
            tile
            for tile in cls_a.keys() & cls_b.keys()
            if ALLOWED_COMBO_TABLE[cls_a[tile]][cls_b[tile]]
        ]
        assert enabled == [grid.reference_tile(a, b)]

    @given(grids(), universe_rects(), universe_rects())
    @settings(max_examples=200, deadline=None)
    def test_table_and_frozenset_forms_agree(self, grid, a, b):
        for cls_r in (CLASS_A, CLASS_B, CLASS_C, CLASS_D):
            for cls_s in (CLASS_A, CLASS_B, CLASS_C, CLASS_D):
                assert ALLOWED_COMBO_TABLE[cls_r][cls_s] == (
                    (cls_r, cls_s) in ALLOWED_CLASS_COMBOS
                )

    def test_mini_join_table_is_the_papers_nine_combos(self):
        assert ALLOWED_CLASS_COMBOS == {
            (CLASS_A, CLASS_A), (CLASS_A, CLASS_B), (CLASS_A, CLASS_C),
            (CLASS_A, CLASS_D), (CLASS_B, CLASS_A), (CLASS_B, CLASS_C),
            (CLASS_C, CLASS_A), (CLASS_C, CLASS_B), (CLASS_D, CLASS_A),
        }


class TestEndToEnd:
    @given(
        st.lists(universe_rects(), min_size=0, max_size=18),
        st.lists(universe_rects(), min_size=0, max_size=18),
        st.integers(min_value=1, max_value=4),
        st.sampled_from([SCHEME_HASH, SCHEME_ROUND_ROBIN]),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=150, deadline=None)
    def test_each_result_pair_is_emitted_exactly_once(
        self, rects_r, rects_s, num_partitions, scheme, tile_seed
    ):
        """Partition both sides, merge every partition independently, and
        concatenate: the multiset of emitted pairs is exactly the set of
        intersecting pairs — one copy each, no dedup pass anywhere."""
        num_tiles = num_partitions * (4 + tile_seed)
        partitioner = SpatialPartitioner(
            UNIVERSE, num_partitions, num_tiles, scheme=scheme
        )

        def bucket(rects, keys):
            buckets = {p: [] for p in range(num_partitions)}
            for key, rect in zip(keys, rects):
                for tile, cls in partitioner.tile_assignments(rect):
                    buckets[partitioner.partition_of_tile(tile)].append(
                        (rect, key, tile, cls)
                    )
            return buckets

        buckets_r = bucket(rects_r, range(len(rects_r)))
        buckets_s = bucket(rects_s, range(1000, 1000 + len(rects_s)))

        emitted = Counter()
        for p in range(num_partitions):
            merge_partition_pair(
                buckets_r[p], buckets_s[p],
                lambda a, b: emitted.update([(a, b)]),
                memory=1 << 30,
            )

        expected = {
            (i, 1000 + j)
            for i, rect_r in enumerate(rects_r)
            for j, rect_s in enumerate(rects_s)
            if rect_r.intersects(rect_s)
        }
        assert set(emitted) == expected
        duplicates = {pair: n for pair, n in emitted.items() if n != 1}
        assert not duplicates, f"pairs emitted more than once: {duplicates}"
