"""End-to-end tests of the PBSM join against the naive oracle."""

import pytest

from repro import Database, PBSMConfig, PBSMJoin, intersects
from repro.core import SCHEME_HASH, SCHEME_ROUND_ROBIN
from repro.data import make_tiger_datasets
from repro.joins import NaiveNestedLoopsJoin


@pytest.fixture(scope="module")
def tiger_db():
    db = Database(buffer_mb=4.0)
    rels = make_tiger_datasets(db, scale=0.0015)
    oracle = NaiveNestedLoopsJoin(db.pool).run(
        rels["road"], rels["hydro"], intersects
    )
    return db, rels, oracle.pairs


class TestCorrectness:
    def test_matches_oracle_default_config(self, tiger_db):
        db, rels, expected = tiger_db
        res = PBSMJoin(db.pool).run(rels["road"], rels["hydro"], intersects)
        assert res.pairs == expected

    def test_matches_oracle_multi_partition(self, tiger_db):
        """Force several partitions by shrinking the Equation-1 memory."""
        db, rels, expected = tiger_db
        cfg = PBSMConfig(memory_bytes=4096)  # ~93 key-pointers per pair
        res = PBSMJoin(db.pool, cfg).run(rels["road"], rels["hydro"], intersects)
        assert res.report.notes["num_partitions"] > 4
        assert res.pairs == expected

    @pytest.mark.parametrize("scheme", [SCHEME_HASH, SCHEME_ROUND_ROBIN])
    def test_matches_oracle_both_schemes(self, tiger_db, scheme):
        db, rels, expected = tiger_db
        cfg = PBSMConfig(memory_bytes=8192, scheme=scheme)
        res = PBSMJoin(db.pool, cfg).run(rels["road"], rels["hydro"], intersects)
        assert res.pairs == expected

    @pytest.mark.parametrize("num_tiles", [16, 256, 4096])
    def test_matches_oracle_tile_counts(self, tiger_db, num_tiles):
        db, rels, expected = tiger_db
        cfg = PBSMConfig(memory_bytes=16384, num_tiles=num_tiles)
        res = PBSMJoin(db.pool, cfg).run(rels["road"], rels["hydro"], intersects)
        assert res.pairs == expected

    def test_matches_oracle_interval_tree_merge(self, tiger_db):
        db, rels, expected = tiger_db
        cfg = PBSMConfig(memory_bytes=16384, use_interval_tree=True)
        res = PBSMJoin(db.pool, cfg).run(rels["road"], rels["hydro"], intersects)
        assert res.pairs == expected

    def test_matches_oracle_with_skew_handling(self, tiger_db):
        db, rels, expected = tiger_db
        cfg = PBSMConfig(memory_bytes=8192, handle_partition_skew=True)
        res = PBSMJoin(db.pool, cfg).run(rels["road"], rels["hydro"], intersects)
        assert res.pairs == expected

    def test_join_is_symmetric_modulo_pair_order(self, tiger_db):
        db, rels, expected = tiger_db
        res = PBSMJoin(db.pool).run(rels["hydro"], rels["road"], intersects)
        flipped = sorted((b, a) for a, b in res.pairs)
        assert flipped == expected


class TestEdgeCases:
    def test_empty_left(self):
        db = Database(buffer_mb=2.0)
        empty = db.create_relation("empty")
        rels = make_tiger_datasets(db, scale=0.0002, include=("rail",))
        res = PBSMJoin(db.pool).run(empty, rels["rail"], intersects)
        assert res.pairs == []

    def test_empty_right(self):
        db = Database(buffer_mb=2.0)
        rels = make_tiger_datasets(db, scale=0.0002, include=("rail",))
        empty = db.create_relation("empty")
        res = PBSMJoin(db.pool).run(rels["rail"], empty, intersects)
        assert res.pairs == []

    def test_self_join(self):
        db = Database(buffer_mb=2.0)
        rels = make_tiger_datasets(db, scale=0.0005, include=("rail",))
        rail = rels["rail"]
        res = PBSMJoin(db.pool).run(rail, rail, intersects)
        oracle = NaiveNestedLoopsJoin(db.pool).run(rail, rail, intersects)
        assert res.pairs == oracle.pairs
        # Every tuple intersects itself.
        assert len(res.pairs) >= len(rail)


class TestReporting:
    def test_phases_present(self, tiger_db):
        db, rels, _ = tiger_db
        res = PBSMJoin(db.pool).run(rels["road"], rels["hydro"], intersects)
        names = [p.name for p in res.report.phases]
        assert names == [
            "Partition road",
            "Partition hydro",
            "Merge Partitions",
            "Refinement",
        ]

    def test_candidates_superset_of_results(self, tiger_db):
        db, rels, _ = tiger_db
        res = PBSMJoin(db.pool).run(rels["road"], rels["hydro"], intersects)
        assert res.report.candidates >= res.report.result_count
        assert res.report.result_count == len(res.pairs)

    def test_temp_files_cleaned_up(self, tiger_db):
        db, rels, _ = tiger_db
        files_before = set(db.disk.file_ids())
        cfg = PBSMConfig(memory_bytes=8192)
        PBSMJoin(db.pool, cfg).run(rels["road"], rels["hydro"], intersects)
        assert set(db.disk.file_ids()) == files_before

    def test_replication_produces_duplicate_candidates(self, tiger_db):
        db, rels, _ = tiger_db
        cfg = PBSMConfig(memory_bytes=4096)
        res = PBSMJoin(db.pool, cfg).run(rels["road"], rels["hydro"], intersects)
        base = PBSMJoin(db.pool).run(rels["road"], rels["hydro"], intersects)
        # Multi-partition run sees at least as many candidates (replication).
        assert res.report.candidates >= base.report.candidates
