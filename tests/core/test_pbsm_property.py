"""Property-based equivalence: PBSM == naive oracle on arbitrary inputs.

Hypothesis generates small random polyline relations; PBSM (forced through
the multi-partition path) must return the same exact result set as the
naive nested-loops join, for both tile-mapping schemes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, PBSMConfig, PBSMJoin, intersects
from repro.core import SCHEME_HASH, SCHEME_ROUND_ROBIN
from repro.geometry import Polyline
from repro.joins import NaiveNestedLoopsJoin
from repro.storage import SpatialTuple

coord = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@st.composite
def polyline_relations(draw, max_tuples=25):
    n = draw(st.integers(min_value=1, max_value=max_tuples))
    tuples = []
    for i in range(n):
        x = draw(coord)
        y = draw(coord)
        npoints = draw(st.integers(min_value=2, max_value=5))
        points = [(x, y)]
        for _ in range(npoints - 1):
            x = min(100.0, max(0.0, x + draw(st.floats(min_value=-5, max_value=5))))
            y = min(100.0, max(0.0, y + draw(st.floats(min_value=-5, max_value=5))))
            points.append((x, y))
        if points[0] == points[-1] and len(set(points)) == 1:
            points[-1] = (points[0][0] + 1.0, points[0][1])
        tuples.append(SpatialTuple(i, 1, f"t-{i}", Polyline(points)))
    return tuples


@given(
    polyline_relations(),
    polyline_relations(),
    st.sampled_from([SCHEME_HASH, SCHEME_ROUND_ROBIN]),
    st.sampled_from([64, 256]),
)
@settings(max_examples=40, deadline=None)
def test_pbsm_equals_oracle_on_random_inputs(tuples_r, tuples_s, scheme, tiles):
    db = Database(buffer_mb=1.0)
    rel_r = db.create_relation("r")
    rel_r.bulk_load(tuples_r)
    rel_s = db.create_relation("s")
    rel_s.bulk_load(tuples_s)

    expected = NaiveNestedLoopsJoin(db.pool).run(rel_r, rel_s, intersects).pairs
    # A tiny Equation-1 budget forces several partitions even at this size.
    cfg = PBSMConfig(memory_bytes=512, num_tiles=tiles, scheme=scheme)
    got = PBSMJoin(db.pool, cfg).run(rel_r, rel_s, intersects).pairs
    assert got == expected
