"""Tests: the planner reproduces the paper's §4 decision table."""

import pytest

from repro import Database, intersects
from repro.core.planner import (
    ALGO_INL,
    ALGO_PBSM,
    ALGO_RTREE,
    choose_algorithm,
    estimate_index_pages,
    plan_join,
)
from repro.data import make_tiger_datasets
from repro.index import bulk_load_rstar
from repro.joins import NaiveNestedLoopsJoin


@pytest.fixture(scope="module")
def setup():
    # A pool small enough that neither input is memory-resident.
    db = Database(buffer_mb=0.25)
    rels = make_tiger_datasets(db, scale=0.003, include=("road", "hydro", "rail"))
    idx_road = bulk_load_rstar(db.pool, rels["road"])
    idx_hydro = bulk_load_rstar(db.pool, rels["hydro"])
    expected = NaiveNestedLoopsJoin(db.pool).run(
        rels["road"], rels["hydro"], intersects
    ).pairs
    return db, rels, idx_road, idx_hydro, expected


class TestDecisionTable:
    def test_no_indices_chooses_pbsm(self, setup):
        db, rels, *_ = setup
        plan = choose_algorithm(rels["road"], rels["hydro"], db.pool.capacity)
        assert plan.algorithm == ALGO_PBSM

    def test_both_indices_chooses_rtree(self, setup):
        db, rels, idx_road, idx_hydro, _ = setup
        plan = choose_algorithm(
            rels["road"], rels["hydro"], db.pool.capacity,
            index_r=idx_road, index_s=idx_hydro,
        )
        assert plan.algorithm == ALGO_RTREE

    def test_index_on_larger_chooses_rtree(self, setup):
        db, rels, idx_road, _idx_hydro, _ = setup
        plan = choose_algorithm(
            rels["road"], rels["hydro"], db.pool.capacity, index_r=idx_road
        )
        assert plan.algorithm == ALGO_RTREE
        assert "larger" in plan.reason

    def test_index_on_smaller_chooses_pbsm(self, setup):
        db, rels, _idx_road, idx_hydro, _ = setup
        plan = choose_algorithm(
            rels["road"], rels["hydro"], db.pool.capacity, index_s=idx_hydro
        )
        assert plan.algorithm == ALGO_PBSM

    def test_memory_resident_small_input_chooses_inl(self, setup):
        _db, rels, *_ = setup
        # A giant pool makes the rail input memory-resident -> INL wins
        # (the Figure 8 / Figure 15 exception).
        big_pool_pages = 4096
        plan = choose_algorithm(rels["road"], rels["rail"], big_pool_pages)
        assert plan.algorithm == ALGO_INL

    def test_plan_carries_reasoning(self, setup):
        db, rels, *_ = setup
        plan = choose_algorithm(rels["road"], rels["hydro"], db.pool.capacity)
        assert "Figure 7" in plan.reason


class TestPlanExecution:
    def test_plan_join_matches_oracle(self, setup):
        db, rels, idx_road, idx_hydro, expected = setup
        scenarios = [
            dict(),
            dict(index_r=idx_road),
            dict(index_s=idx_hydro),
            dict(index_r=idx_road, index_s=idx_hydro),
        ]
        for kwargs in scenarios:
            plan, result = plan_join(
                db.pool, rels["road"], rels["hydro"], intersects, **kwargs
            )
            assert result.pairs == expected, plan
            assert result.report.notes["plan"] == plan.algorithm

    def test_inl_path_executes(self, setup):
        db, rels, *_ = setup
        from repro import Database

        big = Database(buffer_mb=32.0)
        big_rels = make_tiger_datasets(
            big, scale=0.003, include=("road", "rail")
        )
        expected = NaiveNestedLoopsJoin(big.pool).run(
            big_rels["road"], big_rels["rail"], intersects
        ).pairs
        plan, result = plan_join(
            big.pool, big_rels["road"], big_rels["rail"], intersects
        )
        assert plan.algorithm == ALGO_INL
        assert result.pairs == expected


class TestEstimates:
    def test_index_pages_monotone(self):
        sizes = [estimate_index_pages(n) for n in (10, 1000, 100_000)]
        assert sizes == sorted(sizes)
        assert sizes[0] >= 3

    def test_index_estimate_close_to_actual(self, setup):
        db, rels, idx_road, _idx_hydro, _ = setup
        est = estimate_index_pages(len(rels["road"]))
        assert est == pytest.approx(idx_road.num_pages, rel=0.5)
