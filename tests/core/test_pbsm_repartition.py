"""§3.5 repartitioning at its limits: depth exhaustion and the no-progress
fast path.

``merge_partition_pair`` recursively repartitions an overflowing pair —
but two things can stop it: the depth budget runs out, or a finer grid
fails to split anything (every input lands in some sub-bucket whole, e.g.
identical rectangles).  Both must fall back to an over-budget sweep that
still produces the exact answer, and both must be observable.
"""

from repro.core.keypointer import KEYPTR_SIZE
from repro.core.partition import CLASS_A
from repro.core.pbsm import PBSMConfig, merge_partition_pair
from repro.geometry import Rect
from repro.obs.metrics import MetricsRegistry


def _tag(kps):
    """Plain (rect, key) inputs as one-tile, class-A tagged key-pointers
    (exactly how the in-memory merge path tags an unpartitioned input)."""
    return [(rect, key, 0, CLASS_A) for rect, key in kps]


def _sweep_all(kps_r, kps_s, memory, config, metrics=None):
    out = []
    emitted = merge_partition_pair(
        _tag(kps_r), _tag(kps_s), lambda a, b: out.append((a, b)),
        memory, config, metrics=metrics,
    )
    assert emitted == len(out)
    return out


def _expected_pairs(kps_r, kps_s):
    return {
        (key_r, key_s)
        for rect_r, key_r in kps_r
        for rect_s, key_s in kps_s
        if rect_r.intersects(rect_s)
    }


SKEW = PBSMConfig(handle_partition_skew=True, max_repartition_depth=3)


class TestNoProgressFastPath:
    def test_identical_rects_jump_to_the_depth_cap(self):
        # Twenty copies of one rectangle on each side: no grid can split
        # them, so recursion must stop after ONE repartition attempt (the
        # fast path jumps depth straight to the cap) instead of burning
        # every level re-partitioning the same inputs.
        rect = Rect(0.0, 0.0, 1.0, 1.0)
        kps_r = [(rect, i) for i in range(20)]
        kps_s = [(rect, 100 + i) for i in range(20)]
        memory = 4 * KEYPTR_SIZE  # hopelessly oversized on purpose
        metrics = MetricsRegistry()

        out = _sweep_all(kps_r, kps_s, memory, SKEW, metrics)
        assert set(out) == _expected_pairs(kps_r, kps_s)
        assert len(_expected_pairs(kps_r, kps_s)) == 400

        snapshot = metrics.snapshot()
        assert snapshot["pbsm.merge.repartitions"]["value"] == 1
        assert snapshot["pbsm.merge.repartition_no_progress"]["value"] == 1
        # The unsplittable bucket(s) swept over budget at the cap.
        assert snapshot["pbsm.merge.repartition_exhausted"]["value"] >= 1

    def test_no_progress_result_matches_plain_sweep(self):
        rect = Rect(2.0, 2.0, 3.0, 3.0)
        kps_r = [(rect, i) for i in range(8)]
        kps_s = [(rect, 50 + i) for i in range(8)]
        relaxed = _sweep_all(kps_r, kps_s, 1 << 30, PBSMConfig())
        skewed = _sweep_all(kps_r, kps_s, 2 * KEYPTR_SIZE, SKEW)
        assert set(skewed) == set(relaxed)


class TestDepthExhaustion:
    def _diagonal_workload(self, n=24):
        # Distinct but chained rectangles: each overlaps its neighbours,
        # so repartitioning makes progress — until the depth cap.
        kps_r = [
            (Rect(i * 0.5, 0.0, i * 0.5 + 1.0, 1.0), i) for i in range(n)
        ]
        kps_s = [
            (Rect(i * 0.5 + 0.25, 0.0, i * 0.5 + 1.25, 1.0), 1000 + i)
            for i in range(n)
        ]
        return kps_r, kps_s

    def test_depth_cap_forces_an_over_budget_sweep(self):
        kps_r, kps_s = self._diagonal_workload()
        # Any non-empty pair is "oversized" at one key-pointer of memory:
        # recursion descends until the cap, then must sweep anyway.
        memory = KEYPTR_SIZE
        metrics = MetricsRegistry()
        out = _sweep_all(kps_r, kps_s, memory, SKEW, metrics)
        assert set(out) == _expected_pairs(kps_r, kps_s)

        snapshot = metrics.snapshot()
        assert snapshot["pbsm.merge.repartitions"]["value"] >= 1
        assert snapshot["pbsm.merge.repartition_exhausted"]["value"] >= 1

    def test_depth_cap_zero_disables_recursion_entirely(self):
        kps_r, kps_s = self._diagonal_workload(8)
        config = PBSMConfig(handle_partition_skew=True, max_repartition_depth=0)
        metrics = MetricsRegistry()
        out = _sweep_all(kps_r, kps_s, KEYPTR_SIZE, config, metrics)
        assert set(out) == _expected_pairs(kps_r, kps_s)
        snapshot = metrics.snapshot()
        assert "pbsm.merge.repartitions" not in snapshot
        assert snapshot["pbsm.merge.repartition_exhausted"]["value"] == 1

    def test_equivalence_with_recursion_disabled(self):
        kps_r, kps_s = self._diagonal_workload()
        plain = _sweep_all(kps_r, kps_s, 1 << 30, PBSMConfig())
        skewed = _sweep_all(kps_r, kps_s, KEYPTR_SIZE, SKEW)
        assert set(skewed) == set(plain)

    def test_within_budget_pairs_never_recurse(self):
        kps_r, kps_s = self._diagonal_workload(8)
        metrics = MetricsRegistry()
        out = _sweep_all(kps_r, kps_s, 1 << 30, SKEW, metrics)
        assert set(out) == _expected_pairs(kps_r, kps_s)
        snapshot = metrics.snapshot()
        assert "pbsm.merge.repartitions" not in snapshot
        assert "pbsm.merge.repartition_exhausted" not in snapshot
