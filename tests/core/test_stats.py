"""Tests for phase metering and join reports."""

import pytest

from repro.core import JoinReport, PhaseCost, PhaseMeter
from repro.obs.trace import NULL_TRACER, Tracer
from repro.storage import SimulatedDisk


class TestPhaseCost:
    def test_totals(self):
        p = PhaseCost("x", cpu_s=2.0, io_s=1.0, page_reads=3, page_writes=2, seeks=1)
        assert p.total_s == 3.0
        assert p.total_ios == 5
        assert p.io_fraction == pytest.approx(1 / 3)

    def test_zero_cost_fraction(self):
        assert PhaseCost("x").io_fraction == 0.0

    def test_merge(self):
        a = PhaseCost("x", cpu_s=1.0, io_s=0.5, page_reads=1)
        b = PhaseCost("x", cpu_s=2.0, io_s=0.25, page_writes=4, seeks=2)
        a.merge(b)
        assert a.cpu_s == 3.0
        assert a.io_s == 0.75
        assert a.page_reads == 1 and a.page_writes == 4 and a.seeks == 2


class TestPhaseMeter:
    def test_measures_io(self):
        disk = SimulatedDisk()
        fid = disk.create_file()
        disk.allocate_page(fid)
        report = JoinReport("test")
        meter = PhaseMeter(disk, report)
        with meter.phase("read stuff"):
            disk.read_page(fid, 0)
        phase = report.phase("read stuff")
        assert phase.page_reads == 1
        assert phase.seeks == 1
        assert phase.io_s > 0
        assert phase.cpu_s >= 0

    def test_repeated_phase_names_accumulate(self):
        disk = SimulatedDisk()
        fid = disk.create_file()
        disk.allocate_page(fid)
        report = JoinReport("test")
        meter = PhaseMeter(disk, report)
        for _ in range(3):
            with meter.phase("loop"):
                disk.read_page(fid, 0)
        assert len(report.phases) == 1
        assert report.phase("loop").page_reads == 3

    def test_exception_still_records(self):
        disk = SimulatedDisk()
        report = JoinReport("test")
        meter = PhaseMeter(disk, report)
        with pytest.raises(RuntimeError):
            with meter.phase("boom"):
                raise RuntimeError("boom")
        assert report.phase("boom").cpu_s >= 0


class TestJoinReport:
    def test_totals_sum_phases(self):
        report = JoinReport("algo")
        report.phases.append(PhaseCost("a", cpu_s=1.0, io_s=0.5))
        report.phases.append(PhaseCost("b", cpu_s=2.0, io_s=1.5))
        assert report.total_s == 5.0
        assert report.cpu_s == 3.0
        assert report.io_s == 2.0
        assert report.io_fraction == pytest.approx(0.4)

    def test_unknown_phase_raises(self):
        with pytest.raises(KeyError):
            JoinReport("algo").phase("nope")

    def test_format_table_mentions_phases(self):
        report = JoinReport("algo")
        report.phases.append(PhaseCost("Partition R", cpu_s=1.0))
        text = report.format_table()
        assert "algo" in text
        assert "Partition R" in text

    def test_empty_report(self):
        report = JoinReport("algo")
        assert report.total_s == 0.0
        assert report.io_fraction == 0.0

    def test_format_table_golden(self):
        """Byte-for-byte pin of the Table-4-style rendering.

        ``PhaseMeter`` became an adapter over ``repro.obs`` spans; this
        golden string guards that reports render exactly as before."""
        report = JoinReport("PBSM", candidates=474, result_count=137)
        report.phases.append(
            PhaseCost("Partition road", cpu_s=0.75, io_s=0.25,
                      page_reads=26, page_writes=0, seeks=1)
        )
        report.phases.append(
            PhaseCost("Merge Partitions", cpu_s=0.125, io_s=0.375,
                      page_reads=3, page_writes=12, seeks=4)
        )
        assert report.format_table() == (
            "PBSM: total=1.50s (cpu=0.88s io=0.62s io%=41.7) "
            "candidates=474 results=137\n"
            "  Partition road               total=    1.00s io=   0.25s "
            "io%= 25.0 r/w/seek=26/0/1\n"
            "  Merge Partitions             total=    0.50s io=   0.38s "
            "io%= 75.0 r/w/seek=3/12/4"
        )


class TestPhaseMeterOverSpans:
    """The PhaseMeter is now a thin adapter over the obs tracer."""

    def _disk(self):
        disk = SimulatedDisk()
        fid = disk.create_file()
        for _ in range(4):
            disk.allocate_page(fid)
        return disk, fid

    def test_phases_produce_spans(self):
        disk, fid = self._disk()
        meter = PhaseMeter(disk, JoinReport("t"))
        with meter.phase("Partition"):
            disk.read_page(fid, 0)
        spans = meter.tracer.find("Partition")
        assert len(spans) == 1
        assert spans[0].disk.page_reads == 1

    def test_shared_tracer_nests_phase_spans(self):
        disk, fid = self._disk()
        tracer = Tracer(disk=disk)
        meter = PhaseMeter(disk, JoinReport("t"), tracer=tracer)
        assert meter.tracer is tracer
        with tracer.span("join"):
            with meter.phase("Refinement"):
                disk.read_page(fid, 0)
        assert [s.name for s in tracer.roots[0].children] == ["Refinement"]

    def test_phase_cost_matches_span_delta(self):
        disk, fid = self._disk()
        report = JoinReport("t")
        meter = PhaseMeter(disk, report)
        with meter.phase("io"):
            disk.read_page(fid, 0)
            disk.read_page(fid, 1)
        span = meter.tracer.find("io")[0]
        cost = report.phase("io")
        assert cost.page_reads == span.disk.page_reads == 2
        assert cost.seeks == span.disk.seeks == 1
        assert cost.io_s == pytest.approx(span.io_s(disk))

    def test_null_tracer_rejected_so_metering_still_works(self):
        disk, fid = self._disk()
        report = JoinReport("t")
        meter = PhaseMeter(disk, report, tracer=NULL_TRACER)
        with meter.phase("read"):
            disk.read_page(fid, 0)
        assert report.phase("read").page_reads == 1

    def test_foreign_disk_tracer_rejected(self):
        disk, fid = self._disk()
        other = SimulatedDisk()
        meter = PhaseMeter(disk, JoinReport("t"), tracer=Tracer(disk=other))
        assert meter.tracer.disk is disk
