"""Tests for phase metering and join reports."""

import pytest

from repro.core import JoinReport, PhaseCost, PhaseMeter
from repro.storage import SimulatedDisk


class TestPhaseCost:
    def test_totals(self):
        p = PhaseCost("x", cpu_s=2.0, io_s=1.0, page_reads=3, page_writes=2, seeks=1)
        assert p.total_s == 3.0
        assert p.total_ios == 5
        assert p.io_fraction == pytest.approx(1 / 3)

    def test_zero_cost_fraction(self):
        assert PhaseCost("x").io_fraction == 0.0

    def test_merge(self):
        a = PhaseCost("x", cpu_s=1.0, io_s=0.5, page_reads=1)
        b = PhaseCost("x", cpu_s=2.0, io_s=0.25, page_writes=4, seeks=2)
        a.merge(b)
        assert a.cpu_s == 3.0
        assert a.io_s == 0.75
        assert a.page_reads == 1 and a.page_writes == 4 and a.seeks == 2


class TestPhaseMeter:
    def test_measures_io(self):
        disk = SimulatedDisk()
        fid = disk.create_file()
        disk.allocate_page(fid)
        report = JoinReport("test")
        meter = PhaseMeter(disk, report)
        with meter.phase("read stuff"):
            disk.read_page(fid, 0)
        phase = report.phase("read stuff")
        assert phase.page_reads == 1
        assert phase.seeks == 1
        assert phase.io_s > 0
        assert phase.cpu_s >= 0

    def test_repeated_phase_names_accumulate(self):
        disk = SimulatedDisk()
        fid = disk.create_file()
        disk.allocate_page(fid)
        report = JoinReport("test")
        meter = PhaseMeter(disk, report)
        for _ in range(3):
            with meter.phase("loop"):
                disk.read_page(fid, 0)
        assert len(report.phases) == 1
        assert report.phase("loop").page_reads == 3

    def test_exception_still_records(self):
        disk = SimulatedDisk()
        report = JoinReport("test")
        meter = PhaseMeter(disk, report)
        with pytest.raises(RuntimeError):
            with meter.phase("boom"):
                raise RuntimeError("boom")
        assert report.phase("boom").cpu_s >= 0


class TestJoinReport:
    def test_totals_sum_phases(self):
        report = JoinReport("algo")
        report.phases.append(PhaseCost("a", cpu_s=1.0, io_s=0.5))
        report.phases.append(PhaseCost("b", cpu_s=2.0, io_s=1.5))
        assert report.total_s == 5.0
        assert report.cpu_s == 3.0
        assert report.io_s == 2.0
        assert report.io_fraction == pytest.approx(0.4)

    def test_unknown_phase_raises(self):
        with pytest.raises(KeyError):
            JoinReport("algo").phase("nope")

    def test_format_table_mentions_phases(self):
        report = JoinReport("algo")
        report.phases.append(PhaseCost("Partition R", cpu_s=1.0))
        text = report.format_table()
        assert "algo" in text
        assert "Partition R" in text

    def test_empty_report(self):
        report = JoinReport("algo")
        assert report.total_s == 0.0
        assert report.io_fraction == 0.0
