"""Tests for key-pointer elements and their temporary files."""

from repro.core import (
    KEYPTR_SIZE,
    CandidateFile,
    KeyPointerFile,
    pack_keypointer,
    unpack_keypointer,
)
from repro.geometry import Rect
from repro.storage import OID


class TestPacking:
    def test_roundtrip_exact_for_f32_values(self):
        # Coordinates representable in single precision survive unchanged,
        # as do the two-layer (tile, class) tags.
        rect = Rect(1.5, -2.25, 3.0, 4.125)
        oid = OID(3, 17, 250)
        assert unpack_keypointer(pack_keypointer(rect, oid, 7, 2)) == (
            rect, oid, 7, 2
        )

    def test_rounding_is_conservative(self):
        # Arbitrary doubles round *outward*: the stored MBR contains the
        # exact one, preserving the filter step's superset property.
        rect = Rect(0.1, 0.2, 0.3, 0.4)
        back, oid, tile, cls = unpack_keypointer(
            pack_keypointer(rect, OID(1, 2, 3))
        )
        assert back.contains(rect)
        assert oid == OID(1, 2, 3)
        assert (tile, cls) == (0, 0)
        assert back.xl <= rect.xl and back.yu >= rect.yu

    def test_size_matches_constant(self):
        data = pack_keypointer(Rect(0, 0, 1, 1), OID(0, 0, 0))
        assert len(data) == KEYPTR_SIZE

    def test_keyptr_size_near_papers(self):
        # The paper's <MBR, OID> is a few dozen bytes; ours is 33
        # (single-precision MBR + 12-byte OID + tile/class tags).
        assert 16 <= KEYPTR_SIZE <= 48


class TestKeyPointerFile:
    def test_append_and_read_all(self, db):
        kf = KeyPointerFile(db.pool)
        items = [
            (Rect(i, 0, i + 1, 1), OID(0, i, 0), i % 7, i % 4)
            for i in range(300)
        ]
        for rect, oid, tile, cls in items:
            kf.append(rect, oid, tile, cls)
        assert kf.count == 300
        assert kf.read_all() == items  # small integers are f32-exact

    def test_scan_streams(self, db):
        kf = KeyPointerFile(db.pool)
        kf.append(Rect(0, 0, 1, 1), OID(0, 0, 0))
        kf.append(Rect(1, 1, 2, 2), OID(0, 1, 0))
        assert list(kf.scan()) == kf.read_all()

    def test_size_bytes(self, db):
        kf = KeyPointerFile(db.pool)
        for i in range(10):
            kf.append(Rect(0, 0, 1, 1), OID(0, i, 0))
        assert kf.size_bytes() == 10 * KEYPTR_SIZE

    def test_drop(self, db):
        kf = KeyPointerFile(db.pool)
        kf.append(Rect(0, 0, 1, 1), OID(0, 0, 0))
        fid = kf.heap.file_id
        kf.drop()
        assert fid not in db.disk.file_ids()

    def test_spills_to_multiple_pages(self, db):
        kf = KeyPointerFile(db.pool)
        for i in range(800):
            kf.append(Rect(0, 0, 1, 1), OID(0, i, 0))
        assert kf.num_pages >= 3


class TestCandidateFile:
    def test_append_and_read_all(self, db):
        cf = CandidateFile(db.pool)
        pairs = [(OID(1, i, 0), OID(2, i * 2, 1)) for i in range(100)]
        for a, b in pairs:
            cf.append(a, b)
        assert cf.count == 100
        assert cf.read_all() == pairs

    def test_empty(self, db):
        cf = CandidateFile(db.pool)
        assert cf.read_all() == []
        assert cf.count == 0
