"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro import Database
from repro.geometry import Rect

# --------------------------------------------------------------------- #
# hypothesis strategies
# --------------------------------------------------------------------- #

coords = st.floats(
    min_value=-1000.0, max_value=1000.0, allow_nan=False, allow_infinity=False
)


@st.composite
def rects(draw, min_size: float = 0.0, max_size: float = 50.0):
    """A well-formed Rect with bounded extent."""
    x = draw(coords)
    y = draw(coords)
    w = draw(st.floats(min_value=min_size, max_value=max_size))
    h = draw(st.floats(min_value=min_size, max_value=max_size))
    return Rect(x, y, x + w, y + h)


@st.composite
def points(draw):
    return (draw(coords), draw(coords))


@st.composite
def polyline_points(draw, max_points: int = 12):
    n = draw(st.integers(min_value=2, max_value=max_points))
    return [draw(points()) for _ in range(n)]


# --------------------------------------------------------------------- #
# fixtures
# --------------------------------------------------------------------- #


@pytest.fixture
def db() -> Database:
    return Database(buffer_mb=2.0)


@pytest.fixture
def big_db() -> Database:
    return Database(buffer_mb=16.0)
