"""Smoke tests: the shipped examples must run to completion.

The heavier examples are exercised at their shipped scales, so these tests
double as end-to-end checks of the public API surface the examples use.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "crossings found" in out
    assert "PBSM" in out
    assert "Refinement" in out


def test_map_overlay(capsys):
    out = run_example("map_overlay.py", capsys)
    assert "identical result set" in out
    assert "overlay layer:" in out


def test_parallel_pbsm(capsys):
    out = run_example("parallel_pbsm.py", capsys)
    assert "parallel result identical to serial" in out
    assert "speedup" in out


@pytest.mark.slow
def test_landuse_containment(capsys):
    out = run_example("landuse_containment.py", capsys)
    assert "contained islands" in out
    assert "MER-filtered containment: same" in out


def test_complex_query(capsys):
    out = run_example("complex_query.py", capsys)
    assert "planner chose: PBSM" in out
    assert "qualifying (road, water) pairs" in out
