"""The benchmark-regression gate: exact on counters, tolerant on io_s."""

import copy
import json

import pytest

from repro.__main__ import main
from repro.bench.compare import IO_S_TOLERANCE, compare_documents, compare_files
from repro.obs.schema import SCHEMA_VERSION


def _record(algorithm="PBSM", buffer_mb=2.0, **overrides):
    record = {
        "algorithm": algorithm,
        "scale": 0.01,
        "buffer_mb": buffer_mb,
        "total_s": 1.5,
        "cpu_s": 0.5,
        "io_s": 1.0,
        "candidates": 1767,
        "result_count": 562,
        "phases": [],
        "counters": {"page_reads": 325, "page_writes": 0, "seeks": 6},
    }
    record.update(overrides)
    return record


def _document(records=None):
    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "fig7_road_hydro",
        "records": records if records is not None else [
            _record("PBSM", 2.0),
            _record("R-tree", 2.0, io_s=2.0,
                    counters={"page_reads": 395, "page_writes": 83, "seeks": 24}),
            _record("PBSM", 8.0),
        ],
    }


class TestGatePasses:
    def test_identical_documents(self):
        assert compare_documents(_document(), _document()) == []

    def test_wall_time_noise_is_ignored(self):
        fresh = _document()
        for record in fresh["records"]:
            record["cpu_s"] *= 3.0
            record["total_s"] *= 3.0
        assert compare_documents(_document(), fresh) == []

    def test_io_s_within_tolerance(self):
        fresh = _document()
        fresh["records"][0]["io_s"] *= 1.0 + IO_S_TOLERANCE * 0.9
        assert compare_documents(_document(), fresh) == []


class TestGateFails:
    def test_page_reads_drift_of_one(self):
        # The seeded perturbation: a single extra page read must trip the
        # gate — deterministic counters get zero tolerance.
        fresh = _document()
        fresh["records"][0]["counters"]["page_reads"] += 1
        violations = compare_documents(_document(), fresh)
        assert len(violations) == 1
        assert "counters.page_reads" in violations[0]
        assert "325" in violations[0] and "326" in violations[0]

    @pytest.mark.parametrize("field", ["candidates", "result_count"])
    def test_exact_field_drift(self, field):
        fresh = _document()
        fresh["records"][1][field] -= 1
        violations = compare_documents(_document(), fresh)
        assert len(violations) == 1
        assert field in violations[0]
        assert "R-tree" in violations[0]

    def test_io_s_beyond_tolerance(self):
        fresh = _document()
        fresh["records"][0]["io_s"] *= 1.0 + IO_S_TOLERANCE * 1.5
        violations = compare_documents(_document(), fresh)
        assert len(violations) == 1
        assert "io_s" in violations[0]

    def test_io_s_appearing_from_zero(self):
        base = _document()
        base["records"][0]["io_s"] = 0.0
        fresh = copy.deepcopy(base)
        fresh["records"][0]["io_s"] = 0.25
        assert any("io_s" in v for v in compare_documents(base, fresh))

    def test_scale_mismatch(self):
        fresh = _document()
        for record in fresh["records"]:
            record["scale"] = 0.05
        violations = compare_documents(_document(), fresh)
        assert violations
        assert all("scale mismatch" in v for v in violations)

    def test_missing_and_extra_records(self):
        base = _document()
        fresh = _document()
        fresh["records"] = fresh["records"][:-1] + [_record("INL", 2.0)]
        violations = compare_documents(base, fresh)
        assert any("missing record" in v and "8.0" in v for v in violations)
        assert any("extra record" in v and "INL" in v for v in violations)

    def test_benchmark_name_mismatch(self):
        fresh = _document()
        fresh["benchmark"] = "fig8_road_rail"
        assert any(
            "benchmark name mismatch" in v
            for v in compare_documents(_document(), fresh)
        )

    def test_multiple_violations_all_reported(self):
        fresh = _document()
        fresh["records"][0]["counters"]["seeks"] += 10
        fresh["records"][1]["result_count"] += 5
        fresh["records"][2]["counters"]["page_writes"] += 1
        assert len(compare_documents(_document(), fresh)) == 3


class TestFilesAndCLI:
    def _write(self, tmp_path, name, document):
        path = tmp_path / name
        path.write_text(json.dumps(document))
        return path

    def test_compare_files_validates_schema(self, tmp_path):
        good = self._write(tmp_path, "good.json", _document())
        bad = self._write(tmp_path, "bad.json", {"records": []})
        with pytest.raises(Exception):
            compare_files(good, bad)

    def test_cli_pass(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _document())
        fresh = self._write(tmp_path, "fresh.json", _document())
        assert main(["bench-compare", str(base), str(fresh)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_cli_fail_on_perturbation(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _document())
        perturbed = _document()
        perturbed["records"][0]["counters"]["page_reads"] += 7
        fresh = self._write(tmp_path, "fresh.json", perturbed)
        assert main(["bench-compare", str(base), str(fresh)]) == 1
        out = capsys.readouterr().out
        assert "page_reads" in out
        assert "re-baseline" in out.lower()

    def test_gate_passes_on_committed_baseline(self):
        # The baseline in the repo must agree with itself — guards against
        # committing a baseline the CI gate immediately rejects.
        from repro.bench.harness import RESULTS_DIR

        baseline = (
            RESULTS_DIR.parent / "baselines" / "BENCH_fig7_road_hydro.json"
        )
        assert baseline.exists()
        assert compare_files(baseline, baseline) == []
