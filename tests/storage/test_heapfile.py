"""Tests for slotted-page heap files."""

import pytest

from repro.storage import (
    MAX_RECORD_SIZE,
    PAGE_SIZE,
    BufferPool,
    HeapFile,
    HeapFileError,
    RID,
    SimulatedDisk,
)


def make_heap(capacity=16):
    disk = SimulatedDisk()
    pool = BufferPool(disk, capacity)
    return disk, pool, HeapFile(pool)


class TestAppendGet:
    def test_roundtrip(self):
        _, _, heap = make_heap()
        rid = heap.append(b"hello world")
        assert heap.get(rid) == b"hello world"

    def test_multiple_records_same_page(self):
        _, _, heap = make_heap()
        rids = [heap.append(f"rec-{i}".encode()) for i in range(10)]
        assert heap.num_pages == 1
        for i, rid in enumerate(rids):
            assert heap.get(rid) == f"rec-{i}".encode()

    def test_slots_increment(self):
        _, _, heap = make_heap()
        r0 = heap.append(b"a")
        r1 = heap.append(b"b")
        assert r0 == RID(0, 0)
        assert r1 == RID(0, 1)

    def test_empty_record_allowed(self):
        _, _, heap = make_heap()
        rid = heap.append(b"")
        assert heap.get(rid) == b""

    def test_page_overflow_allocates_new_page(self):
        _, _, heap = make_heap()
        big = b"x" * 3000
        rids = [heap.append(big) for i in range(4)]
        assert heap.num_pages == 2
        assert rids[2].page_no == 1

    def test_max_record_fits_exactly(self):
        _, _, heap = make_heap()
        rid = heap.append(b"y" * MAX_RECORD_SIZE)
        assert len(heap.get(rid)) == MAX_RECORD_SIZE

    def test_oversize_record_raises(self):
        _, _, heap = make_heap()
        with pytest.raises(HeapFileError):
            heap.append(b"z" * (MAX_RECORD_SIZE + 1))

    def test_get_bad_slot_raises(self):
        _, _, heap = make_heap()
        heap.append(b"a")
        with pytest.raises(HeapFileError):
            heap.get(RID(0, 5))


class TestDelete:
    def test_deleted_record_unreadable(self):
        _, _, heap = make_heap()
        rid = heap.append(b"doomed")
        heap.delete(rid)
        with pytest.raises(HeapFileError):
            heap.get(rid)

    def test_double_delete_raises(self):
        _, _, heap = make_heap()
        rid = heap.append(b"doomed")
        heap.delete(rid)
        with pytest.raises(HeapFileError):
            heap.delete(rid)

    def test_scan_skips_tombstones(self):
        _, _, heap = make_heap()
        keep = heap.append(b"keep")
        doomed = heap.append(b"doomed")
        heap.delete(doomed)
        records = list(heap.scan())
        assert records == [(keep, b"keep")]


class TestScan:
    def test_scan_order_is_physical(self):
        _, _, heap = make_heap()
        payloads = [f"row-{i:05}".encode() for i in range(2000)]
        for p in payloads:
            heap.append(p)
        assert heap.num_pages > 1
        scanned = [data for _rid, data in heap.scan()]
        assert scanned == payloads

    def test_scan_empty(self):
        _, _, heap = make_heap()
        assert list(heap.scan()) == []

    def test_scan_page(self):
        _, _, heap = make_heap()
        heap.append(b"a")
        heap.append(b"b")
        assert [d for _r, d in heap.scan_page(0)] == [b"a", b"b"]

    def test_scan_survives_eviction(self):
        disk, pool, heap = make_heap(capacity=2)
        payloads = [bytes([i % 256]) * 100 for i in range(300)]
        for p in payloads:
            heap.append(p)
        scanned = [data for _rid, data in heap.scan()]
        assert scanned == payloads
        assert disk.stats.page_reads > 0  # pages really were evicted and reread


class TestSizing:
    def test_size_bytes(self):
        _, _, heap = make_heap()
        heap.append(b"a")
        assert heap.size_bytes() == heap.num_pages * PAGE_SIZE

    def test_drop_releases_file(self):
        disk, pool, heap = make_heap()
        heap.append(b"a")
        fid = heap.file_id
        heap.drop()
        with pytest.raises(KeyError):
            disk.file_length(fid)
