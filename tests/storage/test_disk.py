"""Tests for the simulated disk and its I/O cost model."""

import pytest

from repro.storage import PAGE_SIZE, DiskStats, IOCostModel, SimulatedDisk


class TestFiles:
    def test_create_files_get_distinct_ids(self):
        disk = SimulatedDisk()
        assert disk.create_file() != disk.create_file()

    def test_new_file_is_empty(self):
        disk = SimulatedDisk()
        fid = disk.create_file()
        assert disk.file_length(fid) == 0

    def test_allocate_extends(self):
        disk = SimulatedDisk()
        fid = disk.create_file()
        assert disk.allocate_page(fid) == 0
        assert disk.allocate_page(fid) == 1
        assert disk.file_length(fid) == 2

    def test_drop_file_frees_pages(self):
        disk = SimulatedDisk()
        fid = disk.create_file()
        disk.allocate_page(fid)
        disk.drop_file(fid)
        with pytest.raises(KeyError):
            disk.file_length(fid)

    def test_file_ids(self):
        disk = SimulatedDisk()
        a, b = disk.create_file(), disk.create_file()
        assert set(disk.file_ids()) == {a, b}


class TestIO:
    def test_write_read_roundtrip(self):
        disk = SimulatedDisk()
        fid = disk.create_file()
        disk.allocate_page(fid)
        data = bytes(range(256)) * 32
        disk.write_page(fid, 0, data)
        assert disk.read_page(fid, 0) == data

    def test_fresh_page_is_zeroed(self):
        disk = SimulatedDisk()
        fid = disk.create_file()
        disk.allocate_page(fid)
        assert disk.read_page(fid, 0) == bytes(PAGE_SIZE)

    def test_read_unallocated_raises(self):
        disk = SimulatedDisk()
        fid = disk.create_file()
        with pytest.raises(KeyError):
            disk.read_page(fid, 0)

    def test_write_wrong_size_raises(self):
        disk = SimulatedDisk()
        fid = disk.create_file()
        disk.allocate_page(fid)
        with pytest.raises(ValueError):
            disk.write_page(fid, 0, b"short")


class TestAccessClassification:
    def test_first_access_is_random(self):
        disk = SimulatedDisk()
        fid = disk.create_file()
        disk.allocate_page(fid)
        disk.read_page(fid, 0)
        assert disk.stats.random_reads == 1

    def test_consecutive_reads_are_sequential(self):
        disk = SimulatedDisk()
        fid = disk.create_file()
        for _ in range(5):
            disk.allocate_page(fid)
        for page in range(5):
            disk.read_page(fid, page)
        assert disk.stats.page_reads == 5
        assert disk.stats.random_reads == 1  # only the first one seeks

    def test_backwards_read_is_random(self):
        disk = SimulatedDisk()
        fid = disk.create_file()
        disk.allocate_page(fid)
        disk.allocate_page(fid)
        disk.read_page(fid, 1)
        disk.read_page(fid, 0)
        assert disk.stats.random_reads == 2

    def test_cross_file_access_is_random(self):
        disk = SimulatedDisk()
        f1, f2 = disk.create_file(), disk.create_file()
        disk.allocate_page(f1)
        disk.allocate_page(f2)
        disk.read_page(f1, 0)
        disk.read_page(f2, 0)
        assert disk.stats.random_reads == 2

    def test_sequential_writes(self):
        disk = SimulatedDisk()
        fid = disk.create_file()
        for _ in range(3):
            disk.allocate_page(fid)
        blank = bytes(PAGE_SIZE)
        for page in range(3):
            disk.write_page(fid, page, blank)
        assert disk.stats.page_writes == 3
        assert disk.stats.random_writes == 1

    def test_read_after_write_same_position_continues_run(self):
        disk = SimulatedDisk()
        fid = disk.create_file()
        disk.allocate_page(fid)
        disk.allocate_page(fid)
        disk.write_page(fid, 0, bytes(PAGE_SIZE))
        disk.read_page(fid, 1)
        assert disk.stats.random_reads == 0

    def test_interleaved_scans_on_two_files_stay_sequential(self):
        # Head position is per file (modelling per-stream prefetch), so two
        # scans in lock-step each pay only their initial seek.
        disk = SimulatedDisk()
        f1, f2 = disk.create_file(), disk.create_file()
        for fid in (f1, f2):
            for _ in range(3):
                disk.allocate_page(fid)
        disk.read_page(f1, 0)  # random: first touch of f1
        disk.read_page(f2, 0)  # random: first touch of f2
        disk.read_page(f1, 1)  # sequential within f1's stream
        disk.read_page(f2, 1)  # sequential within f2's stream
        disk.read_page(f1, 2)
        disk.read_page(f2, 2)
        assert disk.stats.page_reads == 6
        assert disk.stats.random_reads == 2

    def test_rewrite_of_just_read_page_is_random(self):
        # The head sits *at* the page after reading it; rewriting in place
        # is not "last + 1" and therefore pays a seek.
        disk = SimulatedDisk()
        fid = disk.create_file()
        disk.allocate_page(fid)
        disk.allocate_page(fid)
        disk.read_page(fid, 0)
        disk.write_page(fid, 0, bytes(PAGE_SIZE))
        assert disk.stats.random_writes == 1
        disk.read_page(fid, 1)  # the run continues from the rewrite
        assert disk.stats.random_reads == 1

    def test_drop_file_clears_stream_state(self):
        disk = SimulatedDisk()
        fid = disk.create_file()
        for _ in range(2):
            disk.allocate_page(fid)
        disk.read_page(fid, 0)
        disk.read_page(fid, 1)
        disk.drop_file(fid)
        assert fid not in disk._last_access_per_file

    def test_first_access_after_drop_of_another_file_is_random(self):
        disk = SimulatedDisk()
        f1 = disk.create_file()
        disk.allocate_page(f1)
        disk.read_page(f1, 0)
        disk.drop_file(f1)
        f2 = disk.create_file()
        disk.allocate_page(f2)
        disk.read_page(f2, 0)
        assert disk.stats.random_reads == 2


class TestCostModel:
    def test_io_time_formula(self):
        cost = IOCostModel(seek_time=0.01, transfer_time=0.001)
        stats = DiskStats(
            page_reads=10, page_writes=5, random_reads=3, random_writes=2
        )
        assert stats.io_time(cost) == pytest.approx(5 * 0.01 + 15 * 0.001)

    def test_snapshot_diff(self):
        disk = SimulatedDisk()
        fid = disk.create_file()
        disk.allocate_page(fid)
        disk.read_page(fid, 0)
        snap = disk.snapshot()
        disk.read_page(fid, 0)  # random (same page, not +1)
        delta = disk.stats.minus(snap)
        assert delta.page_reads == 1
        assert disk.io_time_since(snap) > 0

    def test_stats_copy_is_independent(self):
        disk = SimulatedDisk()
        snap = disk.snapshot()
        fid = disk.create_file()
        disk.allocate_page(fid)
        disk.read_page(fid, 0)
        assert snap.page_reads == 0

    def test_total_and_seeks(self):
        stats = DiskStats(page_reads=4, page_writes=6, random_reads=1, random_writes=2)
        assert stats.total_ios == 10
        assert stats.seeks == 3


class TestDurability:
    def test_fsync_counts_and_validates_the_file(self):
        disk = SimulatedDisk()
        fid = disk.create_file()
        disk.fsync(fid)
        assert disk.stats.fsyncs == 1
        from repro.storage.disk import UnknownFileError

        with pytest.raises(UnknownFileError):
            disk.fsync(fid + 1)

    def test_fsync_time_enters_the_cost_model(self):
        cost = IOCostModel(seek_time=0.0, transfer_time=0.0)
        assert cost.fsync_time > 0
        stats = DiskStats(fsyncs=3)
        assert stats.io_time(cost) == pytest.approx(3 * cost.fsync_time)

    def test_charge_durable_write_models_the_atomic_protocol(self):
        disk = SimulatedDisk()
        disk.charge_durable_write(1)  # under a page still pays one page
        assert disk.stats.page_writes == 1
        assert disk.stats.random_writes == 1
        assert disk.stats.fsyncs == 2  # data fsync + directory fsync
        disk.charge_durable_write(PAGE_SIZE * 2 + 1)
        assert disk.stats.page_writes == 1 + 3

    def test_stats_copy_and_diff_carry_fsyncs(self):
        disk = SimulatedDisk()
        snap = disk.snapshot()
        disk.charge_durable_write(10)
        assert snap.fsyncs == 0
        assert disk.stats.minus(snap).fsyncs == 2


class TestAtomicWriteBytes:
    def test_replaces_the_file_and_cleans_the_temp(self, tmp_path):
        from repro.storage.disk import ATOMIC_TMP_SUFFIX, atomic_write_bytes

        path = tmp_path / "state.bin"
        atomic_write_bytes(path, b"v1")
        atomic_write_bytes(path, b"v2-longer")
        assert path.read_bytes() == b"v2-longer"
        assert not path.with_name(path.name + ATOMIC_TMP_SUFFIX).exists()

    def test_creates_parent_directories(self, tmp_path):
        from repro.storage.disk import atomic_write_bytes

        path = tmp_path / "a" / "b" / "state.bin"
        atomic_write_bytes(path, b"deep")
        assert path.read_bytes() == b"deep"

    def test_charges_the_simulated_disk_when_given(self, tmp_path):
        from repro.storage.disk import atomic_write_bytes

        disk = SimulatedDisk()
        atomic_write_bytes(tmp_path / "s.bin", b"x" * (PAGE_SIZE + 1),
                           disk=disk)
        assert disk.stats.page_writes == 2
        assert disk.stats.fsyncs == 2
