"""Tests for the external merge sort."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import BufferPool, SimulatedDisk
from repro.storage.extsort import ExternalSorter, external_sort


def make_pool(capacity=16):
    disk = SimulatedDisk()
    return disk, BufferPool(disk, capacity)


def int_record(value: int) -> bytes:
    return struct.pack(">I", value)


def int_key(record: bytes) -> int:
    return struct.unpack(">I", record)[0]


class TestInMemoryPath:
    def test_small_input_no_spill(self):
        _disk, pool = make_pool()
        sorter = ExternalSorter(pool, int_key, memory_bytes=1 << 20)
        sorter.add_all(int_record(v) for v in [5, 3, 9, 1])
        assert [int_key(r) for r in sorter.sorted_records()] == [1, 3, 5, 9]
        assert sorter.spilled_runs == 0

    def test_empty_input(self):
        _disk, pool = make_pool()
        sorter = ExternalSorter(pool, int_key)
        assert list(sorter.sorted_records()) == []


class TestSpillingPath:
    def test_spills_and_merges(self):
        disk, pool = make_pool()
        values = list(range(1000, 0, -1))
        sorter = ExternalSorter(pool, int_key, memory_bytes=256)
        sorter.add_all(int_record(v) for v in values)
        assert sorter.spilled_runs > 2
        got = [int_key(r) for r in sorter.sorted_records()]
        assert got == sorted(values)

    def test_run_files_cleaned_up(self):
        disk, pool = make_pool()
        files_before = set(disk.file_ids())
        sorter = ExternalSorter(pool, int_key, memory_bytes=64)
        sorter.add_all(int_record(v) for v in range(200))
        list(sorter.sorted_records())
        assert set(disk.file_ids()) == files_before

    def test_duplicates_preserved(self):
        _disk, pool = make_pool()
        records = [int_record(7)] * 50 + [int_record(3)] * 50
        got = list(external_sort(pool, records, int_key, memory_bytes=64))
        assert len(got) == 100
        assert [int_key(r) for r in got] == [3] * 50 + [7] * 50

    def test_spill_incurs_io(self):
        disk, pool = make_pool(capacity=4)
        list(
            external_sort(
                pool, (int_record(v) for v in range(5000, 0, -1)), int_key,
                memory_bytes=1024,
            )
        )
        assert disk.stats.page_writes > 0


class TestBudgetEdges:
    """Degenerate memory budgets: the sorter must stay correct when every
    single ``add`` overflows the budget (one run per record) and when the
    budget exactly fits one record — the storage-pressure analogue of a
    spill path running at the edge of its allowance."""

    def test_budget_below_one_record(self):
        # A 1-byte budget against 4-byte records: each add crosses the
        # threshold immediately, so every record becomes its own run.
        disk, pool = make_pool()
        values = [9, 2, 7, 1, 5]
        sorter = ExternalSorter(pool, int_key, memory_bytes=1)
        sorter.add_all(int_record(v) for v in values)
        assert sorter.spilled_runs == len(values)
        assert [int_key(r) for r in sorter.sorted_records()] == sorted(values)

    def test_budget_equal_to_one_record(self):
        # A budget of exactly one record's size also spills on every add
        # (the threshold is >=), so the run count still equals the record
        # count and the merge of single-record runs stays correct.
        disk, pool = make_pool()
        values = [4, 4, 3, 8, 0, 8]
        record = int_record(values[0])
        sorter = ExternalSorter(pool, int_key, memory_bytes=len(record))
        sorter.add_all(int_record(v) for v in values)
        assert sorter.spilled_runs == len(values)
        assert [int_key(r) for r in sorter.sorted_records()] == sorted(values)

    def test_empty_input_with_tiny_budget_spills_nothing(self):
        disk, pool = make_pool()
        files_before = set(disk.file_ids())
        sorter = ExternalSorter(pool, int_key, memory_bytes=1)
        assert list(sorter.sorted_records()) == []
        assert sorter.spilled_runs == 0
        assert set(disk.file_ids()) == files_before
        assert disk.stats.page_writes == 0

    def test_single_record_under_tiny_budget(self):
        _disk, pool = make_pool()
        sorter = ExternalSorter(pool, int_key, memory_bytes=1)
        sorter.add(int_record(42))
        assert sorter.spilled_runs == 1
        assert [int_key(r) for r in sorter.sorted_records()] == [42]


class TestMisuse:
    def test_bad_memory(self):
        _disk, pool = make_pool()
        with pytest.raises(ValueError):
            ExternalSorter(pool, int_key, memory_bytes=0)

    def test_consume_twice(self):
        _disk, pool = make_pool()
        sorter = ExternalSorter(pool, int_key)
        sorter.add(int_record(1))
        list(sorter.sorted_records())
        with pytest.raises(RuntimeError):
            list(sorter.sorted_records())

    def test_add_after_consume(self):
        _disk, pool = make_pool()
        sorter = ExternalSorter(pool, int_key)
        list(sorter.sorted_records())
        with pytest.raises(RuntimeError):
            sorter.add(int_record(1))


class TestProperty:
    @given(
        st.lists(st.integers(min_value=0, max_value=2**32 - 1), max_size=300),
        st.integers(min_value=16, max_value=4096),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_builtin_sort(self, values, memory):
        _disk, pool = make_pool()
        got = [
            int_key(r)
            for r in external_sort(
                pool, (int_record(v) for v in values), int_key, memory
            )
        ]
        assert got == sorted(values)
