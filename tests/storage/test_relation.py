"""Tests for relations, OIDs, and catalog statistics."""

import pytest

from repro.geometry import Polyline, Rect
from repro.storage import Database, OID, SpatialTuple


def line_tuple(i, x0=0.0, y0=0.0):
    return SpatialTuple(
        feature_id=i,
        category=1,
        name=f"f-{i}",
        geom=Polyline([(x0, y0), (x0 + 1, y0 + 1)]),
    )


class TestInsertFetch:
    def test_roundtrip(self, db):
        rel = db.create_relation("r")
        oid = rel.insert(line_tuple(1))
        assert rel.fetch(oid) == line_tuple(1)

    def test_fetch_wrong_relation_raises(self, db):
        a = db.create_relation("a")
        b = db.create_relation("b")
        oid = a.insert(line_tuple(1))
        with pytest.raises(ValueError):
            b.fetch(oid)

    def test_bulk_load_count(self, db):
        rel = db.create_relation("r")
        n = rel.bulk_load(line_tuple(i) for i in range(25))
        assert n == 25
        assert len(rel) == 25


class TestScan:
    def test_scan_in_insert_order(self, db):
        rel = db.create_relation("r")
        tuples = [line_tuple(i, x0=float(i)) for i in range(100)]
        for t in tuples:
            rel.insert(t)
        scanned = [t for _oid, t in rel.scan()]
        assert scanned == tuples

    def test_scan_yields_fetchable_oids(self, db):
        rel = db.create_relation("r")
        rel.insert(line_tuple(1))
        rel.insert(line_tuple(2))
        for oid, t in rel.scan():
            assert rel.fetch(oid) == t


class TestCatalog:
    def test_universe_grows_with_inserts(self, db):
        rel = db.create_relation("r")
        rel.insert(line_tuple(1, x0=0.0, y0=0.0))
        assert rel.universe == Rect(0, 0, 1, 1)
        rel.insert(line_tuple(2, x0=10.0, y0=-5.0))
        assert rel.universe == Rect(0, -5, 11, -4).union(Rect(0, 0, 1, 1))

    def test_universe_of_empty_raises(self, db):
        rel = db.create_relation("r")
        with pytest.raises(ValueError):
            _ = rel.universe

    def test_avg_points(self, db):
        rel = db.create_relation("r")
        rel.insert(SpatialTuple(1, 1, "a", Polyline([(0, 0), (1, 1)])))
        rel.insert(SpatialTuple(2, 1, "b", Polyline([(0, 0), (1, 1), (2, 2), (3, 3)])))
        assert rel.catalog.avg_points == pytest.approx(3.0)

    def test_size_accounting(self, db):
        rel = db.create_relation("r")
        for i in range(500):
            rel.insert(line_tuple(i))
        assert rel.num_pages >= 2
        assert rel.size_bytes() == rel.num_pages * 8192


class TestOID:
    def test_oids_sort_in_physical_order(self, db):
        rel = db.create_relation("r")
        oids = [rel.insert(line_tuple(i)) for i in range(1000)]
        assert oids == sorted(oids)

    def test_oid_fields(self, db):
        rel = db.create_relation("r")
        oid = rel.insert(line_tuple(1))
        assert oid == OID(rel.file_id, 0, 0)
        assert oid.rid.page_no == 0


class TestDatabase:
    def test_duplicate_relation_name_raises(self, db):
        db.create_relation("r")
        with pytest.raises(ValueError):
            db.create_relation("r")

    def test_relation_lookup(self, db):
        rel = db.create_relation("r")
        assert db.relation("r") is rel

    def test_drop_relation(self, db):
        rel = db.create_relation("r")
        rel.insert(line_tuple(1))
        db.drop_relation("r")
        assert "r" not in db.relations

    def test_buffer_sizing(self):
        db = Database(buffer_mb=2.0)
        assert db.buffer_pages == 256
        assert db.buffer_bytes() == 2 * 1024 * 1024
